//! Offline drop-in for the subset of the `proptest` API this workspace
//! uses: the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_flat_map`, [`Just`], [`prop_oneof!`], range and tuple
//! strategies, and [`collection::vec`] / [`collection::btree_set`].
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched. This shim keeps property tests source-compatible with two
//! deliberate simplifications:
//!
//! * **No shrinking.** A failing case reports its case index and seed;
//!   re-running the suite reproduces it exactly (generation is fully
//!   deterministic per test name), which is what matters for debugging.
//! * **Deterministic scheduling.** Each test derives its RNG stream from
//!   a hash of its own name, so adding a test never perturbs another
//!   test's cases.
//!
//! Case count defaults to 256 and can be overridden per block with
//! `#![proptest_config(ProptestConfig::with_cases(n))]` or globally with
//! the `PROPTEST_CASES` environment variable.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Per-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// The deterministic generator backing value generation: xoshiro256++
/// seeded per (test name, case index) via SplitMix64.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// A generator for one case of one named test.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
        }
        TestRng::from_seed(h ^ (u64::from(case) << 32 | u64::from(case)))
    }

    /// A generator from a raw seed.
    pub fn from_seed(seed: u64) -> TestRng {
        let mut state = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut state);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        TestRng { s }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample below 0");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9007199254740992.0)
    }
}

/// A generator of arbitrary values.
///
/// Unlike the real crate there is no value tree: strategies generate
/// final values directly and failures are not shrunk.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, builds a dependent strategy from it, and
    /// samples that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Generates `true` and `false` uniformly.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Object-safe view of [`Strategy`].
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among type-erased alternatives ([`prop_oneof!`]).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// A union over the given alternatives. Panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        start + (end - start) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

pub mod collection {
    //! Collection strategies.

    use super::{BTreeSet, Strategy, TestRng};
    use std::ops::Range;

    /// Size specification for collection strategies: an exact size or a
    /// half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    /// `Vec` of values from `elem` with a size drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `BTreeSet` of distinct values from `elem`; the target size is
    /// drawn from `size` and approached with bounded retries (a narrow
    /// element domain may yield fewer elements, as in the real crate).
    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 10 + 10 {
                out.insert(self.elem.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod prop {
    //! Path-compatible module so `prop::collection::vec(..)` works.
    pub use crate::collection;
}

pub mod prelude {
    //! Everything property tests import.
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (panics like `assert!`; there
/// is no shrinking to feed a structured failure into).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running [`ProptestConfig::cases`] generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cases = ($cfg).cases;
            for case in 0..cases {
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest: {} failed at case {case}/{cases} \
                         (deterministic; rerun reproduces it)",
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn generation_is_deterministic_per_name_and_case() {
        let strat = prop::collection::vec(0u64..100, 1..10);
        let a = Strategy::generate(&strat, &mut TestRng::for_case("t", 3));
        let b = Strategy::generate(&strat, &mut TestRng::for_case("t", 3));
        let c = Strategy::generate(&strat, &mut TestRng::for_case("t", 4));
        assert_eq!(a, b);
        assert_ne!(a, c, "different cases should differ (overwhelmingly)");
    }

    #[test]
    fn oneof_hits_every_arm() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::from_seed(5);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn btree_set_respects_domain_smaller_than_target() {
        let strat = prop::collection::btree_set(0u64..3, 0..10);
        let mut rng = TestRng::from_seed(6);
        for _ in 0..50 {
            let s = strat.generate(&mut rng);
            assert!(s.len() <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, ranges, maps, flat maps.
        #[test]
        fn macro_binds_multiple_args(
            n in 1usize..10,
            xs in prop::collection::vec(-1.0f64..1.0, 1..20),
            k in (1u32..4).prop_flat_map(|b| prop::collection::vec(0u32..10, 1usize << b)),
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(!xs.is_empty() && xs.iter().all(|x| (-1.0..1.0).contains(x)));
            prop_assert!(k.len().is_power_of_two());
        }

        /// Tuple strategies compose with prop_map.
        #[test]
        fn tuples_map((lo, hi) in (-50.0f64..0.0, 0.0f64..50.0).prop_map(|(a, b)| (a, b))) {
            prop_assert!(lo < hi);
        }
    }
}
