//! Offline drop-in for the subset of the `rand` 0.9 API this workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::random_range`] over integer and float ranges.
//!
//! The build environment has no network access and no registry cache, so
//! the real `rand` crate cannot be fetched. This shim keeps the call
//! sites source-compatible while guaranteeing something the real crate
//! does not: the generator is **specified** (xoshiro256++ seeded by
//! SplitMix64), so seeded trace synthesis is reproducible across
//! platforms and across future versions of this workspace. Do not add
//! API surface here beyond what call sites need.

use std::ops::{Range, RangeInclusive};

/// A source of 64-bit random words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every core
/// generator like the real crate does.
pub trait Rng: RngCore {
    /// Uniform sample from `range`. Panics on an empty range.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn random_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        // 53 high bits -> [0, 1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / 9007199254740992.0)
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges [`Rng::random_range`] accepts.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Maps a raw word onto `[0, span)` without modulo bias (Lemire's
/// widening-multiply method, sans rejection — the bias is < 2^-64 span,
/// irrelevant for simulation workloads).
fn bounded(word: u64, span: u64) -> u64 {
    ((u128::from(word) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + bounded(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / 9007199254740992.0);
        let v = self.start + (self.end - self.start) * u;
        // Rounding can land exactly on `end`; fold it back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / 9007199254740992.0);
        start + (end - start) * u
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// key expansion. Small, fast, and — unlike the real crate's
    /// `StdRng` — guaranteed stable across releases.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point of xoshiro.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random_range(0u64..1 << 32) == b.random_range(0u64..1 << 32))
            .count();
        assert!(same < 4, "{same} collisions in 64 draws");
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v), "{v}");
        }
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for _ in 0..10_000 {
            let v = rng.random_range(5.0..6.0);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 5.05 && hi > 5.95, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn integer_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0u64..10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.random_range(3u64..=5);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn inclusive_full_range_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(11);
        // Must not panic computing span + 1.
        let _ = rng.random_range(0u64..=u64::MAX);
    }

    #[test]
    fn mean_of_unit_range_is_centered() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
