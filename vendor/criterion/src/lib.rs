//! Offline drop-in for the subset of the `criterion` API this workspace
//! uses: [`Criterion::bench_function`], benchmark groups with
//! `sample_size` / `throughput`, [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched. This shim measures with a plain `Instant` loop — per
//! sample it runs enough iterations to cover ~5 ms, takes the minimum
//! over the samples (least-noise estimator), and prints one line per
//! benchmark. No statistical analysis, no HTML reports.
//!
//! Two extras the workspace's tooling relies on:
//!
//! * **Smoke mode** — like the real crate, `cargo bench -- --test` runs
//!   every benchmark body exactly once without timing it, so CI can
//!   verify the benches still execute without paying for measurement.
//! * **Record capture** — every completed measurement is appended to a
//!   process-wide list that [`take_records`] drains, letting report
//!   binaries (e.g. `perfreport`) reuse the bench definitions and emit
//!   machine-readable output instead of scraping stdout.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` call sites work.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Work-per-iteration declaration; reported as a rate when set.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark name of the form `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// One completed measurement, captured for machine-readable reporting.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Full benchmark id (`group/name` for grouped benches).
    pub id: String,
    /// Best-of-samples time per iteration in nanoseconds.
    pub ns_per_iter: f64,
    /// The group's throughput declaration, if any.
    pub throughput: Option<Throughput>,
}

static RECORDS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Drains every measurement recorded since the last call (or process
/// start). Smoke-mode runs record nothing.
pub fn take_records() -> Vec<BenchRecord> {
    std::mem::take(&mut *RECORDS.lock().expect("records lock"))
}

/// `cargo bench -- --test` parity with the real crate: run each bench
/// body once, skip measurement.
fn smoke_requested() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Collects timing for one benchmark via [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    smoke: bool,
    result: Option<Duration>,
}

impl Bencher {
    /// Times `f`, storing the per-iteration minimum across samples. In
    /// smoke mode runs `f` once and stores nothing.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke {
            std_black_box(f());
            return;
        }
        // Warm-up and calibration: target ~5 ms per sample.
        let start = Instant::now();
        std_black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let per_sample = (5_000_000 / once.as_nanos().max(1)).clamp(1, 1_000_000) as u32;

        let mut best = Duration::MAX;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..per_sample {
                std_black_box(f());
            }
            best = best.min(t.elapsed() / per_sample);
        }
        self.result = Some(best);
    }
}

fn report(id: &str, result: Option<Duration>, throughput: Option<Throughput>, smoke: bool) {
    if smoke {
        println!("{id:<40} smoke: ran once, ok");
        return;
    }
    let Some(d) = result else {
        println!("{id:<40} (no measurement)");
        return;
    };
    RECORDS.lock().expect("records lock").push(BenchRecord {
        id: id.to_string(),
        ns_per_iter: d.as_nanos() as f64,
        throughput,
    });
    let ns = d.as_nanos() as f64;
    let time = if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else {
        format!("{:.3} ms", ns / 1_000_000.0)
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.2} Melem/s)", n as f64 / ns * 1_000.0)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  ({:.2} MiB/s)",
                n as f64 / ns * 1_000.0 * 1e6 / (1 << 20) as f64
            )
        }
        None => String::new(),
    };
    println!("{id:<40} time: {time}/iter{rate}");
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            smoke: smoke_requested(),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            smoke: self.smoke,
            result: None,
        };
        f(&mut b);
        report(&id.id, b.result, None, self.smoke);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            smoke: self.smoke,
            throughput: None,
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix, sample size, and
/// throughput declaration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    smoke: bool,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            smoke: self.smoke,
            result: None,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.id),
            b.result,
            self.throughput,
            self.smoke,
        );
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            smoke: self.smoke,
            result: None,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.id),
            b.result,
            self.throughput,
            self.smoke,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        c.sample_size(2)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_compose() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.throughput(Throughput::Elements(4));
        g.bench_function(BenchmarkId::new("f", 4), |b| b.iter(|| (0..4).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("g", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }
}
