//! # Sidewinder
//!
//! A Rust reproduction of *"Sidewinder: An Energy Efficient and Developer
//! Friendly Heterogeneous Architecture for Continuous Mobile Sensing"*
//! (ASPLOS 2016).
//!
//! Sidewinder offloads continuous sensor processing to a low-power sensor
//! hub: the platform ships a fixed menu of processing algorithms
//! (windowing, filtering, FFT, feature extraction, admission control) and
//! application developers build custom *wake-up conditions* by chaining
//! and parameterizing them. The hub runs the condition continuously and
//! wakes the main processor only when events of interest occur.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — the developer API: `ProcessingPipeline`,
//!   `ProcessingBranch`, algorithm stubs, `SidewinderSensorManager`;
//! * [`ir`] — the intermediate language exchanged between the sensor
//!   manager and the hub;
//! * [`hub`] — the sensor-hub substrate: the IR interpreter, MCU
//!   capability models, the serial-link budget;
//! * [`dsp`] — the numerical kernels behind the hub algorithms;
//! * [`mcu`] — the `#![no_std]` hub core: the fixed-capacity image
//!   format, the zero-allocation interpreter, and the `Sample`-generic
//!   kernels, cross-compilable to bare-metal MCU targets;
//! * [`sensors`] — traces, channels, timestamps, ground truth;
//! * [`tracegen`] — synthetic robot / human / audio trace generators;
//! * [`apps`] — the six evaluation applications and the
//!   predefined-activity baselines;
//! * [`lint`] — the `swlint` static analyzer: abstract interpretation
//!   over value intervals, the `SW0xx` lint catalog, MCU schedulability
//!   checks;
//! * [`cert`] — the `swcert` static resource certifier: sound per-arena
//!   occupancy, worst-case cycle, and energy-ceiling bounds over
//!   compiled MCU images, with pinned canonical-JSON digests;
//! * [`opt`] — the `swopt` optimizing IR compiler: dead-node
//!   elimination, gate fusion, cross-application common-subexpression
//!   elimination, and Goertzel strength reduction, built on the
//!   linter's abstract-interpretation facts;
//! * [`sim`] — the trace-driven power/recall simulator;
//! * [`fleet`] — the fleet-scale simulation service: sharded
//!   hundred-thousand-device runs over the batch engine with streaming
//!   trace generation, per-device fault schedules, a framed wire API,
//!   and deterministic observability rollups;
//! * [`obs`] — the observability layer: structured event sinks,
//!   per-node counters and timing histograms, energy ledgers, and the
//!   Chrome-tracing timeline exporter.
//!
//! # Quickstart
//!
//! The paper's Fig. 2 significant-motion condition, end to end:
//!
//! ```
//! use sidewinder::core::algorithm::{MinThreshold, MovingAverage, VectorMagnitude};
//! use sidewinder::core::{ProcessingBranch, ProcessingPipeline, SidewinderSensorManager};
//! use sidewinder::sensors::SensorChannel;
//!
//! let mut pipeline = ProcessingPipeline::new();
//! let mut branches = [
//!     ProcessingBranch::new(SensorChannel::AccX),
//!     ProcessingBranch::new(SensorChannel::AccY),
//!     ProcessingBranch::new(SensorChannel::AccZ),
//! ];
//! for branch in &mut branches {
//!     branch.add(MovingAverage::new(10));
//! }
//! pipeline.add_branches(branches);
//! pipeline.add(VectorMagnitude::new());
//! pipeline.add(MinThreshold::new(15.0));
//!
//! // The sensor manager compiles the pipeline to the intermediate
//! // language, sizes it onto a microcontroller, and runs it on the hub.
//! let mut manager = SidewinderSensorManager::new();
//! let id = manager.push(&pipeline, |event: &sidewinder::core::SensorEvent| {
//!     println!("wake-up: |a| = {:.1} m/s^2", event.value);
//! })?;
//! assert_eq!(manager.mcu(id).unwrap().name, "TI MSP430");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use sidewinder_apps as apps;
pub use sidewinder_cert as cert;
pub use sidewinder_core as core;
pub use sidewinder_dsp as dsp;
pub use sidewinder_fleet as fleet;
pub use sidewinder_hub as hub;
pub use sidewinder_ir as ir;
pub use sidewinder_lint as lint;
pub use sidewinder_mcu as mcu;
pub use sidewinder_obs as obs;
pub use sidewinder_opt as opt;
pub use sidewinder_sensors as sensors;
pub use sidewinder_sim as sim;
pub use sidewinder_tracegen as tracegen;
