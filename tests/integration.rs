//! Cross-crate integration tests exercised through the facade: the full
//! path from the developer API through the intermediate language, the
//! hub interpreter, trace persistence, and the simulator.

use sidewinder::core::algorithm::{MinThreshold, MovingAverage, VectorMagnitude};
use sidewinder::core::fusion::{FusedPlan, FusedRuntime};
use sidewinder::core::{
    ProcessingBranch, ProcessingPipeline, SensorEvent, SidewinderSensorManager,
};
use sidewinder::hub::runtime::{ChannelRates, HubRuntime};
use sidewinder::ir::Program;
use sidewinder::sensors::{csv, EventKind, Micros, SensorChannel};
use sidewinder::sim::{simulate, Application, PhonePowerProfile, SimConfig, Strategy};
use sidewinder::tracegen::{robot_run, RobotRunConfig};
use std::cell::Cell;
use std::rc::Rc;

fn significant_motion() -> ProcessingPipeline {
    let mut pipeline = ProcessingPipeline::new();
    let mut branches = vec![
        ProcessingBranch::new(SensorChannel::AccX),
        ProcessingBranch::new(SensorChannel::AccY),
        ProcessingBranch::new(SensorChannel::AccZ),
    ];
    for branch in &mut branches {
        branch.add(MovingAverage::new(10));
    }
    pipeline.add_branches(branches);
    pipeline.add(VectorMagnitude::new());
    pipeline.add(MinThreshold::new(15.0));
    pipeline
}

#[test]
fn api_ir_hub_round_trip() {
    // API → IR text → parse → validate → hub → wake.
    let program = significant_motion().compile().unwrap();
    let text = program.to_string();
    let reparsed: Program = text.parse().unwrap();
    assert_eq!(reparsed, program);
    reparsed.validate().unwrap();

    let mut hub = HubRuntime::load(&reparsed, &ChannelRates::default()).unwrap();
    let mut woke = false;
    for _ in 0..20 {
        for channel in SensorChannel::ACCEL {
            woke |= !hub.push_sample(channel, 12.0).unwrap().is_empty();
        }
    }
    assert!(woke);
}

#[test]
fn manager_drives_listener_through_facade() {
    let mut manager = SidewinderSensorManager::new();
    let wakes = Rc::new(Cell::new(0u32));
    let counter = wakes.clone();
    manager
        .push(&significant_motion(), move |_: &SensorEvent| {
            counter.set(counter.get() + 1)
        })
        .unwrap();
    for _ in 0..20 {
        for channel in SensorChannel::ACCEL {
            manager.on_sample(channel, 12.0).unwrap();
        }
    }
    assert!(wakes.get() > 0);
}

#[test]
fn generated_trace_survives_csv_round_trip_with_identical_simulation() {
    let trace = robot_run(&RobotRunConfig {
        duration: Micros::from_secs(120),
        idle_fraction: 0.5,
        rate_hz: 50.0,
        seed: 77,
    });

    // Persist and reload both samples and labels.
    let mut samples_buf = Vec::new();
    csv::write_samples(&trace, &mut samples_buf).unwrap();
    let mut labels_buf = Vec::new();
    csv::write_labels(trace.ground_truth(), &mut labels_buf).unwrap();
    let mut reloaded = csv::read_samples(trace.name(), samples_buf.as_slice()).unwrap();
    *reloaded.ground_truth_mut() = csv::read_labels(labels_buf.as_slice()).unwrap();

    // The reloaded trace must drive the simulator to the identical
    // outcome.
    let app = sidewinder::apps::HeadbuttsApp::new();
    let strategy = Strategy::HubWake {
        program: app.wake_condition(),
        hub_mw: app.wake_condition_hub_mw(),
        label: "Sw",
    };
    let a = simulate(
        &trace,
        &app,
        &strategy,
        &PhonePowerProfile::NEXUS4,
        &SimConfig::default(),
    )
    .unwrap();
    let b = simulate(
        &reloaded,
        &app,
        &strategy,
        &PhonePowerProfile::NEXUS4,
        &SimConfig::default(),
    )
    .unwrap();
    assert_eq!(a.average_power_mw, b.average_power_mw);
    assert_eq!(a.detections, b.detections);
    assert_eq!(a.wake_ups, b.wake_ups);
}

#[test]
fn fused_runtime_agrees_with_separate_runtimes_on_audio_conditions() {
    let music = sidewinder::apps::MusicJournalApp::new().wake_condition();
    let phrase = sidewinder::apps::PhraseDetectionApp::new().wake_condition();
    let plan = FusedPlan::fuse(&[&music, &phrase]).unwrap();
    assert!(plan.node_count() < music.nodes().count() + phrase.nodes().count());

    let rates = ChannelRates::default();
    let mut fused = FusedRuntime::load(&plan, &rates).unwrap();
    let mut solo_music = HubRuntime::load(&music, &rates).unwrap();
    let mut solo_phrase = HubRuntime::load(&phrase, &rates).unwrap();

    // A deterministic loud modulated signal that exercises both
    // conditions.
    for i in 0..20_000u64 {
        let t = i as f64 / 8000.0;
        let v = if ((t * 4.0) as u64).is_multiple_of(2) {
            0.25 * (2.0 * std::f64::consts::PI * 300.0 * t).sin()
        } else if i % 2 == 0 {
            0.15
        } else {
            -0.15
        };
        let fused_wakes = fused.push_sample(SensorChannel::Mic, v).unwrap();
        let m = solo_music.push_sample(SensorChannel::Mic, v).unwrap();
        let p = solo_phrase.push_sample(SensorChannel::Mic, v).unwrap();
        let fused_music: Vec<_> = fused_wakes.iter().filter(|(i, _)| *i == 0).collect();
        let fused_phrase: Vec<_> = fused_wakes.iter().filter(|(i, _)| *i == 1).collect();
        assert_eq!(fused_music.len(), m.len(), "music mismatch at sample {i}");
        assert_eq!(fused_phrase.len(), p.len(), "phrase mismatch at sample {i}");
    }
}

#[test]
fn hub_tolerates_nan_dropouts_without_spurious_wakes() {
    // A sensor dropout (NaN samples) must neither panic nor wake.
    let program = sidewinder::apps::StepsApp::new().wake_condition();
    let mut hub = HubRuntime::load(&program, &ChannelRates::default()).unwrap();
    for _ in 0..100 {
        let wakes = hub.push_sample(SensorChannel::AccX, f64::NAN).unwrap();
        assert!(wakes.is_empty(), "NaN input must not satisfy thresholds");
    }
    // And the pipeline recovers once real data returns.
    let mut woke = false;
    for i in 0..200 {
        let v = 3.5 * (i as f64 * 0.2).sin();
        woke |= !hub.push_sample(SensorChannel::AccX, v).unwrap().is_empty();
    }
    assert!(woke, "pipeline must recover after a dropout");
}

#[test]
fn oracle_is_the_power_floor_for_every_app_on_a_shared_trace() {
    let trace = robot_run(&RobotRunConfig {
        duration: Micros::from_secs(300),
        idle_fraction: 0.5,
        rate_hz: 50.0,
        seed: 3,
    });
    let steps = sidewinder::apps::StepsApp::new();
    let transitions = sidewinder::apps::TransitionsApp::new();
    let headbutts = sidewinder::apps::HeadbuttsApp::new();
    let apps: [&dyn Application; 3] = [&steps, &transitions, &headbutts];
    for app in apps {
        let oracle = simulate(
            &trace,
            app,
            &Strategy::Oracle,
            &PhonePowerProfile::NEXUS4,
            &SimConfig::default(),
        )
        .unwrap();
        for strategy in [
            Strategy::AlwaysAwake,
            Strategy::HubWake {
                program: app.wake_condition(),
                hub_mw: app.wake_condition_hub_mw(),
                label: "Sw",
            },
        ] {
            let r = simulate(
                &trace,
                app,
                &strategy,
                &PhonePowerProfile::NEXUS4,
                &SimConfig::default(),
            )
            .unwrap();
            assert!(
                r.average_power_mw >= oracle.average_power_mw,
                "{}: {} beat the oracle",
                app.name(),
                strategy.label()
            );
        }
    }
}

#[test]
fn wake_conditions_fit_the_serial_link() {
    use sidewinder::hub::link::SerialLink;
    let link = SerialLink::NEXUS4_UART;
    for app in sidewinder::apps::accelerometer_apps()
        .iter()
        .chain(sidewinder::apps::audio_apps().iter())
    {
        let channels = app.wake_condition().channels();
        assert!(
            link.check_channels(&channels).is_ok(),
            "{} exceeds the UART budget",
            app.name()
        );
    }
}

#[test]
fn ground_truth_kinds_cover_all_applications() {
    // Every application's target kinds appear in the generators' labels.
    let robot = robot_run(&RobotRunConfig {
        duration: Micros::from_secs(600),
        idle_fraction: 0.1,
        rate_hz: 50.0,
        seed: 9,
    });
    for kind in [
        EventKind::Walking,
        EventKind::SitToStand,
        EventKind::StandToSit,
        EventKind::Headbutt,
        EventKind::Step,
    ] {
        assert!(
            robot.ground_truth().count_of(kind) > 0,
            "robot trace lacks {kind}"
        );
    }
}
