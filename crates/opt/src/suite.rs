//! Cross-application suite optimization.
//!
//! A hub runs many applications' wake conditions at once, and the
//! fusion gap (one merged runtime is only ~1.34x cheaper than N
//! separate ones) comes largely from duplicated front ends: several
//! apps windowing, filtering, and FFT-ing the same microphone channel
//! with the same parameters. [`optimize_suite`] optimizes each program
//! individually, then deduplicates whole programs *up to node-id
//! renaming* — two apps whose optimized conditions are structurally
//! identical share one interpreter instance, and each wake from the
//! shared instance fans out to every subscribed application.
//!
//! (Within one program, [`crate::passes::cse`] already shares identical
//! subgraphs; this module extends the same idea across program
//! boundaries, where the hub's unit of execution is the whole program.)

use crate::{optimize, OptOptions, OptReport};
use sidewinder_hub::runtime::ChannelRates;
use sidewinder_ir::{canonicalize_ids, AlgorithmKind, NodeId, Program, Source};
use std::collections::{BTreeMap, HashMap};

/// The result of optimizing a set of programs destined for one hub.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// Each input program, optimized (ids preserved where possible).
    pub programs: Vec<Program>,
    /// Per-program optimization reports, parallel to `programs`.
    pub reports: Vec<OptReport>,
    /// `assignment[i]` is the index in [`SuiteResult::unique`] that
    /// input `i` should execute — the wake fan-out table.
    pub assignment: Vec<usize>,
    /// The distinct programs actually worth running, canonicalized.
    pub unique: Vec<Program>,
}

impl SuiteResult {
    /// How many whole programs were deduplicated away.
    pub fn shared(&self) -> usize {
        self.programs.len() - self.unique.len()
    }

    /// Fuses the deduplicated survivors into one runnable program — the
    /// form a serving path (one hub, or every simulated hub of a fleet)
    /// actually executes after ingest-time optimization: optimize each
    /// submission, drop structural duplicates, then join what remains
    /// with `anyOf` so a wake from any constituent condition wakes the
    /// phone. Returns `None` when nothing was submitted.
    pub fn fused(&self) -> Option<Program> {
        if self.unique.is_empty() {
            None
        } else {
            Some(fuse_programs(&self.unique))
        }
    }
}

/// Merges several wake conditions into one IR program: each input is
/// renumbered into a disjoint id range, the individual `OUT` statements
/// are dropped, and the former `OUT` sources are joined by `anyOf`
/// (waking when *any* constituent condition wakes). A single input
/// passes through with its own `OUT` kept.
///
/// This is the textual-IR counterpart of the hub's runtime-level
/// fusion: once the conditions live in one program, [`crate::passes::cse`]
/// can merge the windows/filters/FFTs they share, which separate
/// runtime instances never could.
///
/// Total on malformed input: unmapped node references and missing `OUT`
/// statements are skipped, never panicked on.
pub fn fuse_programs(programs: &[Program]) -> Program {
    let mut fused = Program::new();
    let mut next = 1u32;
    let mut out_sources: Vec<Source> = Vec::new();
    for program in programs {
        let mut map: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        for (sources, id, kind) in program.nodes() {
            let fresh = NodeId(next);
            next += 1;
            map.insert(id, fresh);
            let sources = sources
                .iter()
                .map(|s| match s {
                    Source::Node(n) => Source::Node(*map.get(n).unwrap_or(n)),
                    Source::Channel(c) => Source::Channel(*c),
                })
                .collect();
            fused.push_node(sources, fresh, *kind);
        }
        if let Some(out) = program.out_source() {
            if let Some(&mapped) = map.get(&out) {
                out_sources.push(Source::Node(mapped));
            }
        }
    }
    match out_sources[..] {
        [] => {}
        [Source::Node(only)] => fused.push_out(only),
        _ => {
            let join = NodeId(next);
            fused.push_node(out_sources, join, AlgorithmKind::AnyOf);
            fused.push_out(join);
        }
    }
    fused
}

/// Optimizes every program and merges structural duplicates.
///
/// Digest-exact at the suite level whenever every per-program report is:
/// a deduplicated program's wakes are, bit for bit, the wakes each
/// subscriber would have seen from its own copy, because id renaming
/// touches no algorithm, parameter, or topology.
pub fn optimize_suite(
    programs: &[Program],
    rates: &ChannelRates,
    options: &OptOptions,
) -> SuiteResult {
    let mut optimized = Vec::with_capacity(programs.len());
    let mut reports = Vec::with_capacity(programs.len());
    for p in programs {
        let (q, r) = optimize(p, rates, options);
        optimized.push(q);
        reports.push(r);
    }
    let mut unique: Vec<Program> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut assignment = Vec::with_capacity(optimized.len());
    for q in &optimized {
        let canonical = canonicalize_ids(q);
        let key = canonical.to_string();
        let slot = match index.get(&key) {
            Some(&i) => i,
            None => {
                unique.push(canonical);
                index.insert(key, unique.len() - 1);
                unique.len() - 1
            }
        };
        assignment.push(slot);
    }
    SuiteResult {
        programs: optimized,
        reports,
        assignment,
        unique,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Program {
        text.parse().unwrap()
    }

    #[test]
    fn identical_conditions_share_one_program() {
        // The same condition written with different node ids.
        let a = parse(
            "ACC_X -> movingAvg(id=1, params={10});
             1 -> minThreshold(id=2, params={15});
             2 -> OUT;",
        );
        let b = parse(
            "ACC_X -> movingAvg(id=7, params={10});
             7 -> minThreshold(id=9, params={15});
             9 -> OUT;",
        );
        let suite = optimize_suite(&[a, b], &ChannelRates::default(), &OptOptions::default());
        assert_eq!(suite.unique.len(), 1);
        assert_eq!(suite.assignment, vec![0, 0]);
        assert_eq!(suite.shared(), 1);
        assert!(suite.unique[0].validate().is_ok());
    }

    #[test]
    fn optimization_can_reveal_sharing() {
        // Distinct as written — b carries a redundant identity stage —
        // but identical once optimized.
        let a = parse(
            "ACC_X -> movingAvg(id=1, params={10});
             1 -> minThreshold(id=2, params={15});
             2 -> OUT;",
        );
        let b = parse(
            "ACC_X -> movingAvg(id=1, params={10});
             1 -> expMovingAvg(id=2, params={1});
             2 -> minThreshold(id=3, params={15});
             3 -> OUT;",
        );
        assert_ne!(canonicalize_ids(&a), canonicalize_ids(&b));
        let suite = optimize_suite(&[a, b], &ChannelRates::default(), &OptOptions::default());
        assert_eq!(suite.unique.len(), 1);
        assert_eq!(suite.shared(), 1);
    }

    #[test]
    fn suite_fused_is_the_servable_join_of_the_unique_set() {
        let a = parse(
            "ACC_X -> movingAvg(id=1, params={10});
             1 -> minThreshold(id=2, params={15});
             2 -> OUT;",
        );
        // A renamed duplicate of `a` plus one genuinely distinct
        // condition: the fused serving program joins two uniques.
        let a2 = parse(
            "ACC_X -> movingAvg(id=4, params={10});
             4 -> minThreshold(id=8, params={15});
             8 -> OUT;",
        );
        let b = parse(
            "ACC_Y -> movingAvg(id=1, params={3});
             1 -> maxThreshold(id=2, params={-3});
             2 -> OUT;",
        );
        let suite = optimize_suite(
            &[a, a2, b],
            &ChannelRates::default(),
            &OptOptions::default(),
        );
        assert_eq!(suite.unique.len(), 2);
        let fused = suite.fused().expect("two unique programs fuse");
        assert!(fused.validate().is_ok());
        assert_eq!(fused, fuse_programs(&suite.unique));

        // Empty ingest: nothing to serve.
        let empty = optimize_suite(&[], &ChannelRates::default(), &OptOptions::default());
        assert!(empty.fused().is_none());
    }

    #[test]
    fn fusion_joins_conditions_under_any_of() {
        let a = parse(
            "ACC_X -> movingAvg(id=1, params={5});
             1 -> outsideThreshold(id=2, params={-2, 2});
             2 -> OUT;",
        );
        let b = parse(
            "ACC_Y -> movingAvg(id=1, params={3});
             1 -> maxThreshold(id=2, params={-3});
             2 -> OUT;",
        );
        let fused = fuse_programs(&[a.clone(), b]);
        assert!(fused.validate().is_ok());
        assert_eq!(fused.nodes().count(), 5, "2 + 2 nodes + anyOf join");
        let (_, _, kind) = fused.nodes().last().unwrap();
        assert_eq!(*kind, AlgorithmKind::AnyOf);

        // A single program passes through unchanged up to renumbering.
        let single = fuse_programs(std::slice::from_ref(&a));
        assert_eq!(canonicalize_ids(&single), canonicalize_ids(&a));

        assert_eq!(fuse_programs(&[]).len(), 0);
    }

    #[test]
    fn different_conditions_stay_separate() {
        let a = parse(
            "ACC_X -> movingAvg(id=1, params={10});
             1 -> minThreshold(id=2, params={15});
             2 -> OUT;",
        );
        let b = parse(
            "ACC_Y -> movingAvg(id=1, params={10});
             1 -> minThreshold(id=2, params={15});
             2 -> OUT;",
        );
        let suite = optimize_suite(&[a, b], &ChannelRates::default(), &OptOptions::default());
        assert_eq!(suite.unique.len(), 2);
        assert_eq!(suite.assignment, vec![0, 1]);
        assert_eq!(suite.shared(), 0);
    }
}
