//! The optimizer's rewrite passes.
//!
//! Each pass takes a *valid* program and returns `Some((rewritten, n))`
//! when it fired `n` times, or `None` when it has nothing to do — the
//! driver in the crate root loops the exact passes to a fixpoint and
//! runs the tolerance-pinned Goertzel pass once at the end.

pub mod cse;
pub mod dce;
pub mod gates;
pub mod goertzel;

use sidewinder_ir::{AlgorithmKind, NodeId, Program, Source};
use std::collections::BTreeMap;

/// How many consumers read each node, counting `OUT` as a consumer.
/// Nodes read on several ports of the same consumer count once per port.
pub(crate) fn consumer_counts(program: &Program) -> BTreeMap<NodeId, usize> {
    let mut counts = BTreeMap::new();
    for (sources, _, _) in program.nodes() {
        for s in sources {
            if let Source::Node(n) = s {
                *counts.entry(*n).or_insert(0) += 1;
            }
        }
    }
    if let Some(out) = program.out_source() {
        *counts.entry(out).or_insert(0) += 1;
    }
    counts
}

/// Sources and algorithm of each node, keyed by id.
pub(crate) fn node_info(program: &Program) -> BTreeMap<NodeId, (&[Source], &AlgorithmKind)> {
    let mut info = BTreeMap::new();
    for (sources, id, kind) in program.nodes() {
        info.insert(id, (sources, kind));
    }
    info
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_counts_as_a_consumer() {
        let p: Program = "ACC_X -> movingAvg(id=1, params={10});
             1 -> minThreshold(id=2, params={15});
             1 -> maxThreshold(id=3, params={30});
             2,3 -> allOf(id=4);
             4 -> OUT;"
            .parse()
            .unwrap();
        let counts = consumer_counts(&p);
        assert_eq!(counts.get(&NodeId(1)), Some(&2));
        assert_eq!(counts.get(&NodeId(2)), Some(&1));
        assert_eq!(counts.get(&NodeId(4)), Some(&1), "OUT reads node 4");
    }
}
