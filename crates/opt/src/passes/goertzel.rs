//! Goertzel strength reduction for narrow-band spectral gates.
//!
//! The shape this pass looks for is the siren detector's:
//!
//! ```text
//! window -> highPass/lowPass* -> fft -> spectralMagnitude -> max
//!                                                         |- dominantFreq
//!                                                         |- dominantRatio
//! ```
//!
//! The filters are FFT-based bin masks (`fft -> zero out-of-band bins ->
//! ifft`), so re-transforming the filtered signal reproduces the masked
//! spectrum and the chain's `max` is exactly the largest magnitude among
//! the DFT bins whose center frequency the filters keep (out-of-band
//! bins carry only ifft/fft rounding residue, ~1e-13 relative). The
//! whole chain is therefore one question — "how strong is the strongest
//! in-band bin?" — which the Goertzel algorithm answers per bin in
//! `O(N)` without ever materializing a spectrum. A `dominantFreq` head
//! asks *which* bin that is (its frequency) and a `dominantRatio` head
//! asks how it compares to the mean bin magnitude; both are in-band
//! reductions the same probes answer, so all three heads strength-reduce
//! to a goertzel-family node (`goertzel`, `goertzelFreq`,
//! `goertzelRatio`).
//!
//! The rewrite replaces the head node in place with its goertzel-family
//! counterpart reading the window directly, and deletes the
//! filter/FFT/magnitude chain. Band edges are inclusive on both sides,
//! mirroring the filters' bin masks, and the upper edge is capped at
//! Nyquist (the one-sided magnitude never sees higher bins, and the
//! goertzel nodes need a finite edge). The dominant-feature heads skip
//! the DC bin (`mags[1..]`), so their rewrites additionally require a
//! band with `lo > 0` — in practice a high-pass filter in the chain.
//!
//! Two guards keep it honest:
//!
//! * **Cost gate** — probing K bins costs `K·O(N)` against the chain's
//!   `O(N log N)`; the rewrite is kept only if the cost model's total
//!   flops/s strictly drops. Wide bands (the paper's 750 Hz–Nyquist
//!   siren band is ~417 bins at 1024 points) are correctly left alone.
//! * **Tolerance tier** — the Goertzel recurrence evaluates the same
//!   DFT sums in a different order, so results match the chain only to
//!   floating-point rounding. The driver downgrades the program's
//!   equivalence tier to [`crate::EquivalenceTier::TolerancePinned`],
//!   and the differential harness checks detection parity within a
//!   pinned relative tolerance instead of bit equality.

use super::{consumer_counts, node_info};
use sidewinder_hub::cost::PipelineCost;
use sidewinder_hub::runtime::ChannelRates;
use sidewinder_ir::rewrite::Rewrite;
use sidewinder_ir::{AlgorithmKind, NodeId, Program, Source, StatFn};
use sidewinder_lint::absint::Analysis;
use sidewinder_lint::analyze;
use std::collections::BTreeMap;

pub(crate) fn run(program: &Program, rates: &ChannelRates) -> Option<(Program, usize)> {
    let mut current = program.clone();
    let mut applied = 0;
    while let Some(next) = reduce_one(&current, rates) {
        current = next;
        applied += 1;
    }
    if applied == 0 {
        None
    } else {
        Some((current, applied))
    }
}

/// Which spectral reduction sits at the head of the chain — each has a
/// strength-reduced goertzel-family counterpart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Head {
    /// `max` → [`AlgorithmKind::Goertzel`].
    Max,
    /// `dominantFreq` → [`AlgorithmKind::GoertzelFreq`].
    Freq,
    /// `dominantRatio` → [`AlgorithmKind::GoertzelRatio`].
    Ratio,
}

impl Head {
    /// The dominant-feature heads skip the DC bin (`mags[1..]`), so
    /// their probe grids must too.
    fn skips_dc(self) -> bool {
        !matches!(self, Head::Max)
    }

    /// The replacement node for a band of `[lo_hz, hi_hz]`.
    fn replacement(self, lo_hz: f64, hi_hz: f64) -> AlgorithmKind {
        match self {
            Head::Max => AlgorithmKind::Goertzel { lo_hz, hi_hz },
            Head::Freq => AlgorithmKind::GoertzelFreq { lo_hz, hi_hz },
            Head::Ratio => AlgorithmKind::GoertzelRatio { lo_hz, hi_hz },
        }
    }
}

/// Applies the first cost-improving strength reduction, if any.
fn reduce_one(program: &Program, rates: &ChannelRates) -> Option<Program> {
    let analysis = analyze(program, rates);
    let consumers = consumer_counts(program);
    let info = node_info(program);
    let before = PipelineCost::analyze(program, rates).total_flops_per_second();
    for (sources, id, kind) in program.nodes() {
        let head = match kind {
            AlgorithmKind::Stat(StatFn::Max) => Head::Max,
            AlgorithmKind::DominantFreq => Head::Freq,
            AlgorithmKind::DominantRatio => Head::Ratio,
            _ => continue,
        };
        let Some(rw) = candidate(&analysis, &consumers, &info, sources, id, head) else {
            continue;
        };
        let rewritten = rw.apply(program);
        if rewritten.validate().is_err() {
            continue;
        }
        let after = PipelineCost::analyze(&rewritten, rates).total_flops_per_second();
        if after < before {
            return Some(rewritten);
        }
    }
    None
}

fn single(consumers: &BTreeMap<NodeId, usize>, id: NodeId) -> bool {
    consumers.get(&id).copied().unwrap_or(0) == 1
}

/// Walks upward from the head node (`max`, `dominantFreq`, or
/// `dominantRatio`) through `spectralMagnitude -> fft -> filters* ->
/// window` and builds the replacement edit script. Every intermediate
/// node must have this chain as its only consumer (the window itself may
/// fan out — it survives).
fn candidate(
    analysis: &Analysis,
    consumers: &BTreeMap<NodeId, usize>,
    info: &BTreeMap<NodeId, (&[Source], &AlgorithmKind)>,
    max_sources: &[Source],
    max_id: NodeId,
    head: Head,
) -> Option<Rewrite> {
    let [Source::Node(mag)] = max_sources else {
        return None;
    };
    let mag = *mag;
    let (mag_sources, mag_kind) = info.get(&mag)?;
    if !matches!(mag_kind, AlgorithmKind::SpectralMagnitude) || !single(consumers, mag) {
        return None;
    }
    let [Source::Node(fft)] = *mag_sources else {
        return None;
    };
    let fft = *fft;
    let (fft_sources, fft_kind) = info.get(&fft)?;
    if !matches!(fft_kind, AlgorithmKind::Fft) || !single(consumers, fft) {
        return None;
    }

    let mut lo = 0.0f64;
    let mut hi = f64::INFINITY;
    let mut removed = vec![mag, fft];
    let mut cursor = *fft_sources.first()?;
    loop {
        let Source::Node(nid) = cursor else {
            return None;
        };
        let (n_sources, n_kind) = info.get(&nid)?;
        match n_kind {
            AlgorithmKind::HighPass { cutoff_hz } if single(consumers, nid) => {
                lo = lo.max(*cutoff_hz);
                removed.push(nid);
                cursor = *n_sources.first()?;
            }
            AlgorithmKind::LowPass { cutoff_hz } if single(consumers, nid) => {
                hi = hi.min(*cutoff_hz);
                removed.push(nid);
                cursor = *n_sources.first()?;
            }
            AlgorithmKind::Window { size, .. } => {
                let n = *size as usize;
                let base = analysis.fact(nid)?.base_rate_hz;
                if !base.is_finite() || base <= 0.0 || n == 0 {
                    return None;
                }
                let hi = hi.min(base / 2.0);
                if lo > hi {
                    return None; // dead band — SW001's finding, not ours
                }
                // The dominant-feature heads skip the DC bin, so only a
                // band that already excludes DC (a high-pass with a
                // positive cutoff) has an exactly matching probe grid.
                if head.skips_dc() && lo <= 0.0 {
                    return None;
                }
                // The band must keep at least one probeable bin, or the
                // rewrite would turn "max over nothing" semantics into
                // silence differently than the chain does.
                let bin_hz = base / n as f64;
                let first_bin = usize::from(head.skips_dc());
                let in_band = (first_bin..=n / 2).any(|k| {
                    let f = k as f64 * bin_hz;
                    lo <= f && f <= hi
                });
                if !in_band {
                    return None;
                }
                let mut rw = Rewrite::new();
                rw.replace(max_id, vec![Source::Node(nid)], head.replacement(lo, hi));
                for r in removed {
                    rw.remove(r);
                }
                return Some(rw);
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates() -> ChannelRates {
        ChannelRates::default()
    }

    fn parse(text: &str) -> Program {
        text.parse().unwrap()
    }

    const NARROW: &str = "MIC -> window(id=1, params={1024, 1024, 0});
         1 -> highPass(id=2, params={980});
         2 -> lowPass(id=3, params={1020});
         3 -> fft(id=4);
         4 -> spectralMagnitude(id=5);
         5 -> max(id=6);
         6 -> minThreshold(id=7, params={25});
         7 -> OUT;";

    #[test]
    fn narrow_band_reduces_to_goertzel() {
        let (q, n) = run(&parse(NARROW), &rates()).unwrap();
        assert_eq!(n, 1);
        assert!(q.validate().is_ok());
        assert_eq!(q.nodes().count(), 3);
        let (sources, id, kind) = q.nodes().nth(1).unwrap();
        assert_eq!(id, NodeId(6), "max is replaced in place");
        assert_eq!(sources, &[Source::Node(NodeId(1))]);
        assert_eq!(
            *kind,
            AlgorithmKind::Goertzel {
                lo_hz: 980.0,
                hi_hz: 1020.0
            }
        );
    }

    #[test]
    fn narrow_band_dominant_freq_reduces_to_goertzel_freq() {
        let p = parse(
            "MIC -> window(id=1, params={1024, 1024, 0});
             1 -> highPass(id=2, params={980});
             2 -> lowPass(id=3, params={1020});
             3 -> fft(id=4);
             4 -> spectralMagnitude(id=5);
             5 -> dominantFreq(id=6);
             6 -> bandThreshold(id=7, params={990, 1010});
             7 -> OUT;",
        );
        let (q, n) = run(&p, &rates()).unwrap();
        assert_eq!(n, 1);
        assert!(q.validate().is_ok());
        assert_eq!(q.nodes().count(), 3);
        let (sources, id, kind) = q.nodes().nth(1).unwrap();
        assert_eq!(id, NodeId(6), "dominantFreq is replaced in place");
        assert_eq!(sources, &[Source::Node(NodeId(1))]);
        assert_eq!(
            *kind,
            AlgorithmKind::GoertzelFreq {
                lo_hz: 980.0,
                hi_hz: 1020.0
            }
        );
    }

    #[test]
    fn narrow_band_dominant_ratio_reduces_to_goertzel_ratio() {
        let p = parse(
            "MIC -> window(id=1, params={1024, 1024, 0});
             1 -> highPass(id=2, params={980});
             2 -> lowPass(id=3, params={1020});
             3 -> fft(id=4);
             4 -> spectralMagnitude(id=5);
             5 -> dominantRatio(id=6);
             6 -> minThreshold(id=7, params={3});
             7 -> OUT;",
        );
        let (q, n) = run(&p, &rates()).unwrap();
        assert_eq!(n, 1);
        assert!(q
            .nodes()
            .any(|(_, _, k)| matches!(k, AlgorithmKind::GoertzelRatio { .. })));
    }

    #[test]
    fn dominant_heads_require_a_dc_free_band() {
        // No high-pass: the band starts at DC, which the dominant chains
        // skip, so there is no exactly matching probe grid. (A plain
        // `max` head over the same shape is only stopped by the cost
        // gate, not this guard.)
        let p = parse(
            "MIC -> window(id=1, params={1024, 1024, 0});
             1 -> lowPass(id=2, params={200});
             2 -> fft(id=3);
             3 -> spectralMagnitude(id=4);
             4 -> dominantFreq(id=5);
             5 -> bandThreshold(id=6, params={50, 150});
             6 -> OUT;",
        );
        assert!(run(&p, &rates()).is_none());
    }

    #[test]
    fn wide_band_fails_the_cost_gate() {
        let p = parse(
            "MIC -> window(id=1, params={1024, 1024, 0});
             1 -> highPass(id=2, params={750});
             2 -> fft(id=3);
             3 -> spectralMagnitude(id=4);
             4 -> max(id=5);
             5 -> minThreshold(id=6, params={25});
             6 -> OUT;",
        );
        assert!(run(&p, &rates()).is_none());
    }

    #[test]
    fn shared_spectrum_blocks_the_rewrite() {
        // The magnitude vector also feeds a dominantRatio branch, so the
        // chain cannot be deleted out from under it.
        let p = parse(
            "MIC -> window(id=1, params={1024, 1024, 0});
             1 -> highPass(id=2, params={980});
             2 -> lowPass(id=3, params={1020});
             3 -> fft(id=4);
             4 -> spectralMagnitude(id=5);
             5 -> max(id=6);
             5 -> dominantRatio(id=8);
             8 -> minThreshold(id=9, params={3});
             6 -> minThreshold(id=7, params={25});
             7,9 -> allOf(id=10);
             10 -> OUT;",
        );
        assert!(run(&p, &rates()).is_none());
    }

    #[test]
    fn shared_window_is_fine() {
        // The window fans out to a ZCR branch; it survives the rewrite,
        // so fan-out at the window does not block it.
        let p = parse(
            "MIC -> window(id=1, params={1024, 1024, 0});
             1 -> highPass(id=2, params={980});
             2 -> lowPass(id=3, params={1020});
             3 -> fft(id=4);
             4 -> spectralMagnitude(id=5);
             5 -> max(id=6);
             6 -> minThreshold(id=7, params={25});
             1 -> zcr(id=8);
             8 -> minThreshold(id=9, params={0.1});
             7,9 -> allOf(id=10);
             10 -> OUT;",
        );
        let (q, n) = run(&p, &rates()).unwrap();
        assert_eq!(n, 1);
        assert!(q.validate().is_ok());
        assert!(q
            .nodes()
            .any(|(_, _, k)| matches!(k, AlgorithmKind::Goertzel { .. })));
        assert!(q.nodes().any(|(_, _, k)| matches!(k, AlgorithmKind::Zcr)));
    }

    #[test]
    fn empty_band_is_left_alone() {
        // 100–101 Hz at 8 kHz / 64 points: bins are 125 Hz apart, the
        // band holds no bin center.
        let p = parse(
            "MIC -> window(id=1, params={64, 64, 0});
             1 -> highPass(id=2, params={100});
             2 -> lowPass(id=3, params={101});
             3 -> fft(id=4);
             4 -> spectralMagnitude(id=5);
             5 -> max(id=6);
             6 -> minThreshold(id=7, params={25});
             7 -> OUT;",
        );
        assert!(run(&p, &rates()).is_none());
    }
}
