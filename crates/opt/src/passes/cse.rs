//! Common-subexpression elimination.
//!
//! Two nodes with equal [`StructuralKey`]s — same algorithm, same exact
//! parameter bits, same sources in port order — compute the same
//! function of the same input stream, so their state trajectories and
//! emissions are identical sample for sample. The pass keeps the first
//! occurrence (statement order) and rewires every consumer of a
//! duplicate to it. Sources are canonicalized through the alias map as
//! the scan proceeds, so duplicates whose inputs are *themselves*
//! duplicates merge in a single round.
//!
//! This is what makes cross-application fusion pay: N programs merged
//! onto one hub typically window, filter, and FFT the same microphone
//! channel with the same parameters, and after CSE they share one copy
//! of that front end.
//!
//! Digest-exact: consumers receive the same values with the same
//! sequence tags from the surviving twin as they did from the deleted
//! one. Stateful nodes (windows, averages, `sustained`) are safe to
//! merge because identical inputs drive identical state.

use sidewinder_ir::rewrite::{Rewrite, StructuralKey};
use sidewinder_ir::{NodeId, Program, Source};
use std::collections::{BTreeMap, HashMap};

pub(crate) fn run(program: &Program) -> Option<(Program, usize)> {
    let mut seen: HashMap<StructuralKey, NodeId> = HashMap::new();
    let mut alias: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    let mut rw = Rewrite::new();
    let mut merged = 0;
    for (sources, id, kind) in program.nodes() {
        let canonical: Vec<Source> = sources
            .iter()
            .map(|s| match s {
                Source::Node(n) => Source::Node(*alias.get(n).unwrap_or(n)),
                Source::Channel(c) => Source::Channel(*c),
            })
            .collect();
        let key = StructuralKey::of(&canonical, kind);
        match seen.get(&key) {
            Some(&first) => {
                alias.insert(id, first);
                rw.redirect(id, Source::Node(first));
                rw.remove(id);
                merged += 1;
            }
            None => {
                seen.insert(key, id);
            }
        }
    }
    if merged == 0 {
        None
    } else {
        Some((rw.apply(program), merged))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Program {
        text.parse().unwrap()
    }

    #[test]
    fn transitive_duplicates_merge_in_one_round() {
        // Two identical two-stage chains: the second stage only matches
        // once its source has been aliased to the first chain.
        let p = parse(
            "ACC_X -> movingAvg(id=1, params={10});
             1 -> minThreshold(id=2, params={5});
             ACC_X -> movingAvg(id=3, params={10});
             3 -> minThreshold(id=4, params={5});
             2,4 -> allOf(id=5);
             5 -> OUT;",
        );
        let (q, merged) = run(&p).unwrap();
        assert_eq!(merged, 2);
        assert!(q.validate().is_ok());
        let (sources, _, _) = q.nodes().last().unwrap();
        assert_eq!(sources, [Source::Node(NodeId(2)), Source::Node(NodeId(2))]);
    }

    #[test]
    fn parameter_bits_must_match_exactly() {
        let p = parse(
            "ACC_X -> movingAvg(id=1, params={10});
             ACC_X -> movingAvg(id=2, params={11});
             1,2 -> vectorMagnitude(id=3);
             3 -> minThreshold(id=4, params={15});
             4 -> OUT;",
        );
        assert!(run(&p).is_none());
    }

    #[test]
    fn different_channels_never_merge() {
        let p = parse(
            "ACC_X -> movingAvg(id=1, params={10});
             ACC_Y -> movingAvg(id=2, params={10});
             1,2 -> vectorMagnitude(id=3);
             3 -> minThreshold(id=4, params={15});
             4 -> OUT;",
        );
        assert!(run(&p).is_none());
    }
}
