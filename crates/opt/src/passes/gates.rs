//! Threshold-gate fusion (interval constant folding).
//!
//! Admission-control gates forward their input unchanged when it lies in
//! a pass interval: `minThreshold(t)` passes `[t, +inf)`,
//! `maxThreshold(t)` passes `(-inf, t]`, `bandThreshold(lo, hi)` passes
//! `[lo, hi]`. Two adjacent gates therefore compose into one whose pass
//! set is the *intersection* of intervals — folding the downstream
//! gate's decision into the upstream one at compile time.
//!
//! Digest-exact: both gates forward the value bit-unchanged, both reject
//! NaN (every comparison with NaN is false), and the fused gate admits
//! exactly the intersection, so the surviving emissions are identical in
//! sequence tag and bit pattern.
//!
//! `outsideThreshold` is excluded (its pass set is not an interval, so
//! intersections need a union domain), and an empty intersection is
//! deliberately left alone — a provably-dead program is SW001's story to
//! tell the developer, not something to silently "optimize".

use super::{consumer_counts, node_info};
use sidewinder_ir::rewrite::Rewrite;
use sidewinder_ir::{AlgorithmKind, NodeId, Program, Source};
use std::collections::BTreeSet;

/// The pass interval of an interval-shaped gate.
fn interval(kind: &AlgorithmKind) -> Option<(f64, f64)> {
    match kind {
        AlgorithmKind::MinThreshold { threshold } => Some((*threshold, f64::INFINITY)),
        AlgorithmKind::MaxThreshold { threshold } => Some((f64::NEG_INFINITY, *threshold)),
        AlgorithmKind::BandThreshold { lo, hi } => Some((*lo, *hi)),
        _ => None,
    }
}

/// The cheapest gate whose pass set is `[lo, hi]`.
fn gate_for(lo: f64, hi: f64) -> Option<AlgorithmKind> {
    match (lo.is_finite(), hi.is_finite()) {
        (true, true) => Some(AlgorithmKind::BandThreshold { lo, hi }),
        (true, false) => Some(AlgorithmKind::MinThreshold { threshold: lo }),
        (false, true) => Some(AlgorithmKind::MaxThreshold { threshold: hi }),
        // (-inf, +inf) cannot arise from intersecting two real gates.
        (false, false) => None,
    }
}

pub(crate) fn run(program: &Program) -> Option<(Program, usize)> {
    let consumers = consumer_counts(program);
    let info = node_info(program);
    let out = program.out_source();
    let mut rw = Rewrite::new();
    let mut touched: BTreeSet<NodeId> = BTreeSet::new();
    let mut fused = 0;
    for (sources, id, kind) in program.nodes() {
        let Some((lo2, hi2)) = interval(kind) else {
            continue;
        };
        let [Source::Node(up)] = sources else {
            continue;
        };
        let up = *up;
        // One fusion per node per round; the driver's fixpoint loop
        // collapses longer gate chains across rounds.
        if touched.contains(&id) || touched.contains(&up) {
            continue;
        }
        let Some((up_sources, up_kind)) = info.get(&up) else {
            continue;
        };
        let Some((lo1, hi1)) = interval(up_kind) else {
            continue;
        };
        // The upstream gate must feed only this gate (and not OUT), or
        // its other consumers would lose their filtered stream.
        if consumers.get(&up).copied().unwrap_or(0) != 1 || Some(up) == out {
            continue;
        }
        if up_sources.len() != 1 {
            continue;
        }
        let up_source = up_sources[0];
        let lo = lo1.max(lo2);
        let hi = hi1.min(hi2);
        if lo > hi {
            continue; // provably dead — SW001 reports it, we keep it
        }
        let Some(fused_kind) = gate_for(lo, hi) else {
            continue;
        };
        rw.replace(id, vec![up_source], fused_kind);
        rw.remove(up);
        touched.insert(id);
        touched.insert(up);
        fused += 1;
    }
    if fused == 0 {
        None
    } else {
        Some((rw.apply(program), fused))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Program {
        text.parse().unwrap()
    }

    #[test]
    fn min_then_max_becomes_band() {
        let p = parse(
            "ACC_X -> movingAvg(id=1, params={10});
             1 -> minThreshold(id=2, params={5});
             2 -> maxThreshold(id=3, params={12});
             3 -> OUT;",
        );
        let (q, n) = run(&p).unwrap();
        assert_eq!(n, 1);
        assert!(q.validate().is_ok());
        let (_, id, kind) = q.nodes().last().unwrap();
        assert_eq!(id, NodeId(3));
        assert_eq!(*kind, AlgorithmKind::BandThreshold { lo: 5.0, hi: 12.0 });
    }

    #[test]
    fn redundant_same_direction_gates_collapse() {
        // min(5) then min(8): the intersection is [8, inf).
        let p = parse(
            "ACC_X -> movingAvg(id=1, params={10});
             1 -> minThreshold(id=2, params={5});
             2 -> minThreshold(id=3, params={8});
             3 -> OUT;",
        );
        let (q, _) = run(&p).unwrap();
        let (_, _, kind) = q.nodes().last().unwrap();
        assert_eq!(*kind, AlgorithmKind::MinThreshold { threshold: 8.0 });
    }

    #[test]
    fn empty_intersection_is_left_for_the_linter() {
        let p = parse(
            "ACC_X -> minThreshold(id=1, params={10});
             1 -> maxThreshold(id=2, params={5});
             2 -> OUT;",
        );
        assert!(run(&p).is_none());
    }

    #[test]
    fn fan_out_blocks_fusion() {
        // Gate 2 feeds both gate 3 and gate 4; fusing 2 into 3 would
        // change what 4 sees.
        let p = parse(
            "ACC_X -> minThreshold(id=2, params={5});
             2 -> maxThreshold(id=3, params={12});
             2 -> maxThreshold(id=4, params={20});
             3,4 -> anyOf(id=5);
             5 -> OUT;",
        );
        assert!(run(&p).is_none());
    }

    #[test]
    fn chain_of_three_fuses_fully_across_rounds() {
        let p = parse(
            "ACC_X -> minThreshold(id=1, params={5});
             1 -> maxThreshold(id=2, params={12});
             2 -> minThreshold(id=3, params={6});
             3 -> OUT;",
        );
        let (q1, n1) = run(&p).unwrap();
        assert_eq!(n1, 1);
        let (q2, n2) = run(&q1).unwrap();
        assert_eq!(n2, 1);
        assert_eq!(q2.nodes().count(), 1);
        let (_, _, kind) = q2.nodes().last().unwrap();
        assert_eq!(*kind, AlgorithmKind::BandThreshold { lo: 6.0, hi: 12.0 });
        assert!(run(&q2).is_none());
    }
}
