//! Dead-node elimination.
//!
//! The linter's SW003 redundancy predicate ([`sidewinder_lint::facts`])
//! identifies nodes that provably forward every value unchanged —
//! 1-sample moving averages, `expMovingAvg` with `alpha = 1`,
//! single-arrival `sustained` nodes, and gates whose pass set covers the
//! whole input interval. Here the same predicate becomes a transform:
//! every bypassable redundant node is deleted and its consumers rewired
//! to its source. Because the redirect map is exactly the set of
//! lint-verified identities, a node this pass deletes is exactly one
//! SW003 would have flagged — that correspondence is unit-tested from
//! both sides.
//!
//! Digest-exact: a bypassed node emits its input value with its input's
//! sequence tag, so the wake stream is bit-identical. (The lone
//! documented corner is `expMovingAvg` with `alpha = 1`, which maps an
//! incoming `-0.0` to `+0.0` once warm; the bypass is the mathematically
//! faithful identity — see `lint::facts::Redundancy::bypassable`.)
//!
//! `OUT` must name a node, so when the entire chain above `OUT`
//! dissolves into a raw channel the node closest to `OUT` is kept.

use sidewinder_hub::runtime::ChannelRates;
use sidewinder_ir::rewrite::Rewrite;
use sidewinder_ir::{NodeId, Program, Source};
use sidewinder_lint::{analyze, redundancy};
use std::collections::BTreeMap;

pub(crate) fn run(program: &Program, rates: &ChannelRates) -> Option<(Program, usize)> {
    let analysis = analyze(program, rates);
    let mut bypass: BTreeMap<NodeId, Source> = BTreeMap::new();
    for (sources, id, _) in program.nodes() {
        // Only single-input nodes have an unambiguous "the" source to
        // bypass to; every redundancy the predicate reports is one.
        if sources.len() != 1 {
            continue;
        }
        let Some(fact) = analysis.fact(id) else {
            continue;
        };
        let Some(r) = redundancy(fact) else {
            continue;
        };
        if !r.bypassable() {
            continue;
        }
        bypass.insert(id, sources[0]);
    }

    // Keep the program rooted: if OUT's whole upstream chain of
    // identities resolves to a channel, un-bypass the node OUT names.
    // This must be checked after chain resolution — with
    // `CH -> a -> b -> OUT` and both a, b redundant, removing only b's
    // bypass is what keeps OUT on a node.
    if let Some(out) = program.out_source() {
        if bypass.contains_key(&out) && matches!(resolve(&bypass, out), Source::Channel(_)) {
            bypass.remove(&out);
        }
    }
    if bypass.is_empty() {
        return None;
    }

    let mut rw = Rewrite::new();
    for (&id, &src) in &bypass {
        rw.redirect(id, src);
        rw.remove(id);
    }
    Some((rw.apply(program), bypass.len()))
}

/// Resolves a node through the bypass chain, bounded against cycles.
fn resolve(bypass: &BTreeMap<NodeId, Source>, start: NodeId) -> Source {
    let mut current = Source::Node(start);
    for _ in 0..=bypass.len() {
        match current {
            Source::Node(id) => match bypass.get(&id) {
                Some(next) => current = *next,
                None => return current,
            },
            Source::Channel(_) => return current,
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidewinder_lint::{lint_program, LintCode};

    fn rates() -> ChannelRates {
        ChannelRates::default()
    }

    #[test]
    fn every_deleted_node_is_an_sw003_finding() {
        // The pass and the lint must agree: optimize deletes exactly
        // the redundant-node set SW003 reports (minus non-bypassable
        // shapes and the OUT backstop).
        let p: Program = "ACC_X -> movingAvg(id=1, params={1});
             1 -> expMovingAvg(id=2, params={1});
             2 -> sustained(id=3, params={1, 10});
             3 -> minThreshold(id=4, params={15});
             4 -> OUT;"
            .parse()
            .unwrap();
        let report = lint_program(&p, &rates());
        let flagged: Vec<NodeId> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == LintCode::RedundantNode)
            .filter_map(|d| d.node)
            .collect();
        let (optimized, removed) = run(&p, &rates()).unwrap();
        let kept: Vec<NodeId> = optimized.nodes().map(|(_, id, _)| id).collect();
        assert_eq!(removed, flagged.len());
        for id in &flagged {
            assert!(!kept.contains(id), "lint flagged {id:?}, pass kept it");
        }
        assert_eq!(kept, vec![NodeId(4)]);
    }

    #[test]
    fn one_sample_window_is_flagged_but_never_deleted() {
        // SW003 reports a 1-sample window, but bypassing it would retype
        // the edge (Vector -> Scalar), so the pass must leave it alone.
        let p: Program = "MIC -> window(id=1, params={1, 1, 0});
             1 -> max(id=2);
             2 -> minThreshold(id=3, params={25});
             3 -> OUT;"
            .parse()
            .unwrap();
        assert!(run(&p, &rates()).is_none());
    }

    #[test]
    fn filterless_gate_is_removed() {
        // ZCR emits in [0, 1]; a minThreshold at -5 filters nothing.
        let p: Program = "MIC -> window(id=1, params={256, 256, 0});
             1 -> zcr(id=2);
             2 -> minThreshold(id=3, params={-5});
             3 -> maxThreshold(id=4, params={0.5});
             4 -> OUT;"
            .parse()
            .unwrap();
        let (optimized, removed) = run(&p, &rates()).unwrap();
        assert_eq!(removed, 1);
        assert!(optimized.validate().is_ok());
        assert!(!optimized.nodes().any(|(_, id, _)| id == NodeId(3)));
    }

    #[test]
    fn clean_program_reports_nothing() {
        let p: Program = "ACC_X -> movingAvg(id=1, params={10});
             1 -> minThreshold(id=2, params={15});
             2 -> OUT;"
            .parse()
            .unwrap();
        assert!(run(&p, &rates()).is_none());
    }
}
