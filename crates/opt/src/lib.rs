//! `sidewinder-opt`: an optimizing compiler for Sidewinder IR programs.
//!
//! The hub interprets wake-up conditions exactly as applications wrote
//! them, and applications write them for clarity, not for the MCU's
//! flop budget. This crate closes that gap with a small pass framework
//! over the IR graph, reusing the linter's abstract-interpretation
//! facts ([`sidewinder_lint::absint`]) as its analysis layer:
//!
//! * **Dead-node elimination** ([`passes::dce`]) — the SW003 redundancy
//!   predicate ([`sidewinder_lint::facts`]) becomes a transform: no-op
//!   averages, pass-everything gates, and single-arrival `sustained`
//!   nodes are deleted and their consumers rewired; a closing liveness
//!   sweep drops anything no longer feeding `OUT`.
//! * **Gate fusion / constant folding** ([`passes::gates`]) — adjacent
//!   threshold gates compose into one gate whose pass set is the
//!   intersection of intervals. Statically-known scalar subgraphs fold
//!   through the same machinery: the interval domain's singleton
//!   intervals decide a downstream gate (`passes_all`/`passes_none`),
//!   which dead-node elimination then removes — the IR has no literal
//!   constant node, so a folded decision *is* a deleted gate.
//! * **Common-subexpression elimination** ([`passes::cse`]) — nodes
//!   with equal structural keys (algorithm + exact parameter bits +
//!   canonicalized sources, in port order) are merged, so N programs
//!   fused onto one hub share identical windows, filters, and FFTs.
//!   [`optimize_suite`] extends this across applications by
//!   deduplicating whole optimized programs up to id renaming.
//! * **Goertzel strength reduction** ([`passes::goertzel`]) — a
//!   narrow-band spectral chain (`window → filters → fft →
//!   spectralMagnitude` feeding `max`, `dominantFreq`, or
//!   `dominantRatio`) becomes a single goertzel-family probe node
//!   (`goertzel`, `goertzelFreq`, `goertzelRatio`) when the cost model
//!   says probing the in-band bins is cheaper than the filter + FFT
//!   chain.
//!
//! # Equivalence tiers
//!
//! Every pass carries one of two equivalence guarantees, recorded in
//! [`OptReport::tier`]:
//!
//! * [`EquivalenceTier::DigestExact`] — dead-node elimination, gate
//!   fusion, and CSE replay *bit-identically*: the optimized program's
//!   wake sequence (sequence tags and `f64` bit patterns) equals the
//!   original's on every trace. The differential harness enforces this
//!   with FNV digests over `(seq, value.to_bits())`.
//! * [`EquivalenceTier::TolerancePinned`] — the Goertzel rewrite
//!   evaluates the *same* DFT bins by a different recurrence, so values
//!   agree only to floating-point rounding (and out-of-band filter
//!   residue on the order of 1e-13 relative). The harness pins a
//!   relative tolerance instead of bit equality and requires detection
//!   parity away from the threshold boundary.
//!
//! The optimizer is *total*: invalid or malformed programs are returned
//! unchanged (never a panic), and a final validation backstop returns
//! the original program if a pass ever produced something invalid.

pub mod passes;
pub mod suite;

pub use suite::{fuse_programs, optimize_suite, SuiteResult};

use sidewinder_hub::cost::PipelineCost;
use sidewinder_hub::runtime::ChannelRates;
use sidewinder_ir::rewrite::{live_from_out, Rewrite};
use sidewinder_ir::Program;

/// How aggressively to rewrite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptLevel {
    /// Only digest-exact passes: dead-node elimination, gate fusion,
    /// CSE. The optimized program replays bit-identically.
    Exact,
    /// Exact passes plus Goertzel strength reduction, which is
    /// tolerance-pinned rather than bit-exact.
    #[default]
    Aggressive,
}

/// Optimizer configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct OptOptions {
    /// The pass set to run.
    pub level: OptLevel,
}

impl OptOptions {
    /// Only digest-exact passes.
    pub fn exact() -> OptOptions {
        OptOptions {
            level: OptLevel::Exact,
        }
    }

    /// All passes, including the tolerance-pinned Goertzel rewrite.
    pub fn aggressive() -> OptOptions {
        OptOptions {
            level: OptLevel::Aggressive,
        }
    }
}

/// The equivalence guarantee an optimized program carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EquivalenceTier {
    /// Bit-identical wake sequences (seq and value bits) on every trace.
    DigestExact,
    /// Same wake cadence; values agree within a pinned relative
    /// tolerance, so detections match except exactly at a threshold
    /// boundary.
    TolerancePinned,
}

impl std::fmt::Display for EquivalenceTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EquivalenceTier::DigestExact => write!(f, "digest-exact"),
            EquivalenceTier::TolerancePinned => write!(f, "tolerance-pinned"),
        }
    }
}

/// What the optimizer did to one program.
#[derive(Debug, Clone, PartialEq)]
pub struct OptReport {
    /// Nodes before optimization.
    pub nodes_before: usize,
    /// Nodes after optimization.
    pub nodes_after: usize,
    /// Cost-model flops/s before optimization.
    pub flops_before: f64,
    /// Cost-model flops/s after optimization.
    pub flops_after: f64,
    /// Redundant identity nodes bypassed and deleted.
    pub identities_removed: usize,
    /// Adjacent threshold gates composed into one.
    pub gates_fused: usize,
    /// Structurally-identical nodes merged.
    pub duplicates_merged: usize,
    /// Narrow-band spectral chains rewritten to goertzel-family probes
    /// (`goertzel`, `goertzelFreq`, `goertzelRatio`).
    pub goertzel_rewrites: usize,
    /// Nodes dropped by the closing liveness sweep.
    pub dead_swept: usize,
    /// The strongest guarantee still holding for the output.
    pub tier: EquivalenceTier,
}

impl OptReport {
    fn start(program: &Program, rates: &ChannelRates) -> OptReport {
        let cost = PipelineCost::analyze(program, rates);
        OptReport {
            nodes_before: program.nodes().count(),
            nodes_after: program.nodes().count(),
            flops_before: cost.total_flops_per_second(),
            flops_after: cost.total_flops_per_second(),
            identities_removed: 0,
            gates_fused: 0,
            duplicates_merged: 0,
            goertzel_rewrites: 0,
            dead_swept: 0,
            tier: EquivalenceTier::DigestExact,
        }
    }

    fn finish(&mut self, program: &Program, rates: &ChannelRates) {
        let cost = PipelineCost::analyze(program, rates);
        self.nodes_after = program.nodes().count();
        self.flops_after = cost.total_flops_per_second();
    }

    /// Whether any rewrite fired.
    pub fn changed(&self) -> bool {
        self.identities_removed
            + self.gates_fused
            + self.duplicates_merged
            + self.goertzel_rewrites
            + self.dead_swept
            > 0
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} -> {} nodes, {:.0} -> {:.0} flop/s ({}): \
             {} identity, {} gate-fusion, {} cse, {} goertzel, {} swept",
            self.nodes_before,
            self.nodes_after,
            self.flops_before,
            self.flops_after,
            self.tier,
            self.identities_removed,
            self.gates_fused,
            self.duplicates_merged,
            self.goertzel_rewrites,
            self.dead_swept,
        )
    }
}

/// Debug-build backstop for the analysis⟺transform discipline (the
/// same pairing that caught the PR 6 `dominantRatio` unsoundness): a
/// pass may never *grow* any statically certified resource bound —
/// arena elements, required capacity, flops/s, model memory, or the
/// wake rate. Programs that cannot be certified on either side (e.g. a
/// fused suite past the image's node capacity) are skipped; the
/// comparison is exact, not tolerance-based, because every current pass
/// only removes or strictly-cheapens work.
#[cfg(debug_assertions)]
fn debug_assert_cert_monotone(before: &Program, after: &Program, rates: &ChannelRates, pass: &str) {
    use sidewinder_cert::{certify_program, CertTarget, Precision};
    let target = CertTarget::default();
    let (Ok(b), Ok(a)) = (
        certify_program(before, rates, Precision::F64, &target),
        certify_program(after, rates, Precision::F64, &target),
    ) else {
        return;
    };
    for (bb, aa) in b.arenas.iter().zip(a.arenas.iter()) {
        assert!(
            aa.elements <= bb.elements,
            "pass {pass} grew the {}: {} -> {} elements",
            aa.name,
            bb.elements,
            aa.elements
        );
    }
    assert!(
        a.required_capacity <= b.required_capacity,
        "pass {pass} grew the required core capacity: {} -> {}",
        b.required_capacity,
        a.required_capacity
    );
    assert!(
        a.total_flops_per_second <= b.total_flops_per_second,
        "pass {pass} grew certified flops/s: {} -> {}",
        b.total_flops_per_second,
        a.total_flops_per_second
    );
    assert!(
        a.total_memory_bytes <= b.total_memory_bytes,
        "pass {pass} grew certified memory: {} -> {} bytes",
        b.total_memory_bytes,
        a.total_memory_bytes
    );
    assert!(
        a.wake_rate_hz <= b.wake_rate_hz,
        "pass {pass} grew the certified wake rate: {} -> {} Hz",
        b.wake_rate_hz,
        a.wake_rate_hz
    );
}

#[cfg(not(debug_assertions))]
fn debug_assert_cert_monotone(
    _before: &Program,
    _after: &Program,
    _rates: &ChannelRates,
    _pass: &str,
) {
}

/// Optimizes one program.
///
/// Total: programs that fail validation are returned unchanged (with an
/// all-zero report), and if any pass were ever to produce an invalid
/// program, the original is returned instead — the optimizer never
/// trades correctness for cost.
///
/// In debug builds every applied pass is recertified and asserted
/// monotone non-increasing on all certified bounds (see
/// [`sidewinder_cert`]); an optimization that grows a bound is a hard
/// test failure, not a performance regression to notice later.
pub fn optimize(
    program: &Program,
    rates: &ChannelRates,
    options: &OptOptions,
) -> (Program, OptReport) {
    let mut report = OptReport::start(program, rates);
    if program.validate().is_err() {
        return (program.clone(), report);
    }

    let mut current = program.clone();
    // Exact passes to a fixpoint: each iteration strictly shrinks the
    // node count or stops, so the bound is generous.
    for _ in 0..program.nodes().count() + 2 {
        let mut changed = false;
        if let Some((next, n)) = passes::dce::run(&current, rates) {
            report.identities_removed += n;
            debug_assert_cert_monotone(&current, &next, rates, "dce");
            current = next;
            changed = true;
        }
        if let Some((next, n)) = passes::gates::run(&current) {
            report.gates_fused += n;
            debug_assert_cert_monotone(&current, &next, rates, "gates");
            current = next;
            changed = true;
        }
        if let Some((next, n)) = passes::cse::run(&current) {
            report.duplicates_merged += n;
            debug_assert_cert_monotone(&current, &next, rates, "cse");
            current = next;
            changed = true;
        }
        if !changed {
            break;
        }
    }

    if options.level == OptLevel::Aggressive {
        if let Some((next, n)) = passes::goertzel::run(&current, rates) {
            report.goertzel_rewrites += n;
            report.tier = EquivalenceTier::TolerancePinned;
            debug_assert_cert_monotone(&current, &next, rates, "goertzel");
            current = next;
        }
    }

    // Closing liveness sweep: passes rewire consumers as they delete,
    // so this is a backstop against anything left feeding nothing.
    let live = live_from_out(&current);
    let orphans: Vec<_> = current
        .nodes()
        .map(|(_, id, _)| id)
        .filter(|id| !live.contains(id))
        .collect();
    if !orphans.is_empty() {
        let mut rw = Rewrite::new();
        for id in &orphans {
            rw.remove(*id);
        }
        report.dead_swept += orphans.len();
        let next = rw.apply(&current);
        debug_assert_cert_monotone(&current, &next, rates, "liveness-sweep");
        current = next;
    }

    if current.validate().is_err() {
        // A pass broke the program — keep correctness, drop the rewrite.
        return (program.clone(), OptReport::start(program, rates));
    }
    report.finish(&current, rates);
    (current, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates() -> ChannelRates {
        ChannelRates::default()
    }

    fn parse(text: &str) -> Program {
        text.parse().unwrap()
    }

    #[test]
    fn clean_program_is_untouched() {
        let p = parse(
            "ACC_X -> movingAvg(id=1, params={10});
             1 -> minThreshold(id=2, params={15});
             2 -> OUT;",
        );
        let (q, report) = optimize(&p, &rates(), &OptOptions::default());
        assert_eq!(q, p);
        assert!(!report.changed());
        assert_eq!(report.tier, EquivalenceTier::DigestExact);
    }

    #[test]
    fn invalid_program_is_returned_unchanged() {
        // Node 9 is never defined; validation rejects this.
        let p: Result<Program, _> = "9 -> minThreshold(id=1, params={5});
             1 -> OUT;"
            .parse();
        let p = p.unwrap();
        assert!(p.validate().is_err());
        let (q, report) = optimize(&p, &rates(), &OptOptions::default());
        assert_eq!(q, p);
        assert!(!report.changed());
    }

    #[test]
    fn identity_chain_collapses_to_the_useful_gate() {
        let p = parse(
            "ACC_X -> movingAvg(id=1, params={1});
             1 -> expMovingAvg(id=2, params={1});
             2 -> minThreshold(id=3, params={15});
             3 -> OUT;",
        );
        let (q, report) = optimize(&p, &rates(), &OptOptions::default());
        assert_eq!(q.nodes().count(), 1);
        assert_eq!(report.identities_removed, 2);
        assert!(q.validate().is_ok());
        assert!(report.flops_after <= report.flops_before);
    }

    #[test]
    fn out_fed_by_identity_from_channel_keeps_one_node() {
        // `OUT` must name a node, so the last identity before OUT
        // survives when its source is a raw channel.
        let p = parse(
            "ACC_X -> movingAvg(id=1, params={1});
             1 -> OUT;",
        );
        let (q, _report) = optimize(&p, &rates(), &OptOptions::default());
        assert!(q.validate().is_ok());
        assert_eq!(q.nodes().count(), 1);
    }

    #[test]
    fn adjacent_gates_fuse_into_a_band() {
        let p = parse(
            "ACC_X -> movingAvg(id=1, params={10});
             1 -> minThreshold(id=2, params={5});
             2 -> maxThreshold(id=3, params={12});
             3 -> OUT;",
        );
        let (q, report) = optimize(&p, &rates(), &OptOptions::default());
        assert_eq!(report.gates_fused, 1);
        assert_eq!(q.nodes().count(), 2);
        let (_, _, kind) = q.nodes().last().unwrap();
        assert_eq!(
            *kind,
            sidewinder_ir::AlgorithmKind::BandThreshold { lo: 5.0, hi: 12.0 }
        );
    }

    #[test]
    fn duplicate_branches_merge() {
        // Two identical smoothing chains off the same channel.
        let p = parse(
            "ACC_X -> movingAvg(id=1, params={10});
             ACC_X -> movingAvg(id=2, params={10});
             1,2 -> vectorMagnitude(id=3);
             3 -> minThreshold(id=4, params={15});
             4 -> OUT;",
        );
        let (q, report) = optimize(&p, &rates(), &OptOptions::default());
        assert_eq!(report.duplicates_merged, 1);
        assert!(q.validate().is_ok());
        // The join now reads the surviving node on both ports.
        let (sources, _, _) = q
            .nodes()
            .find(|(_, _, k)| matches!(k, sidewinder_ir::AlgorithmKind::VectorMagnitude))
            .unwrap();
        assert_eq!(sources[0], sources[1]);
    }

    #[test]
    fn exact_level_never_introduces_goertzel() {
        let p = parse(
            "MIC -> window(id=1, params={1024, 1024, 0});
             1 -> highPass(id=2, params={980});
             2 -> lowPass(id=3, params={1020});
             3 -> fft(id=4);
             4 -> spectralMagnitude(id=5);
             5 -> max(id=6);
             6 -> minThreshold(id=7, params={25});
             7 -> OUT;",
        );
        let (q, report) = optimize(&p, &rates(), &OptOptions::exact());
        assert_eq!(report.goertzel_rewrites, 0);
        assert_eq!(report.tier, EquivalenceTier::DigestExact);
        assert!(!q
            .nodes()
            .any(|(_, _, k)| matches!(k, sidewinder_ir::AlgorithmKind::Goertzel { .. })));
    }

    #[test]
    fn narrow_band_chain_strength_reduces_under_aggressive() {
        let p = parse(
            "MIC -> window(id=1, params={1024, 1024, 0});
             1 -> highPass(id=2, params={980});
             2 -> lowPass(id=3, params={1020});
             3 -> fft(id=4);
             4 -> spectralMagnitude(id=5);
             5 -> max(id=6);
             6 -> minThreshold(id=7, params={25});
             7 -> OUT;",
        );
        let (q, report) = optimize(&p, &rates(), &OptOptions::aggressive());
        assert_eq!(report.goertzel_rewrites, 1);
        assert_eq!(report.tier, EquivalenceTier::TolerancePinned);
        assert!(q.validate().is_ok());
        assert!(
            report.flops_after < report.flops_before / 2.0,
            "{}",
            report.summary()
        );
        // window -> goertzel -> minThreshold
        assert_eq!(q.nodes().count(), 3);
    }

    #[test]
    fn wide_band_chain_is_left_alone_by_the_cost_gate() {
        // The paper's siren condition: 750 Hz – Nyquist covers ~417
        // bins, where Goertzel probing costs more than the FFT.
        let p = parse(
            "MIC -> window(id=1, params={1024, 1024, 0});
             1 -> highPass(id=2, params={750});
             2 -> fft(id=3);
             3 -> spectralMagnitude(id=4);
             4 -> max(id=5);
             5 -> minThreshold(id=6, params={25});
             6 -> sustained(id=7, params={6, 1024});
             7 -> OUT;",
        );
        let (q, report) = optimize(&p, &rates(), &OptOptions::aggressive());
        assert_eq!(report.goertzel_rewrites, 0);
        assert_eq!(report.tier, EquivalenceTier::DigestExact);
        assert_eq!(q, p);
    }
}
