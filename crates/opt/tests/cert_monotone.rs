//! Certified bounds are monotone non-increasing under optimization.
//!
//! `optimize` recertifies after every applied pass in debug builds
//! (`debug_assert_cert_monotone`), so simply *running* the optimizer
//! over the generator corpus exercises the per-pass invariant. This
//! suite additionally checks the end-to-end claim — the final program's
//! certificate never exceeds the original's on any bound — so the
//! property also holds in release builds and across the whole pipeline
//! including the closing liveness sweep.

use proptest::prelude::*;
use sidewinder_cert::{certify_program, CertTarget, Precision, ResourceCert};
use sidewinder_hub::runtime::ChannelRates;
use sidewinder_ir::Program;
use sidewinder_lint::testing::{accel_program, arb_program, audio_program};
use sidewinder_opt::{optimize, OptOptions};

const FIXTURES: [(&str, &str); 6] = [
    (
        "headbutts",
        include_str!("../../ir/tests/fixtures/headbutts.swir"),
    ),
    ("steps", include_str!("../../ir/tests/fixtures/steps.swir")),
    (
        "sirens",
        include_str!("../../ir/tests/fixtures/sirens.swir"),
    ),
    (
        "transitions",
        include_str!("../../ir/tests/fixtures/transitions.swir"),
    ),
    ("music", include_str!("../../ir/tests/fixtures/music.swir")),
    (
        "phrase",
        include_str!("../../ir/tests/fixtures/phrase.swir"),
    ),
];

fn assert_monotone(name: &str, before: &ResourceCert, after: &ResourceCert) {
    for (b, a) in before.arenas.iter().zip(after.arenas.iter()) {
        assert!(
            a.elements <= b.elements,
            "{name}: {} grew {} -> {}",
            a.name,
            b.elements,
            a.elements
        );
    }
    assert!(
        after.required_capacity <= before.required_capacity,
        "{name}"
    );
    assert!(
        after.total_flops_per_second <= before.total_flops_per_second,
        "{name}: flops {} -> {}",
        before.total_flops_per_second,
        after.total_flops_per_second
    );
    assert!(
        after.total_memory_bytes <= before.total_memory_bytes,
        "{name}: memory {} -> {}",
        before.total_memory_bytes,
        after.total_memory_bytes
    );
    assert!(
        after.wake_rate_hz <= before.wake_rate_hz,
        "{name}: wake rate {} -> {}",
        before.wake_rate_hz,
        after.wake_rate_hz
    );
}

fn check(name: &str, program: &Program, options: &OptOptions) {
    let rates = ChannelRates::default();
    let target = CertTarget::default();
    let before = certify_program(program, &rates, Precision::F64, &target);
    // Running the optimizer itself exercises the per-pass debug asserts.
    let (optimized, _report) = optimize(program, &rates, options);
    let after = certify_program(&optimized, &rates, Precision::F64, &target);
    if let (Ok(before), Ok(after)) = (before, after) {
        assert_monotone(name, &before, &after);
    }
}

#[test]
fn fixture_certificates_never_grow_under_optimization() {
    for (name, text) in FIXTURES {
        let program: Program = text.parse().unwrap();
        check(name, &program, &OptOptions::exact());
        check(name, &program, &OptOptions::aggressive());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn generated_certificates_never_grow_under_optimization(program in arb_program()) {
        check("arb", &program, &OptOptions::aggressive());
    }

    #[test]
    fn accel_certificates_never_grow_under_optimization(program in accel_program()) {
        check("accel", &program, &OptOptions::aggressive());
    }

    #[test]
    fn audio_certificates_never_grow_under_optimization(program in audio_program()) {
        check("audio", &program, &OptOptions::aggressive());
    }
}
