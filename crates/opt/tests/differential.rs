//! Differential equivalence: the optimizer's contract, enforced.
//!
//! Exact-tier passes (dead-node elimination, gate fusion, CSE) must
//! replay *bit-identically*: same wakes, same sequence tags, same `f64`
//! bit patterns, on every trace. The tolerance-pinned tier (Goertzel
//! strength reduction) must keep the wake cadence and match values
//! within [`TOLERANCE`] — floating-point rounding, not approximation.
//!
//! Programs come from the linter's shared generator
//! (`sidewinder_lint::testing`), so the corpus is the same one the
//! lint totality suite runs; invalid generations double as totality
//! probes (the optimizer must return them unchanged, never panic).

use proptest::prelude::*;
use sidewinder_hub::runtime::{ChannelRates, HubRuntime};
use sidewinder_ir::Program;
use sidewinder_lint::testing::arb_program;
use sidewinder_opt::{optimize, EquivalenceTier, OptOptions};

/// Pinned relative tolerance for the Goertzel tier. The rewrite
/// evaluates the same DFT bins by a different recurrence, and the
/// filter chain it replaces leaves ~1e-13 relative ifft/fft residue in
/// out-of-band bins; 1e-6 is six orders of magnitude of headroom above
/// both while still catching any algorithmic divergence.
const TOLERANCE: f64 = 1e-6;

/// Replays a program on a perfgate-style synthetic input: per channel,
/// a sinusoid alternating between a loud steady tone and a quiet
/// frequency-modulated segment. Returns the full wake stream.
///
/// Amplitudes stay inside each channel's *physical* range (±2 g for
/// accelerometer axes, |x| <= 1 for normalized mic amplitude): the
/// optimizer's dead-node pass trusts the linter's abstract
/// interpretation, whose facts are conditional on those ranges
/// (`lint::absint::channel_interval`), so its equivalence guarantee is
/// quantified over physically possible traces.
fn replay(program: &Program, samples: usize) -> Vec<(u64, f64)> {
    let mut hub =
        HubRuntime::load(program, &ChannelRates::default()).expect("valid program must load");
    let channels = program.channels();
    let mut wakes = Vec::new();
    for i in 0..samples {
        let loud = (i / (samples / 2).max(1)) & 1 == 0;
        let step = if loud {
            1.3
        } else {
            1.3 + 0.8 * (i as f64 / 97.0).sin()
        };
        for (ci, &channel) in channels.iter().enumerate() {
            let (loud_amp, quiet_amp) = if channel.is_accelerometer() {
                (12.0, 2.0)
            } else {
                (0.9, 0.15)
            };
            let phase = i as f64 * step + ci as f64 * 0.7;
            let sample = phase.sin() * if loud { loud_amp } else { quiet_amp };
            for wake in hub
                .push_samples(channel, &[sample])
                .expect("valid program must execute")
            {
                wakes.push((wake.seq, wake.value));
            }
        }
    }
    wakes
}

fn assert_bit_identical(original: &[(u64, f64)], optimized: &[(u64, f64)], context: &str) {
    assert_eq!(
        original.len(),
        optimized.len(),
        "{context}: wake counts diverge"
    );
    for (i, ((seq_a, val_a), (seq_b, val_b))) in original.iter().zip(optimized.iter()).enumerate() {
        assert_eq!(seq_a, seq_b, "{context}: wake {i} sequence tag diverges");
        assert_eq!(
            val_a.to_bits(),
            val_b.to_bits(),
            "{context}: wake {i} value bits diverge ({val_a} vs {val_b})"
        );
    }
}

proptest! {
    /// Exact-tier optimization replays bit-identically on every valid
    /// generated program; invalid generations must come back unchanged.
    #[test]
    fn exact_optimization_is_digest_exact(program in arb_program()) {
        let rates = ChannelRates::default();
        let (optimized, report) = optimize(&program, &rates, &OptOptions::exact());
        if program.validate().is_err() {
            assert_eq!(optimized, program, "invalid input must pass through");
            assert!(!report.changed());
            return;
        }
        assert_eq!(report.tier, EquivalenceTier::DigestExact);
        assert!(optimized.validate().is_ok(), "optimizer broke validity");
        assert!(
            report.nodes_after <= report.nodes_before,
            "exact passes only shrink"
        );
        let before = replay(&program, 2048);
        let after = replay(&optimized, 2048);
        assert_bit_identical(&before, &after, &format!("{program}"));
    }

    /// The aggressive level on arbitrary programs: whenever the report
    /// says the result is still digest-exact (no Goertzel rewrite
    /// fired), it must actually be bit-identical.
    #[test]
    fn aggressive_without_goertzel_stays_exact(program in arb_program()) {
        let rates = ChannelRates::default();
        let (optimized, report) = optimize(&program, &rates, &OptOptions::aggressive());
        if program.validate().is_err() {
            assert_eq!(optimized, program);
            return;
        }
        assert!(optimized.validate().is_ok());
        if report.tier == EquivalenceTier::DigestExact {
            let before = replay(&program, 2048);
            let after = replay(&optimized, 2048);
            assert_bit_identical(&before, &after, &format!("{program}"));
        }
    }

    /// Goertzel tier: generated narrow-band spectral gates keep their
    /// wake cadence exactly and their values within the pinned
    /// tolerance. The band is centered on a bin the loud tone excites,
    /// so both loud and quiet segments are exercised.
    #[test]
    fn goertzel_rewrites_hold_the_pinned_tolerance(
        size_bits in 8u32..11,
        lo in 150.0f64..3000.0,
        span in 10.0f64..120.0,
    ) {
        let size = 1u32 << size_bits;
        let hi = lo + span;
        let text = format!(
            "MIC -> window(id=1, params={{{size}, {size}, 0}});
             1 -> highPass(id=2, params={{{lo}}});
             2 -> lowPass(id=3, params={{{hi}}});
             3 -> fft(id=4);
             4 -> spectralMagnitude(id=5);
             5 -> max(id=6);
             6 -> OUT;"
        );
        let program: Program = text.parse().unwrap();
        prop_assert!(program.validate().is_ok());
        let rates = ChannelRates::default();
        let (optimized, report) = optimize(&program, &rates, &OptOptions::aggressive());
        if report.goertzel_rewrites == 0 {
            // Cost gate declined (band too wide for this window size, or
            // no bin in band) — the program must be untouched.
            assert_eq!(optimized, program);
            return;
        }
        assert_eq!(report.tier, EquivalenceTier::TolerancePinned);
        assert!(optimized.validate().is_ok());
        let samples = size as usize * 6;
        let before = replay(&program, samples);
        let after = replay(&optimized, samples);
        assert_eq!(before.len(), after.len(), "wake cadence diverges");
        assert!(!before.is_empty(), "max emits once per window");
        for ((seq_a, val_a), (seq_b, val_b)) in before.iter().zip(after.iter()) {
            assert_eq!(seq_a, seq_b, "sequence tags diverge");
            let scale = val_a.abs().max(val_b.abs()).max(1.0);
            assert!(
                (val_a - val_b).abs() <= TOLERANCE * scale,
                "band max diverges past tolerance: {val_a} vs {val_b} \
                 (band [{lo}, {hi}], window {size})"
            );
        }
    }

    /// The dominant-feature heads: generated narrow-band
    /// `dominantFreq`/`dominantRatio` chains keep detection parity
    /// through the strength reduction. The frequency answer lives on the
    /// bin grid, so a tie flip between near-identical bins can move it
    /// by at most one grid step; the ratio holds the same pinned
    /// relative tolerance as the band max.
    #[test]
    fn dominant_head_rewrites_keep_detection_parity(
        size_bits in 8u32..11,
        lo in 150.0f64..3000.0,
        span in 10.0f64..120.0,
        ratio_head in proptest::bool::ANY,
    ) {
        let size = 1u32 << size_bits;
        let hi = lo + span;
        let head = if ratio_head { "dominantRatio" } else { "dominantFreq" };
        let text = format!(
            "MIC -> window(id=1, params={{{size}, {size}, 0}});
             1 -> highPass(id=2, params={{{lo}}});
             2 -> lowPass(id=3, params={{{hi}}});
             3 -> fft(id=4);
             4 -> spectralMagnitude(id=5);
             5 -> {head}(id=6);
             6 -> OUT;"
        );
        let program: Program = text.parse().unwrap();
        prop_assert!(program.validate().is_ok());
        let rates = ChannelRates::default();
        let (optimized, report) = optimize(&program, &rates, &OptOptions::aggressive());
        if report.goertzel_rewrites == 0 {
            assert_eq!(optimized, program);
            return;
        }
        assert_eq!(report.tier, EquivalenceTier::TolerancePinned);
        assert!(optimized.validate().is_ok());
        let samples = size as usize * 6;
        let before = replay(&program, samples);
        let after = replay(&optimized, samples);
        assert_eq!(before.len(), after.len(), "wake cadence diverges");
        assert!(!before.is_empty(), "{head} emits once per window");
        let mic_rate = rates.rate_of(sidewinder_sensors::SensorChannel::Mic);
        let bin_hz = mic_rate / size as f64;
        for ((seq_a, val_a), (seq_b, val_b)) in before.iter().zip(after.iter()) {
            assert_eq!(seq_a, seq_b, "sequence tags diverge");
            let slack = if ratio_head {
                TOLERANCE * val_a.abs().max(val_b.abs()).max(1.0)
            } else {
                bin_hz * (1.0 + TOLERANCE)
            };
            assert!(
                (val_a - val_b).abs() <= slack,
                "{head} diverges: {val_a} vs {val_b} (band [{lo}, {hi}], window {size})"
            );
        }
    }
}

/// Truncated fixture corpora: every prefix of a real fixture that still
/// parses must go through the optimizer without panicking, and anything
/// invalid must pass through unchanged.
#[test]
fn optimizer_is_total_on_truncated_corpora() {
    let fixtures = [
        include_str!("../../ir/tests/fixtures/sirens.swir"),
        include_str!("../../ir/tests/fixtures/music.swir"),
        include_str!("../../ir/tests/fixtures/steps.swir"),
    ];
    let rates = ChannelRates::default();
    let mut parsed = 0usize;
    for text in fixtures {
        for end in 0..=text.len() {
            let Ok(program) = text[..end].parse::<Program>() else {
                continue;
            };
            parsed += 1;
            for options in [OptOptions::exact(), OptOptions::aggressive()] {
                let (optimized, _) = optimize(&program, &rates, &options);
                if program.validate().is_err() {
                    assert_eq!(
                        optimized, program,
                        "invalid prefix (len {end}) was rewritten"
                    );
                } else {
                    assert!(optimized.validate().is_ok());
                }
            }
        }
    }
    assert!(parsed > 3, "corpus produced too few parseable prefixes");
}

/// The empty program is a fixed point.
#[test]
fn optimizer_is_total_on_the_empty_program() {
    let program = Program::new();
    let (optimized, report) = optimize(
        &program,
        &ChannelRates::default(),
        &OptOptions::aggressive(),
    );
    assert_eq!(optimized, program);
    assert!(!report.changed());
}
