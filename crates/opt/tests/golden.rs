//! Golden optimization fixtures: the six paper applications,
//! individually and fused into one program.
//!
//! Each standalone fixture is already lint-clean and minimal, so the
//! optimizer must be a no-op on it — pinned node counts and cost-model
//! flop totals prove nothing is silently rewritten. The all-six fusion
//! is where optimization pays: music and phrase share their entire
//! analysis front end (512-window + variance + gate, 2048-window +
//! zcrVariance), and CSE must merge exactly those five nodes while the
//! wake stream stays bit-identical.

use sidewinder_hub::cost::PipelineCost;
use sidewinder_hub::runtime::{ChannelRates, HubRuntime};
use sidewinder_ir::Program;
use sidewinder_opt::{fuse_programs, optimize, EquivalenceTier, OptOptions};

/// `(name, text, node_count)` for the six golden fixtures.
const FIXTURES: [(&str, &str, usize); 6] = [
    (
        "steps",
        include_str!("../../ir/tests/fixtures/steps.swir"),
        2,
    ),
    (
        "transitions",
        include_str!("../../ir/tests/fixtures/transitions.swir"),
        3,
    ),
    (
        "headbutts",
        include_str!("../../ir/tests/fixtures/headbutts.swir"),
        2,
    ),
    (
        "sirens",
        include_str!("../../ir/tests/fixtures/sirens.swir"),
        7,
    ),
    (
        "music",
        include_str!("../../ir/tests/fixtures/music.swir"),
        8,
    ),
    (
        "phrase",
        include_str!("../../ir/tests/fixtures/phrase.swir"),
        7,
    ),
];

fn parse_fixture(name: &str, text: &str) -> Program {
    let program: Program = text
        .parse()
        .unwrap_or_else(|e| panic!("fixture {name} does not parse: {e}"));
    program
        .validate()
        .unwrap_or_else(|e| panic!("fixture {name} is invalid: {e}"));
    program
}

fn flops(program: &Program) -> f64 {
    PipelineCost::analyze(program, &ChannelRates::default()).total_flops_per_second()
}

/// Replays a program on an in-range synthetic input (see
/// `differential.rs` for why amplitudes respect the channels' physical
/// ranges) and returns the wake stream.
fn replay(program: &Program, samples: usize) -> Vec<(u64, u64)> {
    let mut hub = HubRuntime::load(program, &ChannelRates::default()).expect("fixture must load");
    let channels = program.channels();
    let mut wakes = Vec::new();
    for i in 0..samples {
        let loud = (i / 8192) % 2 == 1;
        let step = if loud {
            1.3
        } else {
            1.3 + 0.8 * (i as f64 / 97.0).sin()
        };
        for (ci, &channel) in channels.iter().enumerate() {
            let (loud_amp, quiet_amp) = if channel.is_accelerometer() {
                (12.0, 2.0)
            } else {
                (0.9, 0.15)
            };
            let phase = i as f64 * step + ci as f64 * 0.7;
            let sample = phase.sin() * if loud { loud_amp } else { quiet_amp };
            for wake in hub
                .push_samples(channel, &[sample])
                .expect("fixture must execute")
            {
                wakes.push((wake.seq, wake.value.to_bits()));
            }
        }
    }
    wakes
}

#[test]
fn standalone_fixtures_are_already_optimal() {
    for (name, text, nodes) in FIXTURES {
        let program = parse_fixture(name, text);
        assert_eq!(program.nodes().count(), nodes, "{name}: fixture drifted");
        let (optimized, report) = optimize(
            &program,
            &ChannelRates::default(),
            &OptOptions::aggressive(),
        );
        assert_eq!(optimized, program, "{name}: clean fixture was rewritten");
        assert!(!report.changed(), "{name}: {}", report.summary());
        assert_eq!(report.tier, EquivalenceTier::DigestExact);
        assert_eq!(report.flops_after, report.flops_before, "{name}");
    }
}

/// The siren fixture's band (750 Hz to Nyquist) spans ~417 of the 513
/// bins of its 1024-point window: Goertzel probing would cost more than
/// the FFT chain, and the cost gate must know it.
#[test]
fn siren_band_is_too_wide_for_goertzel() {
    let program = parse_fixture("sirens", FIXTURES[3].1);
    let (_, report) = optimize(
        &program,
        &ChannelRates::default(),
        &OptOptions::aggressive(),
    );
    assert_eq!(report.goertzel_rewrites, 0);
}

#[test]
fn fused_all_six_shares_the_music_phrase_front_end() {
    let programs: Vec<Program> = FIXTURES
        .iter()
        .map(|(name, text, _)| parse_fixture(name, text))
        .collect();
    let fused = fuse_programs(&programs);
    assert!(fused.validate().is_ok());
    // 2+3+2+7+8+7 fixture nodes plus the anyOf join.
    assert_eq!(fused.nodes().count(), 30);

    let (optimized, report) = optimize(&fused, &ChannelRates::default(), &OptOptions::aggressive());
    assert!(optimized.validate().is_ok());
    // music and phrase share: window(512)+variance+minThreshold(0.002)
    // and window(2048)+zcrVariance(8). Nothing else is duplicated.
    assert_eq!(report.duplicates_merged, 5, "{}", report.summary());
    assert_eq!(report.identities_removed, 0);
    assert_eq!(report.gates_fused, 0);
    assert_eq!(report.goertzel_rewrites, 0);
    assert_eq!(report.tier, EquivalenceTier::DigestExact);
    assert_eq!(optimized.nodes().count(), 25);

    // Pinned cost-model totals (flops per second, default rates). The
    // shared front end is the expensive half of the mic processing.
    let before = flops(&fused);
    let after = flops(&optimized);
    assert_eq!(
        before.round(),
        FUSED_FLOPS_BEFORE.round(),
        "before = {before}"
    );
    assert_eq!(after.round(), FUSED_FLOPS_AFTER.round(), "after = {after}");
    // The shared front end is all O(n) stages (no FFT), so the saving
    // is the full duplicated-chain cost, ~7% of the fused total — the
    // FFT-heavy siren chain dominates the rest.
    assert!(
        after < before * 0.95,
        "CSE should reclaim the duplicated front end: {before} -> {after}"
    );
    assert_eq!(report.flops_before, before);
    assert_eq!(report.flops_after, after);
}

/// Expected cost totals for the fused-six program; regenerate by
/// running this test and copying the printed actuals if the cost model
/// itself changes.
const FUSED_FLOPS_BEFORE: f64 = 1_518_084.0;
const FUSED_FLOPS_AFTER: f64 = 1_413_896.0;

#[test]
fn fused_optimization_replays_bit_identically() {
    let programs: Vec<Program> = FIXTURES
        .iter()
        .map(|(name, text, _)| parse_fixture(name, text))
        .collect();
    let fused = fuse_programs(&programs);
    let (optimized, _) = optimize(&fused, &ChannelRates::default(), &OptOptions::aggressive());
    let before = replay(&fused, 16_384);
    let after = replay(&optimized, 16_384);
    assert!(!before.is_empty(), "the synthetic trace must produce wakes");
    assert_eq!(before, after, "optimized fused program diverged");
}
