//! Property tests for the developer API: any structurally sound pipeline
//! built through the API compiles to a validating IR program, and
//! compilation is deterministic with sequential id assignment.

use proptest::prelude::*;
use sidewinder_core::algorithm::{
    self, Algorithm, AllOf, AnyOf, BandThreshold, ExponentialMovingAverage, MaxThreshold,
    MinThreshold, MovingAverage, OutsideThreshold, Statistic, VectorMagnitude, Window, ZcrVariance,
};
use sidewinder_core::{ProcessingBranch, ProcessingPipeline};
use sidewinder_ir::{Source, Stmt, WindowShapeParam};
use sidewinder_sensors::SensorChannel;

fn arb_scalar_algorithm() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        (1u32..32).prop_map(MovingAverage::new),
        (0.01f64..=1.0).prop_map(ExponentialMovingAverage::new),
        (-50.0f64..50.0).prop_map(MinThreshold::new),
        (-50.0f64..50.0).prop_map(MaxThreshold::new),
        (-50.0f64..0.0, 0.0f64..50.0).prop_map(|(lo, hi)| BandThreshold::new(lo, hi)),
        (-50.0f64..0.0, 0.0f64..50.0).prop_map(|(lo, hi)| OutsideThreshold::new(lo, hi)),
        (1u32..8).prop_map(algorithm::Sustained::new),
    ]
}

fn arb_vector_reducer() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        Just(Statistic::mean()),
        Just(Statistic::variance()),
        Just(Statistic::rms()),
        Just(Statistic::peak_to_peak()),
        Just(algorithm::ZeroCrossingRate::new()),
        (2u32..16).prop_map(ZcrVariance::new),
    ]
}

fn arb_aggregator() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        Just(VectorMagnitude::new()),
        Just(AllOf::new()),
        Just(AnyOf::new()),
    ]
}

/// An accelerometer pipeline: 1–3 branches of scalar chains, an
/// aggregator, then a scalar tail.
fn arb_accel_pipeline() -> impl Strategy<Value = ProcessingPipeline> {
    (
        1usize..=3,
        prop::collection::vec(arb_scalar_algorithm(), 1..4),
        arb_aggregator(),
        prop::collection::vec(arb_scalar_algorithm(), 0..3),
    )
        .prop_map(|(branches, chain, aggregator, tail)| {
            let mut pipeline = ProcessingPipeline::new();
            let mut group = Vec::new();
            for b in 0..branches {
                let mut branch = ProcessingBranch::new(SensorChannel::ACCEL[b]);
                for a in &chain {
                    branch.add(*a);
                }
                group.push(branch);
            }
            pipeline.add_branches(group);
            pipeline.add(aggregator);
            for a in &tail {
                pipeline.add(*a);
            }
            pipeline
        })
}

/// An audio pipeline: window → reducer → scalar tail.
fn arb_audio_pipeline() -> impl Strategy<Value = ProcessingPipeline> {
    (
        3u32..10,
        0usize..3,
        arb_vector_reducer(),
        prop::collection::vec(arb_scalar_algorithm(), 0..3),
    )
        .prop_map(|(bits, shape_idx, reducer, tail)| {
            let size = 1u32 << bits;
            let shape = [
                WindowShapeParam::Rectangular,
                WindowShapeParam::Hamming,
                WindowShapeParam::Hann,
            ][shape_idx];
            let mut pipeline = ProcessingPipeline::new();
            let mut mic = ProcessingBranch::new(SensorChannel::Mic);
            mic.add(Window::with_hop(size, size, shape)).add(reducer);
            for a in &tail {
                mic.add(*a);
            }
            pipeline.add_branch(mic);
            pipeline
        })
}

fn arb_pipeline() -> impl Strategy<Value = ProcessingPipeline> {
    prop_oneof![arb_accel_pipeline(), arb_audio_pipeline()]
}

proptest! {
    /// Every API-constructible pipeline compiles to a validating program.
    #[test]
    fn compiled_pipelines_validate(pipeline in arb_pipeline()) {
        let program = pipeline.compile().expect("structurally sound pipeline");
        prop_assert!(program.validate().is_ok(), "{:?}", program.validate());
    }

    /// Compilation is deterministic.
    #[test]
    fn compilation_is_deterministic(pipeline in arb_pipeline()) {
        let a = pipeline.compile().unwrap();
        let b = pipeline.compile().unwrap();
        prop_assert_eq!(a, b);
    }

    /// Node ids are assigned sequentially from 1 in declaration order —
    /// the paper's Fig. 2 numbering.
    #[test]
    fn ids_are_sequential(pipeline in arb_pipeline()) {
        let program = pipeline.compile().unwrap();
        let ids: Vec<u32> = program.nodes().map(|(_, id, _)| id.0).collect();
        let expected: Vec<u32> = (1..=ids.len() as u32).collect();
        prop_assert_eq!(ids, expected);
    }

    /// The printed IR of a compiled pipeline round-trips through the
    /// parser.
    #[test]
    fn compiled_ir_round_trips(pipeline in arb_pipeline()) {
        let program = pipeline.compile().unwrap();
        let reparsed: sidewinder_ir::Program = program.to_string().parse().unwrap();
        prop_assert_eq!(reparsed, program);
    }

    /// Sustained stubs always get their max_gap patched to the upstream
    /// emission stride (≥ 1, equal to the window hop when present).
    #[test]
    fn sustained_gap_equals_upstream_stride(pipeline in arb_audio_pipeline()) {
        let program = pipeline.compile().unwrap();
        let window_hop = program.nodes().find_map(|(_, _, kind)| match kind {
            sidewinder_ir::AlgorithmKind::Window { hop, .. } => Some(*hop),
            _ => None,
        });
        for stmt in program.stmts() {
            if let Stmt::Node {
                kind: sidewinder_ir::AlgorithmKind::Sustained { max_gap, .. },
                sources,
                ..
            } = stmt
            {
                // Sustained nodes downstream of the window inherit its hop.
                prop_assert!(sources.iter().all(|s| matches!(s, Source::Node(_))));
                prop_assert_eq!(Some(*max_gap), window_hop);
            }
        }
    }
}
