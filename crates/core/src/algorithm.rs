//! API-level algorithm stubs.
//!
//! "At the API level, these algorithms are simply stubs that represent the
//! algorithm implementations at the low-power processor level" (paper
//! §3.2). Each stub type here is a constructor for an opaque
//! [`Algorithm`] carrying the parameterized [`AlgorithmKind`]; the
//! executable implementations live in `sidewinder-hub`.
//!
//! The constructors mirror the paper's Java API (`new MovingAverage(10)`,
//! `new VectorMagnitude()`, `new MinThreshold(15)`); returning the opaque
//! [`Algorithm`] from each stub's `new` is the point of the pattern, so
//! the usual `new -> Self` convention is deliberately suspended here.
#![allow(clippy::new_ret_no_self)]

use sidewinder_ir::{AlgorithmKind, StatFn, WindowShapeParam};

/// An opaque, parameterized algorithm stub ready to be added to a branch
/// or pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Algorithm {
    kind: AlgorithmKind,
    /// For `Sustained`: filled in by the compiler with the upstream
    /// emission stride, so developers only specify the count.
    pub(crate) needs_stride: bool,
}

impl Algorithm {
    pub(crate) fn of(kind: AlgorithmKind) -> Self {
        Algorithm {
            kind,
            needs_stride: false,
        }
    }

    /// The underlying IR algorithm kind.
    pub fn kind(&self) -> &AlgorithmKind {
        &self.kind
    }
}

/// Partitions a scalar stream into windows (paper §3.6 "Windowing").
#[derive(Debug, Clone, Copy)]
pub struct Window;

impl Window {
    /// Non-overlapping rectangular windows of `size` samples.
    ///
    /// `size` must be a power of two (so FFT stages can follow); the
    /// pipeline compiler/validator enforces this.
    pub fn rectangular(size: u32) -> Algorithm {
        Algorithm::of(AlgorithmKind::Window {
            size,
            hop: size,
            shape: WindowShapeParam::Rectangular,
        })
    }

    /// Non-overlapping Hamming windows of `size` samples.
    pub fn hamming(size: u32) -> Algorithm {
        Algorithm::of(AlgorithmKind::Window {
            size,
            hop: size,
            shape: WindowShapeParam::Hamming,
        })
    }

    /// Fully parameterized window.
    pub fn with_hop(size: u32, hop: u32, shape: WindowShapeParam) -> Algorithm {
        Algorithm::of(AlgorithmKind::Window { size, hop, shape })
    }
}

/// Fast Fourier Transform to the frequency domain (paper §3.6
/// "Transform").
#[derive(Debug, Clone, Copy)]
pub struct Fft;

impl Fft {
    /// Creates the FFT stub.
    pub fn new() -> Algorithm {
        Algorithm::of(AlgorithmKind::Fft)
    }
}

/// Inverse FFT back to the time domain.
#[derive(Debug, Clone, Copy)]
pub struct Ifft;

impl Ifft {
    /// Creates the IFFT stub.
    pub fn new() -> Algorithm {
        Algorithm::of(AlgorithmKind::Ifft)
    }
}

/// One-sided magnitude reduction of a complex spectrum.
#[derive(Debug, Clone, Copy)]
pub struct SpectralMagnitude;

impl SpectralMagnitude {
    /// Creates the stub.
    pub fn new() -> Algorithm {
        Algorithm::of(AlgorithmKind::SpectralMagnitude)
    }
}

/// Simple moving average (paper §3.6 "Data Filtering").
#[derive(Debug, Clone, Copy)]
pub struct MovingAverage;

impl MovingAverage {
    /// Averages the last `window` samples.
    pub fn new(window: u32) -> Algorithm {
        Algorithm::of(AlgorithmKind::MovingAvg { window })
    }
}

/// Exponential moving average.
#[derive(Debug, Clone, Copy)]
pub struct ExponentialMovingAverage;

impl ExponentialMovingAverage {
    /// Smoothing factor `alpha` in `(0, 1]`.
    pub fn new(alpha: f64) -> Algorithm {
        Algorithm::of(AlgorithmKind::ExpMovingAvg { alpha })
    }
}

/// FFT-based low-pass filter.
#[derive(Debug, Clone, Copy)]
pub struct LowPassFilter;

impl LowPassFilter {
    /// Keeps frequencies at or below `cutoff_hz`.
    pub fn new(cutoff_hz: f64) -> Algorithm {
        Algorithm::of(AlgorithmKind::LowPass { cutoff_hz })
    }
}

/// FFT-based high-pass filter (the siren detector opens with one at
/// 750 Hz, paper §3.7.2).
#[derive(Debug, Clone, Copy)]
pub struct HighPassFilter;

impl HighPassFilter {
    /// Keeps frequencies at or above `cutoff_hz`.
    pub fn new(cutoff_hz: f64) -> Algorithm {
        Algorithm::of(AlgorithmKind::HighPass { cutoff_hz })
    }
}

/// Euclidean magnitude across branches (paper §3.6 "Feature Extraction").
#[derive(Debug, Clone, Copy)]
pub struct VectorMagnitude;

impl VectorMagnitude {
    /// Creates the stub. Added to a pipeline, it merges all open branches.
    pub fn new() -> Algorithm {
        Algorithm::of(AlgorithmKind::VectorMagnitude)
    }
}

/// Zero-crossing rate of each window.
#[derive(Debug, Clone, Copy)]
pub struct ZeroCrossingRate;

impl ZeroCrossingRate {
    /// Creates the stub.
    pub fn new() -> Algorithm {
        Algorithm::of(AlgorithmKind::Zcr)
    }
}

/// Variance of per-sub-window zero-crossing rates (the music/phrase
/// feature, paper §3.7.2).
#[derive(Debug, Clone, Copy)]
pub struct ZcrVariance;

impl ZcrVariance {
    /// Splits each window into `sub_windows` parts.
    pub fn new(sub_windows: u32) -> Algorithm {
        Algorithm::of(AlgorithmKind::ZcrVariance { sub_windows })
    }
}

/// A statistical reduction of each window (paper §3.6 "a set of
/// statistical functions").
#[derive(Debug, Clone, Copy)]
pub struct Statistic;

impl Statistic {
    /// Arithmetic mean.
    pub fn mean() -> Algorithm {
        Algorithm::of(AlgorithmKind::Stat(StatFn::Mean))
    }

    /// Population variance.
    pub fn variance() -> Algorithm {
        Algorithm::of(AlgorithmKind::Stat(StatFn::Variance))
    }

    /// Population standard deviation.
    pub fn std_dev() -> Algorithm {
        Algorithm::of(AlgorithmKind::Stat(StatFn::StdDev))
    }

    /// Mean absolute amplitude.
    pub fn mean_abs() -> Algorithm {
        Algorithm::of(AlgorithmKind::Stat(StatFn::MeanAbs))
    }

    /// Root mean square.
    pub fn rms() -> Algorithm {
        Algorithm::of(AlgorithmKind::Stat(StatFn::Rms))
    }

    /// Energy `Σx²`.
    pub fn energy() -> Algorithm {
        Algorithm::of(AlgorithmKind::Stat(StatFn::Energy))
    }

    /// Minimum sample.
    pub fn min() -> Algorithm {
        Algorithm::of(AlgorithmKind::Stat(StatFn::Min))
    }

    /// Maximum sample.
    pub fn max() -> Algorithm {
        Algorithm::of(AlgorithmKind::Stat(StatFn::Max))
    }

    /// Peak-to-peak amplitude.
    pub fn peak_to_peak() -> Algorithm {
        Algorithm::of(AlgorithmKind::Stat(StatFn::PeakToPeak))
    }
}

/// Ratio of dominant to mean spectral magnitude — the paper's pitched-
/// sound feature (§3.7.2).
#[derive(Debug, Clone, Copy)]
pub struct DominantRatio;

impl DominantRatio {
    /// Creates the stub.
    pub fn new() -> Algorithm {
        Algorithm::of(AlgorithmKind::DominantRatio)
    }
}

/// Frequency of the dominant spectral bin (paper §3.6 "determination of
/// magnitude of dominant frequency").
#[derive(Debug, Clone, Copy)]
pub struct DominantFrequency;

impl DominantFrequency {
    /// Creates the stub.
    pub fn new() -> Algorithm {
        Algorithm::of(AlgorithmKind::DominantFreq)
    }
}

/// Low-bound admission control (paper §3.6 "Admission Control").
#[derive(Debug, Clone, Copy)]
pub struct MinThreshold;

impl MinThreshold {
    /// Passes values `>= threshold`.
    pub fn new(threshold: f64) -> Algorithm {
        Algorithm::of(AlgorithmKind::MinThreshold { threshold })
    }
}

/// High-bound admission control.
#[derive(Debug, Clone, Copy)]
pub struct MaxThreshold;

impl MaxThreshold {
    /// Passes values `<= threshold`.
    pub fn new(threshold: f64) -> Algorithm {
        Algorithm::of(AlgorithmKind::MaxThreshold { threshold })
    }
}

/// Band admission control: passes values inside `[lo, hi]`.
#[derive(Debug, Clone, Copy)]
pub struct BandThreshold;

impl BandThreshold {
    /// Passes values in `[lo, hi]`.
    pub fn new(lo: f64, hi: f64) -> Algorithm {
        Algorithm::of(AlgorithmKind::BandThreshold { lo, hi })
    }
}

/// Complement band admission control: passes values outside `[lo, hi]`.
#[derive(Debug, Clone, Copy)]
pub struct OutsideThreshold;

impl OutsideThreshold {
    /// Passes values outside `[lo, hi]`.
    pub fn new(lo: f64, hi: f64) -> Algorithm {
        Algorithm::of(AlgorithmKind::OutsideThreshold { lo, hi })
    }
}

/// Duration condition: requires `count` consecutive upstream emissions
/// (the siren detector's "longer than 650 ms", paper §3.7.2).
///
/// The gap that still counts as "consecutive" is filled in by the
/// compiler from the upstream window hop, so developers only state the
/// count.
#[derive(Debug, Clone, Copy)]
pub struct Sustained;

impl Sustained {
    /// Requires `count` consecutive emissions.
    pub fn new(count: u32) -> Algorithm {
        let mut a = Algorithm::of(AlgorithmKind::Sustained { count, max_gap: 1 });
        a.needs_stride = true;
        a
    }
}

/// AND-join: emits when every open branch has delivered a fresh value.
#[derive(Debug, Clone, Copy)]
pub struct AllOf;

impl AllOf {
    /// Creates the stub.
    pub fn new() -> Algorithm {
        Algorithm::of(AlgorithmKind::AllOf)
    }
}

/// OR-join: emits whenever any open branch delivers a value.
#[derive(Debug, Clone, Copy)]
pub struct AnyOf;

impl AnyOf {
    /// Creates the stub.
    pub fn new() -> Algorithm {
        Algorithm::of(AlgorithmKind::AnyOf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stubs_carry_their_kinds() {
        assert_eq!(
            MovingAverage::new(10).kind(),
            &AlgorithmKind::MovingAvg { window: 10 }
        );
        assert_eq!(
            MinThreshold::new(15.0).kind(),
            &AlgorithmKind::MinThreshold { threshold: 15.0 }
        );
        assert_eq!(
            VectorMagnitude::new().kind(),
            &AlgorithmKind::VectorMagnitude
        );
        assert_eq!(
            HighPassFilter::new(750.0).kind(),
            &AlgorithmKind::HighPass { cutoff_hz: 750.0 }
        );
        assert_eq!(
            Window::hamming(256).kind(),
            &AlgorithmKind::Window {
                size: 256,
                hop: 256,
                shape: WindowShapeParam::Hamming
            }
        );
    }

    #[test]
    fn statistic_family_maps_to_stat_fns() {
        assert_eq!(Statistic::mean().kind(), &AlgorithmKind::Stat(StatFn::Mean));
        assert_eq!(
            Statistic::variance().kind(),
            &AlgorithmKind::Stat(StatFn::Variance)
        );
        assert_eq!(Statistic::rms().kind(), &AlgorithmKind::Stat(StatFn::Rms));
        assert_eq!(
            Statistic::peak_to_peak().kind(),
            &AlgorithmKind::Stat(StatFn::PeakToPeak)
        );
    }

    #[test]
    fn sustained_requests_stride_fill_in() {
        let s = Sustained::new(5);
        assert!(s.needs_stride);
        assert_eq!(
            s.kind(),
            &AlgorithmKind::Sustained {
                count: 5,
                max_gap: 1
            }
        );
    }

    #[test]
    fn window_constructors_set_geometry() {
        assert_eq!(
            Window::rectangular(128).kind(),
            &AlgorithmKind::Window {
                size: 128,
                hop: 128,
                shape: WindowShapeParam::Rectangular
            }
        );
        assert_eq!(
            Window::with_hop(128, 64, WindowShapeParam::Hann).kind(),
            &AlgorithmKind::Window {
                size: 128,
                hop: 64,
                shape: WindowShapeParam::Hann
            }
        );
    }
}
