//! Compilation of pipelines to the intermediate language.
//!
//! "Upon receiving a wake-up condition configuration, the sensor manager
//! generates its associated intermediate code" (paper §3.3). Node ids are
//! assigned sequentially in declaration order, exactly like the paper's
//! Fig. 2 example, and the last remaining branch is fed to `OUT`.
//!
//! Besides the mechanical translation, compilation fills in one platform
//! detail the paper's API hides from developers: `sustained(count)`
//! conditions need to know how far apart (in source samples) consecutive
//! upstream emissions are. The compiler tracks each branch's emission
//! stride (the window hop, or 1 for per-sample stages) and patches the
//! stub's `max_gap` accordingly.

use crate::pipeline::{PipelineStage, ProcessingPipeline};
use sidewinder_ir::{AlgorithmKind, NodeId, Program, Source};

/// A structural defect in a pipeline that prevents compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The pipeline has no stages at all.
    Empty,
    /// A pipeline-level algorithm was added before any branch existed.
    NoOpenBranch,
    /// A non-aggregating algorithm was added while several branches were
    /// open; add an aggregator (`VectorMagnitude`, `AllOf`, `AnyOf`)
    /// first.
    MultipleBranchesOpen {
        /// How many branches were open.
        open: usize,
    },
    /// The pipeline ends with more than one open branch; "at the end of
    /// the pipeline, there must be only one branch remaining" (paper
    /// §3.2).
    UnmergedBranches {
        /// How many branches remain.
        open: usize,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Empty => write!(f, "pipeline has no stages"),
            CompileError::NoOpenBranch => {
                write!(f, "algorithm added before any branch was opened")
            }
            CompileError::MultipleBranchesOpen { open } => write!(
                f,
                "non-aggregating algorithm added while {open} branches are open"
            ),
            CompileError::UnmergedBranches { open } => {
                write!(f, "pipeline ends with {open} unmerged branches")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiles a pipeline into an IR program.
///
/// # Errors
///
/// Returns a [`CompileError`] for branch-structure defects. The returned
/// program still needs [`Program::validate`] (the manager does both).
pub fn compile(pipeline: &ProcessingPipeline) -> Result<Program, CompileError> {
    if pipeline.is_empty() {
        return Err(CompileError::Empty);
    }
    let mut program = Program::new();
    let mut next_id = 1u32;
    // Open branch heads: (source of next stage, emission stride in source
    // samples).
    let mut open: Vec<(Source, u64)> = Vec::new();

    let mut alloc = |program: &mut Program, sources: Vec<Source>, kind: AlgorithmKind| -> NodeId {
        let id = NodeId(next_id);
        next_id += 1;
        program.push_node(sources, id, kind);
        id
    };

    for stage in &pipeline.stages {
        match stage {
            PipelineStage::Branches(branches) => {
                for branch in branches {
                    let mut head = Source::Channel(branch.source());
                    let mut stride = 1u64;
                    for algorithm in branch.chain() {
                        let kind = patch_stride(algorithm, stride);
                        stride = stride_after(&kind, stride);
                        let id = alloc(&mut program, vec![head], kind);
                        head = Source::Node(id);
                    }
                    open.push((head, stride));
                }
            }
            PipelineStage::Algorithm(algorithm) => {
                if open.is_empty() {
                    return Err(CompileError::NoOpenBranch);
                }
                let aggregates = algorithm.kind().is_aggregator();
                if !aggregates && open.len() > 1 {
                    return Err(CompileError::MultipleBranchesOpen { open: open.len() });
                }
                let stride_in = open.iter().map(|(_, s)| *s).max().unwrap_or(1);
                let kind = patch_stride(algorithm, stride_in);
                let stride_out = stride_after(&kind, stride_in);
                let sources: Vec<Source> = open.drain(..).map(|(s, _)| s).collect();
                let id = alloc(&mut program, sources, kind);
                open.push((Source::Node(id), stride_out));
            }
        }
    }

    match open.as_slice() {
        [(Source::Node(last), _)] => {
            program.push_out(*last);
            Ok(program)
        }
        [(Source::Channel(_), _)] => {
            // A bare channel with no algorithm cannot feed OUT.
            Err(CompileError::NoOpenBranch)
        }
        rest => Err(CompileError::UnmergedBranches { open: rest.len() }),
    }
}

/// Fills the `max_gap` of `sustained` stubs with the upstream stride.
fn patch_stride(algorithm: &crate::algorithm::Algorithm, stride: u64) -> AlgorithmKind {
    let mut kind = *algorithm.kind();
    if algorithm.needs_stride {
        if let AlgorithmKind::Sustained { count, .. } = kind {
            kind = AlgorithmKind::Sustained {
                count,
                max_gap: stride.min(u32::MAX as u64) as u32,
            };
        }
    }
    kind
}

/// The emission stride (in source samples) after a stage, given the
/// stride before it. Windows emit every `hop` source samples; everything
/// else emits per input.
fn stride_after(kind: &AlgorithmKind, stride_in: u64) -> u64 {
    match kind {
        AlgorithmKind::Window { hop, .. } => stride_in * *hop as u64,
        _ => stride_in,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{
        DominantRatio, Fft, HighPassFilter, MinThreshold, MovingAverage, SpectralMagnitude,
        Sustained, VectorMagnitude, Window,
    };
    use crate::pipeline::ProcessingBranch;
    use sidewinder_sensors::SensorChannel;

    fn significant_motion() -> ProcessingPipeline {
        let mut pipeline = ProcessingPipeline::new();
        let mut branches = vec![
            ProcessingBranch::new(SensorChannel::AccX),
            ProcessingBranch::new(SensorChannel::AccY),
            ProcessingBranch::new(SensorChannel::AccZ),
        ];
        for b in &mut branches {
            b.add(MovingAverage::new(10));
        }
        pipeline.add_branches(branches);
        pipeline.add(VectorMagnitude::new());
        pipeline.add(MinThreshold::new(15.0));
        pipeline
    }

    #[test]
    fn compiles_fig2_to_the_paper_ir() {
        let program = compile(&significant_motion()).unwrap();
        program.validate().unwrap();
        assert_eq!(
            program.to_string(),
            "\
ACC_X -> movingAvg(id=1, params={10});
ACC_Y -> movingAvg(id=2, params={10});
ACC_Z -> movingAvg(id=3, params={10});
1,2,3 -> vectorMagnitude(id=4);
4 -> minThreshold(id=5, params={15});
5 -> OUT;
"
        );
    }

    #[test]
    fn compiles_siren_shape_and_patches_sustained_gap() {
        let mut pipeline = ProcessingPipeline::new();
        let mut mic = ProcessingBranch::new(SensorChannel::Mic);
        mic.add(Window::hamming(256))
            .add(HighPassFilter::new(750.0))
            .add(Fft::new())
            .add(SpectralMagnitude::new())
            .add(DominantRatio::new())
            .add(MinThreshold::new(4.0))
            .add(Sustained::new(3));
        pipeline.add_branch(mic);
        let program = compile(&pipeline).unwrap();
        program.validate().unwrap();
        // The sustained stage must have inherited the window hop of 256.
        let sustained = program
            .nodes()
            .find_map(|(_, _, kind)| match kind {
                AlgorithmKind::Sustained { count, max_gap } => Some((*count, *max_gap)),
                _ => None,
            })
            .unwrap();
        assert_eq!(sustained, (3, 256));
    }

    #[test]
    fn empty_pipeline_is_rejected() {
        assert_eq!(
            compile(&ProcessingPipeline::new()),
            Err(CompileError::Empty)
        );
    }

    #[test]
    fn algorithm_before_branches_is_rejected() {
        let mut p = ProcessingPipeline::new();
        p.add(MinThreshold::new(0.0));
        assert_eq!(compile(&p), Err(CompileError::NoOpenBranch));
    }

    #[test]
    fn non_aggregator_with_open_branches_is_rejected() {
        let mut p = ProcessingPipeline::new();
        p.add_branches([
            ProcessingBranch::new(SensorChannel::AccX),
            ProcessingBranch::new(SensorChannel::AccY),
        ]);
        p.add(MinThreshold::new(0.0));
        assert_eq!(
            compile(&p),
            Err(CompileError::MultipleBranchesOpen { open: 2 })
        );
    }

    #[test]
    fn unmerged_branches_are_rejected() {
        let mut p = ProcessingPipeline::new();
        let mut a = ProcessingBranch::new(SensorChannel::AccX);
        a.add(MovingAverage::new(2));
        let mut b = ProcessingBranch::new(SensorChannel::AccY);
        b.add(MovingAverage::new(2));
        p.add_branches([a, b]);
        assert_eq!(compile(&p), Err(CompileError::UnmergedBranches { open: 2 }));
    }

    #[test]
    fn bare_channel_branch_is_rejected() {
        let mut p = ProcessingPipeline::new();
        p.add_branch(ProcessingBranch::new(SensorChannel::AccX));
        assert_eq!(compile(&p), Err(CompileError::NoOpenBranch));
    }

    #[test]
    fn branch_level_algorithms_keep_declaration_order_ids() {
        let mut p = ProcessingPipeline::new();
        let mut b = ProcessingBranch::new(SensorChannel::AccX);
        b.add(MovingAverage::new(3)).add(MovingAverage::new(5));
        p.add_branch(b);
        p.add(MinThreshold::new(1.0));
        let program = compile(&p).unwrap();
        let ids: Vec<u32> = program.nodes().map(|(_, id, _)| id.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn errors_display() {
        assert!(CompileError::Empty.to_string().contains("no stages"));
        assert!(CompileError::UnmergedBranches { open: 2 }
            .to_string()
            .contains("2"));
    }
}
