//! The Sidewinder sensor manager.
//!
//! [`SidewinderSensorManager`] plays the role of the paper's OS component
//! (§2.1.3, §3.1): it accepts wake-up conditions through the developer
//! API, compiles them to the intermediate language, validates them, sizes
//! them onto the cheapest capable microcontroller, pushes them to hub
//! runtimes, and invokes the registered [`SensorEventListener`] when a
//! condition fires.

use crate::compile::CompileError;
use crate::listener::{ConditionId, DataDelivery, SensorEvent, SensorEventListener};
use crate::pipeline::ProcessingPipeline;
use sidewinder_hub::fault::{HUB_REBOOT_TIME, PROBE_FRAME_BYTES};
use sidewinder_hub::link::SerialLink;
use sidewinder_hub::mcu::{CapacityError, Mcu};
use sidewinder_hub::runtime::{ChannelRates, HubRuntime};
use sidewinder_hub::HubError;
use sidewinder_ir::Program;
use sidewinder_sensors::{Micros, SensorChannel};
use std::collections::{BTreeMap, VecDeque};

/// Errors raised while registering or running wake-up conditions.
#[derive(Debug, Clone, PartialEq)]
pub enum ManagerError {
    /// The pipeline could not be compiled.
    Compile(CompileError),
    /// The compiled program failed validation or execution on the hub.
    Hub(HubError),
    /// No catalog microcontroller can run the pipeline in real time.
    Capacity(CapacityError),
    /// An unknown condition id was referenced.
    UnknownCondition(ConditionId),
}

impl std::fmt::Display for ManagerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManagerError::Compile(e) => write!(f, "compilation failed: {e}"),
            ManagerError::Hub(e) => write!(f, "hub rejected the condition: {e}"),
            ManagerError::Capacity(e) => write!(f, "no suitable microcontroller: {e}"),
            ManagerError::UnknownCondition(id) => write!(f, "unknown {id}"),
        }
    }
}

impl std::error::Error for ManagerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ManagerError::Compile(e) => Some(e),
            ManagerError::Hub(e) => Some(e),
            ManagerError::Capacity(e) => Some(e),
            ManagerError::UnknownCondition(_) => None,
        }
    }
}

impl From<CompileError> for ManagerError {
    fn from(e: CompileError) -> Self {
        ManagerError::Compile(e)
    }
}

impl From<HubError> for ManagerError {
    fn from(e: HubError) -> Self {
        ManagerError::Hub(e)
    }
}

impl From<CapacityError> for ManagerError {
    fn from(e: CapacityError) -> Self {
        ManagerError::Capacity(e)
    }
}

/// Accounting for one hub-reset recovery pass: what was re-downloaded and
/// how long the hub was out of service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Conditions whose runtimes were cleared and re-armed.
    pub conditions_reloaded: usize,
    /// Total program bytes pushed back over the serial link.
    pub bytes_redownloaded: usize,
    /// Link time spent on the re-download alone (CRC-framed).
    pub redownload_time: Micros,
    /// End-to-end outage: reboot, then a health-probe round trip, then
    /// the re-download.
    pub total_time: Micros,
}

/// A registered condition: its compiled program, sized MCU, hub runtime,
/// and listener.
struct Registered {
    id: ConditionId,
    program: Program,
    channels: Vec<SensorChannel>,
    delivery: DataDelivery,
    mcu: Mcu,
    runtime: HubRuntime,
    listener: Box<dyn SensorEventListener>,
}

impl std::fmt::Debug for Registered {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registered")
            .field("id", &self.id)
            .field("mcu", &self.mcu.name)
            .field("nodes", &self.runtime.node_count())
            .finish()
    }
}

/// The system service applications obtain to register wake-up conditions.
#[derive(Debug, Default)]
pub struct SidewinderSensorManager {
    rates: ChannelRates,
    conditions: Vec<Registered>,
    next_id: u64,
    /// Recent raw samples per channel, kept only as long as some
    /// registered condition wants a raw buffer delivered on wake-up.
    history: BTreeMap<SensorChannel, VecDeque<f64>>,
}

impl SidewinderSensorManager {
    /// Creates a manager with each channel at its default sample rate.
    pub fn new() -> Self {
        SidewinderSensorManager::default()
    }

    /// Creates a manager with explicit channel rates.
    pub fn with_rates(rates: ChannelRates) -> Self {
        SidewinderSensorManager {
            rates,
            ..SidewinderSensorManager::default()
        }
    }

    /// Registers a wake-up condition with its listener (the paper's
    /// `sManager.push(pipeline, this)`).
    ///
    /// Compiles the pipeline to IR, validates it, picks the cheapest
    /// microcontroller able to run it in real time, and loads it into a
    /// hub runtime.
    ///
    /// # Errors
    ///
    /// Returns a [`ManagerError`] if any of those steps fails; nothing is
    /// registered on error.
    pub fn push(
        &mut self,
        pipeline: &ProcessingPipeline,
        listener: impl SensorEventListener + 'static,
    ) -> Result<ConditionId, ManagerError> {
        self.push_with_delivery(pipeline, DataDelivery::default(), listener)
    }

    /// Registers a wake-up condition with an explicit data-delivery
    /// choice (paper S3.8 "Access to sensor data").
    ///
    /// # Errors
    ///
    /// Same as [`SidewinderSensorManager::push`].
    pub fn push_with_delivery(
        &mut self,
        pipeline: &ProcessingPipeline,
        delivery: DataDelivery,
        listener: impl SensorEventListener + 'static,
    ) -> Result<ConditionId, ManagerError> {
        let program = pipeline.compile()?;
        let mcu = Mcu::cheapest_for(&program, &self.rates)?;
        let runtime = HubRuntime::load(&program, &self.rates)?;
        let channels = program.channels();
        let id = ConditionId(self.next_id);
        self.next_id += 1;
        if let DataDelivery::RawBuffer { .. } = delivery {
            for &channel in &channels {
                self.history.entry(channel).or_default();
            }
        }
        self.conditions.push(Registered {
            id,
            program,
            channels,
            delivery,
            mcu,
            runtime,
            listener: Box::new(listener),
        });
        Ok(id)
    }

    /// Samples of history to keep for `channel`: the largest raw-buffer
    /// request among registered conditions reading it.
    fn history_cap(&self, channel: SensorChannel) -> usize {
        self.conditions
            .iter()
            .filter(|c| c.channels.contains(&channel))
            .filter_map(|c| match c.delivery {
                DataDelivery::RawBuffer { window } => {
                    Some(window.samples_at(self.rates.rate_of(channel)))
                }
                DataDelivery::ValueOnly => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Removes a registered condition.
    ///
    /// # Errors
    ///
    /// Returns [`ManagerError::UnknownCondition`] if `id` is not
    /// registered.
    pub fn remove(&mut self, id: ConditionId) -> Result<(), ManagerError> {
        let idx = self
            .conditions
            .iter()
            .position(|c| c.id == id)
            .ok_or(ManagerError::UnknownCondition(id))?;
        self.conditions.remove(idx);
        Ok(())
    }

    /// Feeds one sensor sample to every registered condition, invoking
    /// listeners whose conditions fire.
    ///
    /// # Errors
    ///
    /// Returns the first hub execution error; other conditions still
    /// receive the sample.
    pub fn on_sample(&mut self, channel: SensorChannel, value: f64) -> Result<(), ManagerError> {
        // Record history for raw-buffer delivery. The cap can shrink when
        // conditions are removed, so trim rather than pop once.
        let cap = self.history_cap(channel);
        if cap > 0 {
            let ring = self.history.entry(channel).or_default();
            while ring.len() >= cap {
                ring.pop_front();
            }
            ring.push_back(value);
        }

        let mut first_err = None;
        for condition in &mut self.conditions {
            match condition.runtime.push_sample(channel, value) {
                Ok(wakes) => {
                    for wake in wakes {
                        let data = match condition.delivery {
                            DataDelivery::ValueOnly => Vec::new(),
                            DataDelivery::RawBuffer { .. } => condition
                                .channels
                                .iter()
                                .map(|&c| {
                                    (
                                        c,
                                        self.history
                                            .get(&c)
                                            .map(|ring| ring.iter().copied().collect())
                                            .unwrap_or_default(),
                                    )
                                })
                                .collect(),
                        };
                        condition.listener.on_sensor_event(&SensorEvent {
                            condition: condition.id,
                            seq: wake.seq,
                            value: wake.value,
                            data,
                        });
                    }
                }
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            Some(e) => Err(e.into()),
            None => Ok(()),
        }
    }

    /// Number of registered conditions.
    pub fn condition_count(&self) -> usize {
        self.conditions.len()
    }

    /// The compiled program of a condition.
    pub fn program(&self, id: ConditionId) -> Option<&Program> {
        self.conditions
            .iter()
            .find(|c| c.id == id)
            .map(|c| &c.program)
    }

    /// The microcontroller a condition was sized onto.
    pub fn mcu(&self, id: ConditionId) -> Option<Mcu> {
        self.conditions.iter().find(|c| c.id == id).map(|c| c.mcu)
    }

    /// Total wake-ups a condition has raised.
    pub fn wake_count(&self, id: ConditionId) -> Option<u64> {
        self.conditions
            .iter()
            .find(|c| c.id == id)
            .map(|c| c.runtime.wake_count())
    }

    /// Time for one health-probe round trip on `link`: a probe frame out
    /// and its echo back, both CRC-framed. The phone sends one after a
    /// transfer timeout to distinguish a lost frame from a dead hub.
    pub fn probe_time(link: &SerialLink) -> Micros {
        link.framed_transfer_time(PROBE_FRAME_BYTES) * 2
    }

    /// Recovers from a hub watchdog reset: every registered condition's
    /// runtime state is gone, so each is cleared and re-armed, and the
    /// compiled programs are re-downloaded over `link`.
    ///
    /// Returns the accounting the caller charges through its power model:
    /// reboot time, one probe round trip (confirming the hub is back),
    /// and the CRC-framed re-download of every program.
    pub fn on_hub_reset(&mut self, link: &SerialLink) -> RecoveryReport {
        let mut bytes = 0usize;
        for condition in &mut self.conditions {
            condition.runtime.reset();
            bytes += condition.program.to_string().len();
        }
        let redownload_time = link.framed_transfer_time(bytes);
        RecoveryReport {
            conditions_reloaded: self.conditions.len(),
            bytes_redownloaded: bytes,
            redownload_time,
            total_time: HUB_REBOOT_TIME + Self::probe_time(link) + redownload_time,
        }
    }

    /// The hub's always-on power draw in milliwatts: the most expensive
    /// microcontroller any registered condition needs (one hub serves all
    /// conditions, sized for the most demanding).
    pub fn hub_power_mw(&self) -> f64 {
        self.conditions
            .iter()
            .map(|c| c.mcu.awake_power_mw)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{MinThreshold, MovingAverage, VectorMagnitude};
    use crate::pipeline::ProcessingBranch;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn significant_motion(threshold: f64) -> ProcessingPipeline {
        let mut p = ProcessingPipeline::new();
        let mut branches = vec![
            ProcessingBranch::new(SensorChannel::AccX),
            ProcessingBranch::new(SensorChannel::AccY),
            ProcessingBranch::new(SensorChannel::AccZ),
        ];
        for b in &mut branches {
            b.add(MovingAverage::new(10));
        }
        p.add_branches(branches);
        p.add(VectorMagnitude::new());
        p.add(MinThreshold::new(threshold));
        p
    }

    #[test]
    fn push_compiles_sizes_and_registers() {
        let mut m = SidewinderSensorManager::new();
        let id = m
            .push(&significant_motion(15.0), |_: &SensorEvent| {})
            .unwrap();
        assert_eq!(m.condition_count(), 1);
        assert_eq!(m.mcu(id).unwrap(), Mcu::MSP430);
        assert_eq!(m.hub_power_mw(), 3.6);
        assert!(m
            .program(id)
            .unwrap()
            .to_string()
            .contains("vectorMagnitude"));
        assert_eq!(m.wake_count(id), Some(0));
    }

    #[test]
    fn listener_fires_on_wake() {
        let mut m = SidewinderSensorManager::new();
        let events = Rc::new(RefCell::new(Vec::new()));
        let sink = events.clone();
        let id = m
            .push(&significant_motion(15.0), move |e: &SensorEvent| {
                sink.borrow_mut().push(e.clone());
            })
            .unwrap();
        for _ in 0..20 {
            for c in SensorChannel::ACCEL {
                m.on_sample(c, 12.0).unwrap();
            }
        }
        let events = events.borrow();
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.condition == id));
        assert!(events.iter().all(|e| e.value >= 15.0));
        assert_eq!(m.wake_count(id), Some(events.len() as u64));
    }

    #[test]
    fn multiple_conditions_run_concurrently() {
        // Paper §1 raises concurrent applications as a challenge for fully
        // programmable hubs; the manager supports them naturally.
        let mut m = SidewinderSensorManager::new();
        let low = m
            .push(&significant_motion(5.0), |_: &SensorEvent| {})
            .unwrap();
        let high = m
            .push(&significant_motion(50.0), |_: &SensorEvent| {})
            .unwrap();
        for _ in 0..20 {
            for c in SensorChannel::ACCEL {
                m.on_sample(c, 6.0).unwrap();
            }
        }
        assert!(m.wake_count(low).unwrap() > 0);
        assert_eq!(m.wake_count(high), Some(0));
    }

    #[test]
    fn remove_unregisters() {
        let mut m = SidewinderSensorManager::new();
        let id = m
            .push(&significant_motion(15.0), |_: &SensorEvent| {})
            .unwrap();
        m.remove(id).unwrap();
        assert_eq!(m.condition_count(), 0);
        assert_eq!(m.remove(id), Err(ManagerError::UnknownCondition(id)));
        assert!(m.mcu(id).is_none());
    }

    #[test]
    fn push_rejects_broken_pipelines() {
        let mut m = SidewinderSensorManager::new();
        let err = m
            .push(&ProcessingPipeline::new(), |_: &SensorEvent| {})
            .unwrap_err();
        assert!(matches!(err, ManagerError::Compile(CompileError::Empty)));
        assert_eq!(m.condition_count(), 0);
    }

    #[test]
    fn hub_power_tracks_most_demanding_condition() {
        use crate::algorithm::{DominantRatio, Fft, MinThreshold, SpectralMagnitude, Window};
        let mut m = SidewinderSensorManager::new();
        m.push(&significant_motion(15.0), |_: &SensorEvent| {})
            .unwrap();
        assert_eq!(m.hub_power_mw(), Mcu::MSP430.awake_power_mw);

        let mut siren = ProcessingPipeline::new();
        let mut mic = ProcessingBranch::new(SensorChannel::Mic);
        mic.add(Window::hamming(256))
            .add(Fft::new())
            .add(SpectralMagnitude::new())
            .add(DominantRatio::new())
            .add(MinThreshold::new(4.0));
        siren.add_branch(mic);
        let id = m.push(&siren, |_: &SensorEvent| {}).unwrap();
        assert_eq!(m.mcu(id).unwrap(), Mcu::LM4F120);
        assert_eq!(m.hub_power_mw(), Mcu::LM4F120.awake_power_mw);
    }

    #[test]
    fn raw_buffer_delivery_hands_over_recent_samples() {
        let mut m = SidewinderSensorManager::new();
        let events = Rc::new(RefCell::new(Vec::new()));
        let sink = events.clone();
        m.push_with_delivery(
            &significant_motion(10.0),
            DataDelivery::RawBuffer {
                window: sidewinder_sensors::Micros::from_secs(1),
            },
            move |e: &SensorEvent| sink.borrow_mut().push(e.clone()),
        )
        .unwrap();
        for i in 0..60 {
            for c in SensorChannel::ACCEL {
                m.on_sample(c, 11.0 + i as f64 * 0.01).unwrap();
            }
        }
        let events = events.borrow();
        assert!(!events.is_empty());
        let event = events.last().unwrap();
        // One buffer per channel the condition reads.
        let channels: Vec<_> = event.data.iter().map(|(c, _)| *c).collect();
        assert_eq!(channels, SensorChannel::ACCEL.to_vec());
        for (_, buffer) in &event.data {
            // 1 s at 50 Hz, capped at 50 samples, holding recent values.
            assert!(buffer.len() <= 50 && buffer.len() > 10, "{}", buffer.len());
            assert!(buffer.iter().all(|v| *v > 10.0));
        }
    }

    #[test]
    fn value_only_delivery_has_no_buffers() {
        let mut m = SidewinderSensorManager::new();
        let events = Rc::new(RefCell::new(Vec::new()));
        let sink = events.clone();
        m.push_with_delivery(
            &significant_motion(10.0),
            DataDelivery::ValueOnly,
            move |e: &SensorEvent| sink.borrow_mut().push(e.clone()),
        )
        .unwrap();
        for _ in 0..30 {
            for c in SensorChannel::ACCEL {
                m.on_sample(c, 12.0).unwrap();
            }
        }
        let events = events.borrow();
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.data.is_empty()));
    }

    #[test]
    fn hub_reset_recovery_rearms_conditions() {
        let mut m = SidewinderSensorManager::new();
        let events = Rc::new(RefCell::new(0usize));
        let sink = events.clone();
        let id = m
            .push(&significant_motion(15.0), move |_: &SensorEvent| {
                *sink.borrow_mut() += 1;
            })
            .unwrap();
        for _ in 0..20 {
            for c in SensorChannel::ACCEL {
                m.on_sample(c, 12.0).unwrap();
            }
        }
        let before_reset = *events.borrow();
        assert!(before_reset > 0);

        let report = m.on_hub_reset(&SerialLink::NEXUS4_UART);
        assert_eq!(report.conditions_reloaded, 1);
        assert!(report.bytes_redownloaded > 0);
        assert!(report.redownload_time > Micros::ZERO);
        assert!(report.total_time > HUB_REBOOT_TIME + report.redownload_time);
        // Reset clears hub-side state, including wake counters…
        assert_eq!(m.wake_count(id), Some(0));

        // …and the condition keeps firing on fresh data afterwards.
        for _ in 0..20 {
            for c in SensorChannel::ACCEL {
                m.on_sample(c, 12.0).unwrap();
            }
        }
        assert!(*events.borrow() > before_reset);
        assert!(m.wake_count(id).unwrap() > 0);
    }

    #[test]
    fn probe_time_scales_with_link_speed() {
        let fast = SidewinderSensorManager::probe_time(&SerialLink::NEXUS4_UART);
        let slow = SidewinderSensorManager::probe_time(&SerialLink::new(9_600));
        assert!(slow > fast);
        assert!(fast > Micros::ZERO);
    }

    #[test]
    fn error_display_chains() {
        let e = ManagerError::Compile(CompileError::Empty);
        assert!(e.to_string().contains("compilation failed"));
        let e = ManagerError::UnknownCondition(ConditionId(9));
        assert!(e.to_string().contains("condition#9"));
    }
}
