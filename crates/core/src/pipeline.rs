//! Processing pipelines and branches.
//!
//! A [`ProcessingBranch`] is "the flow of data from either a sensor to an
//! algorithm or between two algorithms"; a [`ProcessingPipeline`]
//! "represents the entire wake-up condition from the input sensors to the
//! final output" (paper §3.2). Branches start at sensor channels; adding
//! an aggregation algorithm to the pipeline merges all open branches into
//! one; at the end exactly one branch must remain.

use crate::algorithm::Algorithm;
use sidewinder_sensors::SensorChannel;

/// A chain of algorithms rooted at a sensor channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessingBranch {
    source: SensorChannel,
    chain: Vec<Algorithm>,
}

impl ProcessingBranch {
    /// Starts a branch at a sensor channel.
    pub fn new(source: SensorChannel) -> Self {
        ProcessingBranch {
            source,
            chain: Vec::new(),
        }
    }

    /// Appends an algorithm to the branch, returning `&mut self` for
    /// chaining.
    pub fn add(&mut self, algorithm: Algorithm) -> &mut Self {
        self.chain.push(algorithm);
        self
    }

    /// The source channel.
    pub fn source(&self) -> SensorChannel {
        self.source
    }

    /// The algorithms on this branch, in order.
    pub fn chain(&self) -> &[Algorithm] {
        &self.chain
    }
}

/// A stage appended at pipeline level after the branches.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum PipelineStage {
    /// The initial parallel branches.
    Branches(Vec<ProcessingBranch>),
    /// A pipeline-level algorithm; aggregators merge all open branches.
    Algorithm(Algorithm),
}

/// The entire wake-up condition: branches plus the chain of pipeline-level
/// algorithms applied after them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProcessingPipeline {
    pub(crate) stages: Vec<PipelineStage>,
}

impl ProcessingPipeline {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        ProcessingPipeline::default()
    }

    /// Adds a group of branches (the paper's `pipeline.add(branches)`).
    pub fn add_branches(
        &mut self,
        branches: impl IntoIterator<Item = ProcessingBranch>,
    ) -> &mut Self {
        let group: Vec<ProcessingBranch> = branches.into_iter().collect();
        self.stages.push(PipelineStage::Branches(group));
        self
    }

    /// Adds a single branch.
    pub fn add_branch(&mut self, branch: ProcessingBranch) -> &mut Self {
        self.add_branches([branch])
    }

    /// Adds a pipeline-level algorithm (the paper's `pipeline.add(vm)`).
    ///
    /// If the algorithm is an aggregator it merges all open branches into
    /// one; otherwise it extends the single open branch.
    pub fn add(&mut self, algorithm: Algorithm) -> &mut Self {
        self.stages.push(PipelineStage::Algorithm(algorithm));
        self
    }

    /// The number of branches opened across all branch groups.
    pub fn branch_count(&self) -> usize {
        self.stages
            .iter()
            .map(|s| match s {
                PipelineStage::Branches(b) => b.len(),
                PipelineStage::Algorithm(_) => 0,
            })
            .sum()
    }

    /// Whether any stages have been added.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Compiles the pipeline to an intermediate-language program; see
    /// [`crate::compile`].
    ///
    /// # Errors
    ///
    /// Returns a [`crate::CompileError`] for structurally broken
    /// pipelines.
    pub fn compile(&self) -> Result<sidewinder_ir::Program, crate::CompileError> {
        crate::compile::compile(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{MinThreshold, MovingAverage, VectorMagnitude};

    #[test]
    fn branch_records_source_and_chain() {
        let mut b = ProcessingBranch::new(SensorChannel::AccX);
        b.add(MovingAverage::new(10)).add(MinThreshold::new(1.0));
        assert_eq!(b.source(), SensorChannel::AccX);
        assert_eq!(b.chain().len(), 2);
    }

    #[test]
    fn pipeline_counts_branches() {
        let mut p = ProcessingPipeline::new();
        assert!(p.is_empty());
        p.add_branches([
            ProcessingBranch::new(SensorChannel::AccX),
            ProcessingBranch::new(SensorChannel::AccY),
        ]);
        p.add_branch(ProcessingBranch::new(SensorChannel::AccZ));
        p.add(VectorMagnitude::new());
        assert_eq!(p.branch_count(), 3);
        assert!(!p.is_empty());
    }
}
