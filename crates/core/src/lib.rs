//! The Sidewinder developer API.
//!
//! This crate is the reproduction of the paper's §3.2 programming
//! interface: application developers construct *wake-up conditions* by
//! parameterizing and chaining predefined sensor-processing algorithms,
//! never writing hub-native code. The four API components map directly to
//! the paper's:
//!
//! * [`ProcessingPipeline`] — the whole wake-up condition, from input
//!   sensors to the final output;
//! * [`ProcessingBranch`] — the flow of data from a sensor channel through
//!   a chain of algorithms;
//! * [`algorithm`] — stub types ([`algorithm::MovingAverage`],
//!   [`algorithm::VectorMagnitude`], [`algorithm::MinThreshold`], …) that
//!   stand for the implementations living on the low-power hub;
//! * [`SensorEventListener`] — the callback invoked when the condition is
//!   satisfied and the main processor wakes.
//!
//! [`SidewinderSensorManager`] compiles pipelines to the intermediate
//! language, sizes them onto the cheapest capable microcontroller, loads
//! them into hub runtimes, and dispatches wake events to listeners.
//!
//! # Example — the paper's significant-motion condition (Fig. 2)
//!
//! ```
//! use sidewinder_core::algorithm::{MinThreshold, MovingAverage, VectorMagnitude};
//! use sidewinder_core::{ProcessingBranch, ProcessingPipeline, SidewinderSensorManager};
//! use sidewinder_sensors::SensorChannel;
//!
//! let mut pipeline = ProcessingPipeline::new();
//! let mut branches = [
//!     ProcessingBranch::new(SensorChannel::AccX),
//!     ProcessingBranch::new(SensorChannel::AccY),
//!     ProcessingBranch::new(SensorChannel::AccZ),
//! ];
//! for branch in &mut branches {
//!     branch.add(MovingAverage::new(10));
//! }
//! pipeline.add_branches(branches);
//! pipeline.add(VectorMagnitude::new());
//! pipeline.add(MinThreshold::new(15.0));
//!
//! let mut manager = SidewinderSensorManager::new();
//! let wakes = std::rc::Rc::new(std::cell::Cell::new(0u32));
//! let counter = wakes.clone();
//! let id = manager.push(&pipeline, move |_event: &sidewinder_core::SensorEvent| {
//!     counter.set(counter.get() + 1);
//! })?;
//!
//! // The condition now runs "on the hub": feed samples through the manager.
//! for _ in 0..20 {
//!     for c in SensorChannel::ACCEL {
//!         manager.on_sample(c, 12.0)?;
//!     }
//! }
//! assert!(wakes.get() > 0);
//! assert_eq!(manager.mcu(id).unwrap().name, "TI MSP430");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod algorithm;
pub mod compile;
pub mod fusion;
pub mod listener;
pub mod manager;
pub mod pipeline;

pub use compile::CompileError;
pub use listener::{ConditionId, DataDelivery, SensorEvent, SensorEventListener};
pub use manager::{ManagerError, SidewinderSensorManager};
pub use pipeline::{ProcessingBranch, ProcessingPipeline};
