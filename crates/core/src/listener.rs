//! Wake-up callbacks.

/// Identifier of a registered wake-up condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConditionId(pub u64);

impl std::fmt::Display for ConditionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "condition#{}", self.0)
    }
}

/// What sensor data the hub hands to the application on a wake-up.
///
/// The paper's §3.8 "Access to sensor data" leaves this as an API design
/// question — "some applications may be interested in the raw sensor
/// data, while others may want to use the filtered data or extracted
/// features" — and notes its own implementation passes a raw buffer.
/// Both options are offered here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DataDelivery {
    /// Deliver only the triggering feature value (cheapest).
    ValueOnly,
    /// Deliver a buffer of the most recent raw samples from every channel
    /// the condition reads (the paper's default behaviour).
    RawBuffer {
        /// How much history to deliver.
        window: sidewinder_sensors::Micros,
    },
}

impl Default for DataDelivery {
    /// The paper's implementation choice: a raw buffer (4 s).
    fn default() -> Self {
        DataDelivery::RawBuffer {
            window: sidewinder_sensors::Micros::from_secs(4),
        }
    }
}

/// The event delivered to a listener when its wake-up condition fires —
/// the analogue of the paper's `OnSensorEvent(SensorData data)` callback.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorEvent {
    /// Which registered condition fired.
    pub condition: ConditionId,
    /// Sequence number (source-sample index) of the triggering value.
    pub seq: u64,
    /// The scalar value that reached `OUT`.
    pub value: f64,
    /// Raw sample history per channel the condition reads, when the
    /// condition was registered with [`DataDelivery::RawBuffer`];
    /// empty under [`DataDelivery::ValueOnly`].
    pub data: Vec<(sidewinder_sensors::SensorChannel, Vec<f64>)>,
}

/// The callback registered together with a wake-up condition (the paper's
/// `SensorEventListener`).
///
/// Implemented for all `FnMut(&SensorEvent)` closures, so tests and
/// applications can register inline handlers.
pub trait SensorEventListener {
    /// Invoked on the "main processor" when the condition is satisfied.
    fn on_sensor_event(&mut self, event: &SensorEvent);
}

impl<F: FnMut(&SensorEvent)> SensorEventListener for F {
    fn on_sensor_event(&mut self, event: &SensorEvent) {
        self(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_are_listeners() {
        let mut seen = Vec::new();
        {
            let mut listener = |e: &SensorEvent| seen.push(e.value);
            listener.on_sensor_event(&SensorEvent {
                condition: ConditionId(1),
                seq: 7,
                value: 3.5,
                data: Vec::new(),
            });
        }
        assert_eq!(seen, vec![3.5]);
    }

    #[test]
    fn default_delivery_is_a_raw_buffer() {
        assert_eq!(
            DataDelivery::default(),
            DataDelivery::RawBuffer {
                window: sidewinder_sensors::Micros::from_secs(4)
            }
        );
    }

    #[test]
    fn condition_id_displays() {
        assert_eq!(ConditionId(4).to_string(), "condition#4");
    }
}
