//! Pipeline fusion across concurrent applications.
//!
//! The paper's future work (§7) suggests: "When receiving multiple wake-up
//! conditions, the sensor manager can attempt to improve performance by
//! combining the pipelines that use common algorithms." This module
//! implements that optimization: structurally identical nodes (same
//! algorithm, same parameters, same already-fused inputs) are shared
//! across programs, so two applications that each open with
//! `ACC_X -> movingAvg(10)` run a single moving-average instance on the
//! hub.
//!
//! [`FusionReport`] quantifies the saving; [`FusedRuntime`] executes the
//! fused node set with one `OUT` watch per original program.

use sidewinder_hub::cost::PipelineCost;
use sidewinder_hub::instance::AlgoInstance;
use sidewinder_hub::runtime::{ChannelRates, WakeEvent};
use sidewinder_hub::value::ValueRef;
use sidewinder_hub::HubError;
use sidewinder_ir::{AlgorithmKind, NodeId, Program, Source};
use sidewinder_sensors::SensorChannel;
use std::collections::BTreeMap;

/// Structural key of a node: its inputs (already mapped into fused id
/// space) plus its algorithm configuration.
#[derive(Debug, Clone, PartialEq)]
struct NodeKey {
    sources: Vec<Source>,
    kind: AlgorithmKind,
}

/// One fused node.
#[derive(Debug, Clone)]
struct FusedNode {
    sources: Vec<Source>,
    kind: AlgorithmKind,
}

/// The result of fusing several programs.
#[derive(Debug, Clone)]
pub struct FusedPlan {
    nodes: Vec<FusedNode>,
    /// For each input program, the fused node that feeds its `OUT`.
    outs: Vec<NodeId>,
}

/// Savings summary for a fusion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusionReport {
    /// Node count if every program ran its own instances.
    pub unfused_nodes: usize,
    /// Node count after sharing.
    pub fused_nodes: usize,
    /// Hub compute demand without sharing, flops/s.
    pub unfused_flops_per_s: f64,
    /// Hub compute demand with sharing, flops/s.
    pub fused_flops_per_s: f64,
}

impl FusionReport {
    /// Fraction of node instances eliminated, in `[0, 1]`.
    pub fn node_saving(&self) -> f64 {
        if self.unfused_nodes == 0 {
            0.0
        } else {
            1.0 - self.fused_nodes as f64 / self.unfused_nodes as f64
        }
    }

    /// Fraction of hub compute eliminated, in `[0, 1]`.
    pub fn compute_saving(&self) -> f64 {
        if self.unfused_flops_per_s <= 0.0 {
            0.0
        } else {
            1.0 - self.fused_flops_per_s / self.unfused_flops_per_s
        }
    }
}

impl FusedPlan {
    /// Fuses a set of validated programs.
    ///
    /// # Errors
    ///
    /// Returns [`HubError::Invalid`] if any input program fails
    /// validation.
    pub fn fuse(programs: &[&Program]) -> Result<FusedPlan, HubError> {
        let mut nodes: Vec<FusedNode> = Vec::new();
        let mut keys: Vec<NodeKey> = Vec::new();
        let mut outs = Vec::new();

        for program in programs {
            program.validate()?;
            // Map from this program's ids to fused ids.
            let mut id_map: BTreeMap<NodeId, NodeId> = BTreeMap::new();
            for (sources, id, kind) in program.nodes() {
                let fused_sources: Vec<Source> = sources
                    .iter()
                    .map(|s| match s {
                        Source::Channel(c) => Source::Channel(*c),
                        Source::Node(n) => Source::Node(id_map[n]),
                    })
                    .collect();
                let key = NodeKey {
                    sources: fused_sources.clone(),
                    kind: *kind,
                };
                let fused_id = match keys.iter().position(|k| *k == key) {
                    Some(pos) => NodeId(pos as u32 + 1),
                    None => {
                        keys.push(key);
                        nodes.push(FusedNode {
                            sources: fused_sources,
                            kind: *kind,
                        });
                        NodeId(nodes.len() as u32)
                    }
                };
                id_map.insert(id, fused_id);
            }
            let out = program
                .out_source()
                .expect("validated programs have an OUT");
            outs.push(id_map[&out]);
        }
        Ok(FusedPlan { nodes, outs })
    }

    /// Number of fused node instances.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The fused node feeding program `index`'s `OUT`.
    pub fn out_of(&self, index: usize) -> Option<NodeId> {
        self.outs.get(index).copied()
    }

    /// Renders the fused node set as a single multi-`OUT` report (for
    /// inspection; not parseable IR since the IR grammar allows one OUT).
    pub fn describe(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let sources: Vec<String> = node.sources.iter().map(|x| x.to_string()).collect();
            let _ = writeln!(
                s,
                "{} -> {}(id={})",
                sources.join(","),
                node.kind.ir_name(),
                i + 1
            );
        }
        for (p, out) in self.outs.iter().enumerate() {
            let _ = writeln!(s, "{out} -> OUT[{p}]");
        }
        s
    }

    /// Computes the savings report for the fusion of `programs`.
    ///
    /// # Errors
    ///
    /// Returns [`HubError::Invalid`] if any program fails validation.
    pub fn report(programs: &[&Program], rates: &ChannelRates) -> Result<FusionReport, HubError> {
        let plan = FusedPlan::fuse(programs)?;
        let unfused_nodes: usize = programs.iter().map(|p| p.nodes().count()).sum();
        let unfused_flops: f64 = programs
            .iter()
            .map(|p| PipelineCost::analyze(p, rates).total_flops_per_second())
            .sum();
        // Build a single-program view of the fused plan to cost it. Each
        // fused node appears once.
        let mut fused_program = Program::new();
        for (i, node) in plan.nodes.iter().enumerate() {
            fused_program.push_node(node.sources.clone(), NodeId(i as u32 + 1), node.kind);
        }
        let fused_flops = PipelineCost::analyze(&fused_program, rates).total_flops_per_second();
        Ok(FusionReport {
            unfused_nodes,
            fused_nodes: plan.nodes.len(),
            unfused_flops_per_s: unfused_flops,
            fused_flops_per_s: fused_flops,
        })
    }
}

/// One loaded fused node: its shared instance, its input edges, and the
/// dense indices of its consumers (for readiness propagation).
#[derive(Debug)]
struct FusedInstance {
    instance: AlgoInstance,
    sources: Vec<Source>,
    consumers: Vec<usize>,
}

/// Executes a fused plan: shared instances, one wake stream per original
/// program.
///
/// Uses the same dense ready/fresh pass as `HubRuntime`: fused node ids
/// are contiguous (`NodeId(i + 1)` ↔ index `i`) and define-before-use, so
/// one walk of the node list per sample propagates every result, with
/// values borrowed from the producers' reusable slots.
#[derive(Debug)]
pub struct FusedRuntime {
    nodes: Vec<FusedInstance>,
    /// For each input program, the dense index of the node feeding its
    /// `OUT`.
    outs: Vec<usize>,
    /// For each channel (by [`SensorChannel::index`]): the nodes with at
    /// least one port fed directly by it.
    channel_entries: [Vec<usize>; SensorChannel::COUNT],
    channel_seq: [u64; SensorChannel::COUNT],
    ready: Vec<bool>,
    fresh: Vec<bool>,
}

/// Dense index of a fused source node (`NodeId(i + 1)` ↔ index `i`).
fn dense(n: NodeId) -> usize {
    n.0 as usize - 1
}

impl FusedRuntime {
    /// Loads a fused plan with the given channel rates.
    ///
    /// # Errors
    ///
    /// Returns [`HubError::Exec`] if an algorithm parameter is unusable —
    /// the input programs are validated, but instantiation stays fallible
    /// so malformed plans error instead of panicking.
    pub fn load(plan: &FusedPlan, rates: &ChannelRates) -> Result<FusedRuntime, HubError> {
        let mut node_rates: BTreeMap<NodeId, f64> = BTreeMap::new();
        let mut nodes: Vec<FusedInstance> = Vec::new();
        let mut channel_entries: [Vec<usize>; SensorChannel::COUNT] = Default::default();
        for (i, node) in plan.nodes.iter().enumerate() {
            let id = NodeId(i as u32 + 1);
            let rate = match node.sources.first() {
                Some(Source::Channel(c)) => rates.rate_of(*c),
                Some(Source::Node(n)) => node_rates[n],
                None => 0.0,
            };
            node_rates.insert(id, rate);
            for source in &node.sources {
                match source {
                    Source::Channel(c) => {
                        let entries = &mut channel_entries[c.index()];
                        if !entries.contains(&i) {
                            entries.push(i);
                        }
                    }
                    Source::Node(n) => nodes[dense(*n)].consumers.push(i),
                }
            }
            nodes.push(FusedInstance {
                instance: AlgoInstance::new(id, &node.kind, node.sources.len(), rate)?,
                sources: node.sources.clone(),
                consumers: Vec::new(),
            });
        }
        let count = nodes.len();
        Ok(FusedRuntime {
            nodes,
            outs: plan.outs.iter().map(|&n| dense(n)).collect(),
            channel_entries,
            channel_seq: [0; SensorChannel::COUNT],
            ready: vec![false; count],
            fresh: vec![false; count],
        })
    }

    /// Feeds one sample; returns `(program_index, wake)` pairs for every
    /// original program whose condition fired.
    ///
    /// # Errors
    ///
    /// Returns [`HubError::Exec`] if an instance fails.
    pub fn push_sample(
        &mut self,
        channel: SensorChannel,
        sample: f64,
    ) -> Result<Vec<(usize, WakeEvent)>, HubError> {
        let seq = self.channel_seq[channel.index()];
        self.channel_seq[channel.index()] += 1;

        self.ready.fill(false);
        self.fresh.fill(false);
        for &entry in &self.channel_entries[channel.index()] {
            self.ready[entry] = true;
        }

        for i in 0..self.nodes.len() {
            if !self.ready[i] {
                continue;
            }
            let (before, rest) = self.nodes.split_at_mut(i);
            let node = &mut rest[0];
            node.instance.clear_result();
            for (port, source) in node.sources.iter().enumerate() {
                match source {
                    Source::Channel(c) if *c == channel => {
                        node.instance
                            .feed_ref(port, seq, ValueRef::Scalar(sample))
                            .map_err(HubError::from)?;
                    }
                    Source::Channel(_) => {}
                    Source::Node(n) => {
                        let src = dense(*n);
                        if self.fresh[src] {
                            let (src_seq, value) = before[src]
                                .instance
                                .result_ref()
                                .expect("fresh producer holds a result");
                            node.instance
                                .feed_ref(port, src_seq, value)
                                .map_err(HubError::from)?;
                        }
                    }
                }
            }
            if node.instance.has_result() {
                self.fresh[i] = true;
                for &consumer in &node.consumers {
                    self.ready[consumer] = true;
                }
            }
        }

        let mut wakes = Vec::new();
        for (program_idx, &out) in self.outs.iter().enumerate() {
            if self.fresh[out] {
                let (out_seq, value) = self.nodes[out]
                    .instance
                    .result_ref()
                    .expect("fresh node holds a result");
                if let Some(value) = value.as_scalar() {
                    wakes.push((
                        program_idx,
                        WakeEvent {
                            seq: out_seq,
                            value,
                        },
                    ));
                }
            }
        }
        Ok(wakes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program(text: &str) -> Program {
        text.parse().unwrap()
    }

    /// Two significant-motion variants sharing their moving averages and
    /// vector magnitude, differing only in threshold.
    fn sig_motion(threshold: f64) -> Program {
        program(&format!(
            "ACC_X -> movingAvg(id=1, params={{10}});
             ACC_Y -> movingAvg(id=2, params={{10}});
             ACC_Z -> movingAvg(id=3, params={{10}});
             1,2,3 -> vectorMagnitude(id=4);
             4 -> minThreshold(id=5, params={{{threshold}}});
             5 -> OUT;"
        ))
    }

    #[test]
    fn identical_prefixes_are_shared() {
        let a = sig_motion(15.0);
        let b = sig_motion(30.0);
        let plan = FusedPlan::fuse(&[&a, &b]).unwrap();
        // 10 nodes unfused; fused: 3 movingAvg + 1 vm + 2 thresholds = 6.
        assert_eq!(plan.node_count(), 6);
        assert_ne!(plan.out_of(0), plan.out_of(1));
        assert!(plan.describe().contains("OUT[1]"));
    }

    #[test]
    fn identical_programs_fuse_completely() {
        let a = sig_motion(15.0);
        let b = sig_motion(15.0);
        let plan = FusedPlan::fuse(&[&a, &b]).unwrap();
        assert_eq!(plan.node_count(), 5);
        assert_eq!(plan.out_of(0), plan.out_of(1));
    }

    #[test]
    fn unrelated_programs_do_not_fuse() {
        let a = sig_motion(15.0);
        let b = program(
            "MIC -> window(id=1, params={64, 64, 0});
             1 -> rms(id=2);
             2 -> minThreshold(id=3, params={0.5});
             3 -> OUT;",
        );
        let plan = FusedPlan::fuse(&[&a, &b]).unwrap();
        assert_eq!(plan.node_count(), 8);
    }

    #[test]
    fn report_quantifies_savings() {
        let a = sig_motion(15.0);
        let b = sig_motion(30.0);
        let report = FusionReport::default_for_test(&a, &b);
        assert_eq!(report.unfused_nodes, 10);
        assert_eq!(report.fused_nodes, 6);
        assert!(report.node_saving() > 0.39 && report.node_saving() < 0.41);
        assert!(report.compute_saving() > 0.4);
        assert!(report.fused_flops_per_s < report.unfused_flops_per_s);
    }

    impl FusionReport {
        fn default_for_test(a: &Program, b: &Program) -> FusionReport {
            FusedPlan::report(&[a, b], &ChannelRates::default()).unwrap()
        }
    }

    #[test]
    fn fusion_rejects_invalid_programs() {
        let bad = program("ACC_X -> movingAvg(id=1, params={10});");
        assert!(FusedPlan::fuse(&[&bad]).is_err());
    }

    #[test]
    fn fused_runtime_delivers_per_program_wakes() {
        let low = sig_motion(5.0);
        let high = sig_motion(50.0);
        let plan = FusedPlan::fuse(&[&low, &high]).unwrap();
        let mut rt = FusedRuntime::load(&plan, &ChannelRates::default()).unwrap();
        let mut low_wakes = 0;
        let mut high_wakes = 0;
        for _ in 0..20 {
            for c in SensorChannel::ACCEL {
                for (idx, _) in rt.push_sample(c, 6.0).unwrap() {
                    match idx {
                        0 => low_wakes += 1,
                        1 => high_wakes += 1,
                        _ => unreachable!(),
                    }
                }
            }
        }
        assert!(low_wakes > 0);
        assert_eq!(high_wakes, 0);
    }

    #[test]
    fn fused_runtime_matches_separate_runtimes() {
        use sidewinder_hub::runtime::HubRuntime;
        let a = sig_motion(8.0);
        let plan = FusedPlan::fuse(&[&a]).unwrap();
        let mut fused = FusedRuntime::load(&plan, &ChannelRates::default()).unwrap();
        let mut solo = HubRuntime::load(&a, &ChannelRates::default()).unwrap();
        for i in 0..60 {
            let x = (i as f64 * 0.37).sin() * 12.0;
            for c in SensorChannel::ACCEL {
                let fw = fused.push_sample(c, x).unwrap();
                let sw = solo.push_sample(c, x).unwrap();
                assert_eq!(fw.len(), sw.len());
                for ((_, f), s) in fw.iter().zip(&sw) {
                    assert_eq!(f, s);
                }
            }
        }
    }
}
