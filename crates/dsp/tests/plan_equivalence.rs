//! Bit-exactness of the planned FFT against the reference kernel.
//!
//! The determinism conformance suite compares wake sequences bit for bit,
//! so [`FftPlan`] must not merely approximate [`fft::transform`] — every
//! output float must match exactly, for every transform length the hub can
//! encounter. The plan tabulates the same `w *= wlen` twiddle recurrence
//! the reference kernel evaluates inline, which makes the butterflies
//! arithmetically identical; these tests pin that guarantee down.

use sidewinder_dsp::fft::{self, FftPlan};
use sidewinder_dsp::Complex;

/// Deterministic pseudo-signal: no two test lengths share a prefix.
fn test_signal(n: usize, salt: f64) -> Vec<Complex> {
    (0..n)
        .map(|i| {
            let x = i as f64;
            Complex::new((x * 0.37 + salt).sin(), (x * 0.11 - salt).cos())
        })
        .collect()
}

fn assert_bits_equal(planned: &[Complex], reference: &[Complex], what: &str) {
    for (i, (p, r)) in planned.iter().zip(reference).enumerate() {
        assert_eq!(
            p.re.to_bits(),
            r.re.to_bits(),
            "{what}: re differs at bin {i}: {} vs {}",
            p.re,
            r.re
        );
        assert_eq!(
            p.im.to_bits(),
            r.im.to_bits(),
            "{what}: im differs at bin {i}: {} vs {}",
            p.im,
            r.im
        );
    }
}

#[test]
fn planned_forward_matches_reference_bit_for_bit() {
    let mut len = 2;
    while len <= 4096 {
        let plan = FftPlan::new(len).unwrap();
        let signal = test_signal(len, 0.5);
        let mut planned = signal.clone();
        let mut reference = signal;
        plan.process_forward(&mut planned);
        fft::transform(&mut reference, false);
        assert_bits_equal(&planned, &reference, &format!("forward n={len}"));
        len *= 2;
    }
}

#[test]
fn planned_inverse_matches_reference_bit_for_bit() {
    let mut len = 2;
    while len <= 4096 {
        let plan = FftPlan::new(len).unwrap();
        let spectrum = test_signal(len, -1.25);
        let mut planned = spectrum.clone();
        let mut reference = spectrum;
        plan.process_inverse(&mut planned);
        fft::transform(&mut reference, true);
        // The reference kernel leaves the transform unscaled; the plan's
        // inverse applies the same 1/N factor ifft_in_place always did.
        let scale = 1.0 / len as f64;
        for z in reference.iter_mut() {
            *z = z.scale(scale);
        }
        assert_bits_equal(&planned, &reference, &format!("inverse n={len}"));
        len *= 2;
    }
}

#[test]
fn real_forward_into_matches_reference_bit_for_bit() {
    let mut len = 2;
    while len <= 4096 {
        let plan = FftPlan::new(len).unwrap();
        let signal: Vec<f64> = (0..len).map(|i| (i as f64 * 0.73).sin()).collect();
        let mut planned = Vec::new();
        plan.process_real_forward_into(&signal, &mut planned);
        let mut reference: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
        fft::transform(&mut reference, false);
        assert_bits_equal(&planned, &reference, &format!("real forward n={len}"));
        len *= 2;
    }
}

#[test]
fn module_entry_points_route_through_equivalent_plans() {
    for len in [2usize, 64, 1024] {
        let signal = test_signal(len, 2.0);
        let mut via_module = signal.clone();
        let mut reference = signal;
        fft::fft_in_place(&mut via_module).unwrap();
        fft::transform(&mut reference, false);
        assert_bits_equal(&via_module, &reference, &format!("fft_in_place n={len}"));
    }
}

#[test]
fn every_non_power_of_two_length_is_rejected() {
    for len in 2..=4096usize {
        if fft::is_power_of_two(len) {
            continue;
        }
        assert!(
            FftPlan::new(len).is_err(),
            "length {len} should be rejected"
        );
    }
}

#[test]
fn degenerate_one_point_plan_is_identity() {
    let plan = FftPlan::new(1).unwrap();
    let mut data = [Complex::new(3.5, -0.25)];
    plan.process_forward(&mut data);
    assert_eq!(data[0], Complex::new(3.5, -0.25));
    plan.process_inverse(&mut data);
    assert_eq!(data[0], Complex::new(3.5, -0.25));
}
