//! SIMD/scalar equivalence pins for the flat DSP kernels.
//!
//! The unrolled lane kernels (`simd` feature, default) and the scalar
//! fallbacks (`--no-default-features`) both promise the *documented
//! length-dependent reduction order* (DESIGN.md §6h). One binary can
//! only carry one of the two builds, so the bit-exact tier here checks
//! each kernel against an in-test scalar emulation of that documented
//! order; CI runs this suite under both feature configurations, which
//! transitively pins the two builds bit-identical to each other.
//!
//! Lengths are drawn from the awkward set — 0, 1, lane−1, lane, lane+1,
//! the `LANE_CUTOVER` boundary, 1024, and arbitrary non-multiples — so
//! remainder handling and the cutover are exercised, not just the happy
//! multiple-of-lane case.
//!
//! The tolerance tier pins the `f32` instantiations against `f64`
//! within the §6h error budget: roundoff grows with accumulation
//! length (∝ n·ε for sums, ∝ n^1.5·ε for the Goertzel recurrence), and
//! the pins leave roughly an order of magnitude of headroom above the
//! worst generated case.

use proptest::prelude::*;
use sidewinder_dsp::filter::MovingAverage;
use sidewinder_dsp::goertzel;
use sidewinder_dsp::sample::Sample;
use sidewinder_dsp::stats::{Summary, LANE_CUTOVER};
use sidewinder_dsp::window::WindowShape;
use sidewinder_dsp::zcr;

/// Window lengths that stress lane remainders: empty, single, one on
/// each side of both lane widths (4 for f64, 8 for f32), the serial/lane
/// cutover boundary, a big power of two, and arbitrary non-multiples.
fn awkward_len() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(0usize),
        Just(1),
        Just(3),
        Just(4),
        Just(5),
        Just(7),
        Just(8),
        Just(9),
        Just(LANE_CUTOVER - 1),
        Just(LANE_CUTOVER),
        Just(LANE_CUTOVER + 1),
        Just(1024),
        2usize..200,
    ]
}

/// A finite signal of the given length, spanning the physical sensor
/// amplitude range (±12 covers the accelerometer fixtures).
fn signal(len: impl Strategy<Value = usize>) -> impl Strategy<Value = Vec<f64>> {
    len.prop_flat_map(|n| prop::collection::vec(-12.0f64..12.0, n))
}

/// Bit equality for any sample precision: `f32 → f64` widening is
/// exact, so comparing the widened bit patterns compares the values.
fn assert_bits_eq<P: Sample>(got: P, want: P, what: &str) {
    assert_eq!(
        got.to_f64().to_bits(),
        want.to_f64().to_bits(),
        "{what}: {} vs {}",
        got.to_f64(),
        want.to_f64()
    );
}

/// Scalar emulation of the documented `Summary::of` reduction order:
/// sequential left-to-right below [`LANE_CUTOVER`], otherwise
/// [`Sample::LANES`] strided accumulators (lane `j` reduces elements
/// `j, j+L, j+2L, …`, trailing elements continue into lanes `0..r`)
/// combined by the halving tree. Returns `(Σx, Σx², min, max)`.
fn moments_reference<P: Sample>(window: &[P]) -> (P, P, P, P) {
    let l = if window.len() < LANE_CUTOVER {
        1
    } else {
        P::LANES
    };
    let mut sum = vec![P::ZERO; l];
    let mut sum_sq = vec![P::ZERO; l];
    let mut min = vec![P::INFINITY; l];
    let mut max = vec![P::NEG_INFINITY; l];
    let main = window.len() - window.len() % l;
    for (i, &x) in window.iter().enumerate() {
        let j = if i < main { i % l } else { i - main };
        sum[j] += x;
        sum_sq[j] += x * x;
        min[j] = min[j].min(x);
        max[j] = max[j].max(x);
    }
    (
        tree_fold(sum, |a, b| a + b),
        tree_fold(sum_sq, |a, b| a + b),
        tree_fold(min, P::min),
        tree_fold(max, P::max),
    )
}

/// The documented halving tree: `(l0⊕l2) ⊕ (l1⊕l3)` for four lanes, one
/// more round for eight.
fn tree_fold<P: Sample>(mut lanes: Vec<P>, f: impl Fn(P, P) -> P) -> P {
    let mut n = lanes.len();
    while n > 1 {
        n /= 2;
        for i in 0..n {
            lanes[i] = f(lanes[i], lanes[i + n]);
        }
    }
    lanes[0]
}

fn check_summary_against_reference<P: Sample>(window: &[P]) {
    let Some(s) = Summary::of(window) else {
        assert!(window.is_empty(), "only the empty window yields None");
        return;
    };
    let n = P::from_usize(window.len());
    let (sum, sum_sq, min, max) = moments_reference(window);
    let mean = sum / n;
    assert_bits_eq(s.mean, mean, "mean");
    assert_bits_eq(
        s.variance,
        (sum_sq / n - mean * mean).max(P::ZERO),
        "variance",
    );
    assert_bits_eq(s.min, min, "min");
    assert_bits_eq(s.max, max, "max");
    assert_bits_eq(s.rms, (sum_sq / n).sqrt(), "rms");
}

/// The original per-sample zero-crossing state machine — the reference
/// the chunked counter must reproduce exactly (the count is an integer,
/// so equality is exact, not toleranced).
fn zero_crossings_reference<P: Sample>(window: &[P]) -> usize {
    let mut count = 0;
    let mut prev_sign = 0i8;
    for &x in window {
        let sign = if x > P::ZERO {
            1
        } else if x < P::ZERO {
            -1
        } else {
            prev_sign
        };
        if prev_sign != 0 && sign != 0 && sign != prev_sign {
            count += 1;
        }
        if sign != 0 {
            prev_sign = sign;
        }
    }
    count
}

/// A signal seasoned with exact zeros and NaNs so the chunked counter's
/// clean-path/fallback split is exercised on both sides.
fn messy_signal() -> impl Strategy<Value = Vec<f64>> {
    awkward_len().prop_flat_map(|n| {
        prop::collection::vec(
            prop_oneof![
                (-1.0f64..1.0).boxed(),
                (-1.0f64..1.0).boxed(),
                (-1.0f64..1.0).boxed(),
                Just(0.0f64).boxed(),
                Just(f64::NAN).boxed(),
            ],
            n,
        )
    })
}

proptest! {
    // ── Bit-exact tier ──────────────────────────────────────────────

    #[test]
    fn summary_walks_the_documented_lane_order_f64(w in signal(awkward_len())) {
        check_summary_against_reference(&w);
    }

    #[test]
    fn summary_walks_the_documented_lane_order_f32(w in signal(awkward_len())) {
        let narrow: Vec<f32> = w.iter().map(|&x| x as f32).collect();
        check_summary_against_reference(&narrow);
    }

    #[test]
    fn zero_crossings_match_the_serial_state_machine(w in messy_signal()) {
        prop_assert_eq!(zcr::zero_crossings(&w), zero_crossings_reference(&w));
        let narrow: Vec<f32> = w.iter().map(|&x| x as f32).collect();
        prop_assert_eq!(
            zcr::zero_crossings(&narrow),
            zero_crossings_reference(&narrow)
        );
    }

    #[test]
    fn window_apply_is_per_element_products(
        w in signal(awkward_len()),
        shape_idx in 0usize..3,
    ) {
        let shape = [WindowShape::Rectangular, WindowShape::Hamming, WindowShape::Hann][shape_idx];
        let n = w.len();
        for (i, (&got, &x)) in shape.apply(&w).iter().zip(&w).enumerate() {
            assert_bits_eq(got, x * shape.coefficient(i, n), "tapered sample");
        }
        let narrow: Vec<f32> = w.iter().map(|&x| x as f32).collect();
        for (i, (&got, &x)) in shape.apply(&narrow).iter().zip(&narrow).enumerate() {
            assert_bits_eq(got, x * shape.coefficient(i, n) as f32, "f32 tapered sample");
        }
    }

    #[test]
    fn moving_average_block_matches_streaming(
        w in 1usize..40,
        sig in signal(awkward_len()),
    ) {
        // The cold block path must match per-push streaming output for
        // output, and leave the same buffered tail behind — checked by
        // streaming more samples through both filters afterwards.
        let mut block = MovingAverage::<f64>::new(w).unwrap();
        let mut stream = MovingAverage::<f64>::new(w).unwrap();
        let got = block.filter(&sig);
        let want: Vec<f64> = sig.iter().filter_map(|&x| stream.push(x)).collect();
        prop_assert_eq!(got.len(), want.len());
        for (g, e) in got.iter().zip(&want) {
            assert_bits_eq(*g, *e, "moving average output");
        }
        for i in 0..w + 2 {
            let x = i as f64 * 0.3 - 1.0;
            prop_assert_eq!(
                block.push(x).map(f64::to_bits),
                stream.push(x).map(f64::to_bits),
                "tail state diverged after block filtering"
            );
        }
    }

    #[test]
    fn goertzel_probe_grouping_matches_single_probes(
        w in signal(awkward_len()),
        bins in prop::collection::vec(prop_oneof![
            (0.0f64..4000.0).boxed(),  // valid: inside [0, rate/2]
            (0.0f64..4000.0).boxed(),
            (0.0f64..4000.0).boxed(),
            Just(-100.0f64).boxed(),   // invalid probes must be skipped
            Just(7000.0f64).boxed(),   // beyond Nyquist
        ], 0..11),
    ) {
        // The interleaved build runs probes four at a time; each lane's
        // recurrence is independent, so results must be bit-identical
        // to probing one frequency at a time.
        let rate = 8000.0;
        let mut best: Option<(f64, f64)> = None;  // last-max ties
        let mut max_sum: Option<(f64, f64)> = None; // first-max + sum
        for &f in &bins {
            let Some(p) = goertzel::goertzel_power(&w, f, rate) else {
                continue;
            };
            best = match best {
                Some((bf, bp)) if bp > p => Some((bf, bp)),
                _ => Some((f, p)),
            };
            let m = p.max(0.0).sqrt();
            max_sum = Some(match max_sum {
                Some((mx, sum)) => (if m > mx { m } else { mx }, sum + m),
                None => (m, m),
            });
        }
        prop_assert_eq!(
            goertzel::strongest_of(&w, &bins, rate).map(|(f, p)| (f.to_bits(), p.to_bits())),
            best.map(|(f, p)| (f.to_bits(), p.to_bits())),
            "strongest_of diverged from per-probe evaluation"
        );
        prop_assert_eq!(
            goertzel::magnitude_max_and_sum(&w, &bins, rate)
                .map(|(m, s)| (m.to_bits(), s.to_bits())),
            max_sum.map(|(m, s)| (m.to_bits(), s.to_bits())),
            "magnitude_max_and_sum diverged from per-probe evaluation"
        );
    }

    // ── Tolerance tier: f32 vs f64 ──────────────────────────────────

    #[test]
    fn f32_summary_tracks_f64_within_budget(w in signal(1usize..2049)) {
        let narrow: Vec<f32> = w.iter().map(|&x| x as f32).collect();
        let s64 = Summary::of(&w).unwrap();
        let s32 = Summary::of(&narrow).unwrap();
        let ms = s64.rms * s64.rms; // mean square: the natural scale for
                                    // variance cancellation error
        prop_assert!((f64::from(s32.mean) - s64.mean).abs() <= 1e-3 * s64.mean.abs().max(1.0));
        prop_assert!((f64::from(s32.rms) - s64.rms).abs() <= 1e-3 * s64.rms.max(1.0));
        prop_assert!((f64::from(s32.variance) - s64.variance).abs() <= 1e-3 * (ms + 1e-9));
        // Extrema only round, never reorder past a single ulp narrowing.
        prop_assert_eq!(f64::from(s32.min).to_bits(), (s64.min as f32 as f64).to_bits());
        prop_assert_eq!(f64::from(s32.max).to_bits(), (s64.max as f32 as f64).to_bits());
    }

    #[test]
    fn f32_zcr_matches_f64_away_from_zero(len in awkward_len()) {
        // Narrowing can flip the sign only of samples within one f32 ulp
        // of zero; a deterministic signal bounded away from zero must
        // count identically.
        let w: Vec<f64> = (0..len)
            .map(|i| {
                let x = ((i as f64) * 0.37).sin();
                x + 0.25 * x.signum() + 0.01 * f64::from(x == 0.0)
            })
            .collect();
        let narrow: Vec<f32> = w.iter().map(|&x| x as f32).collect();
        prop_assert_eq!(zcr::zero_crossings(&w), zcr::zero_crossings(&narrow));
    }

    #[test]
    fn f32_moving_average_tracks_f64(w in 1usize..40, sig in signal(awkward_len())) {
        let narrow: Vec<f32> = sig.iter().map(|&x| x as f32).collect();
        let got = MovingAverage::<f32>::new(w).unwrap().filter(&narrow);
        let want = MovingAverage::<f64>::new(w).unwrap().filter(&sig);
        prop_assert_eq!(got.len(), want.len());
        for (&g, &e) in got.iter().zip(&want) {
            prop_assert!((f64::from(g) - e).abs() <= 1e-3 * e.abs().max(1.0));
        }
    }

    #[test]
    fn f32_goertzel_tracks_f64_within_recurrence_budget(
        size_bits in 4u32..11,
        freq in 100.0f64..3900.0,
    ) {
        // The Goertzel recurrence compounds roundoff ∝ n^1.5·ε; at
        // n = 1024 in f32 that is ~4e-3 relative, so 1e-2 pins the
        // behavior with headroom without masking algorithmic drift.
        let n = 1usize << size_bits;
        let rate = 8000.0;
        let w: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / rate).sin() * 0.9)
            .collect();
        let narrow: Vec<f32> = w.iter().map(|&x| x as f32).collect();
        let p64 = goertzel::goertzel_power(&w, freq, rate).unwrap();
        let p32 = goertzel::goertzel_power(&narrow, freq, rate).unwrap();
        prop_assert!(
            (p32 - p64).abs() <= 1e-2 * p64.abs().max(1e-6),
            "goertzel power diverged: {p64} vs {p32} (n = {n}, f = {freq})"
        );
    }
}
