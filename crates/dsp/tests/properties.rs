//! Property-based tests over the DSP kernels.

use proptest::prelude::*;
use sidewinder_dsp::filter::{ExponentialMovingAverage, MovingAverage};
use sidewinder_dsp::window::WindowShape;
use sidewinder_dsp::{fft, goertzel, spectral, stats, zcr, Complex};

fn finite_signal(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..max_len)
}

fn pow2_signal() -> impl Strategy<Value = Vec<f64>> {
    (2u32..9).prop_flat_map(|bits| prop::collection::vec(-1e3f64..1e3, 1usize << bits))
}

proptest! {
    #[test]
    fn fft_ifft_round_trip(signal in pow2_signal()) {
        let mut data: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
        fft::fft_in_place(&mut data).unwrap();
        fft::ifft_in_place(&mut data).unwrap();
        for (z, &x) in data.iter().zip(&signal) {
            prop_assert!((z.re - x).abs() < 1e-6 * (1.0 + x.abs()));
            prop_assert!(z.im.abs() < 1e-6);
        }
    }

    #[test]
    fn parseval_holds(signal in pow2_signal()) {
        let n = signal.len() as f64;
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let spectrum = fft::real_fft(&signal).unwrap();
        let freq_energy: f64 = spectrum.iter().map(|z| z.magnitude_squared()).sum::<f64>() / n;
        prop_assert!((time_energy - freq_energy).abs() <= 1e-6 * (1.0 + time_energy));
    }

    #[test]
    fn real_spectrum_is_conjugate_symmetric(signal in pow2_signal()) {
        let spectrum = fft::real_fft(&signal).unwrap();
        let n = spectrum.len();
        for k in 1..n / 2 {
            let a = spectrum[k];
            let b = spectrum[n - k].conj();
            prop_assert!((a.re - b.re).abs() < 1e-6 * (1.0 + a.magnitude()));
            prop_assert!((a.im - b.im).abs() < 1e-6 * (1.0 + a.magnitude()));
        }
    }

    #[test]
    fn moving_average_output_within_input_bounds(
        signal in finite_signal(64),
        window in 1usize..16,
    ) {
        let lo = signal.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = signal.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut ma = MovingAverage::new(window).unwrap();
        for y in ma.filter(&signal) {
            prop_assert!(y >= lo - 1e-9 && y <= hi + 1e-9);
        }
    }

    #[test]
    fn moving_average_emits_exactly_len_minus_window_plus_one(
        signal in finite_signal(128),
        window in 1usize..16,
    ) {
        let mut ma = MovingAverage::new(window).unwrap();
        let out = ma.filter(&signal);
        prop_assert_eq!(out.len(), signal.len().saturating_sub(window - 1));
    }

    #[test]
    fn ema_output_within_input_bounds(
        signal in finite_signal(64),
        alpha in 0.01f64..1.0,
    ) {
        let lo = signal.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = signal.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut ema = ExponentialMovingAverage::new(alpha).unwrap();
        for y in ema.filter(&signal) {
            prop_assert!(y >= lo - 1e-9 && y <= hi + 1e-9);
        }
    }

    #[test]
    fn zcr_rate_is_in_unit_interval(signal in finite_signal(128)) {
        if let Some(r) = zcr::zero_crossing_rate(&signal) {
            prop_assert!((0.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn summary_invariants(signal in finite_signal(128)) {
        let s = stats::Summary::of(&signal).unwrap();
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.variance >= 0.0);
        prop_assert!(s.rms >= 0.0);
        prop_assert!(s.rms + 1e-9 >= s.mean.abs());
        prop_assert_eq!(s.count, signal.len());
    }

    #[test]
    fn vector_magnitude_triangle_inequality(
        a in prop::collection::vec(-1e3f64..1e3, 3),
        b in prop::collection::vec(-1e3f64..1e3, 3),
    ) {
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let lhs = stats::vector_magnitude(&sum);
        let rhs = stats::vector_magnitude(&a) + stats::vector_magnitude(&b);
        prop_assert!(lhs <= rhs + 1e-9);
    }

    #[test]
    fn window_coefficients_in_unit_interval(
        n in 1usize..256,
        shape_idx in 0usize..3,
    ) {
        let shape = [WindowShape::Rectangular, WindowShape::Hamming, WindowShape::Hann][shape_idx];
        for c in shape.coefficients(n) {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
        }
    }

    #[test]
    fn goertzel_never_negative(signal in pow2_signal(), freq_frac in 0.0f64..0.5) {
        let rate = 8000.0;
        let p = goertzel::goertzel_power(&signal, freq_frac * rate, rate).unwrap();
        prop_assert!(p >= -1e-6 * signal.iter().map(|x| x * x).sum::<f64>().max(1.0));
    }

    #[test]
    fn dominant_to_mean_ratio_at_least_one(signal in pow2_signal()) {
        let mags = fft::real_fft_magnitudes(&signal);
        if let Some(r) = spectral::dominant_to_mean_ratio(&mags) {
            prop_assert!(r >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn local_extrema_are_within_band(
        signal in finite_signal(128),
        lo in -100.0f64..0.0,
        span in 0.0f64..200.0,
    ) {
        let hi = lo + span;
        for i in stats::local_maxima_in_band(&signal, lo, hi) {
            prop_assert!(signal[i] >= lo && signal[i] <= hi);
            prop_assert!(i > 0 && i < signal.len() - 1);
        }
        for i in stats::local_minima_in_band(&signal, lo, hi) {
            prop_assert!(signal[i] >= lo && signal[i] <= hi);
        }
    }
}
