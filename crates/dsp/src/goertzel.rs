//! Goertzel single-bin DFT evaluation.
//!
//! The paper's §3.8 discusses the trade-off between algorithm complexity and
//! MCU power: the MSP430 could not run a full FFT in real time. The Goertzel
//! algorithm evaluates a *single* DFT bin in O(N) multiplies with O(1)
//! state, making narrow-band detection feasible on the smaller MCU. It is
//! included as one of this reproduction's ablation subjects ("what if the
//! siren detector probed a few bins with Goertzel instead of a full FFT?").
//!
//! Probing K frequencies over one window is K *independent* second-order
//! recurrences reading the same samples, so the batch entry points
//! ([`strongest_of`], [`strongest_magnitude`]) interleave up to four
//! probes per pass in the unrolled (`simd`, default) build: each probe's
//! operation order is exactly the single-probe loop's, which keeps every
//! power bit-identical to one-at-a-time evaluation while the independent
//! recurrences hide each other's FMA latency. The scalar fallback runs
//! probes one at a time; results match bit-for-bit by construction.
//!
//! The kernels live in `sidewinder-mcu` — Goertzel probing is exactly the
//! workload the paper keeps on the small MCU — and are re-exported here.

pub use sidewinder_mcu::goertzel::*;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft;

    fn tone(freq: f64, rate: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / rate).sin())
            .collect()
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(goertzel_power::<f64>(&[], 100.0, 8000.0).is_none());
        assert!(goertzel_power(&[1.0], 100.0, 0.0).is_none());
        assert!(goertzel_power(&[1.0], -5.0, 8000.0).is_none());
        assert!(goertzel_power(&[1.0], 4001.0, 8000.0).is_none());
    }

    #[test]
    fn matches_fft_bin_power() {
        let n = 256;
        let rate = 8000.0;
        let f = fft::bin_to_frequency(32, n, rate);
        let signal = tone(f, rate, n);
        let spectrum = fft::real_fft(&signal).unwrap();
        let fft_power = spectrum[32].magnitude_squared();
        let g_power = goertzel_power(&signal, f, rate).unwrap();
        assert!(
            (fft_power - g_power).abs() / fft_power < 1e-9,
            "fft {fft_power} vs goertzel {g_power}"
        );
    }

    #[test]
    fn detects_present_tone_rejects_absent() {
        let n = 512;
        let rate = 8000.0;
        let signal = tone(1000.0, rate, n);
        let present = goertzel_power(&signal, 1000.0, rate).unwrap();
        let absent = goertzel_power(&signal, 2500.0, rate).unwrap();
        assert!(present > 100.0 * absent.max(1e-12));
    }

    #[test]
    fn magnitude_is_sqrt_of_power() {
        let signal = tone(500.0, 8000.0, 256);
        let p = goertzel_power(&signal, 500.0, 8000.0).unwrap();
        let m = goertzel_magnitude(&signal, 500.0, 8000.0).unwrap();
        assert!((m * m - p).abs() < 1e-6);
    }

    #[test]
    fn strongest_of_picks_the_tone() {
        let signal = tone(1200.0, 8000.0, 512);
        let (f, _) = strongest_of(&signal, &[800.0, 1200.0, 1600.0], 8000.0).unwrap();
        assert_eq!(f, 1200.0);
        assert!(strongest_of(&signal, &[], 8000.0).is_none());
    }

    #[test]
    fn grouped_powers_are_bit_identical_to_single_probes() {
        // 5 valid probes + 1 invalid: exercises a full group of 4, a
        // padded remainder group, and the skip path.
        let rate = 8000.0;
        let w = tone(1200.0, rate, 333);
        let freqs = [850.0, 985.0, 9000.0, 1120.0, 1255.0, 1390.0];
        let mut grouped = Vec::new();
        for_each_power(&w, &freqs, rate, |i, p| grouped.push((i, p)));
        let singles: Vec<(usize, f64)> = freqs
            .iter()
            .enumerate()
            .filter_map(|(i, &f)| goertzel_power(&w, f, rate).map(|p| (i, p)))
            .collect();
        assert_eq!(grouped.len(), singles.len());
        for (g, s) in grouped.iter().zip(&singles) {
            assert_eq!(g.0, s.0);
            assert_eq!(g.1.to_bits(), s.1.to_bits(), "probe {}", g.0);
        }
    }

    #[test]
    fn strongest_magnitude_takes_the_first_of_tied_probes() {
        // A constant-zero window powers every probe at exactly 0; the
        // strictly-greater fold keeps the first.
        let w = vec![0.0f64; 64];
        let m = strongest_magnitude(&w, &[100.0, 200.0, 300.0], 8000.0).unwrap();
        assert_eq!(m, 0.0);
        // And on a tone it agrees with strongest_of's argmax.
        let rate = 8000.0;
        let w = tone(1200.0, rate, 1024);
        let freqs: Vec<f64> = (0..8).map(|i| 850.0 + 135.0 * i as f64).collect();
        let (_, p) = strongest_of(&w, &freqs, rate).unwrap();
        let m = strongest_magnitude(&w, &freqs, rate).unwrap();
        assert_eq!(m.to_bits(), p.max(0.0).sqrt().to_bits());
    }

    #[test]
    fn max_and_sum_agree_with_single_probe_reductions() {
        let rate = 8000.0;
        let w = tone(1200.0, rate, 512);
        let freqs: Vec<f64> = (0..6).map(|i| 850.0 + 135.0 * i as f64).collect();
        let (mx, sum) = magnitude_max_and_sum(&w, &freqs, rate).unwrap();
        let singles: Vec<f64> = freqs
            .iter()
            .filter_map(|&f| goertzel_magnitude(&w, f, rate))
            .collect();
        let naive_max = singles.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let naive_sum: f64 = singles.iter().sum();
        assert_eq!(mx.to_bits(), naive_max.to_bits());
        assert_eq!(sum.to_bits(), naive_sum.to_bits());
        assert!(magnitude_max_and_sum(&w, &[], rate).is_none());
    }

    #[test]
    fn f32_probe_tracks_f64_within_single_precision() {
        let rate = 8000.0;
        let wide = tone(1200.0, rate, 512);
        let narrow: Vec<f32> = wide.iter().map(|&x| x as f32).collect();
        let p64 = goertzel_power(&wide, 1200.0, rate).unwrap();
        let p32 = goertzel_power(&narrow, 1200.0, rate).unwrap();
        // The marginally-stable recurrence amplifies rounding by ~n^1.5,
        // so budget ~512^1.5·ε_f32 ≈ 1.4e-3 relative, with headroom.
        assert!(
            (p32 - p64).abs() < 1e-2 * p64.abs().max(1.0),
            "f32 {p32} vs f64 {p64}"
        );
    }
}
