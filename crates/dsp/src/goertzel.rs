//! Goertzel single-bin DFT evaluation.
//!
//! The paper's §3.8 discusses the trade-off between algorithm complexity and
//! MCU power: the MSP430 could not run a full FFT in real time. The Goertzel
//! algorithm evaluates a *single* DFT bin in O(N) multiplies with O(1)
//! state, making narrow-band detection feasible on the smaller MCU. It is
//! included as one of this reproduction's ablation subjects ("what if the
//! siren detector probed a few bins with Goertzel instead of a full FFT?").

/// Computes the squared magnitude of the DFT of `window` at `freq_hz`.
///
/// Uses the standard Goertzel recurrence with coefficient
/// `2·cos(2πf/fs)`. The result matches `|FFT(window)[k]|²` when `freq_hz`
/// falls exactly on bin `k`.
///
/// Returns `None` if the window is empty, the sample rate is not positive,
/// or `freq_hz` is negative or above Nyquist.
pub fn goertzel_power(window: &[f64], freq_hz: f64, sample_rate_hz: f64) -> Option<f64> {
    if window.is_empty() || sample_rate_hz <= 0.0 {
        return None;
    }
    if !(0.0..=sample_rate_hz / 2.0).contains(&freq_hz) {
        return None;
    }
    let omega = 2.0 * std::f64::consts::PI * freq_hz / sample_rate_hz;
    let coeff = 2.0 * omega.cos();
    let mut s_prev = 0.0;
    let mut s_prev2 = 0.0;
    for &x in window {
        let s = x + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    Some(s_prev * s_prev + s_prev2 * s_prev2 - coeff * s_prev * s_prev2)
}

/// Magnitude (not squared) of the DFT at `freq_hz`; see [`goertzel_power`].
pub fn goertzel_magnitude(window: &[f64], freq_hz: f64, sample_rate_hz: f64) -> Option<f64> {
    goertzel_power(window, freq_hz, sample_rate_hz).map(|p| p.max(0.0).sqrt())
}

/// Probes a set of frequencies and returns the one with the highest power
/// together with that power. `None` if `freqs` is empty or all probes fail.
pub fn strongest_of(window: &[f64], freqs: &[f64], sample_rate_hz: f64) -> Option<(f64, f64)> {
    freqs
        .iter()
        .filter_map(|&f| goertzel_power(window, f, sample_rate_hz).map(|p| (f, p)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft;

    fn tone(freq: f64, rate: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / rate).sin())
            .collect()
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(goertzel_power(&[], 100.0, 8000.0).is_none());
        assert!(goertzel_power(&[1.0], 100.0, 0.0).is_none());
        assert!(goertzel_power(&[1.0], -5.0, 8000.0).is_none());
        assert!(goertzel_power(&[1.0], 4001.0, 8000.0).is_none());
    }

    #[test]
    fn matches_fft_bin_power() {
        let n = 256;
        let rate = 8000.0;
        let f = fft::bin_to_frequency(32, n, rate);
        let signal = tone(f, rate, n);
        let spectrum = fft::real_fft(&signal).unwrap();
        let fft_power = spectrum[32].magnitude_squared();
        let g_power = goertzel_power(&signal, f, rate).unwrap();
        assert!(
            (fft_power - g_power).abs() / fft_power < 1e-9,
            "fft {fft_power} vs goertzel {g_power}"
        );
    }

    #[test]
    fn detects_present_tone_rejects_absent() {
        let n = 512;
        let rate = 8000.0;
        let signal = tone(1000.0, rate, n);
        let present = goertzel_power(&signal, 1000.0, rate).unwrap();
        let absent = goertzel_power(&signal, 2500.0, rate).unwrap();
        assert!(present > 100.0 * absent.max(1e-12));
    }

    #[test]
    fn magnitude_is_sqrt_of_power() {
        let signal = tone(500.0, 8000.0, 256);
        let p = goertzel_power(&signal, 500.0, 8000.0).unwrap();
        let m = goertzel_magnitude(&signal, 500.0, 8000.0).unwrap();
        assert!((m * m - p).abs() < 1e-6);
    }

    #[test]
    fn strongest_of_picks_the_tone() {
        let signal = tone(1200.0, 8000.0, 512);
        let (f, _) = strongest_of(&signal, &[800.0, 1200.0, 1600.0], 8000.0).unwrap();
        assert_eq!(f, 1200.0);
        assert!(strongest_of(&signal, &[], 8000.0).is_none());
    }
}
