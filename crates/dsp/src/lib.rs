//! DSP primitives for the Sidewinder sensor hub.
//!
//! The Sidewinder paper (ASPLOS 2016, §3.6) ships a fixed menu of sensor
//! data processing algorithms on the low-power sensor hub: windowing,
//! FFT/IFFT transforms, noise-reduction filters, FFT-based low/high-pass
//! filters, feature extraction (vector magnitude, zero-crossing rate,
//! statistics, dominant-frequency magnitude), and admission-control
//! thresholds. This crate implements the numerical kernels behind those
//! algorithms; the executable, stateful hub-side wrappers live in
//! `sidewinder-hub`.
//!
//! All kernels are implemented in-repo (no external DSP dependency) because
//! the algorithms themselves are part of the system under study: the paper's
//! hub runtime ships its own C implementations, and the reproduction's
//! micro-benchmarks measure exactly these kernels.
//!
//! # Example
//!
//! ```
//! use sidewinder_dsp::{fft, window::WindowShape};
//!
//! // A 1 kHz tone sampled at 8 kHz, Hamming-windowed, transformed, and
//! // reduced to its dominant frequency.
//! let n = 256;
//! let rate = 8000.0;
//! let tone: Vec<f64> = (0..n)
//!     .map(|i| (2.0 * std::f64::consts::PI * 1000.0 * i as f64 / rate).sin())
//!     .collect();
//! let windowed = WindowShape::Hamming.apply(&tone);
//! let spectrum = fft::real_fft_magnitudes(&windowed);
//! let peak = sidewinder_dsp::spectral::dominant_bin(&spectrum[1..]).unwrap();
//! let freq = fft::bin_to_frequency(peak.bin + 1, n, rate);
//! assert!((freq - 1000.0).abs() < rate / n as f64);
//! ```

pub mod complex;
pub mod fft;
pub mod filter;
pub mod goertzel;
pub mod sample;
pub mod spectral;
pub mod stats;
pub mod window;
pub mod zcr;

pub use complex::Complex;
pub use fft::FftPlan;
pub use filter::{BandFilterPlan, BandShape};
pub use sample::Sample;
