//! Noise-reduction and frequency-selective filters.
//!
//! The paper's hub offers "noise-reduction algorithms such as a moving
//! average and exponential moving average" and "FFT-based low-pass /
//! high-pass filtering" (§3.6 "Data Filtering"). The moving filters here are
//! streaming (one sample in, at most one sample out, bounded state) because
//! they run continuously on the microcontroller; the FFT filters are
//! block-based because they consume whole windows.

use crate::complex::Complex;
use crate::fft::{self, NonPowerOfTwoError};
use crate::sample::Sample;

// The bounded-state pieces the on-device interpreter needs — the
// exponential moving average, the band-shape frequency response, and the
// fixed-capacity keep-mask fill — live in `sidewinder-mcu`; re-export
// them under their historical paths.
pub use sidewinder_mcu::filter::{
    fill_keep_mask, BandShape, ExponentialMovingAverage, InvalidAlphaError,
};

/// A streaming simple moving average over the last `window` samples.
///
/// Produces no output until `window` samples have been observed — the
/// behaviour the paper calls out when motivating the interpreter's
/// `hasResult` flag (§3.5).
///
/// # Example
///
/// ```
/// use sidewinder_dsp::filter::MovingAverage;
///
/// let mut ma = MovingAverage::new(3)?;
/// assert_eq!(ma.push(3.0), None);
/// assert_eq!(ma.push(6.0), None);
/// assert_eq!(ma.push(9.0), Some(6.0));
/// assert_eq!(ma.push(0.0), Some(5.0));
/// # Ok::<(), sidewinder_dsp::filter::ZeroWindowError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MovingAverage<P: Sample = f64> {
    window: usize,
    buf: std::collections::VecDeque<P>,
}

/// Error returned when a filter is configured with a zero-length window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroWindowError;

impl std::fmt::Display for ZeroWindowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("filter window length must be non-zero")
    }
}

impl std::error::Error for ZeroWindowError {}

impl<P: Sample> MovingAverage<P> {
    /// Creates a moving average over `window` samples.
    ///
    /// # Errors
    ///
    /// Returns [`ZeroWindowError`] if `window` is zero.
    pub fn new(window: usize) -> Result<Self, ZeroWindowError> {
        if window == 0 {
            return Err(ZeroWindowError);
        }
        Ok(MovingAverage {
            window,
            buf: std::collections::VecDeque::with_capacity(window),
        })
    }

    /// The configured window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Pushes a sample; returns the average once the window is full.
    pub fn push(&mut self, sample: P) -> Option<P> {
        if self.buf.len() == self.window {
            self.buf.pop_front();
        }
        self.buf.push_back(sample);
        if self.buf.len() < self.window {
            None
        } else {
            // Recompute rather than maintain a rolling sum: hub windows are
            // small (tens of samples) and this avoids drift on long runs.
            Some(self.window_sum() / P::from_usize(self.window))
        }
    }

    /// Oldest-to-newest sum of the buffered window — the exact reduction
    /// `push` has always performed; the block path below reproduces it.
    fn window_sum(&self) -> P {
        let mut sum = P::ZERO;
        for &x in &self.buf {
            sum += x;
        }
        sum
    }

    /// Clears all buffered samples.
    pub fn reset(&mut self) {
        self.buf.clear();
    }

    /// Filters a whole slice, returning one output per input once primed.
    ///
    /// When the filter is cold (empty buffer) and the slice covers at
    /// least one full window, the unrolled build computes four output
    /// windows in flight — each output is still the oldest-to-newest
    /// recompute `push` performs, so results (and the buffered tail left
    /// behind) are bit-identical to the streaming path.
    pub fn filter(&mut self, signal: &[P]) -> Vec<P> {
        #[cfg(feature = "simd")]
        if self.buf.is_empty() && signal.len() >= self.window {
            return self.filter_block(signal);
        }
        signal.iter().filter_map(|&x| self.push(x)).collect()
    }

    /// Block evaluation of a cold filter: output `k` averages
    /// `signal[k..k + window]` in ascending index order, exactly as the
    /// per-push recompute does; sixteen outputs in flight give LLVM four
    /// independent vector accumulators, hiding the serial-add latency
    /// each individual output's sum carries. The final buffer state (last
    /// `window` samples) matches what streaming would have left.
    #[cfg(feature = "simd")]
    fn filter_block(&mut self, signal: &[P]) -> Vec<P> {
        const BLOCK: usize = 16;
        let w = self.window;
        let n_out = signal.len() - w + 1;
        let divisor = P::from_usize(w);
        let mut out = Vec::with_capacity(n_out);
        let mut k = 0;
        while k + BLOCK <= n_out {
            let mut acc = [P::ZERO; BLOCK];
            for j in 0..w {
                let lane = &signal[k + j..k + j + BLOCK];
                for l in 0..BLOCK {
                    acc[l] += lane[l];
                }
            }
            for a in acc {
                out.push(a / divisor);
            }
            k += BLOCK;
        }
        while k < n_out {
            let mut a = P::ZERO;
            for j in 0..w {
                a += signal[k + j];
            }
            out.push(a / divisor);
            k += 1;
        }
        self.buf.clear();
        self.buf.extend(signal[signal.len() - w..].iter().copied());
        out
    }
}

/// FFT-based low-pass filter: zeroes all bins above `cutoff_hz`.
///
/// The window is transformed, bins strictly above the cutoff (and their
/// mirror images) are zeroed, and the window is transformed back.
///
/// # Errors
///
/// Returns [`NonPowerOfTwoError`] if `signal.len()` is not a power of two.
pub fn fft_lowpass(
    signal: &[f64],
    cutoff_hz: f64,
    sample_rate_hz: f64,
) -> Result<Vec<f64>, NonPowerOfTwoError> {
    fft_bandfilter(signal, sample_rate_hz, |freq| freq <= cutoff_hz)
}

/// FFT-based high-pass filter: zeroes all bins below `cutoff_hz`.
///
/// The paper's siren detector opens with a 750 Hz high-pass built this way
/// (§3.7.2).
///
/// # Errors
///
/// Returns [`NonPowerOfTwoError`] if `signal.len()` is not a power of two.
pub fn fft_highpass(
    signal: &[f64],
    cutoff_hz: f64,
    sample_rate_hz: f64,
) -> Result<Vec<f64>, NonPowerOfTwoError> {
    fft_bandfilter(signal, sample_rate_hz, |freq| freq >= cutoff_hz)
}

/// FFT-based band-pass filter keeping `low_hz ..= high_hz`.
pub fn fft_bandpass(
    signal: &[f64],
    low_hz: f64,
    high_hz: f64,
    sample_rate_hz: f64,
) -> Result<Vec<f64>, NonPowerOfTwoError> {
    fft_bandfilter(signal, sample_rate_hz, |freq| {
        freq >= low_hz && freq <= high_hz
    })
}

/// Shared kernel: keep bins whose center frequency satisfies `keep`.
fn fft_bandfilter(
    signal: &[f64],
    sample_rate_hz: f64,
    keep: impl Fn(f64) -> bool,
) -> Result<Vec<f64>, NonPowerOfTwoError> {
    fft::with_plan(signal.len(), |plan| {
        let mut spectrum = Vec::new();
        let mut out = Vec::new();
        let mask = keep_mask(signal.len(), sample_rate_hz, keep);
        apply_bandfilter(plan, &mask, signal, &mut spectrum, &mut out);
        out
    })
}

/// Precomputes the per-bin keep mask for an `n`-point transform.
fn keep_mask(n: usize, sample_rate_hz: f64, keep: impl Fn(f64) -> bool) -> Vec<bool> {
    (0..n)
        .map(|bin| {
            // Bins above N/2 represent negative frequencies; map to their
            // positive-frequency magnitude for the keep decision.
            let logical_bin = if bin <= n / 2 { bin } else { n - bin };
            keep(fft::bin_to_frequency(logical_bin, n, sample_rate_hz))
        })
        .collect()
}

/// Transform → zero masked bins → inverse transform, writing the filtered
/// signal into `out` using caller-owned scratch storage.
fn apply_bandfilter(
    plan: &fft::FftPlan,
    mask: &[bool],
    signal: &[f64],
    spectrum: &mut Vec<Complex>,
    out: &mut Vec<f64>,
) {
    plan.process_real_forward_into(signal, spectrum);
    for (z, &keep) in spectrum.iter_mut().zip(mask) {
        if !keep {
            *z = Complex::ZERO;
        }
    }
    plan.process_inverse(spectrum);
    out.clear();
    out.extend(spectrum.iter().map(|z| z.re));
}

/// A cached FFT band filter: an [`fft::FftPlan`] plus the precomputed
/// per-bin keep mask for one `(length, shape, sample-rate)` combination.
///
/// The hub's `lowPass`/`highPass` stages build one of these per window
/// length and then filter every subsequent window without recomputing
/// twiddles or bin frequencies — and, via [`BandFilterPlan::filter_into`],
/// without allocating. Output is bit-identical to [`fft_lowpass`] /
/// [`fft_highpass`] / [`fft_bandpass`].
#[derive(Debug, Clone, PartialEq)]
pub struct BandFilterPlan {
    plan: fft::FftPlan,
    mask: Vec<bool>,
    shape: BandShape,
    sample_rate_hz: f64,
}

impl BandFilterPlan {
    /// Builds a filter plan for `len`-sample windows.
    ///
    /// # Errors
    ///
    /// Returns [`NonPowerOfTwoError`] if `len` is zero or not a power of
    /// two.
    pub fn new(
        len: usize,
        shape: BandShape,
        sample_rate_hz: f64,
    ) -> Result<BandFilterPlan, NonPowerOfTwoError> {
        let plan = fft::FftPlan::new(len)?;
        let mask = keep_mask(len, sample_rate_hz, |freq| shape.keeps(freq));
        Ok(BandFilterPlan {
            plan,
            mask,
            shape,
            sample_rate_hz,
        })
    }

    /// The window length this plan filters.
    pub fn len(&self) -> usize {
        self.plan.len()
    }

    /// `true` only for the degenerate one-point plan.
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    /// The configured frequency response.
    pub fn shape(&self) -> BandShape {
        self.shape
    }

    /// The sample rate the mask was computed for.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// Filters `signal` into `out`, using `spectrum` as scratch storage.
    ///
    /// Both buffers are cleared and refilled; once they have grown to the
    /// plan length, steady-state calls perform no heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if `signal.len()` differs from the plan length.
    pub fn filter_into(&self, signal: &[f64], spectrum: &mut Vec<Complex>, out: &mut Vec<f64>) {
        apply_bandfilter(&self.plan, &self.mask, signal, spectrum, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, rate: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / rate).sin())
            .collect()
    }

    fn rms(signal: &[f64]) -> f64 {
        (signal.iter().map(|x| x * x).sum::<f64>() / signal.len() as f64).sqrt()
    }

    #[test]
    fn moving_average_rejects_zero_window() {
        assert!(MovingAverage::<f64>::new(0).is_err());
        assert_eq!(
            ZeroWindowError.to_string(),
            "filter window length must be non-zero"
        );
    }

    #[test]
    fn block_filter_is_bit_identical_to_streaming() {
        // Cold-start slice filtering takes the four-wide block path;
        // pushing sample-by-sample takes the streaming path. Outputs and
        // the buffered tail must agree bit-for-bit, including when the
        // output count is not a multiple of four and when the filter is
        // re-used after the block (tail continuity).
        for (w, n) in [(10, 1024), (7, 23), (3, 3), (5, 6), (1, 17)] {
            let signal: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.61).sin() / 3.0).collect();
            let mut block = MovingAverage::new(w).unwrap();
            let mut stream = MovingAverage::new(w).unwrap();
            let got = block.filter(&signal);
            let want: Vec<f64> = signal.iter().filter_map(|&x| stream.push(x)).collect();
            assert_eq!(got.len(), want.len(), "w={w} n={n}");
            for (g, e) in got.iter().zip(&want) {
                assert_eq!(g.to_bits(), e.to_bits(), "w={w} n={n}");
            }
            // Continuity: the next pushed sample sees the same window.
            assert_eq!(block.push(0.25), stream.push(0.25), "w={w} n={n}");
        }
    }

    #[test]
    fn warm_filter_keeps_streaming_semantics() {
        // A non-empty buffer must take the per-sample path: outputs
        // spanning the old buffer and the new slice stay correct.
        let mut warm = MovingAverage::new(4).unwrap();
        let mut reference = MovingAverage::new(4).unwrap();
        warm.push(1.0);
        warm.push(2.0);
        reference.push(1.0);
        reference.push(2.0);
        let tail = [3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let got = warm.filter(&tail);
        let want: Vec<f64> = tail.iter().filter_map(|&x| reference.push(x)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn f32_moving_average_runs_at_single_precision() {
        let mut ma = MovingAverage::<f32>::new(2).unwrap();
        assert_eq!(ma.push(1.0), None);
        assert_eq!(ma.push(3.0), Some(2.0));
        assert_eq!(ma.push(5.0), Some(4.0));
    }

    #[test]
    fn moving_average_warms_up_then_averages() {
        let mut ma = MovingAverage::new(4).unwrap();
        assert_eq!(ma.push(1.0), None);
        assert_eq!(ma.push(2.0), None);
        assert_eq!(ma.push(3.0), None);
        assert_eq!(ma.push(4.0), Some(2.5));
        assert_eq!(ma.push(5.0), Some(3.5));
        assert_eq!(ma.window(), 4);
    }

    #[test]
    fn moving_average_window_one_is_identity() {
        let mut ma = MovingAverage::new(1).unwrap();
        for x in [1.0, -3.0, 7.5] {
            assert_eq!(ma.push(x), Some(x));
        }
    }

    #[test]
    fn moving_average_constant_input_is_fixed_point() {
        let mut ma = MovingAverage::new(10).unwrap();
        let out = ma.filter(&vec![4.2; 100]);
        assert_eq!(out.len(), 91);
        assert!(out.iter().all(|&y| (y - 4.2).abs() < 1e-12));
    }

    #[test]
    fn moving_average_reset_forgets_history() {
        let mut ma = MovingAverage::new(2).unwrap();
        ma.push(100.0);
        ma.reset();
        assert_eq!(ma.push(1.0), None);
        assert_eq!(ma.push(3.0), Some(2.0));
    }

    #[test]
    fn moving_average_smooths_oscillation() {
        // A ±1 square wave averaged over an even window cancels to zero.
        let mut ma = MovingAverage::new(2).unwrap();
        let signal: Vec<f64> = (0..20)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let out = ma.filter(&signal);
        assert!(out.iter().all(|&y| y.abs() < 1e-12));
    }

    #[test]
    fn ema_validates_alpha() {
        assert!(ExponentialMovingAverage::new(0.0).is_err());
        assert!(ExponentialMovingAverage::new(1.5).is_err());
        assert!(ExponentialMovingAverage::new(f64::NAN).is_err());
        assert!(ExponentialMovingAverage::new(1.0).is_ok());
        let err = ExponentialMovingAverage::new(-0.1).unwrap_err();
        assert!(err.to_string().contains("-0.1"));
    }

    #[test]
    fn ema_first_output_is_first_sample() {
        let mut ema = ExponentialMovingAverage::new(0.3).unwrap();
        assert_eq!(ema.push(5.0), 5.0);
        assert_eq!(ema.alpha(), 0.3);
    }

    #[test]
    fn ema_alpha_one_tracks_input_exactly() {
        let mut ema = ExponentialMovingAverage::new(1.0).unwrap();
        for x in [1.0, -2.0, 3.0] {
            assert_eq!(ema.push(x), x);
        }
    }

    #[test]
    fn ema_converges_to_constant_input() {
        let mut ema = ExponentialMovingAverage::new(0.2).unwrap();
        ema.push(0.0);
        let mut last = 0.0;
        for _ in 0..200 {
            last = ema.push(10.0);
        }
        assert!((last - 10.0).abs() < 1e-6);
    }

    #[test]
    fn ema_reset_clears_state() {
        let mut ema = ExponentialMovingAverage::new(0.5).unwrap();
        ema.push(100.0);
        ema.reset();
        assert_eq!(ema.push(2.0), 2.0);
    }

    #[test]
    fn lowpass_keeps_low_tone_removes_high_tone() {
        let n = 512;
        let rate = 8000.0;
        let low = tone(250.0, rate, n);
        let high = tone(3000.0, rate, n);
        let mixed: Vec<f64> = low.iter().zip(&high).map(|(a, b)| a + b).collect();
        let filtered = fft_lowpass(&mixed, 1000.0, rate).unwrap();
        // Low tone survives (same RMS), high tone is gone.
        assert!((rms(&filtered) - rms(&low)).abs() < 0.05);
        let residual: Vec<f64> = filtered.iter().zip(&low).map(|(a, b)| a - b).collect();
        assert!(rms(&residual) < 0.05);
    }

    #[test]
    fn highpass_removes_low_tone_keeps_high_tone() {
        let n = 512;
        let rate = 8000.0;
        let low = tone(250.0, rate, n);
        let high = tone(3000.0, rate, n);
        let mixed: Vec<f64> = low.iter().zip(&high).map(|(a, b)| a + b).collect();
        let filtered = fft_highpass(&mixed, 1000.0, rate).unwrap();
        let residual: Vec<f64> = filtered.iter().zip(&high).map(|(a, b)| a - b).collect();
        assert!(rms(&residual) < 0.05);
    }

    #[test]
    fn bandpass_keeps_only_middle_tone() {
        let n = 1024;
        let rate = 8000.0;
        let lo = tone(100.0, rate, n);
        let mid = tone(1000.0, rate, n);
        let hi = tone(3500.0, rate, n);
        let mixed: Vec<f64> = (0..n).map(|i| lo[i] + mid[i] + hi[i]).collect();
        let filtered = fft_bandpass(&mixed, 500.0, 2000.0, rate).unwrap();
        let residual: Vec<f64> = filtered.iter().zip(&mid).map(|(a, b)| a - b).collect();
        assert!(rms(&residual) < 0.05);
    }

    #[test]
    fn lowpass_passes_dc() {
        let signal = vec![2.0; 64];
        let filtered = fft_lowpass(&signal, 10.0, 1000.0).unwrap();
        for y in filtered {
            assert!((y - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn highpass_removes_dc() {
        let signal = vec![2.0; 64];
        let filtered = fft_highpass(&signal, 10.0, 1000.0).unwrap();
        for y in filtered {
            assert!(y.abs() < 1e-9);
        }
    }

    #[test]
    fn fft_filters_reject_non_power_of_two() {
        assert!(fft_lowpass(&[0.0; 100], 10.0, 1000.0).is_err());
        assert!(fft_highpass(&[0.0; 100], 10.0, 1000.0).is_err());
    }
}
