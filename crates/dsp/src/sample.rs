//! The precision-generic sample type behind the flat DSP kernels.
//!
//! The paper's hub MCUs (TI MSP430, TI LM4F120 — §3, Table 2) have no
//! f64 FPU: the LM4F120's Cortex-M4F does single-precision in hardware
//! and the MSP430 does everything in software. An `f32` pipeline is
//! therefore *more* faithful to the hardware than the host-side `f64`
//! default — and it doubles the effective lane width of the unrolled
//! kernels. [`Sample`] abstracts the two precisions so every flat kernel
//! (`stats`, `zcr`, `window`, `goertzel`, the `filter` moving average)
//! and the hub's vector-valued dataflow can be instantiated at either.
//!
//! The trait is sealed: exactly `f32` and `f64` implement it. Scalar
//! edges (thresholds, wake values, sensor ingestion) stay `f64`
//! everywhere; the precision parameter governs *vector* payloads, which
//! is where the paper's memory table says the hub stores f32 anyway
//! ("one f32 ring buffer" per window — see `hub::cost`).
//!
//! The trait itself lives in `sidewinder-mcu` so the on-device
//! interpreter is generic over the same two precisions; this module
//! re-exports it (the host `std` build adds the `Vec`/thread-local
//! conveniences the hub runtime uses).

pub use sidewinder_mcu::sample::*;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_trips_exactly() {
        for x in [0.0, -1.5, f64::MAX, f64::MIN_POSITIVE] {
            assert_eq!(<f64 as Sample>::from_f64(x).to_f64(), x);
        }
    }

    #[test]
    fn f32_narrowing_rounds_to_nearest() {
        let x = 0.1f64;
        assert_eq!(<f32 as Sample>::from_f64(x), 0.1f32);
        assert_ne!(<f32 as Sample>::from_f64(x).to_f64(), x);
    }

    #[test]
    fn widen_into_is_a_borrow_for_f64() {
        let src = [1.0f64, 2.0];
        let mut scratch = Vec::new();
        let wide = <f64 as Sample>::widen_into(&src, &mut scratch);
        assert_eq!(wide.as_ptr(), src.as_ptr(), "f64 widening must not copy");
        assert!(scratch.is_empty());
    }

    #[test]
    fn widen_into_copies_for_f32() {
        let src = [1.5f32, -2.0];
        let mut scratch = Vec::new();
        let wide = <f32 as Sample>::widen_into(&src, &mut scratch);
        assert_eq!(wide, &[1.5f64, -2.0]);
    }

    #[test]
    fn with_wide_out_narrows_for_f32() {
        let mut dst: Vec<f32> = vec![9.0; 4];
        let mut scratch = Vec::new();
        <f32 as Sample>::with_wide_out(&mut dst, &mut scratch, |w| {
            w.clear();
            w.extend([0.5, 1.5]);
        });
        assert_eq!(dst, vec![0.5f32, 1.5]);
    }

    #[test]
    fn lane_widths_double_when_precision_halves() {
        assert_eq!(<f64 as Sample>::LANES * 2, <f32 as Sample>::LANES);
    }
}
