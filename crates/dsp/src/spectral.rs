//! Spectral feature extraction over one-sided magnitude spectra.
//!
//! The siren wake-up condition (§3.7.2) transforms each window to the
//! frequency domain, extracts "the magnitude of the dominant frequency and
//! the mean magnitude of all frequency bins", and uses their ratio to decide
//! whether the window contains a pitched sound. The reductions live in
//! `sidewinder-mcu` (the `no_std` hub core runs them on-device); this
//! module re-exports them for the host-side pipeline builders.

pub use sidewinder_mcu::spectral::*;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::Sample;

    #[test]
    fn dominant_bin_of_empty_is_none() {
        assert!(dominant_bin::<f64>(&[]).is_none());
    }

    #[test]
    fn dominant_bin_finds_peak() {
        let peak = dominant_bin(&[1.0, 5.0, 3.0]).unwrap();
        assert_eq!(peak.bin, 1);
        assert_eq!(peak.magnitude, 5.0);
    }

    #[test]
    fn dominant_bin_ties_pick_first() {
        // max_by returns the last maximal element; with a strict comparator
        // over equal values the first stays. Assert the observable contract:
        // magnitude equals the max.
        let peak = dominant_bin(&[2.0, 2.0]).unwrap();
        assert_eq!(peak.magnitude, 2.0);
    }

    #[test]
    fn ratio_is_high_for_peaked_spectrum() {
        let mut spectrum = vec![0.1; 100];
        spectrum[42] = 10.0;
        let r = dominant_to_mean_ratio(&spectrum).unwrap();
        assert!(r > 40.0, "ratio = {r}");
    }

    #[test]
    fn ratio_is_near_one_for_flat_spectrum() {
        let spectrum = vec![1.0; 64];
        let r = dominant_to_mean_ratio(&spectrum).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_of_zero_spectrum_is_none() {
        assert!(dominant_to_mean_ratio(&[0.0; 8]).is_none());
        assert!(dominant_to_mean_ratio::<f64>(&[]).is_none());
    }

    #[test]
    fn band_magnitude_sums_inclusive_range() {
        let m = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(band_magnitude(&m, 1, 2), 5.0);
        assert_eq!(band_magnitude(&m, 0, 3), 10.0);
    }

    #[test]
    fn band_magnitude_clamps_and_rejects_bad_ranges() {
        let m = [1.0, 2.0];
        assert_eq!(band_magnitude(&m, 0, 99), 3.0);
        assert_eq!(band_magnitude(&m, 5, 9), 0.0);
        assert_eq!(band_magnitude(&m, 1, 0), 0.0);
    }

    #[test]
    fn centroid_of_symmetric_spectrum_is_middle() {
        let c = spectral_centroid(&[1.0, 1.0, 1.0]).unwrap();
        assert!((c - 1.0).abs() < 1e-12);
    }

    #[test]
    fn centroid_shifts_toward_mass() {
        let c = spectral_centroid(&[0.0, 0.0, 0.0, 10.0]).unwrap();
        assert!((c - 3.0).abs() < 1e-12);
        assert!(spectral_centroid(&[0.0; 4]).is_none());
    }

    #[test]
    fn flatness_distinguishes_noise_from_tone() {
        let flat = spectral_flatness(&[1.0; 32]).unwrap();
        assert!((flat - 1.0).abs() < 1e-12);
        let mut peaked = vec![0.01; 32];
        peaked[5] = 100.0;
        let f = spectral_flatness(&peaked).unwrap();
        assert!(f < 0.1, "flatness = {f}");
        assert!(spectral_flatness(&[]).is_none());
        assert!(spectral_flatness(&[1.0, 0.0]).is_none());
    }
}
