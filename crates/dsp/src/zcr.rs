//! Zero-crossing rate computation.
//!
//! ZCR is the rate at which a signal changes sign. The paper's music-journal
//! and phrase-detection wake-up conditions partition each window into
//! sub-windows, compute the ZCR of each, and threshold the variance of those
//! rates (§3.7.2): speech alternates voiced (low ZCR) and unvoiced
//! (high ZCR) segments and therefore has high ZCR variance, while music and
//! steady noise are more uniform.

/// Counts sign changes in `window`.
///
/// A crossing is counted when consecutive samples have strictly opposite
/// signs; zeros adopt the sign of the previous non-zero sample so that a
/// touch of zero is not double counted.
pub fn zero_crossings(window: &[f64]) -> usize {
    let mut count = 0;
    let mut prev_sign = 0i8;
    for &x in window {
        let sign = if x > 0.0 {
            1
        } else if x < 0.0 {
            -1
        } else {
            prev_sign
        };
        if prev_sign != 0 && sign != 0 && sign != prev_sign {
            count += 1;
        }
        if sign != 0 {
            prev_sign = sign;
        }
    }
    count
}

/// Zero-crossing rate: crossings per sample, in `[0, 1]`.
///
/// Returns `None` for windows with fewer than two samples.
pub fn zero_crossing_rate(window: &[f64]) -> Option<f64> {
    if window.len() < 2 {
        return None;
    }
    Some(zero_crossings(window) as f64 / (window.len() - 1) as f64)
}

/// Splits `window` into `sub_windows` equal parts and returns each part's
/// zero-crossing rate.
///
/// Trailing samples that do not fill the last sub-window are ignored, as in
/// the paper's streaming implementation. Returns `None` if `sub_windows` is
/// zero or the window is too short to give every sub-window two samples.
pub fn sub_window_zcr(window: &[f64], sub_windows: usize) -> Option<Vec<f64>> {
    if sub_windows == 0 {
        return None;
    }
    let sub_len = window.len() / sub_windows;
    if sub_len < 2 {
        return None;
    }
    Some(
        (0..sub_windows)
            .map(|k| {
                zero_crossing_rate(&window[k * sub_len..(k + 1) * sub_len])
                    .expect("sub-window length checked >= 2")
            })
            .collect(),
    )
}

/// Variance of sub-window zero-crossing rates — the feature the music and
/// phrase wake-up conditions threshold (§3.7.2).
pub fn zcr_variance(window: &[f64], sub_windows: usize) -> Option<f64> {
    let rates = sub_window_zcr(window, sub_windows)?;
    crate::stats::variance(&rates)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal_never_crosses() {
        assert_eq!(zero_crossings(&[1.0; 10]), 0);
        assert_eq!(zero_crossings(&[-1.0; 10]), 0);
        assert_eq!(zero_crossings(&[0.0; 10]), 0);
    }

    #[test]
    fn alternating_signal_crosses_every_sample() {
        let signal = [1.0, -1.0, 1.0, -1.0, 1.0];
        assert_eq!(zero_crossings(&signal), 4);
        assert_eq!(zero_crossing_rate(&signal), Some(1.0));
    }

    #[test]
    fn zeros_do_not_double_count() {
        // +1 → 0 → −1 is one crossing, not two.
        assert_eq!(zero_crossings(&[1.0, 0.0, -1.0]), 1);
        // +1 → 0 → +1 is no crossing.
        assert_eq!(zero_crossings(&[1.0, 0.0, 1.0]), 0);
    }

    #[test]
    fn leading_zeros_are_ignored() {
        assert_eq!(zero_crossings(&[0.0, 0.0, 1.0, -1.0]), 1);
    }

    #[test]
    fn rate_needs_two_samples() {
        assert_eq!(zero_crossing_rate(&[]), None);
        assert_eq!(zero_crossing_rate(&[1.0]), None);
    }

    #[test]
    fn tone_zcr_tracks_frequency() {
        // A 100 Hz sine at 8 kHz crosses zero 2·100 times per second, i.e.
        // rate ≈ 200/8000 = 0.025.
        let rate_hz = 8000.0;
        let f = 100.0;
        let signal: Vec<f64> = (0..8000)
            .map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / rate_hz).sin())
            .collect();
        let zcr = zero_crossing_rate(&signal).unwrap();
        assert!((zcr - 0.025).abs() < 0.002, "zcr = {zcr}");
    }

    #[test]
    fn sub_window_zcr_partitions() {
        // First half alternates (rate 1), second half constant (rate 0).
        let mut signal = vec![];
        for i in 0..8 {
            signal.push(if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        signal.extend(std::iter::repeat_n(1.0, 8));
        let rates = sub_window_zcr(&signal, 2).unwrap();
        assert_eq!(rates.len(), 2);
        assert!((rates[0] - 1.0).abs() < 1e-12);
        assert_eq!(rates[1], 0.0);
    }

    #[test]
    fn sub_window_zcr_rejects_degenerate_splits() {
        assert!(sub_window_zcr(&[1.0, -1.0], 0).is_none());
        assert!(sub_window_zcr(&[1.0, -1.0, 1.0], 2).is_none());
    }

    #[test]
    fn zcr_variance_separates_speechlike_from_tone() {
        let rate_hz = 8000.0;
        let n = 1600;
        // Speech-like: alternate voiced (low freq) and unvoiced (high freq)
        // sub-segments.
        let speechish: Vec<f64> = (0..n)
            .map(|i| {
                let f = if (i / 200) % 2 == 0 { 150.0 } else { 2500.0 };
                (2.0 * std::f64::consts::PI * f * i as f64 / rate_hz).sin()
            })
            .collect();
        // Tone: single frequency throughout.
        let tone: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * 440.0 * i as f64 / rate_hz).sin())
            .collect();
        let v_speech = zcr_variance(&speechish, 8).unwrap();
        let v_tone = zcr_variance(&tone, 8).unwrap();
        assert!(
            v_speech > 10.0 * v_tone.max(1e-9),
            "speech zcr var {v_speech} should dominate tone {v_tone}"
        );
    }
}
