//! Zero-crossing rate computation.
//!
//! ZCR is the rate at which a signal changes sign. The paper's music-journal
//! and phrase-detection wake-up conditions partition each window into
//! sub-windows, compute the ZCR of each, and threshold the variance of those
//! rates (§3.7.2): speech alternates voiced (low ZCR) and unvoiced
//! (high ZCR) segments and therefore has high ZCR variance, while music and
//! steady noise are more uniform.
//!
//! The counting kernels and the scratch-buffer (`_into`) variants live in
//! `sidewinder-mcu`; the `Vec`-returning conveniences below wrap them for
//! host-side callers.

use crate::sample::Sample;

pub use sidewinder_mcu::zcr::*;

/// Splits `window` into `sub_windows` equal parts and returns each part's
/// zero-crossing rate.
///
/// Trailing samples that do not fill the last sub-window are ignored, as in
/// the paper's streaming implementation. Returns `None` if `sub_windows` is
/// zero or the window is too short to give every sub-window two samples.
pub fn sub_window_zcr<P: Sample>(window: &[P], sub_windows: usize) -> Option<Vec<P>> {
    if sub_windows == 0 {
        return None;
    }
    let sub_len = window.len() / sub_windows;
    if sub_len < 2 {
        return None;
    }
    Some(
        (0..sub_windows)
            .map(|k| {
                zero_crossing_rate(&window[k * sub_len..(k + 1) * sub_len])
                    .expect("sub-window length checked >= 2")
            })
            .collect(),
    )
}

/// Variance of sub-window zero-crossing rates — the feature the music and
/// phrase wake-up conditions threshold (§3.7.2).
pub fn zcr_variance<P: Sample>(window: &[P], sub_windows: usize) -> Option<P> {
    let rates = sub_window_zcr(window, sub_windows)?;
    crate::stats::variance(&rates)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal_never_crosses() {
        assert_eq!(zero_crossings(&[1.0; 10]), 0);
        assert_eq!(zero_crossings(&[-1.0; 10]), 0);
        assert_eq!(zero_crossings(&[0.0; 10]), 0);
    }

    #[test]
    fn alternating_signal_crosses_every_sample() {
        let signal = [1.0, -1.0, 1.0, -1.0, 1.0];
        assert_eq!(zero_crossings(&signal), 4);
        assert_eq!(zero_crossing_rate(&signal), Some(1.0));
    }

    #[test]
    fn zeros_do_not_double_count() {
        // +1 → 0 → −1 is one crossing, not two.
        assert_eq!(zero_crossings(&[1.0, 0.0, -1.0]), 1);
        // +1 → 0 → +1 is no crossing.
        assert_eq!(zero_crossings(&[1.0, 0.0, 1.0]), 0);
    }

    #[test]
    fn leading_zeros_are_ignored() {
        assert_eq!(zero_crossings(&[0.0, 0.0, 1.0, -1.0]), 1);
    }

    #[test]
    fn nan_behaves_like_zero() {
        // NaN keeps the previous sign: one crossing, same as a zero.
        assert_eq!(zero_crossings(&[1.0, f64::NAN, -1.0]), 1);
        assert_eq!(zero_crossings(&[1.0, f64::NAN, 1.0]), 0);
        // Leading NaNs, like leading zeros, never count.
        assert_eq!(zero_crossings(&[f64::NAN, -1.0, 1.0]), 1);
        assert_eq!(zero_crossings(&[f64::NAN; 16]), 0);
    }

    #[test]
    fn chunked_count_matches_serial_state_machine() {
        // Straddle several chunk boundaries with a messy signal that
        // mixes clean runs, zeros, and NaN so both paths execute.
        let signal: Vec<f64> = (0..1000)
            .map(|i| match i % 97 {
                0 => 0.0,
                1 => f64::NAN,
                _ => ((i as f64) * 0.73).sin() - 0.1,
            })
            .collect();
        let mut count = 0;
        let mut prev_sign = 0i8;
        for &x in &signal {
            step(x, &mut prev_sign, &mut count);
        }
        assert_eq!(zero_crossings(&signal), count);
    }

    #[test]
    fn f32_counts_match_f64_on_clean_signals() {
        let wide: Vec<f64> = (0..2048).map(|i| ((i as f64) * 0.37).sin() + 0.2).collect();
        let narrow: Vec<f32> = wide.iter().map(|&x| x as f32).collect();
        assert_eq!(zero_crossings(&wide), zero_crossings(&narrow));
    }

    #[test]
    fn rate_needs_two_samples() {
        assert_eq!(zero_crossing_rate::<f64>(&[]), None);
        assert_eq!(zero_crossing_rate(&[1.0]), None);
    }

    #[test]
    fn tone_zcr_tracks_frequency() {
        // A 100 Hz sine at 8 kHz crosses zero 2·100 times per second, i.e.
        // rate ≈ 200/8000 = 0.025.
        let rate_hz = 8000.0;
        let f = 100.0;
        let signal: Vec<f64> = (0..8000)
            .map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / rate_hz).sin())
            .collect();
        let zcr = zero_crossing_rate(&signal).unwrap();
        assert!((zcr - 0.025).abs() < 0.002, "zcr = {zcr}");
    }

    #[test]
    fn sub_window_zcr_partitions() {
        // First half alternates (rate 1), second half constant (rate 0).
        let mut signal = vec![];
        for i in 0..8 {
            signal.push(if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        signal.extend(std::iter::repeat_n(1.0, 8));
        let rates = sub_window_zcr(&signal, 2).unwrap();
        assert_eq!(rates.len(), 2);
        assert!((rates[0] - 1.0).abs() < 1e-12);
        assert_eq!(rates[1], 0.0);
    }

    #[test]
    fn sub_window_zcr_rejects_degenerate_splits() {
        assert!(sub_window_zcr(&[1.0, -1.0], 0).is_none());
        assert!(sub_window_zcr(&[1.0, -1.0, 1.0], 2).is_none());
    }

    #[test]
    fn zcr_variance_separates_speechlike_from_tone() {
        let rate_hz = 8000.0;
        let n = 1600;
        // Speech-like: alternate voiced (low freq) and unvoiced (high freq)
        // sub-segments.
        let speechish: Vec<f64> = (0..n)
            .map(|i| {
                let f = if (i / 200) % 2 == 0 { 150.0 } else { 2500.0 };
                (2.0 * std::f64::consts::PI * f * i as f64 / rate_hz).sin()
            })
            .collect();
        // Tone: single frequency throughout.
        let tone: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * 440.0 * i as f64 / rate_hz).sin())
            .collect();
        let v_speech = zcr_variance(&speechish, 8).unwrap();
        let v_tone = zcr_variance(&tone, 8).unwrap();
        assert!(
            v_speech > 10.0 * v_tone.max(1e-9),
            "speech zcr var {v_speech} should dominate tone {v_tone}"
        );
    }
}
