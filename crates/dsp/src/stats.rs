//! Statistical feature extraction.
//!
//! The paper's hub ships "a set of statistical functions" for feature
//! extraction (§3.6). The music-journal and phrase-detection wake-up
//! conditions use the variance of window amplitude and the variance of
//! per-sub-window zero-crossing rates (§3.7.2); those reductions are built
//! from these kernels.
//!
//! The flat reduction kernels ([`Summary`], [`mean`], [`variance`], …) live
//! in `sidewinder-mcu` — they are exactly what the on-device interpreter
//! runs — and are re-exported here with their documented length-dependent
//! reduction order (DESIGN.md §6h) intact. The `Vec`-returning local-extrema
//! searches the steps/headbutt applications use stay host-side below.

pub use sidewinder_mcu::stats::*;

/// Indices of local maxima whose value lies within `[lo, hi]`.
///
/// A sample is a local maximum when strictly greater than its predecessor
/// and at least its successor (plateaus credit their first sample). The
/// steps application detects steps as band-limited local maxima of low-pass
/// filtered x-axis acceleration (§3.7.1, after Libby's algorithm).
pub fn local_maxima_in_band(signal: &[f64], lo: f64, hi: f64) -> Vec<usize> {
    let mut out = Vec::new();
    for i in 1..signal.len().saturating_sub(1) {
        if signal[i] > signal[i - 1]
            && signal[i] >= signal[i + 1]
            && signal[i] >= lo
            && signal[i] <= hi
        {
            out.push(i);
        }
    }
    out
}

/// Indices of local minima whose value lies within `[lo, hi]`.
///
/// The headbutt application searches for y-axis local minima between
/// −6.75 and −3.75 m/s² (§3.7.1).
pub fn local_minima_in_band(signal: &[f64], lo: f64, hi: f64) -> Vec<usize> {
    // The mirror of `local_maxima_in_band` with flipped comparisons —
    // equivalent to negating the signal and band, without the copy.
    let mut out = Vec::new();
    for i in 1..signal.len().saturating_sub(1) {
        if signal[i] < signal[i - 1]
            && signal[i] <= signal[i + 1]
            && signal[i] >= lo
            && signal[i] <= hi
        {
            out.push(i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::Sample;

    #[test]
    fn empty_window_yields_none() {
        assert!(Summary::<f64>::of(&[]).is_none());
        assert!(mean::<f64>(&[]).is_none());
        assert!(variance::<f64>(&[]).is_none());
        assert!(rms::<f64>(&[]).is_none());
        assert!(mean_abs::<f64>(&[]).is_none());
    }

    #[test]
    fn single_sample_summary() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.rms, 7.0);
    }

    #[test]
    fn known_variance() {
        // Population variance of [2,4,4,4,5,5,7,9] is 4.
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.variance - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn variance_never_negative_under_cancellation() {
        let big = 1e9;
        let s = Summary::of(&[big, big, big]).unwrap();
        assert!(s.variance >= 0.0);
    }

    #[test]
    fn peak_to_peak() {
        let s = Summary::of(&[-1.0, 0.0, 3.0]).unwrap();
        assert_eq!(s.peak_to_peak(), 4.0);
    }

    #[test]
    fn rms_of_alternating_unit_signal_is_one() {
        let signal = [1.0, -1.0, 1.0, -1.0];
        assert!((rms(&signal).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_abs_ignores_sign() {
        assert_eq!(mean_abs(&[1.0, -1.0, 2.0, -2.0]).unwrap(), 1.5);
    }

    #[test]
    fn energy_sums_squares() {
        assert_eq!(energy(&[3.0, 4.0]), 25.0);
        assert_eq!(energy::<f64>(&[]), 0.0);
    }

    #[test]
    fn vector_magnitude_is_euclidean_norm() {
        assert!((vector_magnitude(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!((vector_magnitude(&[1.0, 2.0, 2.0]) - 3.0).abs() < 1e-12);
        assert_eq!(vector_magnitude::<f64>(&[]), 0.0);
    }

    #[test]
    fn f32_summary_matches_f64_within_single_precision() {
        let wide: Vec<f64> = (0..2048).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
        let narrow: Vec<f32> = wide.iter().map(|&x| x as f32).collect();
        let sw = Summary::of(&wide).unwrap();
        let sn = Summary::of(&narrow).unwrap();
        assert!((f64::from(sn.mean) - sw.mean).abs() < 1e-4);
        assert!((f64::from(sn.variance) - sw.variance).abs() < 1e-3);
        assert_eq!(f64::from(sn.max), sw.max as f32 as f64);
    }

    #[test]
    fn lane_order_is_the_documented_tree() {
        // A 33-sample window (cutover + 1, non-multiple of 4): recompute
        // the documented lane order by hand and require bit equality.
        let w: Vec<f64> = (0..33).map(|i| (i as f64 * 0.9).sin() / 3.0).collect();
        let mut lanes = [0.0f64; 4];
        let main = w.len() - w.len() % 4;
        for (i, &x) in w.iter().enumerate() {
            let lane = if i < main { i % 4 } else { i - main };
            lanes[lane] += x;
        }
        let expected = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
        let got = Summary::of(&w).unwrap();
        assert_eq!(got.mean.to_bits(), (expected / 33.0).to_bits());
    }

    #[test]
    fn below_cutover_matches_the_sequential_kernel_exactly() {
        // Lengths under LANE_CUTOVER must reproduce the original
        // left-to-right reduction bit-for-bit (the zcrVariance path
        // reduces 8 inexact rates and its digests are frozen).
        let w: Vec<f64> = (0..(LANE_CUTOVER - 1))
            .map(|i| 0.1 + (i as f64 / 7.0).sin())
            .collect();
        let (mut sum, mut sum_sq) = (0.0f64, 0.0f64);
        for &x in &w {
            sum += x;
            sum_sq += x * x;
        }
        let n = w.len() as f64;
        let s = Summary::of(&w).unwrap();
        assert_eq!(s.mean.to_bits(), (sum / n).to_bits());
        assert_eq!(
            s.variance.to_bits(),
            (sum_sq / n - (sum / n) * (sum / n)).max(0.0).to_bits()
        );
    }

    #[test]
    fn nan_policy_propagates_through_sums_and_skips_extrema() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0]).unwrap();
        assert!(s.mean.is_nan());
        assert!(s.rms.is_nan());
        // The cancellation clamp absorbs NaN: documented, load-bearing
        // for SW004's "threshold comparisons see a number" assumption.
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);

        let all_nan = Summary::of(&[f64::NAN; 40]).unwrap();
        assert!(all_nan.mean.is_nan());
        assert_eq!(all_nan.min, f64::INFINITY);
        assert_eq!(all_nan.max, f64::NEG_INFINITY);
    }

    #[test]
    fn finds_local_maxima_in_band() {
        //            0    1    2    3    4    5    6
        let signal = [0.0, 3.0, 1.0, 5.0, 2.0, 9.0, 0.0];
        assert_eq!(local_maxima_in_band(&signal, 0.0, 10.0), vec![1, 3, 5]);
        // Band filter drops the 9.0 peak.
        assert_eq!(local_maxima_in_band(&signal, 2.5, 6.0), vec![1, 3]);
    }

    #[test]
    fn plateau_counts_once() {
        let signal = [0.0, 2.0, 2.0, 0.0];
        assert_eq!(local_maxima_in_band(&signal, 0.0, 10.0), vec![1]);
    }

    #[test]
    fn endpoints_are_never_maxima() {
        let signal = [9.0, 1.0, 9.0];
        assert!(local_maxima_in_band(&signal, 0.0, 10.0).is_empty());
    }

    #[test]
    fn finds_local_minima_in_band() {
        let signal = [0.0, -5.0, 0.0, -2.0, 0.0];
        assert_eq!(local_minima_in_band(&signal, -6.0, -1.0), vec![1, 3]);
        assert_eq!(local_minima_in_band(&signal, -3.0, -1.0), vec![3]);
    }

    #[test]
    fn short_signals_have_no_extrema() {
        assert!(local_maxima_in_band(&[], 0.0, 1.0).is_empty());
        assert!(local_maxima_in_band(&[1.0], 0.0, 2.0).is_empty());
        assert!(local_maxima_in_band(&[1.0, 2.0], 0.0, 3.0).is_empty());
    }
}
