//! Statistical feature extraction.
//!
//! The paper's hub ships "a set of statistical functions" for feature
//! extraction (§3.6). The music-journal and phrase-detection wake-up
//! conditions use the variance of window amplitude and the variance of
//! per-sub-window zero-crossing rates (§3.7.2); those reductions are built
//! from these kernels.

/// Summary statistics of a window of samples, computed in a single pass.
///
/// # Example
///
/// ```
/// use sidewinder_dsp::stats::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// assert!((s.variance - 1.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance (divides by `count`).
    pub variance: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Root mean square.
    pub rms: f64,
}

impl Summary {
    /// Computes summary statistics. Returns `None` for an empty window.
    pub fn of(window: &[f64]) -> Option<Summary> {
        if window.is_empty() {
            return None;
        }
        let n = window.len() as f64;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in window {
            sum += x;
            sum_sq += x * x;
            min = min.min(x);
            max = max.max(x);
        }
        let mean = sum / n;
        // Clamp: catastrophic cancellation can produce a tiny negative value.
        let variance = (sum_sq / n - mean * mean).max(0.0);
        Some(Summary {
            count: window.len(),
            mean,
            variance,
            min,
            max,
            rms: (sum_sq / n).sqrt(),
        })
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Peak-to-peak amplitude (`max - min`).
    pub fn peak_to_peak(&self) -> f64 {
        self.max - self.min
    }
}

/// Arithmetic mean; `None` when empty.
pub fn mean(window: &[f64]) -> Option<f64> {
    Summary::of(window).map(|s| s.mean)
}

/// Population variance; `None` when empty.
pub fn variance(window: &[f64]) -> Option<f64> {
    Summary::of(window).map(|s| s.variance)
}

/// Root mean square; `None` when empty.
pub fn rms(window: &[f64]) -> Option<f64> {
    Summary::of(window).map(|s| s.rms)
}

/// Mean absolute amplitude; `None` when empty. Used by the significant-sound
/// predefined-activity detector.
pub fn mean_abs(window: &[f64]) -> Option<f64> {
    if window.is_empty() {
        return None;
    }
    Some(window.iter().map(|x| x.abs()).sum::<f64>() / window.len() as f64)
}

/// Signal energy `Σ x²`.
pub fn energy(window: &[f64]) -> f64 {
    window.iter().map(|x| x * x).sum()
}

/// Euclidean magnitude of an acceleration vector `√(Σ xᵢ²)`.
///
/// This is the hub's "magnitude of acceleration vector computation" (§3.6):
/// an aggregation algorithm that fuses the per-axis branches of a pipeline
/// into one (Fig. 2).
pub fn vector_magnitude(components: &[f64]) -> f64 {
    energy(components).sqrt()
}

/// Indices of local maxima whose value lies within `[lo, hi]`.
///
/// A sample is a local maximum when strictly greater than its predecessor
/// and at least its successor (plateaus credit their first sample). The
/// steps application detects steps as band-limited local maxima of low-pass
/// filtered x-axis acceleration (§3.7.1, after Libby's algorithm).
pub fn local_maxima_in_band(signal: &[f64], lo: f64, hi: f64) -> Vec<usize> {
    let mut out = Vec::new();
    for i in 1..signal.len().saturating_sub(1) {
        if signal[i] > signal[i - 1]
            && signal[i] >= signal[i + 1]
            && signal[i] >= lo
            && signal[i] <= hi
        {
            out.push(i);
        }
    }
    out
}

/// Indices of local minima whose value lies within `[lo, hi]`.
///
/// The headbutt application searches for y-axis local minima between
/// −6.75 and −3.75 m/s² (§3.7.1).
pub fn local_minima_in_band(signal: &[f64], lo: f64, hi: f64) -> Vec<usize> {
    // The mirror of `local_maxima_in_band` with flipped comparisons —
    // equivalent to negating the signal and band, without the copy.
    let mut out = Vec::new();
    for i in 1..signal.len().saturating_sub(1) {
        if signal[i] < signal[i - 1]
            && signal[i] <= signal[i + 1]
            && signal[i] >= lo
            && signal[i] <= hi
        {
            out.push(i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_yields_none() {
        assert!(Summary::of(&[]).is_none());
        assert!(mean(&[]).is_none());
        assert!(variance(&[]).is_none());
        assert!(rms(&[]).is_none());
        assert!(mean_abs(&[]).is_none());
    }

    #[test]
    fn single_sample_summary() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.rms, 7.0);
    }

    #[test]
    fn known_variance() {
        // Population variance of [2,4,4,4,5,5,7,9] is 4.
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.variance - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn variance_never_negative_under_cancellation() {
        let big = 1e9;
        let s = Summary::of(&[big, big, big]).unwrap();
        assert!(s.variance >= 0.0);
    }

    #[test]
    fn peak_to_peak() {
        let s = Summary::of(&[-1.0, 0.0, 3.0]).unwrap();
        assert_eq!(s.peak_to_peak(), 4.0);
    }

    #[test]
    fn rms_of_alternating_unit_signal_is_one() {
        let signal = [1.0, -1.0, 1.0, -1.0];
        assert!((rms(&signal).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_abs_ignores_sign() {
        assert_eq!(mean_abs(&[1.0, -1.0, 2.0, -2.0]).unwrap(), 1.5);
    }

    #[test]
    fn energy_sums_squares() {
        assert_eq!(energy(&[3.0, 4.0]), 25.0);
        assert_eq!(energy(&[]), 0.0);
    }

    #[test]
    fn vector_magnitude_is_euclidean_norm() {
        assert!((vector_magnitude(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!((vector_magnitude(&[1.0, 2.0, 2.0]) - 3.0).abs() < 1e-12);
        assert_eq!(vector_magnitude(&[]), 0.0);
    }

    #[test]
    fn finds_local_maxima_in_band() {
        //            0    1    2    3    4    5    6
        let signal = [0.0, 3.0, 1.0, 5.0, 2.0, 9.0, 0.0];
        assert_eq!(local_maxima_in_band(&signal, 0.0, 10.0), vec![1, 3, 5]);
        // Band filter drops the 9.0 peak.
        assert_eq!(local_maxima_in_band(&signal, 2.5, 6.0), vec![1, 3]);
    }

    #[test]
    fn plateau_counts_once() {
        let signal = [0.0, 2.0, 2.0, 0.0];
        assert_eq!(local_maxima_in_band(&signal, 0.0, 10.0), vec![1]);
    }

    #[test]
    fn endpoints_are_never_maxima() {
        let signal = [9.0, 1.0, 9.0];
        assert!(local_maxima_in_band(&signal, 0.0, 10.0).is_empty());
    }

    #[test]
    fn finds_local_minima_in_band() {
        let signal = [0.0, -5.0, 0.0, -2.0, 0.0];
        assert_eq!(local_minima_in_band(&signal, -6.0, -1.0), vec![1, 3]);
        assert_eq!(local_minima_in_band(&signal, -3.0, -1.0), vec![3]);
    }

    #[test]
    fn short_signals_have_no_extrema() {
        assert!(local_maxima_in_band(&[], 0.0, 1.0).is_empty());
        assert!(local_maxima_in_band(&[1.0], 0.0, 2.0).is_empty());
        assert!(local_maxima_in_band(&[1.0, 2.0], 0.0, 3.0).is_empty());
    }
}
