//! Radix-2 Fast Fourier Transform and its inverse.
//!
//! The paper's hub runtime provides FFT and IFFT as platform algorithms
//! (§3.6 "Transform"). The evaluation also leans on the FFT's cost: the
//! MSP430 microcontroller could not run FFT-based stages in real time,
//! forcing siren detection onto the larger LM4F120 (§4, Table 2 footnote).
//! These kernels are therefore both a substrate and a measurement target.
//!
//! The implementation is an iterative, in-place, decimation-in-time radix-2
//! transform. Input lengths must be powers of two; the hub-side windowing
//! stage guarantees that in practice.

use crate::complex::Complex;

/// Error returned when a transform is given a length that is not a power of
/// two (or is zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonPowerOfTwoError {
    /// The offending length.
    pub len: usize,
}

impl std::fmt::Display for NonPowerOfTwoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "transform length {} is not a non-zero power of two",
            self.len
        )
    }
}

impl std::error::Error for NonPowerOfTwoError {}

/// Returns `true` if `n` is a non-zero power of two.
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

fn check_len(n: usize) -> Result<(), NonPowerOfTwoError> {
    if is_power_of_two(n) {
        Ok(())
    } else {
        Err(NonPowerOfTwoError { len: n })
    }
}

/// Performs an in-place forward FFT.
///
/// The transform is unscaled: `ifft` applies the `1/N` factor so that a
/// round trip reproduces the input.
///
/// # Errors
///
/// Returns [`NonPowerOfTwoError`] if `data.len()` is zero or not a power of
/// two.
///
/// # Example
///
/// ```
/// use sidewinder_dsp::{fft, Complex};
///
/// let mut data = vec![Complex::ONE; 8];
/// fft::fft_in_place(&mut data)?;
/// // A constant signal concentrates all energy in bin 0.
/// assert!((data[0].re - 8.0).abs() < 1e-12);
/// assert!(data[1..].iter().all(|z| z.magnitude() < 1e-12));
/// # Ok::<(), sidewinder_dsp::fft::NonPowerOfTwoError>(())
/// ```
pub fn fft_in_place(data: &mut [Complex]) -> Result<(), NonPowerOfTwoError> {
    check_len(data.len())?;
    transform(data, false);
    Ok(())
}

/// Performs an in-place inverse FFT, including the `1/N` normalization.
///
/// # Errors
///
/// Returns [`NonPowerOfTwoError`] if `data.len()` is zero or not a power of
/// two.
pub fn ifft_in_place(data: &mut [Complex]) -> Result<(), NonPowerOfTwoError> {
    check_len(data.len())?;
    transform(data, true);
    let scale = 1.0 / data.len() as f64;
    for z in data.iter_mut() {
        *z = z.scale(scale);
    }
    Ok(())
}

/// Forward FFT of a real signal, returning the full complex spectrum.
///
/// # Errors
///
/// Returns [`NonPowerOfTwoError`] if `signal.len()` is zero or not a power
/// of two.
pub fn real_fft(signal: &[f64]) -> Result<Vec<Complex>, NonPowerOfTwoError> {
    check_len(signal.len())?;
    let mut data: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
    transform(&mut data, false);
    Ok(data)
}

/// Forward FFT of a real signal reduced to one-sided magnitudes.
///
/// Returns `N/2 + 1` magnitudes covering DC through the Nyquist bin. This is
/// the representation the hub's feature-extraction stages consume.
///
/// # Panics
///
/// Panics if `signal.len()` is zero or not a power of two. The hub-side
/// windowing stage guarantees power-of-two windows; use [`real_fft`] for a
/// fallible variant.
pub fn real_fft_magnitudes(signal: &[f64]) -> Vec<f64> {
    let spectrum = real_fft(signal).expect("window length must be a non-zero power of two");
    spectrum[..=signal.len() / 2]
        .iter()
        .map(|z| z.magnitude())
        .collect()
}

/// Converts an FFT bin index to the center frequency in Hz.
///
/// `n` is the transform length and `sample_rate_hz` the sampling rate of the
/// windowed signal.
pub fn bin_to_frequency(bin: usize, n: usize, sample_rate_hz: f64) -> f64 {
    bin as f64 * sample_rate_hz / n as f64
}

/// Converts a frequency in Hz to the nearest FFT bin index.
pub fn frequency_to_bin(freq_hz: f64, n: usize, sample_rate_hz: f64) -> usize {
    ((freq_hz * n as f64 / sample_rate_hz).round().max(0.0)) as usize
}

/// The iterative radix-2 Cooley–Tukey kernel shared by both directions.
fn transform(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }

    // Butterfly passes.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_angle(ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::ONE;
            let half = len / 2;
            for k in 0..half {
                let u = chunk[k];
                let v = chunk[k + half] * w;
                chunk[k] = u + v;
                chunk[k + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() < eps, "{a} !~ {b}");
    }

    #[test]
    fn rejects_non_power_of_two() {
        let mut data = vec![Complex::ZERO; 12];
        assert_eq!(fft_in_place(&mut data), Err(NonPowerOfTwoError { len: 12 }));
        assert!(real_fft(&[0.0; 7]).is_err());
        assert!(real_fft(&[]).is_err());
    }

    #[test]
    fn error_display_mentions_length() {
        let msg = NonPowerOfTwoError { len: 12 }.to_string();
        assert!(msg.contains("12"));
    }

    #[test]
    fn single_element_is_identity() {
        let mut data = vec![Complex::new(4.2, -1.0)];
        fft_in_place(&mut data).unwrap();
        assert_eq!(data[0], Complex::new(4.2, -1.0));
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut data = vec![Complex::ZERO; 16];
        data[0] = Complex::ONE;
        fft_in_place(&mut data).unwrap();
        for z in &data {
            assert_close(z.re, 1.0, 1e-12);
            assert_close(z.im, 0.0, 1e-12);
        }
    }

    #[test]
    fn constant_signal_concentrates_in_dc() {
        let spectrum = real_fft(&[3.0; 32]).unwrap();
        assert_close(spectrum[0].re, 96.0, 1e-9);
        for z in &spectrum[1..] {
            assert!(z.magnitude() < 1e-9);
        }
    }

    #[test]
    fn pure_tone_peaks_at_its_bin() {
        let n = 128;
        let rate = 1000.0;
        let f = 125.0; // exactly bin 16
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / rate).cos())
            .collect();
        let mags = real_fft_magnitudes(&signal);
        let bin = frequency_to_bin(f, n, rate);
        assert_eq!(bin, 16);
        let (peak_bin, _) = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert_eq!(peak_bin, bin);
        // A unit-amplitude cosine carries N/2 magnitude in its bin.
        assert_close(mags[bin], n as f64 / 2.0, 1e-9);
    }

    #[test]
    fn fft_ifft_round_trip_recovers_signal() {
        let n = 64;
        let original: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut data = original.clone();
        fft_in_place(&mut data).unwrap();
        ifft_in_place(&mut data).unwrap();
        for (a, b) in data.iter().zip(&original) {
            assert_close(a.re, b.re, 1e-10);
            assert_close(a.im, b.im, 1e-10);
        }
    }

    #[test]
    fn linearity_of_transform() {
        let n = 32;
        let x: Vec<Complex> = (0..n).map(|i| Complex::from_real(i as f64)).collect();
        let y: Vec<Complex> = (0..n)
            .map(|i| Complex::from_real((i as f64).sqrt()))
            .collect();
        let mut fx = x.clone();
        let mut fy = y.clone();
        let mut fxy: Vec<Complex> = x.iter().zip(&y).map(|(a, b)| *a + *b).collect();
        fft_in_place(&mut fx).unwrap();
        fft_in_place(&mut fy).unwrap();
        fft_in_place(&mut fxy).unwrap();
        for i in 0..n {
            let sum = fx[i] + fy[i];
            assert_close(fxy[i].re, sum.re, 1e-9);
            assert_close(fxy[i].im, sum.im, 1e-9);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 64;
        let signal: Vec<f64> = (0..n).map(|i| ((i * i) as f64 * 0.01).sin()).collect();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let spectrum = real_fft(&signal).unwrap();
        let freq_energy: f64 =
            spectrum.iter().map(|z| z.magnitude_squared()).sum::<f64>() / n as f64;
        assert_close(time_energy, freq_energy, 1e-9);
    }

    #[test]
    fn bin_frequency_conversions_are_inverse() {
        let n = 256;
        let rate = 8000.0;
        for bin in [0, 1, 17, 100, 128] {
            let f = bin_to_frequency(bin, n, rate);
            assert_eq!(frequency_to_bin(f, n, rate), bin);
        }
    }

    #[test]
    fn one_sided_magnitudes_have_expected_length() {
        assert_eq!(real_fft_magnitudes(&[0.0; 16]).len(), 9);
        assert_eq!(real_fft_magnitudes(&[0.0; 2]).len(), 2);
    }
}
