//! Radix-2 Fast Fourier Transform and its inverse.
//!
//! The paper's hub runtime provides FFT and IFFT as platform algorithms
//! (§3.6 "Transform"). The evaluation also leans on the FFT's cost: the
//! MSP430 microcontroller could not run FFT-based stages in real time,
//! forcing siren detection onto the larger LM4F120 (§4, Table 2 footnote).
//! These kernels are therefore both a substrate and a measurement target.
//!
//! The implementation is an iterative, in-place, decimation-in-time radix-2
//! transform. Input lengths must be powers of two; the hub-side windowing
//! stage guarantees that in practice.
//!
//! Because the hub replays hours of sensor traces window by window at a
//! fixed transform length, the twiddle factors and the bit-reversal
//! permutation are worth computing once: [`FftPlan`] precomputes both and
//! applies them with in-place `process` passes. The plan's butterflies use
//! the exact twiddle values the direct kernel would compute (the same
//! `w *= wlen` recurrence, tabulated), so planned and direct transforms are
//! bit-identical. The module-level entry points ([`fft_in_place`],
//! [`ifft_in_place`], [`real_fft`], [`real_fft_magnitudes`]) route through
//! a per-thread plan cache keyed by transform length.

use crate::complex::Complex;
use std::cell::RefCell;
use std::rc::Rc;

// The transform primitives — the error type, the length predicate, the
// bin/frequency conversions, the swap/twiddle generators, and the
// reference kernel — live in `sidewinder-mcu` so the on-device
// interpreter shares them; re-export them under their historical paths.
use sidewinder_mcu::fft as mcu_fft;
pub use sidewinder_mcu::fft::{
    bin_to_frequency, check_len, frequency_to_bin, is_power_of_two, transform, NonPowerOfTwoError,
};

/// Performs an in-place forward FFT.
///
/// The transform is unscaled: `ifft` applies the `1/N` factor so that a
/// round trip reproduces the input.
///
/// # Errors
///
/// Returns [`NonPowerOfTwoError`] if `data.len()` is zero or not a power of
/// two.
///
/// # Example
///
/// ```
/// use sidewinder_dsp::{fft, Complex};
///
/// let mut data = vec![Complex::ONE; 8];
/// fft::fft_in_place(&mut data)?;
/// // A constant signal concentrates all energy in bin 0.
/// assert!((data[0].re - 8.0).abs() < 1e-12);
/// assert!(data[1..].iter().all(|z| z.magnitude() < 1e-12));
/// # Ok::<(), sidewinder_dsp::fft::NonPowerOfTwoError>(())
/// ```
pub fn fft_in_place(data: &mut [Complex]) -> Result<(), NonPowerOfTwoError> {
    with_plan(data.len(), |plan| plan.process_forward(data))
}

/// Performs an in-place inverse FFT, including the `1/N` normalization.
///
/// # Errors
///
/// Returns [`NonPowerOfTwoError`] if `data.len()` is zero or not a power of
/// two.
pub fn ifft_in_place(data: &mut [Complex]) -> Result<(), NonPowerOfTwoError> {
    with_plan(data.len(), |plan| plan.process_inverse(data))
}

/// Forward FFT of a real signal, returning the full complex spectrum.
///
/// # Errors
///
/// Returns [`NonPowerOfTwoError`] if `signal.len()` is zero or not a power
/// of two.
pub fn real_fft(signal: &[f64]) -> Result<Vec<Complex>, NonPowerOfTwoError> {
    with_plan(signal.len(), |plan| {
        let mut data = Vec::new();
        plan.process_real_forward_into(signal, &mut data);
        data
    })
}

/// Forward FFT of a real signal reduced to one-sided magnitudes.
///
/// Returns `N/2 + 1` magnitudes covering DC through the Nyquist bin. This is
/// the representation the hub's feature-extraction stages consume.
///
/// # Panics
///
/// Panics if `signal.len()` is zero or not a power of two. The hub-side
/// windowing stage guarantees power-of-two windows; use [`real_fft`] for a
/// fallible variant.
pub fn real_fft_magnitudes(signal: &[f64]) -> Vec<f64> {
    let spectrum = real_fft(signal).expect("window length must be a non-zero power of two");
    spectrum[..=signal.len() / 2]
        .iter()
        .map(|z| z.magnitude())
        .collect()
}

/// A precomputed radix-2 FFT plan for one transform length.
///
/// Building a plan tabulates the bit-reversal swap list and the per-stage
/// twiddle factors; [`FftPlan::process_forward`] and
/// [`FftPlan::process_inverse`] then run the butterfly passes with table
/// lookups instead of recomputing `e^{±2πik/len}` per chunk. The tables are
/// generated with the same `w *= wlen` recurrence the direct
/// [`transform`] kernel uses, so a planned transform is bit-identical to
/// the direct one.
///
/// # Example
///
/// ```
/// use sidewinder_dsp::{fft::FftPlan, Complex};
///
/// let plan = FftPlan::new(8)?;
/// let mut data = vec![Complex::ONE; 8];
/// plan.process_forward(&mut data);
/// assert!((data[0].re - 8.0).abs() < 1e-12);
/// # Ok::<(), sidewinder_dsp::fft::NonPowerOfTwoError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FftPlan {
    len: usize,
    /// Bit-reversal swaps `(i, j)` with `j > i`.
    swaps: Vec<(u32, u32)>,
    /// Forward twiddles, stages concatenated: `len/2` entries for stage 2,
    /// then stage 4, … — `len - 1` entries total.
    forward: Vec<Complex>,
    /// Inverse twiddles in the same layout.
    inverse: Vec<Complex>,
}

impl FftPlan {
    /// Precomputes a plan for `len`-point transforms.
    ///
    /// # Errors
    ///
    /// Returns [`NonPowerOfTwoError`] if `len` is zero or not a power of
    /// two.
    pub fn new(len: usize) -> Result<FftPlan, NonPowerOfTwoError> {
        check_len(len)?;
        let mut swaps = Vec::with_capacity(mcu_fft::swap_count(len));
        mcu_fft::for_each_swap(len, |i, j| swaps.push((i, j)));
        Ok(FftPlan {
            len,
            swaps,
            forward: twiddle_table(len, -1.0),
            inverse: twiddle_table(len, 1.0),
        })
    }

    /// The transform length this plan serves.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` only for the degenerate one-point plan.
    pub fn is_empty(&self) -> bool {
        self.len <= 1
    }

    /// In-place forward FFT (unscaled, like [`fft_in_place`]).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the plan length.
    pub fn process_forward(&self, data: &mut [Complex]) {
        self.run(data, &self.forward);
    }

    /// In-place inverse FFT including the `1/N` normalization.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the plan length.
    pub fn process_inverse(&self, data: &mut [Complex]) {
        self.run(data, &self.inverse);
        mcu_fft::scale_inverse(data);
    }

    /// Forward FFT of a real signal written into `out` (cleared first).
    ///
    /// The caller owns `out`, so steady-state reuse performs no heap
    /// allocation once the buffer has grown to the plan length.
    ///
    /// # Panics
    ///
    /// Panics if `signal.len()` differs from the plan length.
    pub fn process_real_forward_into(&self, signal: &[f64], out: &mut Vec<Complex>) {
        assert_eq!(signal.len(), self.len, "signal length != plan length");
        out.clear();
        out.extend(signal.iter().map(|&x| Complex::from_real(x)));
        self.process_forward(out);
    }

    /// Shared butterfly driver over a twiddle table.
    fn run(&self, data: &mut [Complex], twiddles: &[Complex]) {
        assert_eq!(data.len(), self.len, "data length != plan length");
        mcu_fft::run_butterflies(data, &self.swaps, twiddles);
    }
}

/// Tabulates the per-stage twiddle factors with the exact recurrence the
/// direct kernel uses (`w` starts at 1 and is repeatedly multiplied by
/// `wlen`), preserving bit-for-bit output equality.
fn twiddle_table(n: usize, sign: f64) -> Vec<Complex> {
    let mut table = Vec::with_capacity(mcu_fft::twiddle_count(n));
    mcu_fft::for_each_twiddle(n, sign, |w| table.push(w));
    table
}

thread_local! {
    /// Per-thread plan cache, indexed by `log2(len)`. Plans are immutable
    /// and shared by `Rc`, so nested `with_plan` calls are fine.
    static PLAN_CACHE: RefCell<Vec<Option<Rc<FftPlan>>>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with the cached plan for `len`, building it on first use.
///
/// # Errors
///
/// Returns [`NonPowerOfTwoError`] if `len` is zero or not a power of two.
pub fn with_plan<R>(len: usize, f: impl FnOnce(&FftPlan) -> R) -> Result<R, NonPowerOfTwoError> {
    check_len(len)?;
    let slot = len.trailing_zeros() as usize;
    let plan = PLAN_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if cache.len() <= slot {
            cache.resize(slot + 1, None);
        }
        match &cache[slot] {
            Some(plan) => Rc::clone(plan),
            None => {
                let plan = Rc::new(FftPlan::new(len).expect("length checked"));
                cache[slot] = Some(Rc::clone(&plan));
                plan
            }
        }
    });
    Ok(f(&plan))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() < eps, "{a} !~ {b}");
    }

    #[test]
    fn rejects_non_power_of_two() {
        let mut data = vec![Complex::ZERO; 12];
        assert_eq!(fft_in_place(&mut data), Err(NonPowerOfTwoError { len: 12 }));
        assert!(real_fft(&[0.0; 7]).is_err());
        assert!(real_fft(&[]).is_err());
    }

    #[test]
    fn error_display_mentions_length() {
        let msg = NonPowerOfTwoError { len: 12 }.to_string();
        assert!(msg.contains("12"));
    }

    #[test]
    fn single_element_is_identity() {
        let mut data = vec![Complex::new(4.2, -1.0)];
        fft_in_place(&mut data).unwrap();
        assert_eq!(data[0], Complex::new(4.2, -1.0));
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut data = vec![Complex::ZERO; 16];
        data[0] = Complex::ONE;
        fft_in_place(&mut data).unwrap();
        for z in &data {
            assert_close(z.re, 1.0, 1e-12);
            assert_close(z.im, 0.0, 1e-12);
        }
    }

    #[test]
    fn constant_signal_concentrates_in_dc() {
        let spectrum = real_fft(&[3.0; 32]).unwrap();
        assert_close(spectrum[0].re, 96.0, 1e-9);
        for z in &spectrum[1..] {
            assert!(z.magnitude() < 1e-9);
        }
    }

    #[test]
    fn pure_tone_peaks_at_its_bin() {
        let n = 128;
        let rate = 1000.0;
        let f = 125.0; // exactly bin 16
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / rate).cos())
            .collect();
        let mags = real_fft_magnitudes(&signal);
        let bin = frequency_to_bin(f, n, rate);
        assert_eq!(bin, 16);
        let (peak_bin, _) = rank_peak(&mags).unwrap();
        assert_eq!(peak_bin, bin);
        // A unit-amplitude cosine carries N/2 magnitude in its bin.
        assert_close(mags[bin], n as f64 / 2.0, 1e-9);
    }

    /// Largest-magnitude bin with a NaN-total ordering (the comparison
    /// `dsp::spectral::dominant_bin` uses): a NaN anywhere in the spectrum
    /// must not panic the ranking.
    fn rank_peak(mags: &[f64]) -> Option<(usize, f64)> {
        mags.iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    }

    #[test]
    fn magnitude_ranking_survives_nan() {
        // A corrupted sample can push a NaN through the whole transform;
        // ranking with a partial order would panic here.
        let mags = [1.0, f64::NAN, 7.0, 3.0];
        let (peak_bin, peak) = rank_peak(&mags).unwrap();
        assert_eq!(peak_bin, 2);
        assert_eq!(peak, 7.0);
        assert!(rank_peak(&[f64::NAN, f64::NAN]).is_some());
        assert!(rank_peak(&[]).is_none());
    }

    #[test]
    fn fft_ifft_round_trip_recovers_signal() {
        let n = 64;
        let original: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut data = original.clone();
        fft_in_place(&mut data).unwrap();
        ifft_in_place(&mut data).unwrap();
        for (a, b) in data.iter().zip(&original) {
            assert_close(a.re, b.re, 1e-10);
            assert_close(a.im, b.im, 1e-10);
        }
    }

    #[test]
    fn linearity_of_transform() {
        let n = 32;
        let x: Vec<Complex> = (0..n).map(|i| Complex::from_real(i as f64)).collect();
        let y: Vec<Complex> = (0..n)
            .map(|i| Complex::from_real((i as f64).sqrt()))
            .collect();
        let mut fx = x.clone();
        let mut fy = y.clone();
        let mut fxy: Vec<Complex> = x.iter().zip(&y).map(|(a, b)| *a + *b).collect();
        fft_in_place(&mut fx).unwrap();
        fft_in_place(&mut fy).unwrap();
        fft_in_place(&mut fxy).unwrap();
        for i in 0..n {
            let sum = fx[i] + fy[i];
            assert_close(fxy[i].re, sum.re, 1e-9);
            assert_close(fxy[i].im, sum.im, 1e-9);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 64;
        let signal: Vec<f64> = (0..n).map(|i| ((i * i) as f64 * 0.01).sin()).collect();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let spectrum = real_fft(&signal).unwrap();
        let freq_energy: f64 =
            spectrum.iter().map(|z| z.magnitude_squared()).sum::<f64>() / n as f64;
        assert_close(time_energy, freq_energy, 1e-9);
    }

    #[test]
    fn bin_frequency_conversions_are_inverse() {
        let n = 256;
        let rate = 8000.0;
        for bin in [0, 1, 17, 100, 128] {
            let f = bin_to_frequency(bin, n, rate);
            assert_eq!(frequency_to_bin(f, n, rate), bin);
        }
    }

    #[test]
    fn one_sided_magnitudes_have_expected_length() {
        assert_eq!(real_fft_magnitudes(&[0.0; 16]).len(), 9);
        assert_eq!(real_fft_magnitudes(&[0.0; 2]).len(), 2);
    }
}
