//! Window functions and streaming windowers.
//!
//! The paper's hub provides "Partitioning sensor data into rectangular or
//! Hamming windows" (§3.6). [`WindowShape`] carries the taper and lives in
//! `sidewinder-mcu` (the on-device interpreter applies it too); this module
//! re-exports it and adds [`Windower`], the streaming partitioner the host
//! hub runtime uses: it accumulates samples and emits a tapered window
//! every `hop` samples.

use crate::sample::Sample;

pub use sidewinder_mcu::window::WindowShape;

/// A streaming window partitioner.
///
/// Feed samples one at a time with [`Windower::push`]; every `hop` samples
/// (after the first full window) it returns a tapered window of the most
/// recent `len` samples. With `hop == len` windows do not overlap, matching
/// the paper's description of partitioning.
///
/// The sample precision is generic: `Windower<f64>` (the default) is the
/// host-exact configuration, `Windower<f32>` stores the ring buffer at the
/// width the paper's hub MCUs actually use.
///
/// # Example
///
/// ```
/// use sidewinder_dsp::window::{Windower, WindowShape};
///
/// let mut w = Windower::new(4, 4, WindowShape::Rectangular)?;
/// let mut emitted = Vec::new();
/// for i in 0..8 {
///     if let Some(win) = w.push(i as f64) {
///         emitted.push(win);
///     }
/// }
/// assert_eq!(emitted, vec![vec![0.0, 1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0, 7.0]]);
/// # Ok::<(), sidewinder_dsp::window::InvalidWindowError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Windower<P: Sample = f64> {
    len: usize,
    hop: usize,
    shape: WindowShape,
    /// Taper coefficients tabulated once at construction; emission applies
    /// them with a multiply per sample instead of recomputing the cosine.
    coeffs: Vec<P>,
    buf: std::collections::VecDeque<P>,
    since_emit: usize,
    primed: bool,
}

/// Error returned by [`Windower::new`] for degenerate window geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidWindowError {
    /// Requested window length.
    pub len: usize,
    /// Requested hop.
    pub hop: usize,
}

impl std::fmt::Display for InvalidWindowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid window geometry: len={}, hop={} (both must be non-zero and hop <= len)",
            self.len, self.hop
        )
    }
}

impl std::error::Error for InvalidWindowError {}

impl<P: Sample> Windower<P> {
    /// Creates a windower emitting `len`-sample windows every `hop` samples.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidWindowError`] if `len` or `hop` is zero, or if
    /// `hop > len` (which would silently drop samples).
    pub fn new(len: usize, hop: usize, shape: WindowShape) -> Result<Self, InvalidWindowError> {
        if len == 0 || hop == 0 || hop > len {
            return Err(InvalidWindowError { len, hop });
        }
        Ok(Windower {
            len,
            hop,
            shape,
            coeffs: shape.coefficients_in(len),
            buf: std::collections::VecDeque::with_capacity(len + 1),
            since_emit: 0,
            primed: false,
        })
    }

    /// Convenience constructor for non-overlapping windows (`hop == len`).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidWindowError`] if `len` is zero.
    pub fn non_overlapping(len: usize, shape: WindowShape) -> Result<Self, InvalidWindowError> {
        Windower::new(len, len, shape)
    }

    /// The window length in samples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no samples have been buffered yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The hop (stride) between emitted windows in samples.
    pub fn hop(&self) -> usize {
        self.hop
    }

    /// The taper shape applied to emitted windows.
    pub fn shape(&self) -> WindowShape {
        self.shape
    }

    /// Pushes one sample; returns a tapered window when one completes.
    pub fn push(&mut self, sample: P) -> Option<Vec<P>> {
        let mut window = Vec::new();
        self.push_into(sample, &mut window).then_some(window)
    }

    /// Pushes one sample; when a window completes, writes the tapered
    /// window into `out` (cleared first) and returns `true`.
    ///
    /// This is the allocation-free form of [`Windower::push`]: once `out`
    /// has grown to the window length, steady-state emissions reuse its
    /// storage.
    pub fn push_into(&mut self, sample: P, out: &mut Vec<P>) -> bool {
        if self.hop == self.len {
            // Non-overlapping windows partition the stream, so accumulate
            // and flush: no per-sample pop, no emission bookkeeping. The
            // emitted windows are identical to the sliding path's.
            self.buf.push_back(sample);
            if self.buf.len() < self.len {
                return false;
            }
            self.emit_into(out);
            self.buf.clear();
            return true;
        }
        if self.buf.len() == self.len {
            self.buf.pop_front();
        }
        self.buf.push_back(sample);
        if self.buf.len() < self.len {
            return false;
        }
        let emit = if !self.primed {
            self.primed = true;
            self.since_emit = 0;
            true
        } else {
            self.since_emit += 1;
            if self.since_emit == self.hop {
                self.since_emit = 0;
                true
            } else {
                false
            }
        };
        if emit {
            self.emit_into(out);
        }
        emit
    }

    /// Copies the buffered window into `out` (cleared first) and applies
    /// the taper. Rectangular windows skip the multiply pass: every
    /// coefficient is exactly 1, so the copy already is the emission.
    fn emit_into(&self, out: &mut Vec<P>) {
        let (front, back) = self.buf.as_slices();
        out.clear();
        out.extend_from_slice(front);
        out.extend_from_slice(back);
        if self.shape != WindowShape::Rectangular {
            for (x, c) in out.iter_mut().zip(&self.coeffs) {
                *x = *x * *c;
            }
        }
    }

    /// Clears buffered samples, restarting window accumulation.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.since_emit = 0;
        self.primed = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_coefficients_are_unity() {
        assert_eq!(WindowShape::Rectangular.coefficients(8), vec![1.0; 8]);
    }

    #[test]
    fn hamming_endpoints_and_peak() {
        let c = WindowShape::Hamming.coefficients(11);
        assert!((c[0] - 0.08).abs() < 1e-12);
        assert!((c[10] - 0.08).abs() < 1e-12);
        assert!((c[5] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hann_endpoints_are_zero() {
        let c = WindowShape::Hann.coefficients(9);
        assert!(c[0].abs() < 1e-12);
        assert!(c[8].abs() < 1e-12);
        assert!((c[4] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn windows_are_symmetric() {
        for shape in [WindowShape::Hamming, WindowShape::Hann] {
            let c = shape.coefficients(16);
            for i in 0..8 {
                assert!(
                    (c[i] - c[15 - i]).abs() < 1e-12,
                    "{shape} asymmetric at {i}"
                );
            }
        }
    }

    #[test]
    fn length_one_window_is_identity() {
        for shape in [
            WindowShape::Rectangular,
            WindowShape::Hamming,
            WindowShape::Hann,
        ] {
            assert_eq!(shape.coefficients(1), vec![1.0]);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coefficient_out_of_range_panics() {
        WindowShape::Hamming.coefficient(5, 5);
    }

    #[test]
    fn apply_scales_signal() {
        let signal = vec![2.0; 4];
        let windowed = WindowShape::Hamming.apply(&signal);
        let coeffs = WindowShape::Hamming.coefficients(4);
        for i in 0..4 {
            assert!((windowed[i] - 2.0 * coeffs[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn apply_is_bit_identical_to_per_element_products() {
        // The cache must never change the products — pin bit equality
        // across shape and length switches (which thrash the one-entry
        // cache on purpose).
        let signal: Vec<f64> = (0..37).map(|i| ((i as f64) * 1.3).sin() * 2.0).collect();
        for shape in [
            WindowShape::Hamming,
            WindowShape::Hann,
            WindowShape::Hamming,
        ] {
            for n in [37, 16, 37] {
                let windowed = shape.apply(&signal[..n]);
                for (i, (&got, &x)) in windowed.iter().zip(&signal).enumerate() {
                    assert_eq!(got.to_bits(), (x * shape.coefficient(i, n)).to_bits());
                }
            }
        }
    }

    #[test]
    fn f32_apply_narrows_coefficients_per_element() {
        let signal = vec![1.0f32; 8];
        let windowed = WindowShape::Hann.apply(&signal);
        for (i, &got) in windowed.iter().enumerate() {
            assert_eq!(got, WindowShape::Hann.coefficient(i, 8) as f32);
        }
    }

    #[test]
    fn windower_rejects_degenerate_geometry() {
        assert!(Windower::<f64>::new(0, 1, WindowShape::Rectangular).is_err());
        assert!(Windower::<f64>::new(4, 0, WindowShape::Rectangular).is_err());
        assert!(Windower::<f64>::new(4, 5, WindowShape::Rectangular).is_err());
        let err = Windower::<f64>::new(4, 5, WindowShape::Rectangular).unwrap_err();
        assert!(err.to_string().contains("len=4"));
    }

    #[test]
    fn non_overlapping_partitions_exactly() {
        let mut w = Windower::non_overlapping(3, WindowShape::Rectangular).unwrap();
        let mut out = Vec::new();
        for i in 0..9 {
            if let Some(win) = w.push(i as f64) {
                out.push(win);
            }
        }
        assert_eq!(
            out,
            vec![
                vec![0.0, 1.0, 2.0],
                vec![3.0, 4.0, 5.0],
                vec![6.0, 7.0, 8.0]
            ]
        );
    }

    #[test]
    fn overlapping_windows_slide_by_hop() {
        let mut w = Windower::new(4, 2, WindowShape::Rectangular).unwrap();
        let mut out = Vec::new();
        for i in 0..8 {
            if let Some(win) = w.push(i as f64) {
                out.push(win);
            }
        }
        assert_eq!(
            out,
            vec![
                vec![0.0, 1.0, 2.0, 3.0],
                vec![2.0, 3.0, 4.0, 5.0],
                vec![4.0, 5.0, 6.0, 7.0]
            ]
        );
    }

    #[test]
    fn reset_restarts_accumulation() {
        let mut w = Windower::non_overlapping(2, WindowShape::Rectangular).unwrap();
        assert!(w.push(1.0).is_none());
        w.reset();
        assert!(w.is_empty());
        assert!(w.push(2.0).is_none());
        assert_eq!(w.push(3.0), Some(vec![2.0, 3.0]));
    }

    #[test]
    fn accessors_report_geometry() {
        let w = Windower::<f64>::new(8, 4, WindowShape::Hamming).unwrap();
        assert_eq!(w.len(), 8);
        assert_eq!(w.hop(), 4);
        assert_eq!(w.shape(), WindowShape::Hamming);
    }

    #[test]
    fn tapered_stream_windows_match_apply() {
        let mut w = Windower::non_overlapping(4, WindowShape::Hamming).unwrap();
        let signal = [1.0, -2.0, 3.0, 0.5];
        let mut emitted = None;
        for &s in &signal {
            if let Some(win) = w.push(s) {
                emitted = Some(win);
            }
        }
        assert_eq!(emitted.unwrap(), WindowShape::Hamming.apply(&signal));
    }

    #[test]
    fn f32_windower_streams_at_single_precision() {
        let mut w = Windower::<f32>::non_overlapping(4, WindowShape::Hamming).unwrap();
        let signal = [1.0f32, -2.0, 3.0, 0.5];
        let mut emitted = None;
        for &s in &signal {
            if let Some(win) = w.push(s) {
                emitted = Some(win);
            }
        }
        assert_eq!(emitted.unwrap(), WindowShape::Hamming.apply(&signal));
    }
}
