//! A minimal complex-number type for the FFT kernels.
//!
//! The crate deliberately avoids external numeric dependencies (see the
//! crate-level docs), so it carries its own small [`Complex`] type with just
//! the arithmetic the transforms need. The implementation lives in
//! `sidewinder-mcu` (the `no_std` hub core) because the on-device
//! interpreter does complex arithmetic too; this module re-exports it so
//! host-side code keeps its historical `sidewinder_dsp::complex` path.

pub use sidewinder_mcu::complex::*;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_identities() {
        assert_eq!(Complex::ZERO + Complex::ONE, Complex::ONE);
        assert_eq!(Complex::ONE * Complex::ONE, Complex::ONE);
        assert_eq!(Complex::from(2.5), Complex::new(2.5, 0.0));
    }

    #[test]
    fn multiplication_follows_i_squared_rule() {
        let i = Complex::new(0.0, 1.0);
        assert_eq!(i * i, Complex::new(-1.0, 0.0));
    }

    #[test]
    fn conjugate_negates_imaginary() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
    }

    #[test]
    fn magnitude_of_3_4_is_5() {
        assert!((Complex::new(3.0, 4.0).magnitude() - 5.0).abs() < 1e-12);
        assert!((Complex::new(3.0, 4.0).magnitude_squared() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn phasor_lies_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            let z = Complex::from_angle(theta);
            assert!((z.magnitude() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn phase_recovers_angle() {
        let theta = 0.73;
        assert!((Complex::from_angle(theta).phase() - theta).abs() < 1e-12);
    }

    #[test]
    fn subtraction_and_negation_agree() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(0.5, -1.5);
        assert_eq!(a - b, a + (-b));
    }

    #[test]
    fn assign_operators_match_binary_operators() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-0.25, 4.0);
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c = a;
        c -= b;
        assert_eq!(c, a - b);
        c = a;
        c *= b;
        assert_eq!(c, a * b);
    }

    #[test]
    fn scale_multiplies_both_components() {
        assert_eq!(Complex::new(1.0, -2.0).scale(3.0), Complex::new(3.0, -6.0));
    }
}
