//! Structured observability for the Sidewinder reproduction.
//!
//! The paper evaluates Sidewinder through aggregate outcomes — power
//! draw, wake counts, detection accuracy — but a production system needs
//! to see *where* time and energy go inside the hub interpreter, the way
//! DSP.Ear attributes co-processor budgets per pipeline stage. This crate
//! is that layer:
//!
//! * [`event`] — typed [`Event`]s (node executions, wake emissions, link
//!   frames, fault injections, hub resets, strategy transitions) and the
//!   [`EventSink`] trait they flow into. The sink is a *generic
//!   parameter* of the hub runtime and the simulation engine, so the
//!   no-op [`NullSink`] compiles to nothing: with it, the hot path is
//!   bit-identical and allocation-identical to a build without
//!   observability at all (pinned by `hub/tests/zero_alloc.rs`).
//! * [`hist`] — fixed-bucket power-of-two latency [`Histogram`]s:
//!   `no_std`-friendly plain arrays, allocation-free after setup.
//! * [`counters`] — [`CounterSink`], per-node execution counters and
//!   timing histograms plus link/fault/wake tallies.
//! * [`timeline`] — [`TimelineSink`], which records events against
//!   simulated trace time and exports a `chrome://tracing`-compatible
//!   JSON timeline for a single run.
//! * [`energy`] — the [`EnergyLedger`]: an exact-sum split of a
//!   simulation's joules across pipeline nodes, the serial link, MCU
//!   idle, and the phone's power states.
//!
//! Dependency-wise this crate sits below `sidewinder-hub` and
//! `sidewinder-sim` (it only knows the IR and sensor vocabularies), so
//! both can emit into it without cycles.

pub mod counters;
pub mod energy;
pub mod event;
pub mod hist;
pub mod timeline;

pub use counters::{CounterSink, NodeStats};
pub use energy::{EnergyLedger, NodeEnergy};
pub use event::{Event, EventSink, FrameOutcome, NullSink};
pub use hist::Histogram;
pub use timeline::{TimelineEvent, TimelineSink};
