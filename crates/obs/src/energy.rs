//! Energy attribution: splitting a simulation's joules across the parts
//! that spent them.
//!
//! The simulator knows a run's *total* energy (hub milliwatts times
//! duration, plus the phone's power-state energies), and observed counts
//! tell us *relative* per-node effort (cost-model flops × executions).
//! [`EnergyLedger::close`] reconciles the two: raw per-node and link
//! estimates are taken as-is when they fit inside the hub budget and the
//! remainder becomes MCU idle; if the raw estimates overshoot the budget
//! they are scaled down proportionally and idle closes at zero. Either
//! way the parts sum back to the measured totals to within f64 rounding,
//! which is what lets `report.rs` print a per-node table whose bottom
//! line matches the `SimResult`.

/// Energy attributed to one pipeline node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeEnergy {
    /// Display label (algorithm name plus node id).
    pub label: String,
    /// Observed interpreter executions of the node.
    pub executions: u64,
    /// Joules attributed to the node.
    pub joules: f64,
}

/// An exact-sum split of one simulation run's energy.
///
/// Hub-side parts ([`nodes`](EnergyLedger::nodes) + [`link_j`] +
/// [`mcu_idle_j`]) sum to the hub budget passed to
/// [`EnergyLedger::close`]; adding the phone-state parts gives
/// [`total_j`](EnergyLedger::total_j).
///
/// [`link_j`]: EnergyLedger::link_j
/// [`mcu_idle_j`]: EnergyLedger::mcu_idle_j
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EnergyLedger {
    /// Per-node attribution, in dense statement order.
    pub nodes: Vec<NodeEnergy>,
    /// Energy spent driving the serial link (frame transfers).
    pub link_j: f64,
    /// Hub energy not attributable to compute or the link: the MCU's
    /// idle/sleep floor. Zero when raw estimates were scaled down.
    pub mcu_idle_j: f64,
    /// Scale factor applied to raw node/link estimates; `1.0` when they
    /// fit the hub budget, below one when they had to be compressed.
    pub scale: f64,
    /// Phone energy spent awake processing wakes.
    pub phone_awake_j: f64,
    /// Phone energy spent asleep.
    pub phone_asleep_j: f64,
    /// Phone energy spent in sleep/wake transitions.
    pub phone_transition_j: f64,
}

impl EnergyLedger {
    /// Closes the ledger over a run.
    ///
    /// `hub_total_j` is the measured hub budget; `raw_nodes` carries
    /// `(label, executions, raw_joules)` estimates and `link_raw_j` the
    /// raw link estimate. The phone-state energies are passed through
    /// unchanged.
    pub fn close(
        hub_total_j: f64,
        raw_nodes: Vec<(String, u64, f64)>,
        link_raw_j: f64,
        phone_awake_j: f64,
        phone_asleep_j: f64,
        phone_transition_j: f64,
    ) -> EnergyLedger {
        let raw_sum: f64 = raw_nodes.iter().map(|(_, _, j)| j).sum::<f64>() + link_raw_j;
        let (scale, mcu_idle_j) = if raw_sum > hub_total_j && raw_sum > 0.0 {
            (hub_total_j / raw_sum, 0.0)
        } else {
            (1.0, hub_total_j - raw_sum)
        };
        let nodes = raw_nodes
            .into_iter()
            .map(|(label, executions, joules)| NodeEnergy {
                label,
                executions,
                joules: joules * scale,
            })
            .collect();
        EnergyLedger {
            nodes,
            link_j: link_raw_j * scale,
            mcu_idle_j,
            scale,
            phone_awake_j,
            phone_asleep_j,
            phone_transition_j,
        }
    }

    /// Hub-side energy: nodes + link + MCU idle.
    pub fn hub_j(&self) -> f64 {
        self.nodes.iter().map(|n| n.joules).sum::<f64>() + self.link_j + self.mcu_idle_j
    }

    /// Phone-side energy across its power states.
    pub fn phone_j(&self) -> f64 {
        self.phone_awake_j + self.phone_asleep_j + self.phone_transition_j
    }

    /// Whole-system energy for the run.
    pub fn total_j(&self) -> f64 {
        self.hub_j() + self.phone_j()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(label: &str, execs: u64, j: f64) -> (String, u64, f64) {
        (label.to_string(), execs, j)
    }

    #[test]
    fn residual_becomes_mcu_idle() {
        let ledger = EnergyLedger::close(
            10.0,
            vec![raw("a", 5, 2.0), raw("b", 3, 1.0)],
            0.5,
            4.0,
            2.0,
            1.0,
        );
        assert_eq!(ledger.scale, 1.0);
        assert!((ledger.mcu_idle_j - 6.5).abs() < 1e-12);
        assert!((ledger.hub_j() - 10.0).abs() < 1e-12);
        assert!((ledger.total_j() - 17.0).abs() < 1e-12);
    }

    #[test]
    fn overshoot_scales_down_and_idle_closes_at_zero() {
        let ledger = EnergyLedger::close(6.0, vec![raw("a", 1, 9.0)], 3.0, 0.0, 0.0, 0.0);
        assert!(ledger.scale < 1.0);
        assert_eq!(ledger.mcu_idle_j, 0.0);
        assert!((ledger.nodes[0].joules - 4.5).abs() < 1e-12);
        assert!((ledger.link_j - 1.5).abs() < 1e-12);
        assert!((ledger.hub_j() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_all_idle() {
        let ledger = EnergyLedger::close(2.5, Vec::new(), 0.0, 0.0, 0.0, 0.0);
        assert_eq!(ledger.mcu_idle_j, 2.5);
        assert_eq!(ledger.total_j(), 2.5);
    }

    #[test]
    fn parts_sum_to_totals_within_tolerance() {
        // Many tiny parts still close exactly against the measured total.
        let nodes: Vec<_> = (0..100)
            .map(|i| raw(&format!("n{i}"), i, 1e-4 * i as f64))
            .collect();
        let ledger = EnergyLedger::close(40.0, nodes, 0.123, 8.0, 3.0, 0.5);
        assert!((ledger.hub_j() - 40.0).abs() < 1e-9);
        assert!((ledger.total_j() - 51.5).abs() < 1e-9);
    }
}
