//! Event timeline collection and `chrome://tracing` export.
//!
//! [`TimelineSink`] timestamps events against *simulated* trace time (the
//! engine moves the cursor with [`EventSink::set_time`] as it replays
//! samples), so exported timelines are deterministic modulo the measured
//! per-node durations. [`TimelineSink::chrome_json`] renders the Trace
//! Event Format JSON that `chrome://tracing` / Perfetto open directly:
//! node executions become duration (`"X"`) slices on one row per node,
//! wakes and faults become instant events.

use crate::event::{Event, EventSink, FrameOutcome};
use sidewinder_sensors::Micros;

/// One timestamped entry in the collected timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimelineEvent {
    /// A node execution at simulated time `ts` taking `dur_ns` of
    /// measured wall-clock interpreter time.
    Node {
        /// Simulated time of the triggering sample.
        ts: Micros,
        /// Dense statement-order node index.
        index: usize,
        /// Measured execution time, nanoseconds.
        dur_ns: u64,
        /// Whether the execution produced a result.
        produced: bool,
    },
    /// A wake-up emission.
    Wake {
        /// Simulated time.
        ts: Micros,
        /// Value delivered to `OUT`.
        value: f64,
    },
    /// A hub reset.
    Reset {
        /// Simulated time.
        ts: Micros,
    },
    /// A link-frame transfer attempt.
    Frame {
        /// Simulated time.
        ts: Micros,
        /// How the attempt ended.
        outcome: FrameOutcome,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// A degraded-mode transition.
    Degraded {
        /// Simulated time.
        ts: Micros,
        /// `true` on entry, `false` on exit.
        entered: bool,
    },
}

impl TimelineEvent {
    fn ts(&self) -> Micros {
        match *self {
            TimelineEvent::Node { ts, .. }
            | TimelineEvent::Wake { ts, .. }
            | TimelineEvent::Reset { ts }
            | TimelineEvent::Frame { ts, .. }
            | TimelineEvent::Degraded { ts, .. } => ts,
        }
    }
}

/// Default cap on collected events (~56 MB of entries) so an unexpectedly
/// chatty run degrades to truncation instead of unbounded memory growth.
const DEFAULT_LIMIT: usize = 2_000_000;

/// An [`EventSink`] that collects a timestamped event timeline for one
/// simulation run.
#[derive(Debug, Clone)]
pub struct TimelineSink {
    now: Micros,
    events: Vec<TimelineEvent>,
    limit: usize,
    /// Events discarded after the cap was hit.
    pub truncated: u64,
}

impl Default for TimelineSink {
    fn default() -> Self {
        TimelineSink::new()
    }
}

impl TimelineSink {
    /// An empty timeline with the default event cap.
    pub fn new() -> TimelineSink {
        TimelineSink {
            now: Micros::ZERO,
            events: Vec::new(),
            limit: DEFAULT_LIMIT,
            truncated: 0,
        }
    }

    /// Overrides the event cap (mainly for tests).
    pub fn with_limit(limit: usize) -> TimelineSink {
        TimelineSink {
            limit,
            ..TimelineSink::new()
        }
    }

    /// The collected events in emission order.
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    fn push(&mut self, event: TimelineEvent) {
        if self.events.len() < self.limit {
            self.events.push(event);
        } else {
            self.truncated += 1;
        }
    }

    /// Renders the Trace Event Format JSON for `chrome://tracing`.
    ///
    /// `node_names` labels the per-node rows in dense statement order;
    /// missing entries fall back to `node<i>`. All content is generated
    /// (node labels come from the IR), so no JSON escaping is needed
    /// beyond what [`crate::energy`] labels already guarantee.
    pub fn chrome_json(&self, node_names: &[String]) -> String {
        use std::fmt::Write as _;
        let name_of = |i: usize| -> String {
            node_names
                .get(i)
                .cloned()
                .unwrap_or_else(|| format!("node{i}"))
        };
        let mut out = String::from("{\"traceEvents\":[\n");
        // Thread-name metadata: tid 1.. = nodes, 0 = wake/control row,
        // nodes+1 = link row.
        let link_tid = node_names.len() + 1;
        let _ = writeln!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{{\"name\":\"hub control\"}}}},"
        );
        for (i, _) in node_names.iter().enumerate() {
            let _ = writeln!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}},",
                i + 1,
                name_of(i)
            );
        }
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{link_tid},\
             \"args\":{{\"name\":\"serial link\"}}}}"
        );
        for event in &self.events {
            out.push_str(",\n");
            let ts = event.ts().as_micros();
            match *event {
                TimelineEvent::Node {
                    index,
                    dur_ns,
                    produced,
                    ..
                } => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"{}\",\"cat\":\"node\",\"ph\":\"X\",\"ts\":{ts},\
                         \"dur\":{:.3},\"pid\":1,\"tid\":{},\
                         \"args\":{{\"produced\":{produced}}}}}",
                        name_of(index),
                        dur_ns as f64 / 1_000.0,
                        index + 1,
                    );
                }
                TimelineEvent::Wake { value, .. } => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"wake\",\"cat\":\"wake\",\"ph\":\"i\",\"ts\":{ts},\
                         \"pid\":1,\"tid\":0,\"s\":\"p\",\"args\":{{\"value\":{value}}}}}"
                    );
                }
                TimelineEvent::Reset { .. } => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"hub reset\",\"cat\":\"fault\",\"ph\":\"i\",\"ts\":{ts},\
                         \"pid\":1,\"tid\":0,\"s\":\"p\"}}"
                    );
                }
                TimelineEvent::Frame {
                    outcome, attempt, ..
                } => {
                    let label = match outcome {
                        FrameOutcome::Delivered => "frame delivered",
                        FrameOutcome::Corrupted => "frame corrupted",
                        FrameOutcome::Dropped => "frame dropped",
                    };
                    let _ = write!(
                        out,
                        "{{\"name\":\"{label}\",\"cat\":\"link\",\"ph\":\"i\",\"ts\":{ts},\
                         \"pid\":1,\"tid\":{link_tid},\"s\":\"t\",\
                         \"args\":{{\"attempt\":{attempt}}}}}"
                    );
                }
                TimelineEvent::Degraded { entered, .. } => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"degraded mode\",\"cat\":\"strategy\",\"ph\":\"{}\",\
                         \"ts\":{ts},\"pid\":1,\"tid\":0}}",
                        if entered { "B" } else { "E" },
                    );
                }
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

impl EventSink for TimelineSink {
    fn record(&mut self, event: Event) {
        let now = self.now;
        match event {
            Event::NodeExecuted {
                index,
                elapsed_ns,
                produced,
                ..
            } => self.push(TimelineEvent::Node {
                ts: now,
                index,
                dur_ns: elapsed_ns,
                produced,
            }),
            Event::Wake { value, .. } => self.push(TimelineEvent::Wake { ts: now, value }),
            Event::HubReset => self.push(TimelineEvent::Reset { ts: now }),
            Event::LinkFrame { outcome, attempt } => self.push(TimelineEvent::Frame {
                ts: now,
                outcome,
                attempt,
            }),
            Event::Degraded { entered } => self.push(TimelineEvent::Degraded { ts: now, entered }),
            // Pure tallies don't need timeline rows.
            Event::ProgramRedownload | Event::FrameLost | Event::SampleDropped { .. } => {}
        }
    }

    fn set_time(&mut self, t: Micros) {
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidewinder_ir::NodeId;

    #[test]
    fn events_are_stamped_with_the_cursor() {
        let mut sink = TimelineSink::new();
        sink.set_time(Micros::from_millis(20));
        sink.record(Event::NodeExecuted {
            index: 0,
            node: NodeId(1),
            elapsed_ns: 1500,
            produced: true,
        });
        sink.set_time(Micros::from_millis(40));
        sink.record(Event::Wake {
            node: NodeId(1),
            seq: 3,
            value: 2.5,
        });
        assert_eq!(sink.events().len(), 2);
        assert_eq!(sink.events()[0].ts(), Micros::from_millis(20));
        assert_eq!(sink.events()[1].ts(), Micros::from_millis(40));
    }

    #[test]
    fn limit_truncates_instead_of_growing() {
        let mut sink = TimelineSink::with_limit(1);
        for _ in 0..3 {
            sink.record(Event::HubReset);
        }
        assert_eq!(sink.events().len(), 1);
        assert_eq!(sink.truncated, 2);
    }

    #[test]
    fn chrome_json_is_structurally_sound() {
        let mut sink = TimelineSink::new();
        sink.set_time(Micros::from_secs(1));
        sink.record(Event::NodeExecuted {
            index: 0,
            node: NodeId(1),
            elapsed_ns: 2000,
            produced: true,
        });
        sink.record(Event::Wake {
            node: NodeId(1),
            seq: 0,
            value: 1.0,
        });
        sink.record(Event::LinkFrame {
            outcome: FrameOutcome::Corrupted,
            attempt: 2,
        });
        sink.record(Event::Degraded { entered: true });
        sink.record(Event::Degraded { entered: false });
        let json = sink.chrome_json(&["movingAvg#1".to_string()]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        assert!(json.contains("\"movingAvg#1\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"wake\""));
        assert!(json.contains("frame corrupted"));
        assert!(json.contains("\"ph\":\"B\""));
        // Balanced braces/brackets (no raw braces inside generated labels).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
