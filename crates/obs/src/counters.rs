//! Per-node counters and timing histograms.

use crate::event::{Event, EventSink, FrameOutcome};
use crate::hist::Histogram;
use sidewinder_ir::NodeId;

/// Execution statistics for one pipeline node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeStats {
    /// The node's IR id.
    pub node: NodeId,
    /// Interpreter passes that executed this node.
    pub executions: u64,
    /// Executions that produced a result (set the `hasResult` flag).
    pub productions: u64,
    /// Execution-time histogram, nanoseconds.
    pub timing: Histogram,
}

impl Default for NodeStats {
    fn default() -> Self {
        NodeStats {
            node: NodeId(0),
            executions: 0,
            productions: 0,
            timing: Histogram::new(),
        }
    }
}

/// An [`EventSink`] that tallies everything: per-node execution counts
/// and timing histograms (dense, in statement order), wake emissions,
/// link-frame outcomes, and fault activity.
///
/// Sized with [`CounterSink::with_nodes`], recording is allocation-free:
/// every event lands in a preallocated slot or a plain integer. (An
/// undersized sink grows its node table on first contact instead of
/// losing data — that growth is the only allocation it can ever make.)
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CounterSink {
    nodes: Vec<NodeStats>,
    /// Wake-ups raised (values reaching `OUT`).
    pub wakes: u64,
    /// Hub resets observed.
    pub hub_resets: u64,
    /// Program re-downloads after resets.
    pub redownloads: u64,
    /// Link-frame transfer attempts.
    pub frames_sent: u64,
    /// Attempts that arrived corrupted.
    pub frames_corrupted: u64,
    /// Attempts that never arrived.
    pub frames_dropped: u64,
    /// Attempts that were retries (attempt number above one).
    pub frames_retried: u64,
    /// Frames abandoned after the retry budget.
    pub frames_lost: u64,
    /// Sensor samples lost to downtime or channel dropouts.
    pub samples_dropped: u64,
    /// Entries into the degraded duty-cycle fallback.
    pub degraded_entries: u64,
}

impl CounterSink {
    /// An empty sink; the node table grows on demand.
    pub fn new() -> CounterSink {
        CounterSink::default()
    }

    /// A sink preallocated for a program of `nodes` nodes, so recording
    /// never allocates.
    pub fn with_nodes(nodes: usize) -> CounterSink {
        CounterSink {
            nodes: vec![NodeStats::default(); nodes],
            ..CounterSink::default()
        }
    }

    /// Per-node statistics in dense statement order. Nodes the
    /// interpreter never executed keep zero counts (and a zero id if the
    /// sink was preallocated).
    pub fn nodes(&self) -> &[NodeStats] {
        &self.nodes
    }

    /// Total node executions across the program.
    pub fn total_executions(&self) -> u64 {
        self.nodes.iter().map(|n| n.executions).sum()
    }

    /// Merged execution-time histogram across all nodes.
    pub fn total_timing(&self) -> Histogram {
        let mut total = Histogram::new();
        for n in &self.nodes {
            total.merge(&n.timing);
        }
        total
    }
}

impl EventSink for CounterSink {
    fn record(&mut self, event: Event) {
        match event {
            Event::NodeExecuted {
                index,
                node,
                elapsed_ns,
                produced,
            } => {
                if index >= self.nodes.len() {
                    self.nodes.resize(index + 1, NodeStats::default());
                }
                let stats = &mut self.nodes[index];
                stats.node = node;
                stats.executions += 1;
                stats.productions += u64::from(produced);
                stats.timing.record(elapsed_ns);
            }
            Event::Wake { .. } => self.wakes += 1,
            Event::HubReset => self.hub_resets += 1,
            Event::ProgramRedownload => self.redownloads += 1,
            Event::LinkFrame { outcome, attempt } => {
                self.frames_sent += 1;
                self.frames_retried += u64::from(attempt > 1);
                match outcome {
                    FrameOutcome::Delivered => {}
                    FrameOutcome::Corrupted => self.frames_corrupted += 1,
                    FrameOutcome::Dropped => self.frames_dropped += 1,
                }
            }
            Event::FrameLost => self.frames_lost += 1,
            Event::SampleDropped { .. } => self.samples_dropped += 1,
            Event::Degraded { entered } => self.degraded_entries += u64::from(entered),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_events_land_in_dense_slots() {
        let mut sink = CounterSink::with_nodes(2);
        sink.record(Event::NodeExecuted {
            index: 0,
            node: NodeId(7),
            elapsed_ns: 100,
            produced: true,
        });
        sink.record(Event::NodeExecuted {
            index: 0,
            node: NodeId(7),
            elapsed_ns: 300,
            produced: false,
        });
        sink.record(Event::NodeExecuted {
            index: 1,
            node: NodeId(9),
            elapsed_ns: 50,
            produced: true,
        });
        assert_eq!(sink.nodes()[0].node, NodeId(7));
        assert_eq!(sink.nodes()[0].executions, 2);
        assert_eq!(sink.nodes()[0].productions, 1);
        assert_eq!(sink.nodes()[0].timing.sum_ns(), 400);
        assert_eq!(sink.nodes()[1].executions, 1);
        assert_eq!(sink.total_executions(), 3);
        assert_eq!(sink.total_timing().count(), 3);
    }

    #[test]
    fn undersized_sink_grows_instead_of_dropping() {
        let mut sink = CounterSink::new();
        sink.record(Event::NodeExecuted {
            index: 3,
            node: NodeId(4),
            elapsed_ns: 10,
            produced: true,
        });
        assert_eq!(sink.nodes().len(), 4);
        assert_eq!(sink.nodes()[3].executions, 1);
        assert_eq!(sink.nodes()[0].executions, 0);
    }

    #[test]
    fn link_and_fault_events_tally() {
        let mut sink = CounterSink::new();
        sink.record(Event::LinkFrame {
            outcome: FrameOutcome::Corrupted,
            attempt: 1,
        });
        sink.record(Event::LinkFrame {
            outcome: FrameOutcome::Delivered,
            attempt: 2,
        });
        sink.record(Event::LinkFrame {
            outcome: FrameOutcome::Dropped,
            attempt: 1,
        });
        sink.record(Event::FrameLost);
        sink.record(Event::HubReset);
        sink.record(Event::ProgramRedownload);
        sink.record(Event::SampleDropped {
            channel: sidewinder_sensors::SensorChannel::Mic,
        });
        sink.record(Event::Degraded { entered: true });
        sink.record(Event::Degraded { entered: false });
        sink.record(Event::Wake {
            node: NodeId(1),
            seq: 0,
            value: 1.0,
        });
        assert_eq!(sink.frames_sent, 3);
        assert_eq!(sink.frames_corrupted, 1);
        assert_eq!(sink.frames_dropped, 1);
        assert_eq!(sink.frames_retried, 1);
        assert_eq!(sink.frames_lost, 1);
        assert_eq!(sink.hub_resets, 1);
        assert_eq!(sink.redownloads, 1);
        assert_eq!(sink.samples_dropped, 1);
        assert_eq!(sink.degraded_entries, 1);
        assert_eq!(sink.wakes, 1);
    }
}
