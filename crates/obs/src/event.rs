//! The event vocabulary and the sink trait it flows into.

use sidewinder_ir::NodeId;
use sidewinder_sensors::{Micros, SensorChannel};

/// What happened to one link-frame transfer attempt.
///
/// Mirrors the hub's frame-fate model without depending on it: the hub
/// crate sits *above* this one so it can emit events itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameOutcome {
    /// The frame arrived with a valid CRC.
    Delivered,
    /// The frame arrived corrupted and was discarded.
    Corrupted,
    /// The frame never arrived (detected by timeout).
    Dropped,
}

/// One structured observability event.
///
/// Events are small `Copy` values so emitting one is a couple of stores;
/// with [`NullSink`] the emission (and the work to build the event)
/// constant-folds away entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// The interpreter executed one algorithm instance during a pass.
    NodeExecuted {
        /// Dense statement-order index of the node in the program.
        index: usize,
        /// The node's IR id.
        node: NodeId,
        /// Wall-clock execution time of the instance, nanoseconds.
        elapsed_ns: u64,
        /// Whether the instance produced a result this pass.
        produced: bool,
    },
    /// A value reached `OUT`: the hub raised a wake-up.
    Wake {
        /// The node feeding `OUT`.
        node: NodeId,
        /// Source-sample sequence number the wake derives from.
        seq: u64,
        /// The scalar delivered to `OUT`.
        value: f64,
    },
    /// The hub lost all interpreter state (watchdog reset, reload).
    HubReset,
    /// The phone re-downloaded the wake-up condition after a reset.
    ProgramRedownload,
    /// One transfer attempt of a wake/probe frame on the serial link.
    LinkFrame {
        /// How the attempt ended.
        outcome: FrameOutcome,
        /// 1-based attempt number; anything above 1 is a retry.
        attempt: u32,
    },
    /// A frame was abandoned after the retry budget was exhausted.
    FrameLost,
    /// A fault swallowed one sensor sample before the hub saw it
    /// (hub downtime or a per-channel dropout).
    SampleDropped {
        /// The channel the lost sample belonged to.
        channel: SensorChannel,
    },
    /// The strategy changed operating mode (degraded duty-cycle fallback
    /// entered or left).
    Degraded {
        /// `true` on entry into degraded mode, `false` on exit.
        entered: bool,
    },
}

/// A consumer of [`Event`]s.
///
/// The hub runtime and the simulation engine take an `EventSink` as a
/// generic type parameter (static dispatch). Call sites guard event
/// construction on [`EventSink::ENABLED`]:
///
/// ```ignore
/// if S::ENABLED {
///     sink.record(Event::Wake { node, seq, value });
/// }
/// ```
///
/// so a [`NullSink`] build performs no timing calls, builds no events,
/// and branches on a compile-time constant the optimizer deletes.
pub trait EventSink {
    /// Whether this sink observes anything at all. `false` only for
    /// [`NullSink`]-like sinks; used to constant-fold instrumentation.
    const ENABLED: bool = true;

    /// Consumes one event.
    fn record(&mut self, event: Event);

    /// Moves the sink's simulated-time cursor; sinks that build
    /// timelines timestamp subsequent events with it. No-op by default.
    #[inline(always)]
    fn set_time(&mut self, _t: Micros) {}
}

/// The disabled sink: observes nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl EventSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: Event) {}
}

/// Sinks pass through mutable references, so a caller can lend a sink to
/// the hub for a run and keep using it afterwards.
impl<S: EventSink> EventSink for &mut S {
    const ENABLED: bool = S::ENABLED;

    #[inline(always)]
    fn record(&mut self, event: Event) {
        (**self).record(event);
    }

    #[inline(always)]
    fn set_time(&mut self, t: Micros) {
        (**self).set_time(t);
    }
}

/// Fan-out: one emission feeds two sinks (e.g. counters and a timeline
/// over the same run).
impl<A: EventSink, B: EventSink> EventSink for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline(always)]
    fn record(&mut self, event: Event) {
        self.0.record(event);
        self.1.record(event);
    }

    #[inline(always)]
    fn set_time(&mut self, t: Micros) {
        self.0.set_time(t);
        self.1.set_time(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Tally {
        events: usize,
        last_time: Micros,
    }

    impl EventSink for Tally {
        fn record(&mut self, _event: Event) {
            self.events += 1;
        }
        fn set_time(&mut self, t: Micros) {
            self.last_time = t;
        }
    }

    #[test]
    fn null_sink_is_disabled_and_inert() {
        const { assert!(!NullSink::ENABLED) };
        let mut sink = NullSink;
        sink.record(Event::HubReset);
        sink.set_time(Micros::from_secs(5));
    }

    #[test]
    fn mut_ref_forwards_and_preserves_enabled() {
        const { assert!(!<&mut NullSink as EventSink>::ENABLED) };
        const { assert!(<&mut Tally as EventSink>::ENABLED) };
        let mut tally = Tally::default();
        {
            let mut lent = &mut tally;
            <&mut Tally as EventSink>::record(&mut lent, Event::HubReset);
            <&mut Tally as EventSink>::set_time(&mut lent, Micros::from_secs(7));
        }
        assert_eq!(tally.events, 1);
        assert_eq!(tally.last_time, Micros::from_secs(7));
    }

    #[test]
    fn pair_fans_out_to_both_sinks() {
        const { assert!(<(Tally, NullSink) as EventSink>::ENABLED) };
        const { assert!(!<(NullSink, NullSink) as EventSink>::ENABLED) };
        let mut pair = (Tally::default(), Tally::default());
        pair.record(Event::FrameLost);
        pair.set_time(Micros::from_millis(250));
        assert_eq!(pair.0.events, 1);
        assert_eq!(pair.1.events, 1);
        assert_eq!(pair.1.last_time, Micros::from_millis(250));
    }
}
