//! Fixed-bucket power-of-two histograms.
//!
//! Buckets are powers of two: bucket `i` counts values in
//! `[2^i, 2^(i+1))`, with bucket 0 also absorbing zero. Everything is
//! a plain array — no allocation ever, `no_std`-friendly — so recording
//! into one from the interpreter hot path cannot disturb the hub's
//! zero-allocation guarantee.
//!
//! The canonical unit is nanoseconds (node timings), but the scheme is
//! unit-agnostic: any non-negative integer magnitude buckets the same
//! way, and the fleet layer reuses [`Histogram`] for per-device energy
//! (microwatts) and wake-count population rollups. The `_ns` accessor
//! names stay — they read as "in the recorded unit".

/// Number of power-of-two buckets; covers sub-nanosecond through ~2 s.
pub const BUCKETS: usize = 32;

/// An allocation-free power-of-two histogram of nanosecond durations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Index of the bucket that counts `ns`.
    #[inline]
    fn bucket_index(ns: u64) -> usize {
        if ns <= 1 {
            0
        } else {
            ((63 - ns.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Records one duration.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::bucket_index(ns)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(ns);
        self.max = self.max.max(ns);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded durations, nanoseconds (saturating).
    pub fn sum_ns(&self) -> u64 {
        self.sum
    }

    /// Largest recorded duration, nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// Mean recorded duration in nanoseconds; zero when empty.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts; bucket `i` spans `[2^i, 2^(i+1))` ns.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// The half-open value range `[lower, upper)` bucket `i` counts —
    /// what a rollup report prints next to each non-empty bucket.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        let lower = if i == 0 { 0 } else { 1u64 << i };
        let upper = 1u64 << (i + 1).min(63);
        (lower, upper)
    }

    /// The non-empty buckets as `(lower, upper, count)` rows, in
    /// ascending value order — the compact distribution view a fleet
    /// report renders.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_bounds(i);
                (lo, hi, c)
            })
    }

    /// Upper-bound estimate of the `q`-quantile (`q` in `[0, 1]`): the
    /// exclusive upper edge of the bucket containing that rank. Zero when
    /// empty.
    pub fn quantile_upper_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 1);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(1023), 9);
        assert_eq!(Histogram::bucket_index(1024), 10);
        assert_eq!(Histogram::bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn records_accumulate_count_sum_max() {
        let mut h = Histogram::new();
        for ns in [0, 1, 2, 100, 1000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_ns(), 1103);
        assert_eq!(h.max_ns(), 1000);
        assert!((h.mean_ns() - 220.6).abs() < 1e-9);
        // 0 and 1 share bucket 0; 2 lands in bucket 1.
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[1], 1);
    }

    #[test]
    fn quantiles_walk_buckets() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(10); // bucket 3: [8, 16)
        }
        h.record(1 << 20); // bucket 20
        assert_eq!(h.quantile_upper_ns(0.5), 16);
        assert_eq!(h.quantile_upper_ns(1.0), 1 << 21);
        assert_eq!(Histogram::new().quantile_upper_ns(0.5), 0);
    }

    #[test]
    fn bucket_bounds_and_nonzero_rows() {
        assert_eq!(Histogram::bucket_bounds(0), (0, 2));
        assert_eq!(Histogram::bucket_bounds(3), (8, 16));
        assert_eq!(Histogram::bucket_bounds(BUCKETS - 1), (1 << 31, 1 << 32));
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(10);
        let rows: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(rows, vec![(0, 2, 2), (8, 16, 1)]);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(500);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum_ns(), 512);
        assert_eq!(a.max_ns(), 500);
    }
}
