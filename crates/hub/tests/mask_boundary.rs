//! Pins the `u128` ready-queue boundary.
//!
//! The interpreter runs a bitmask fast pass for programs that fit 128
//! nodes and a dense `Vec<bool>` scan above that. Two things must hold at
//! the boundary: a 128-node program produces identical wakes on either
//! path, and a 129-node program never reaches `1u128 << i` with
//! `i >= 128` (which would panic in debug builds and silently wrap in
//! release).

use sidewinder_hub::runtime::{ChannelRates, HubRuntime, WakeEvent};
use sidewinder_ir::{AlgorithmKind, NodeId, Program, Source};
use sidewinder_sensors::SensorChannel;

const ALPHA: f64 = 0.5;

/// Builds a `node_count`-long chain: `ACC_X -> ema -> ema -> … -> OUT`.
/// Every EMA emits on every sample, so all nodes are live and the ready
/// set is saturated each pass — the densest possible mask traffic.
fn ema_chain(node_count: u32) -> Program {
    assert!(node_count >= 1);
    let mut program = Program::new();
    program.push_node(
        vec![Source::Channel(SensorChannel::AccX)],
        NodeId(1),
        AlgorithmKind::ExpMovingAvg { alpha: ALPHA },
    );
    for id in 2..=node_count {
        program.push_node(
            vec![Source::Node(NodeId(id - 1))],
            NodeId(id),
            AlgorithmKind::ExpMovingAvg { alpha: ALPHA },
        );
    }
    program.push_out(NodeId(node_count));
    program
}

/// A deterministic, non-trivial input signal.
fn signal() -> Vec<f64> {
    (0..200).map(|i| ((i % 17) as f64) - 8.0).collect()
}

fn run(hub: &mut HubRuntime) -> Vec<WakeEvent> {
    let mut wakes = Vec::new();
    for &x in &signal() {
        wakes.extend(hub.push_sample(SensorChannel::AccX, x).unwrap());
    }
    wakes
}

/// The chain computed in plain Rust: `depth` chained EMA folds.
fn reference_chain(depth: usize) -> Vec<f64> {
    let mut states: Vec<Option<f64>> = vec![None; depth];
    signal()
        .iter()
        .map(|&x| {
            let mut value = x;
            for state in &mut states {
                value = match *state {
                    None => value,
                    Some(prev) => ALPHA * value + (1.0 - ALPHA) * prev,
                };
                *state = Some(value);
            }
            value
        })
        .collect()
}

#[test]
fn mask_and_scan_paths_agree_at_128_nodes() {
    let program = ema_chain(128);
    let rates = ChannelRates::default();
    let mut masked = HubRuntime::load(&program, &rates).unwrap();
    let mut scanned = masked.clone();
    scanned.force_dense_scan();

    let mask_wakes = run(&mut masked);
    let scan_wakes = run(&mut scanned);
    assert_eq!(mask_wakes.len(), signal().len());
    assert_eq!(mask_wakes, scan_wakes);
}

#[test]
fn mask_path_matches_reference_at_128_nodes() {
    let mut hub = HubRuntime::load(&ema_chain(128), &ChannelRates::default()).unwrap();
    let wakes = run(&mut hub);
    let expected = reference_chain(128);
    assert_eq!(wakes.len(), expected.len());
    for (i, (wake, want)) in wakes.iter().zip(&expected).enumerate() {
        assert_eq!(wake.seq, i as u64);
        assert!(
            (wake.value - want).abs() < 1e-12,
            "sample {i}: {} != {want}",
            wake.value
        );
    }
}

#[test]
fn dense_scan_handles_129_nodes_without_shift_overflow() {
    // One past the mask ceiling: this must take the scan fallback. If any
    // path computed `1u128 << 128`, this test would panic in debug builds.
    let mut hub = HubRuntime::load(&ema_chain(129), &ChannelRates::default()).unwrap();
    assert_eq!(hub.node_count(), 129);
    let wakes = run(&mut hub);
    let expected = reference_chain(129);
    assert_eq!(wakes.len(), expected.len());
    for (wake, want) in wakes.iter().zip(&expected) {
        assert!((wake.value - want).abs() < 1e-12);
    }
}

#[test]
fn boundary_chains_differ_by_exactly_one_smoothing_stage() {
    // Sanity: the 129-deep chain is genuinely one fold deeper, so the two
    // tests above are not comparing identical pipelines.
    let a = reference_chain(128);
    let b = reference_chain(129);
    assert_ne!(a, b);
}
