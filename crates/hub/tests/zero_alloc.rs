//! Steady-state allocation audit of the hub hot path.
//!
//! The interpreter promises that once every instance's scratch buffers
//! have warmed up, feeding samples performs no heap allocation at all —
//! the property that makes the hot path cache-friendly and its latency
//! flat. This test pins it with a counting global allocator: replaying
//! the steps wake-up condition (including wake emissions) after warm-up
//! must leave the allocation counter untouched.
//!
//! Lives in its own integration-test binary because `#[global_allocator]`
//! is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use sidewinder_hub::runtime::{ChannelRates, HubRuntime, HubRuntime32};
use sidewinder_hub::{compile_image, McuCore};
use sidewinder_ir::Program;
use sidewinder_obs::CounterSink;
use sidewinder_sensors::SensorChannel;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The steps accelerometer drive: walking bursts (outside the ±2 band,
/// raising wakes) alternating with rest.
fn step_signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| if (i / 40) % 2 == 0 { 3.5 } else { 0.2 })
        .collect()
}

#[test]
fn steps_steady_state_performs_zero_allocations() {
    let program: Program = include_str!("../../ir/tests/fixtures/steps.swir")
        .parse()
        .unwrap();
    let mut hub = HubRuntime::load(&program, &ChannelRates::default()).unwrap();
    let samples = step_signal(8192);

    // Warm-up: fills the moving-average buffer and grows the wake buffer
    // to this batch's wake count.
    let warm_wakes = hub
        .push_samples(SensorChannel::AccX, &samples)
        .unwrap()
        .len();
    assert!(
        warm_wakes > 0,
        "warm-up must raise wakes to size the buffer"
    );

    // Steady state: the same batch again must not touch the allocator.
    let before = allocations();
    let wakes = hub
        .push_samples(SensorChannel::AccX, &samples)
        .unwrap()
        .len();
    let after = allocations();
    assert!(wakes > 0, "steady-state batch must still raise wakes");
    assert_eq!(
        after - before,
        0,
        "steady-state push_samples allocated {} times over {} samples",
        after - before,
        samples.len()
    );
}

/// The zero-allocation promise holds with observability enabled too: a
/// preallocated [`CounterSink`] tallies every execution, wake, and
/// timing observation into fixed slots, so the instrumented hot path
/// still never touches the allocator after warm-up.
#[test]
fn steps_with_counters_enabled_performs_zero_allocations() {
    let program: Program = include_str!("../../ir/tests/fixtures/steps.swir")
        .parse()
        .unwrap();
    let node_count = program.nodes().count();
    let mut hub = HubRuntime::load_with_sink(
        &program,
        &ChannelRates::default(),
        CounterSink::with_nodes(node_count),
    )
    .unwrap();
    let samples = step_signal(8192);

    hub.push_samples(SensorChannel::AccX, &samples).unwrap();

    let before = allocations();
    let wakes = hub
        .push_samples(SensorChannel::AccX, &samples)
        .unwrap()
        .len();
    let after = allocations();
    assert!(wakes > 0, "steady-state batch must still raise wakes");
    assert_eq!(
        after - before,
        0,
        "counter-instrumented push_samples allocated {} times over {} samples",
        after - before,
        samples.len()
    );
    // The sink really was recording while the allocator stayed idle.
    let sink = hub.sink();
    assert_eq!(sink.nodes()[0].executions, 2 * samples.len() as u64);
    assert_eq!(sink.wakes, hub.wake_count());
    assert!(sink.total_timing().count() > 0);
}

/// The windowed music condition also reaches an allocation-free steady
/// state for its per-sample work; only the per-window ZCR feature (a
/// handful of sub-window rates every 2048 samples) may allocate. Assert
/// the per-sample path stays clean by bounding the whole batch to the
/// four window emissions.
#[test]
fn music_per_sample_path_does_not_allocate() {
    let program: Program = include_str!("../../ir/tests/fixtures/music.swir")
        .parse()
        .unwrap();
    let mut hub = HubRuntime::load(&program, &ChannelRates::default()).unwrap();
    let samples: Vec<f64> = (0..8192).map(|i| (i as f64 * 0.785).sin()).collect();

    hub.push_samples(SensorChannel::Mic, &samples).unwrap();

    let before = allocations();
    hub.push_samples(SensorChannel::Mic, &samples).unwrap();
    let after = allocations();
    // 8192 samples, 4 zcrVariance windows: two small vectors each.
    assert!(
        after - before <= 8,
        "music batch allocated {} times (expected only per-window ZCR scratch)",
        after - before
    );
}

/// The `no_std` core's promise is stronger than the host's: *zero*
/// allocations total, from `new` through `load` through the entire
/// replay — no warm-up exemption, and no per-window ZCR scratch either
/// (the arena carve-out covers what the host runtime's instances still
/// take from the heap). Only compiling the image — a host-side,
/// load-time step — may allocate.
#[test]
fn mcu_core_performs_zero_allocations_total() {
    let steps: Program = include_str!("../../ir/tests/fixtures/steps.swir")
        .parse()
        .unwrap();
    let music: Program = include_str!("../../ir/tests/fixtures/music.swir")
        .parse()
        .unwrap();
    let steps_image = compile_image(&steps, &ChannelRates::default()).unwrap();
    let music_image = compile_image(&music, &ChannelRates::default()).unwrap();
    let step_samples = step_signal(8192);

    // The music fixture's 2048-sample window outgrows the default arena;
    // a fixture-sized core is ~1 MiB, so give it stack room.
    std::thread::Builder::new()
        .stack_size(32 << 20)
        .spawn(move || {
            let before = allocations();

            let mut core: McuCore<f64, 16_384> = McuCore::new();
            core.load(&steps_image).unwrap();
            let mut wakes = 0u64;
            for &x in &step_samples {
                core.push_sample(SensorChannel::AccX.index() as u8, x, &mut |_| wakes += 1)
                    .unwrap();
            }
            assert!(wakes > 0, "steps must wake on the core");

            core.load(&music_image).unwrap();
            for i in 0..8192 {
                core.push_sample(
                    SensorChannel::Mic.index() as u8,
                    (i as f64 * 0.785).sin(),
                    &mut |_| {},
                )
                .unwrap();
            }
            let after = allocations();
            assert_eq!(
                after - before,
                0,
                "mcu core allocated {} times across new + load + 16384 samples",
                after - before
            );
        })
        .unwrap()
        .join()
        .unwrap();
}

/// The precision parameter does not change the allocation story: the
/// `f32` pipeline (ring buffers and vector scratch at single precision)
/// reaches the same allocation-free steady state on the scalar steps
/// chain and the same per-window bound on the windowed music condition.
#[test]
fn f32_pipelines_hold_the_same_allocation_bounds() {
    let steps: Program = include_str!("../../ir/tests/fixtures/steps.swir")
        .parse()
        .unwrap();
    let mut hub = HubRuntime32::load_f32(&steps, &ChannelRates::default()).unwrap();
    let samples = step_signal(8192);
    hub.push_samples(SensorChannel::AccX, &samples).unwrap();

    let before = allocations();
    let wakes = hub
        .push_samples(SensorChannel::AccX, &samples)
        .unwrap()
        .len();
    let after = allocations();
    assert!(wakes > 0, "f32 steady-state batch must still raise wakes");
    assert_eq!(
        after - before,
        0,
        "f32 steps steady state allocated {} times over {} samples",
        after - before,
        samples.len()
    );

    let music: Program = include_str!("../../ir/tests/fixtures/music.swir")
        .parse()
        .unwrap();
    let mut hub = HubRuntime32::load_f32(&music, &ChannelRates::default()).unwrap();
    let samples: Vec<f64> = (0..8192).map(|i| (i as f64 * 0.785).sin()).collect();
    hub.push_samples(SensorChannel::Mic, &samples).unwrap();

    let before = allocations();
    hub.push_samples(SensorChannel::Mic, &samples).unwrap();
    let after = allocations();
    assert!(
        after - before <= 8,
        "f32 music batch allocated {} times (expected only per-window ZCR scratch)",
        after - before
    );
}
