//! Counters against a hand-computed run of a tiny fixture program.
//!
//! The program is small enough to execute on paper:
//!
//! ```text
//! ACC_X -> movingAvg(id=1, params={2});
//! 1 -> minThreshold(id=2, params={5});
//! 2 -> OUT;
//! ```
//!
//! * `movingAvg` (window 2) executes on every sample and emits from the
//!   second sample onward (the window must fill first).
//! * `minThreshold` executes once per average and passes values ≥ 5.
//! * Every passed value reaches `OUT` and raises a wake.

use sidewinder_hub::runtime::{ChannelRates, HubRuntime};
use sidewinder_ir::Program;
use sidewinder_obs::CounterSink;
use sidewinder_sensors::SensorChannel;

const PROGRAM: &str = "ACC_X -> movingAvg(id=1, params={2});
                       1 -> minThreshold(id=2, params={5});
                       2 -> OUT;";

#[test]
fn counters_match_a_hand_computed_run() {
    let program: Program = PROGRAM.parse().unwrap();
    let node_count = program.nodes().count();
    let mut hub = HubRuntime::load_with_sink(
        &program,
        &ChannelRates::default(),
        CounterSink::with_nodes(node_count),
    )
    .unwrap();

    // Averages over window 2: 0, 5, 10, 10, 5, 0, 0 — four of them ≥ 5.
    let samples = [0.0, 0.0, 10.0, 10.0, 10.0, 0.0, 0.0, 0.0];
    let wakes: Vec<f64> = hub
        .push_samples(SensorChannel::AccX, &samples)
        .unwrap()
        .iter()
        .map(|w| w.value)
        .collect();
    assert_eq!(wakes, vec![5.0, 10.0, 10.0, 5.0]);

    let sink = hub.sink();
    assert_eq!(sink.nodes().len(), 2);

    // movingAvg: one execution per sample; the first sample only fills
    // the window and produces nothing.
    assert_eq!(sink.nodes()[0].executions, 8);
    assert_eq!(sink.nodes()[0].productions, 7);

    // minThreshold: one execution per emitted average; four pass.
    assert_eq!(sink.nodes()[1].executions, 7);
    assert_eq!(sink.nodes()[1].productions, 4);

    // One wake per passed value; nothing else happened.
    assert_eq!(sink.wakes, 4);
    assert_eq!(sink.hub_resets, 0);
    assert_eq!(sink.frames_sent, 0);
    assert_eq!(sink.total_executions(), 15);

    // Every execution lands one timing observation.
    assert_eq!(sink.nodes()[0].timing.count(), 8);
    assert_eq!(sink.nodes()[1].timing.count(), 7);
    assert_eq!(sink.total_timing().count(), 15);
}

#[test]
fn reset_is_counted_and_counters_survive_it() {
    let program: Program = PROGRAM.parse().unwrap();
    let mut hub = HubRuntime::load_with_sink(
        &program,
        &ChannelRates::default(),
        CounterSink::with_nodes(2),
    )
    .unwrap();
    hub.push_samples(SensorChannel::AccX, &[0.0, 10.0, 10.0])
        .unwrap();
    hub.reset();
    hub.push_samples(SensorChannel::AccX, &[10.0, 10.0])
        .unwrap();

    let sink = hub.sink();
    assert_eq!(sink.hub_resets, 1);
    // Counters accumulate across the reset: 3 + 2 samples.
    assert_eq!(sink.nodes()[0].executions, 5);
    // Wakes: averages 5, 10 before the reset (≥ 5 → 2 wakes), then the
    // post-reset window refills and emits 10 once (1 wake).
    assert_eq!(sink.wakes, 3);
}
