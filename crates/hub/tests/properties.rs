//! Property tests over the hub interpreter.

use proptest::prelude::*;
use sidewinder_hub::runtime::{ChannelRates, HubRuntime};
use sidewinder_ir::Program;
use sidewinder_sensors::SensorChannel;

fn load(text: &str) -> HubRuntime {
    let p: Program = text.parse().unwrap();
    HubRuntime::load(&p, &ChannelRates::default()).unwrap()
}

proptest! {
    /// A minThreshold pipeline wakes exactly on samples ≥ the threshold
    /// (after a window-1 moving average, which is the identity).
    #[test]
    fn threshold_wakes_match_predicate(
        samples in prop::collection::vec(-100.0f64..100.0, 1..200),
        threshold in -50.0f64..50.0,
    ) {
        let mut hub = load(&format!(
            "ACC_X -> movingAvg(id=1, params={{1}});
             1 -> minThreshold(id=2, params={{{threshold}}});
             2 -> OUT;"
        ));
        let mut wakes = 0usize;
        for &x in &samples {
            wakes += hub.push_sample(SensorChannel::AccX, x).unwrap().len();
        }
        let expected = samples.iter().filter(|&&x| x >= threshold).count();
        prop_assert_eq!(wakes, expected);
        prop_assert_eq!(hub.wake_count(), expected as u64);
    }

    /// Window pipelines emit exactly floor(n / hop) results once primed,
    /// regardless of content.
    #[test]
    fn window_emission_count_is_deterministic(
        n in 1usize..2000,
        hop_bits in 3u32..7,
    ) {
        let hop = 1usize << hop_bits;
        let mut hub = load(&format!(
            "MIC -> window(id=1, params={{{hop}, {hop}, 0}});
             1 -> rms(id=2);
             2 -> minThreshold(id=3, params={{-1}});
             3 -> OUT;"
        ));
        let mut wakes = 0usize;
        for i in 0..n {
            wakes += hub
                .push_sample(SensorChannel::Mic, (i as f64).sin())
                .unwrap()
                .len();
        }
        prop_assert_eq!(wakes, n / hop);
    }

    /// The interpreter is deterministic: identical sample streams produce
    /// identical wake sequences.
    #[test]
    fn runtime_is_deterministic(samples in prop::collection::vec(-10.0f64..10.0, 1..300)) {
        let text = "ACC_X -> movingAvg(id=1, params={4});
             1 -> outsideThreshold(id=2, params={-2, 2});
             2 -> OUT;";
        let mut a = load(text);
        let mut b = load(text);
        for &x in &samples {
            let wa = a.push_sample(SensorChannel::AccX, x).unwrap();
            let wb = b.push_sample(SensorChannel::AccX, x).unwrap();
            prop_assert_eq!(wa, wb);
        }
    }

    /// Reset returns the runtime to its freshly loaded behaviour.
    #[test]
    fn reset_equals_fresh_load(samples in prop::collection::vec(-10.0f64..10.0, 1..100)) {
        let text = "ACC_X -> movingAvg(id=1, params={8});
             1 -> minThreshold(id=2, params={1});
             2 -> OUT;";
        let mut warmed = load(text);
        for &x in &samples {
            warmed.push_sample(SensorChannel::AccX, x).unwrap();
        }
        warmed.reset();
        let mut fresh = load(text);
        for &x in &samples {
            prop_assert_eq!(
                warmed.push_sample(SensorChannel::AccX, x).unwrap(),
                fresh.push_sample(SensorChannel::AccX, x).unwrap()
            );
        }
    }

    /// Vector-magnitude joins never fire more often than the slowest
    /// branch delivers.
    #[test]
    fn join_rate_bounded_by_branch_rate(frames in 1usize..200) {
        let mut hub = load(
            "ACC_X -> movingAvg(id=1, params={2});
             ACC_Y -> movingAvg(id=2, params={4});
             ACC_Z -> movingAvg(id=3, params={8});
             1,2,3 -> vectorMagnitude(id=4);
             4 -> minThreshold(id=5, params={-1});
             5 -> OUT;",
        );
        let mut wakes = 0usize;
        for _ in 0..frames {
            for c in SensorChannel::ACCEL {
                wakes += hub.push_sample(c, 1.0).unwrap().len();
            }
        }
        // The slowest branch (window 8) limits the join.
        prop_assert!(wakes <= frames.saturating_sub(7));
    }
}
