//! `push_samples` must be observationally identical to a `push_sample`
//! loop: same wake events (bit for bit), same wake counts, and the same
//! error at the same point in the stream. The batch form exists purely to
//! amortize per-call overhead, so any divergence is a bug.
//!
//! The fixtures are the six golden wake-up conditions the determinism
//! conformance suite replays; between them they cover windows, FFT-backed
//! filters, ZCR features, joins, and sustained streaks.

use sidewinder_hub::instance::ExecError;
use sidewinder_hub::runtime::{ChannelRates, HubRuntime, WakeEvent};
use sidewinder_hub::HubError;
use sidewinder_ir::Program;
use sidewinder_sensors::SensorChannel;

/// Accelerometer drive: ±4 plateaus with quiet recovery spans, pushing
/// moving averages well outside every fixture threshold and back.
fn acc_bursts(i: usize) -> f64 {
    match (i / 300) % 3 {
        0 => 4.0,
        1 => -4.0,
        _ => 0.1 * (i as f64 * 1.1).sin(),
    }
}

/// A steady ~1 kHz tone at the default 8 kHz mic rate: loud (music,
/// sirens) with uniform zero-crossing rate.
fn tone(i: usize) -> f64 {
    (i as f64 * 0.785).sin()
}

/// Speech-like: alternating fast/slow sub-segments give a high variance
/// of sub-window zero-crossing rates (the phrase fixture's feature).
fn speechish(i: usize) -> f64 {
    let w = if (i / 256).is_multiple_of(2) {
        2.0
    } else {
        0.05
    };
    (i as f64 * w).sin()
}

/// Fixture name, program text, driving channel, and test signal.
type Fixture = (&'static str, &'static str, SensorChannel, fn(usize) -> f64);

const FIXTURES: [Fixture; 6] = [
    (
        "headbutts",
        include_str!("../../ir/tests/fixtures/headbutts.swir"),
        SensorChannel::AccY,
        acc_bursts,
    ),
    (
        "music",
        include_str!("../../ir/tests/fixtures/music.swir"),
        SensorChannel::Mic,
        tone,
    ),
    (
        "phrase",
        include_str!("../../ir/tests/fixtures/phrase.swir"),
        SensorChannel::Mic,
        speechish,
    ),
    (
        "sirens",
        include_str!("../../ir/tests/fixtures/sirens.swir"),
        SensorChannel::Mic,
        tone,
    ),
    (
        "steps",
        include_str!("../../ir/tests/fixtures/steps.swir"),
        SensorChannel::AccX,
        acc_bursts,
    ),
    (
        "transitions",
        include_str!("../../ir/tests/fixtures/transitions.swir"),
        SensorChannel::AccY,
        acc_bursts,
    ),
];

fn load(text: &str) -> HubRuntime {
    let program: Program = text.parse().unwrap();
    HubRuntime::load(&program, &ChannelRates::default()).unwrap()
}

fn assert_wakes_equal(serial: &[WakeEvent], batched: &[WakeEvent], what: &str) {
    assert_eq!(
        serial.len(),
        batched.len(),
        "{what}: wake count differs ({} vs {})",
        serial.len(),
        batched.len()
    );
    for (i, (a, b)) in serial.iter().zip(batched).enumerate() {
        assert_eq!(a.seq, b.seq, "{what}: wake {i} seq differs");
        assert_eq!(
            a.value.to_bits(),
            b.value.to_bits(),
            "{what}: wake {i} value differs ({} vs {})",
            a.value,
            b.value
        );
    }
}

#[test]
fn batched_ingestion_matches_serial_on_all_golden_fixtures() {
    for (name, text, channel, signal) in FIXTURES {
        let samples: Vec<f64> = (0..8192).map(signal).collect();
        let mut serial_hub = load(text);
        let mut serial = Vec::new();
        for &s in &samples {
            serial.extend(serial_hub.push_sample(channel, s).unwrap());
        }
        // Several batch shapes, including single-sample and whole-stream.
        for chunk in [1usize, 7, 64, 1024, samples.len()] {
            let mut batch_hub = load(text);
            let mut batched = Vec::new();
            for block in samples.chunks(chunk) {
                batched.extend_from_slice(batch_hub.push_samples(channel, block).unwrap());
            }
            assert_wakes_equal(&serial, &batched, &format!("{name} chunk={chunk}"));
            assert_eq!(
                serial_hub.wake_count(),
                batch_hub.wake_count(),
                "{name} chunk={chunk}: wake_count differs"
            );
        }
        assert!(
            !serial.is_empty(),
            "{name}: test signal never woke — fixture not exercised"
        );
    }
}

#[test]
fn samples_on_unrelated_channels_are_ignored_in_batches() {
    for (name, text, channel, _) in FIXTURES {
        let mut hub = load(text);
        for other in SensorChannel::ALL {
            if other == channel {
                continue;
            }
            let wakes = hub.push_samples(other, &[9.0; 256]).unwrap();
            assert!(
                wakes.is_empty(),
                "{name}: woke on unrelated channel {other:?}"
            );
        }
    }
}

/// A magnitude vector (length 33) flowing into lowPass raises a run-time
/// transform-length error; the batch form must surface the same error the
/// serial loop does, at the same sample.
#[test]
fn batched_ingestion_reports_the_same_error_as_serial() {
    let text = "MIC -> window(id=1, params={64, 64, 0});
         1 -> fft(id=2);
         2 -> spectralMagnitude(id=3);
         3 -> lowPass(id=4, params={100});
         4 -> rms(id=5);
         5 -> minThreshold(id=6, params={0});
         6 -> OUT;";
    let samples: Vec<f64> = (0..256).map(|i| (i as f64 * 0.1).sin()).collect();

    let mut serial_hub = load(text);
    let mut serial_err = None;
    for (i, &s) in samples.iter().enumerate() {
        if let Err(e) = serial_hub.push_sample(SensorChannel::Mic, s) {
            serial_err = Some((i, e));
            break;
        }
    }
    let (serial_at, serial_err) = serial_err.expect("serial loop must hit the error");
    assert!(matches!(
        serial_err,
        HubError::Exec(ExecError::BadTransformLength { len: 33, .. })
    ));

    let mut batch_hub = load(text);
    let batch_err = batch_hub
        .push_samples(SensorChannel::Mic, &samples)
        .unwrap_err();
    assert_eq!(serial_err, batch_err, "batch error differs from serial");

    // The batch consumed exactly the samples before the failing one: the
    // remainder of the stream replays to the same error again.
    let replay_err = batch_hub
        .push_samples(SensorChannel::Mic, &samples[serial_at + 1..])
        .unwrap_err();
    assert_eq!(serial_err, replay_err, "replay after error diverged");
}
