//! Host-vs-MCU interpreter equivalence on the six golden fixtures.
//!
//! The acceptance bar for the `no_std` core (DESIGN.md §6j): each golden
//! wake-up condition, compiled to an [`McuImage`] and replayed through
//! [`McuCore`] on the perf gate's synthetic conformance input, must
//! produce the *bit-identical* wake sequence — same count, same sequence
//! tags, same `f64` result bits — as [`HubRuntime`] running the same
//! program. The f64 trace is additionally hashed and checked against the
//! committed goldens in `results/wake_digests.json`, so host and core
//! are both pinned to the same frozen stream. A second tier replays the
//! single-precision core (`McuCore<f32, _>`) and holds it to the same
//! wake schedule within the perf gate's f32 tolerance.

use sidewinder_cert::{certify_program, CertTarget, Precision};
use sidewinder_hub::runtime::{ChannelRates, HubRuntime};
use sidewinder_hub::{compile_image, McuCore, McuExecError, Sample};
use sidewinder_ir::Program;
use sidewinder_sensors::SensorChannel;

/// The six golden wake-up conditions, as committed under `crates/ir`.
const FIXTURES: [(&str, &str); 6] = [
    ("steps", include_str!("../../ir/tests/fixtures/steps.swir")),
    (
        "transitions",
        include_str!("../../ir/tests/fixtures/transitions.swir"),
    ),
    (
        "headbutts",
        include_str!("../../ir/tests/fixtures/headbutts.swir"),
    ),
    (
        "sirens",
        include_str!("../../ir/tests/fixtures/sirens.swir"),
    ),
    ("music", include_str!("../../ir/tests/fixtures/music.swir")),
    (
        "phrase",
        include_str!("../../ir/tests/fixtures/phrase.swir"),
    ),
];

/// The committed f64 goldens the perf gate checks; replaying them here
/// pins the MCU core to the same frozen stream, not merely to whatever
/// the host currently produces.
const GOLDEN_DIGESTS: &str = include_str!("../../../results/wake_digests.json");

/// Samples per channel — the perf gate's `DIGEST_SAMPLES`.
const DIGEST_SAMPLES: usize = 16_384;

/// The two core capacity classes the suite deploys to. Which class a
/// fixture needs is *derived from its resource certificate* (the
/// music/phrase conditions hold a 512- and a 2048-sample window
/// concurrently, certifying at 7688 elements — past the default class),
/// not hardcoded per fixture.
const DEFAULT_CORE: usize = sidewinder_hub::DEFAULT_ARENA;
const BIG_CORE: usize = 16_384;

/// Certifies `program` against the big core class and returns its
/// certificate; every fixture must fit there.
fn fixture_cert(program: &Program) -> sidewinder_cert::ResourceCert {
    let cert = certify_program(
        program,
        &ChannelRates::default(),
        Precision::F64,
        &CertTarget {
            mcu: None,
            cap: BIG_CORE,
        },
    )
    .expect("fixture certifies");
    assert!(
        cert.fits_cap,
        "fixture needs {} elements, past the biggest deployed core",
        cert.required_capacity
    );
    cert
}

/// The conformance input from the perf gate (`sidewinder-bench`):
/// per-channel sinusoids alternating every 8192 samples between a loud
/// steady tone and a quiet frequency-modulated segment.
fn digest_sample(i: usize, ci: usize) -> f64 {
    let loud = (i / 8192) % 2 == 1;
    let step = if loud {
        1.3
    } else {
        1.3 + 0.8 * (i as f64 / 97.0).sin()
    };
    let phase = i as f64 * step + ci as f64 * 0.7;
    phase.sin() * if loud { 12.0 } else { 2.0 }
}

/// Replays the conformance input through the host runtime at vector
/// precision `P` and collects `(seq, value)` wake pairs.
fn host_trace<P: Sample>(program: &Program) -> Vec<(u64, f64)> {
    let mut hub = HubRuntime::<sidewinder_obs::NullSink, P>::load_generic(
        program,
        &ChannelRates::default(),
        sidewinder_obs::NullSink,
    )
    .expect("fixture loads on the host");
    let channels = program.channels();
    let mut trace = Vec::new();
    for i in 0..DIGEST_SAMPLES {
        for (ci, &channel) in channels.iter().enumerate() {
            for wake in hub
                .push_samples(channel, &[digest_sample(i, ci)])
                .expect("fixture executes on the host")
            {
                trace.push((wake.seq, wake.value));
            }
        }
    }
    trace
}

/// Replays the same input through the MCU core at vector precision `P`,
/// on the capacity class the program's certificate demands.
///
/// A big-class core is ~1 MiB of arenas, so the caller runs this on a
/// thread with a large stack (test threads default to 2 MiB).
fn mcu_trace<P: Sample>(program: &Program) -> Vec<(u64, f64)> {
    if fixture_cert(program).required_capacity <= DEFAULT_CORE {
        run_core::<P, DEFAULT_CORE>(program)
    } else {
        run_core::<P, BIG_CORE>(program)
    }
}

fn run_core<P: Sample, const ARENA: usize>(program: &Program) -> Vec<(u64, f64)> {
    let image =
        compile_image(program, &ChannelRates::default()).expect("fixture compiles to an image");
    let mut core: McuCore<P, ARENA> = McuCore::new();
    core.load(&image).expect("image fits the certified arena");
    let channels: Vec<SensorChannel> = program.channels();
    let mut trace = Vec::new();
    for i in 0..DIGEST_SAMPLES {
        for (ci, &channel) in channels.iter().enumerate() {
            core.push_sample(channel.index() as u8, digest_sample(i, ci), &mut |w| {
                trace.push((w.seq, w.value))
            })
            .expect("fixture executes on the core");
        }
    }
    trace
}

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The perf gate's wake digest over a `(seq, value)` trace.
fn trace_digest(trace: &[(u64, f64)]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &(seq, value) in trace {
        hash = fnv1a(hash, &seq.to_le_bytes());
        hash = fnv1a(hash, &value.to_bits().to_le_bytes());
    }
    hash
}

/// Reads one `"name": "0x..."` golden out of the committed digest file.
fn golden_digest(name: &str) -> u64 {
    for line in GOLDEN_DIGESTS.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        if key.trim().trim_matches('"') != name {
            continue;
        }
        let hex = value.trim().trim_matches('"').trim_start_matches("0x");
        return u64::from_str_radix(hex, 16)
            .unwrap_or_else(|e| panic!("golden digest for {name} is not hex: {e}"));
    }
    panic!("no committed wake digest for fixture {name}");
}

/// Runs `f` on a thread with stack room for the fixture-sized core.
fn with_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(32 << 20)
        .spawn(f)
        .expect("spawn test thread")
        .join()
        .expect("test thread panicked")
}

/// Bit-exact tier: on every fixture the core's f64 wake trace equals the
/// host's, wake for wake, and both hash to the committed golden digest.
#[test]
fn f64_core_is_bit_identical_to_the_host_on_all_fixtures() {
    with_big_stack(|| {
        for (name, text) in FIXTURES {
            let program: Program = text
                .parse()
                .unwrap_or_else(|e| panic!("fixture {name} does not parse: {e}"));
            let host = host_trace::<f64>(&program);
            let core = mcu_trace::<f64>(&program);
            assert!(!host.is_empty(), "fixture {name} never woke on the host");
            assert_eq!(
                host.len(),
                core.len(),
                "fixture {name}: wake count diverged (host {} vs core {})",
                host.len(),
                core.len()
            );
            for (k, (&(hs, hv), &(cs, cv))) in host.iter().zip(core.iter()).enumerate() {
                assert_eq!(hs, cs, "fixture {name}: wake #{k} moved");
                assert_eq!(
                    hv.to_bits(),
                    cv.to_bits(),
                    "fixture {name}: wake #{k} (seq {hs}) bits diverged: {hv:?} vs {cv:?}"
                );
            }
            let digest = trace_digest(&core);
            let golden = golden_digest(name);
            assert_eq!(
                digest, golden,
                "fixture {name}: core digest {digest:#018x} != committed {golden:#018x}"
            );
        }
    });
}

/// Tolerance tier: the single-precision core holds the f64 reference's
/// wake schedule, values within the perf gate's f32 budget (DESIGN.md
/// §6h: 1e-3 relative, floored at an absolute scale of 1.0).
#[test]
fn f32_core_holds_the_wake_schedule_within_tolerance() {
    const F32_RELATIVE_TOLERANCE: f64 = 1e-3;
    with_big_stack(|| {
        for (name, text) in FIXTURES {
            let program: Program = text
                .parse()
                .unwrap_or_else(|e| panic!("fixture {name} does not parse: {e}"));
            let wide = host_trace::<f64>(&program);
            let narrow = mcu_trace::<f32>(&program);
            assert_eq!(
                wide.len(),
                narrow.len(),
                "fixture {name}: wake count diverged at f32"
            );
            for (k, (&(s64, v64), &(s32, v32))) in wide.iter().zip(narrow.iter()).enumerate() {
                assert_eq!(s64, s32, "fixture {name}: wake #{k} moved at f32");
                let scale = v64.abs().max(1.0);
                assert!(
                    (v64 - v32).abs() <= F32_RELATIVE_TOLERANCE * scale,
                    "fixture {name}: wake #{k} (seq {s64}) off at f32: {v64:.9} vs {v32:.9}"
                );
            }
        }
    });
}

/// Oversize regression: the certificate's capacity-class verdict is the
/// loader's. A fixture the certifier places past the default class
/// (music: two concurrent windows) really does overflow a default-arena
/// core — with a typed error naming the arena — and really does load on
/// the big class the certificate assigns. This keeps the suite honest
/// after the hardcoded 16k constant became certificate-derived.
#[test]
fn certificates_and_the_loader_agree_on_the_capacity_class() {
    with_big_stack(|| {
        let music: Program = include_str!("../../ir/tests/fixtures/music.swir")
            .parse()
            .unwrap();
        let cert = fixture_cert(&music);
        assert!(
            cert.required_capacity > DEFAULT_CORE,
            "music certifies at {} elements; expected past the default {DEFAULT_CORE}",
            cert.required_capacity
        );
        let image = compile_image(&music, &ChannelRates::default()).unwrap();
        let mut small: McuCore<f64, DEFAULT_CORE> = McuCore::new();
        match small.load(&image) {
            Err(McuExecError::ArenaOverflow { .. }) => {}
            other => panic!("undersized load should name the overflowing arena, got {other:?}"),
        }
        // The failed load is not sticky: the same core accepts a
        // program that fits its class.
        let steps: Program = include_str!("../../ir/tests/fixtures/steps.swir")
            .parse()
            .unwrap();
        let steps_image = compile_image(&steps, &ChannelRates::default()).unwrap();
        small
            .load(&steps_image)
            .expect("core is reusable after a failed load");
        let mut big: McuCore<f64, BIG_CORE> = McuCore::new();
        big.load(&image)
            .expect("the certified class loads the image");
    });
}

/// The single-precision core also matches the host's own f32 pipeline
/// bit for bit — the narrowing points are mirrored, not merely close.
#[test]
fn f32_core_is_bit_identical_to_the_host_f32_pipeline() {
    with_big_stack(|| {
        for (name, text) in FIXTURES {
            let program: Program = text
                .parse()
                .unwrap_or_else(|e| panic!("fixture {name} does not parse: {e}"));
            let host = host_trace::<f32>(&program);
            let core = mcu_trace::<f32>(&program);
            assert_eq!(host.len(), core.len(), "fixture {name}: f32 count diverged");
            for (k, (&(hs, hv), &(cs, cv))) in host.iter().zip(core.iter()).enumerate() {
                assert_eq!(hs, cs, "fixture {name}: f32 wake #{k} moved");
                assert_eq!(
                    hv.to_bits(),
                    cv.to_bits(),
                    "fixture {name}: f32 wake #{k} (seq {hs}) bits diverged"
                );
            }
        }
    });
}
