//! Hub-side energy constants shared by the simulator's attribution
//! ledger and the static resource certifier.
//!
//! These used to live in `sidewinder-sim`'s `energy` module (which
//! still re-exports them, so `sim::energy::HUB_NJ_PER_FLOP` remains the
//! canonical spelling in experiment code). They moved down to the hub
//! crate so `swcert` can derive a static energy ceiling — certified
//! flop/s times energy-per-flop plus certified wake-rate times framed
//! link transfer energy — from the *same* constants the simulator
//! charges at runtime. One source of truth keeps the soundness pin
//! `measured ledger energy ≤ certified ceiling` meaningful.

/// Energy per floating-point operation on the hub MCU, joules (the
/// figure is in nanojoules; multiply by `1e-9` for joules). A
/// Cortex-M4F-class core at a few tens of MHz lands in the low
/// nanojoules per flop; the exact figure only shifts attribution
/// between compute and the idle floor, never the closed total.
pub const HUB_NJ_PER_FLOP: f64 = 1.5;

/// UART power while clocking a frame, mW.
pub const LINK_ACTIVE_MW: f64 = 12.0;
