//! The hub interpreter.
//!
//! [`HubRuntime`] is this reproduction's equivalent of the paper's C
//! interpreter (§3.5): "Upon receiving a new configuration, the runtime
//! allocates memory for each algorithm in the configuration. The
//! interpreter then waits for sensor data to be available and feeds the
//! data into the appropriate algorithm. If the algorithm produces a
//! result, it sets a flag. The interpreter checks the flag and if
//! necessary sends the result to the next algorithm. … The final algorithm
//! feeds into OUT, indicating that the main processor should be woken up."
//!
//! Because the textual IR is define-before-use, statement order is a
//! topological order of the dataflow graph, and one pass over the node
//! list per incoming sample propagates every derived result.

use crate::instance::{AlgoInstance, ExecError};
use crate::value::ValueRef;
use sidewinder_dsp::Sample;
use sidewinder_ir::{NodeId, Program, Source, ValidateError};
use sidewinder_obs::{Event, EventSink, NullSink};
use sidewinder_sensors::SensorChannel;
use std::collections::BTreeMap;
use std::time::Instant;

/// Per-channel sample rates used to configure frequency-aware stages.
///
/// `Default` yields each channel's [`SensorChannel::default_rate_hz`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelRates {
    rates: BTreeMap<SensorChannel, f64>,
}

impl Default for ChannelRates {
    fn default() -> Self {
        ChannelRates {
            rates: SensorChannel::ALL
                .into_iter()
                .map(|c| (c, c.default_rate_hz()))
                .collect(),
        }
    }
}

impl ChannelRates {
    /// Overrides one channel's rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is not positive and finite.
    pub fn with_rate(mut self, channel: SensorChannel, rate_hz: f64) -> Self {
        assert!(
            rate_hz.is_finite() && rate_hz > 0.0,
            "sample rate must be positive, got {rate_hz}"
        );
        self.rates.insert(channel, rate_hz);
        self
    }

    /// The rate configured for `channel`.
    pub fn rate_of(&self, channel: SensorChannel) -> f64 {
        self.rates
            .get(&channel)
            .copied()
            .unwrap_or_else(|| channel.default_rate_hz())
    }
}

/// A wake-up raised by the hub: a value reached `OUT`.
#[derive(Debug, Clone, PartialEq)]
pub struct WakeEvent {
    /// Sequence number (source-sample index) the triggering value derives
    /// from.
    pub seq: u64,
    /// The scalar value delivered to `OUT`.
    pub value: f64,
}

/// Errors raised while loading or running a program on the hub.
#[derive(Debug, Clone, PartialEq)]
pub enum HubError {
    /// The program failed structural validation.
    Invalid(ValidateError),
    /// The program passed (or bypassed) validation but could not be
    /// assembled into a runnable pipeline.
    Load(LoadError),
    /// The program does not fit the MCU core's fixed-capacity image
    /// (raised by [`compile_image`](crate::mcu_image::compile_image)).
    Image(sidewinder_mcu::ImageError),
    /// An algorithm instance failed at run time.
    Exec(ExecError),
}

/// Errors raised while assembling a validated program into the loaded
/// node table.
///
/// Validation makes these unreachable for programs that went through
/// [`Program::validate`], but the loader must not *trust* that: a program
/// assembled directly from [`Program::push_node`] (or a validator that
/// drifts out of sync with the loader) has to surface a typed error, not
/// a `BTreeMap` indexing panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadError {
    /// A node references a source node the loader has not yet indexed
    /// (undefined or defined later — the IR is define-before-use).
    UnknownSource {
        /// The consuming node.
        at: NodeId,
        /// The missing producer.
        source: NodeId,
    },
    /// The `OUT` statement references a node the loader never indexed.
    UnknownOut {
        /// The missing producer.
        source: NodeId,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::UnknownSource { at, source } => {
                write!(
                    f,
                    "node {at}: source node {source} is not defined before use"
                )
            }
            LoadError::UnknownOut { source } => {
                write!(f, "OUT references undefined node {source}")
            }
        }
    }
}

impl std::error::Error for LoadError {}

impl std::fmt::Display for HubError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HubError::Invalid(e) => write!(f, "invalid program: {e}"),
            HubError::Load(e) => write!(f, "load failed: {e}"),
            HubError::Image(e) => write!(f, "image compilation failed: {e}"),
            HubError::Exec(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for HubError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HubError::Invalid(e) => Some(e),
            HubError::Load(e) => Some(e),
            HubError::Image(e) => Some(e),
            HubError::Exec(e) => Some(e),
        }
    }
}

impl From<ValidateError> for HubError {
    fn from(e: ValidateError) -> Self {
        HubError::Invalid(e)
    }
}

impl From<LoadError> for HubError {
    fn from(e: LoadError) -> Self {
        HubError::Load(e)
    }
}

impl From<sidewinder_mcu::ImageError> for HubError {
    fn from(e: sidewinder_mcu::ImageError) -> Self {
        HubError::Image(e)
    }
}

impl From<ExecError> for HubError {
    fn from(e: ExecError) -> Self {
        HubError::Exec(e)
    }
}

/// An input edge resolved to the dense node index space: either a sensor
/// channel or the position of the producing node in statement order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PortSource {
    Channel(SensorChannel),
    Node(usize),
}

/// One loaded node: its instance, its resolved input edges, and the dense
/// indices of the nodes consuming its output (for readiness propagation).
#[derive(Debug, Clone)]
struct LoadedNode<P: Sample> {
    instance: AlgoInstance<P>,
    sources: Vec<PortSource>,
    consumers: Vec<usize>,
    /// `consumers` as a bitmask over dense indices; meaningful only when
    /// the program fits [`MASK_BITS`] nodes (the mask-based fast pass).
    consumer_mask: u128,
}

/// Node-count ceiling for the bitmask pass; larger programs fall back to
/// the flag-vector scan.
const MASK_BITS: usize = 128;

/// The hub interpreter: a loaded wake-up condition ready to consume
/// samples.
///
/// Because the IR is define-before-use, statement order is a topological
/// order of the dataflow graph, so nodes live in a dense `Vec` in that
/// order and each pass walks it once: per-pass bookkeeping is two `bool`
/// flags per node (`ready`, `fresh`) instead of a per-sample map, and
/// values move between nodes as borrows of the producers' reusable result
/// slots. After warm-up, a pass performs no heap allocation.
///
/// The runtime is generic over an observability [`EventSink`]. The
/// default [`NullSink`] has `ENABLED = false`, and every instrumentation
/// site is guarded on that associated constant, so the unobserved runtime
/// compiles to exactly the uninstrumented interpreter — no timing calls,
/// no event construction, no extra branches (pinned by
/// `tests/zero_alloc.rs` and the sim conformance suites). Pass a
/// [`CounterSink`](sidewinder_obs::CounterSink) or
/// [`TimelineSink`](sidewinder_obs::TimelineSink) via
/// [`HubRuntime::load_with_sink`] to observe node executions, wake
/// emissions, and resets.
///
/// The runtime is also generic over the vector sample precision `P`
/// (default `f64`). In `f32` mode (the [`HubRuntime32`] alias, loaded
/// via [`HubRuntime32::load_f32`]) windows and magnitude spectra are
/// buffered and reduced at single precision — the hardware-faithful
/// hub mode, since the paper's MCUs have at most an f32 FPU — while
/// sensor ingestion, scalar features, thresholds, and [`WakeEvent`]s
/// stay `f64` end to end.
#[derive(Debug, Clone)]
pub struct HubRuntime<S: EventSink = NullSink, P: Sample = f64> {
    nodes: Vec<LoadedNode<P>>,
    /// Dense index of the node feeding `OUT`.
    out_index: usize,
    /// For each channel (by [`SensorChannel::index`]): the nodes with at
    /// least one port fed directly by it.
    channel_entries: [Vec<usize>; SensorChannel::COUNT],
    /// Nodes whose only input is the channel itself (the common entry
    /// shape: a window or moving average hanging off a sensor). The mask
    /// pass feeds these directly, skipping the ready-set machinery.
    direct_feeds: [Vec<usize>; SensorChannel::COUNT],
    /// Remaining channel-fed nodes (joins, mixed sources) as bitmasks,
    /// seeding the mask-based pass.
    entry_masks: [u128; SensorChannel::COUNT],
    /// Whether passes use the `u128` mask fast path. Set iff the program
    /// fits [`MASK_BITS`] nodes — the guard that keeps `1u128 << i` from
    /// ever seeing `i >= 128` — and clearable via
    /// [`HubRuntime::force_dense_scan`] for conformance testing.
    use_mask: bool,
    channel_seq: [u64; SensorChannel::COUNT],
    wake_count: u64,
    /// Per-pass flag: node has at least one active input this pass.
    ready: Vec<bool>,
    /// Per-pass flag: node produced a result this pass.
    fresh: Vec<bool>,
    /// Wake events accumulated by the current `push_samples` batch.
    wake_buf: Vec<WakeEvent>,
    /// Observability sink; [`NullSink`] by default, in which case every
    /// use below is guarded out at compile time.
    sink: S,
}

impl HubRuntime {
    /// Validates `program` and allocates one algorithm instance per node,
    /// with observability disabled ([`NullSink`]).
    ///
    /// # Errors
    ///
    /// Returns [`HubError::Invalid`] if the program fails validation.
    pub fn load(program: &Program, rates: &ChannelRates) -> Result<Self, HubError> {
        Self::load_with_sink(program, rates, NullSink)
    }
}

/// The hub interpreter in single-precision (`f32`) vector mode.
pub type HubRuntime32<S = NullSink> = HubRuntime<S, f32>;

impl HubRuntime32 {
    /// Validates `program` and allocates instances whose vector payloads
    /// (windows, magnitude spectra) live at `f32`, with observability
    /// disabled ([`NullSink`]).
    ///
    /// # Errors
    ///
    /// Returns [`HubError::Invalid`] if the program fails validation.
    pub fn load_f32(program: &Program, rates: &ChannelRates) -> Result<Self, HubError> {
        Self::load_f32_with_sink(program, rates, NullSink)
    }
}

impl<S: EventSink> HubRuntime<S, f32> {
    /// Like [`HubRuntime32::load_f32`], but events flow into `sink`.
    ///
    /// # Errors
    ///
    /// Returns [`HubError::Invalid`] if the program fails validation.
    pub fn load_f32_with_sink(
        program: &Program,
        rates: &ChannelRates,
        sink: S,
    ) -> Result<Self, HubError> {
        Self::load_generic(program, rates, sink)
    }
}

impl<S: EventSink> HubRuntime<S, f64> {
    /// Like [`HubRuntime::load`], but events flow into `sink`.
    ///
    /// # Errors
    ///
    /// Returns [`HubError::Invalid`] if the program fails validation.
    pub fn load_with_sink(
        program: &Program,
        rates: &ChannelRates,
        sink: S,
    ) -> Result<Self, HubError> {
        Self::load_generic(program, rates, sink)
    }
}

impl<S: EventSink, P: Sample> HubRuntime<S, P> {
    /// The precision-generic loader behind [`HubRuntime::load_with_sink`]
    /// and [`HubRuntime32::load_f32`]. Callers name the precision at the
    /// type level (`HubRuntime::<_, f32>::load_generic(..)`); the named
    /// loaders exist so ordinary call sites never need a turbofish.
    ///
    /// # Errors
    ///
    /// Returns [`HubError::Invalid`] if the program fails validation.
    pub fn load_generic(
        program: &Program,
        rates: &ChannelRates,
        sink: S,
    ) -> Result<Self, HubError> {
        program.validate()?;
        Self::load_validated(program, rates, sink)
    }

    /// Assembles the node table without re-validating. Split from
    /// [`HubRuntime::load_generic`] so the defensive error paths below
    /// (unreachable for validated programs) stay testable.
    pub(crate) fn load_validated(
        program: &Program,
        rates: &ChannelRates,
        sink: S,
    ) -> Result<Self, HubError> {
        // Propagate sample rates: a node inherits the rate of its first
        // source (aggregators merge branches of equal rate in practice).
        let mut node_rates: BTreeMap<NodeId, f64> = BTreeMap::new();
        let mut index_of: BTreeMap<NodeId, usize> = BTreeMap::new();
        let mut nodes: Vec<LoadedNode<P>> = Vec::new();
        let mut channel_entries: [Vec<usize>; SensorChannel::COUNT] = Default::default();
        for (sources, id, kind) in program.nodes() {
            // Validation guarantees at least one source, but a program
            // that bypasses it (e.g. assembled from a corrupted
            // re-download) must surface a typed error, not panic.
            let Some(first) = sources.first() else {
                return Err(HubError::Invalid(ValidateError::BadArity {
                    id,
                    algorithm: kind.ir_name(),
                    got: 0,
                }));
            };
            let rate = match first {
                Source::Channel(c) => rates.rate_of(*c),
                Source::Node(src) => *node_rates.get(src).ok_or(LoadError::UnknownSource {
                    at: id,
                    source: *src,
                })?,
            };
            node_rates.insert(id, rate);
            let index = nodes.len();
            let dense: Vec<PortSource> = sources
                .iter()
                .map(|s| match s {
                    Source::Channel(c) => Ok(PortSource::Channel(*c)),
                    // Define-before-use: the producer is already indexed.
                    Source::Node(src) => index_of.get(src).map(|&i| PortSource::Node(i)).ok_or(
                        LoadError::UnknownSource {
                            at: id,
                            source: *src,
                        },
                    ),
                })
                .collect::<Result<_, _>>()?;
            for source in &dense {
                match *source {
                    PortSource::Channel(c) => {
                        let entries = &mut channel_entries[c.index()];
                        if !entries.contains(&index) {
                            entries.push(index);
                        }
                    }
                    PortSource::Node(src) => nodes[src].consumers.push(index),
                }
            }
            index_of.insert(id, index);
            nodes.push(LoadedNode {
                instance: AlgoInstance::new(id, kind, sources.len(), rate)?,
                sources: dense,
                consumers: Vec::new(),
                consumer_mask: 0,
            });
        }
        let count = nodes.len();
        if count <= MASK_BITS {
            for node in &mut nodes {
                for &consumer in &node.consumers {
                    node.consumer_mask |= 1u128 << consumer;
                }
            }
        }
        let mut direct_feeds: [Vec<usize>; SensorChannel::COUNT] = Default::default();
        let mut entry_masks = [0u128; SensorChannel::COUNT];
        if count <= MASK_BITS {
            for (i, node) in nodes.iter().enumerate() {
                if let [PortSource::Channel(c)] = node.sources[..] {
                    direct_feeds[c.index()].push(i);
                } else {
                    for source in &node.sources {
                        if let PortSource::Channel(c) = source {
                            entry_masks[c.index()] |= 1u128 << i;
                        }
                    }
                }
            }
        }
        let out_id = program
            .out_source()
            .ok_or(HubError::Invalid(ValidateError::MissingOut))?;
        let out_index = *index_of
            .get(&out_id)
            .ok_or(LoadError::UnknownOut { source: out_id })?;
        Ok(HubRuntime {
            nodes,
            out_index,
            use_mask: count <= MASK_BITS,
            channel_entries,
            direct_feeds,
            entry_masks,
            channel_seq: [0; SensorChannel::COUNT],
            wake_count: 0,
            ready: vec![false; count],
            fresh: vec![false; count],
            wake_buf: Vec::new(),
            sink,
        })
    }

    /// The observability sink (e.g. to read counters after a run).
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the sink (e.g. to move its time cursor).
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Number of algorithm instances allocated.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total wake-ups raised since load (or the last [`HubRuntime::reset`]).
    pub fn wake_count(&self) -> u64 {
        self.wake_count
    }

    /// Feeds one sensor sample and propagates it through the pipeline.
    ///
    /// Returns the wake events raised by this sample (at most one per
    /// `OUT`-feeding emission).
    ///
    /// # Errors
    ///
    /// Returns [`HubError::Exec`] if an instance fails; the runtime is
    /// left in a consistent state and may continue receiving samples.
    pub fn push_sample(
        &mut self,
        channel: SensorChannel,
        sample: f64,
    ) -> Result<Vec<WakeEvent>, HubError> {
        self.push_samples(channel, std::slice::from_ref(&sample))
            .map(<[WakeEvent]>::to_vec)
    }

    /// Feeds a batch of consecutive samples from one channel — the
    /// allocation-free bulk form of [`HubRuntime::push_sample`].
    ///
    /// Equivalent to pushing each sample in order; the returned slice
    /// holds every wake event the batch raised, in order, and borrows a
    /// buffer that the next push reuses.
    ///
    /// # Errors
    ///
    /// Returns the first [`HubError::Exec`] an instance reports; samples
    /// after the failing one are not consumed (wake events raised earlier
    /// in the batch are discarded with the failed call, exactly as if the
    /// caller had looped [`HubRuntime::push_sample`] and aborted on the
    /// error).
    pub fn push_samples(
        &mut self,
        channel: SensorChannel,
        samples: &[f64],
    ) -> Result<&[WakeEvent], HubError> {
        self.wake_buf.clear();
        if self.use_mask {
            for &sample in samples {
                self.run_pass_masked(channel, sample)?;
            }
        } else {
            for &sample in samples {
                self.run_pass_scan(channel, sample)?;
            }
        }
        Ok(&self.wake_buf)
    }

    /// Forces every subsequent pass onto the dense-scan fallback, even for
    /// programs small enough for the `u128` mask path. The two paths must
    /// produce identical wakes; conformance tests pin that equivalence at
    /// the 128/129-node boundary.
    pub fn force_dense_scan(&mut self) {
        self.use_mask = false;
    }

    /// One interpreter pass for programs that fit [`MASK_BITS`] nodes: the
    /// ready/fresh flags live in two `u128` registers and the pass visits
    /// only ready nodes. `trailing_zeros` drains the ready set in
    /// increasing-index (topological) order, and a node's consumers always
    /// have larger indices, so newly-readied bits are still ahead of the
    /// cursor — this visits exactly the nodes the full scan would.
    fn run_pass_masked(&mut self, channel: SensorChannel, sample: f64) -> Result<(), HubError> {
        let ci = channel.index();
        let seq = self.channel_seq[ci];
        self.channel_seq[ci] += 1;

        let mut ready: u128 = self.entry_masks[ci];
        let mut fresh: u128 = 0;
        // Single-source entry nodes have no upstream producers and no
        // port to select, so feed them without consulting the ready set.
        // They sit ahead of their consumers in index order, so running
        // them first matches the scan pass's results exactly.
        for &i in &self.direct_feeds[ci] {
            let node = &mut self.nodes[i];
            node.instance.clear_result();
            let started = if S::ENABLED {
                Some(Instant::now())
            } else {
                None
            };
            node.instance.feed_ref(0, seq, ValueRef::Scalar(sample))?;
            let produced = node.instance.has_result();
            if S::ENABLED {
                self.sink.record(Event::NodeExecuted {
                    index: i,
                    node: node.instance.id(),
                    elapsed_ns: started.map_or(0, |t| t.elapsed().as_nanos() as u64),
                    produced,
                });
            }
            if produced {
                fresh |= 1u128 << i;
                ready |= node.consumer_mask;
                if i == self.out_index {
                    let (out_seq, value) = node
                        .instance
                        .result_ref()
                        .expect("has_result was just checked");
                    if let Some(value) = value.as_scalar() {
                        self.wake_buf.push(WakeEvent {
                            seq: out_seq,
                            value,
                        });
                        self.wake_count += 1;
                        if S::ENABLED {
                            self.sink.record(Event::Wake {
                                node: node.instance.id(),
                                seq: out_seq,
                                value,
                            });
                        }
                    }
                }
            }
        }
        while ready != 0 {
            let i = ready.trailing_zeros() as usize;
            ready &= ready - 1;
            // Producers precede consumers in statement order, so node i's
            // active sources all live in `before`.
            let (before, rest) = self.nodes.split_at_mut(i);
            let node = &mut rest[0];
            node.instance.clear_result();
            let started = if S::ENABLED {
                Some(Instant::now())
            } else {
                None
            };
            for (port, source) in node.sources.iter().enumerate() {
                match *source {
                    PortSource::Channel(c) if c == channel => {
                        node.instance
                            .feed_ref(port, seq, ValueRef::Scalar(sample))?;
                    }
                    PortSource::Channel(_) => {}
                    PortSource::Node(src) => {
                        if fresh & (1u128 << src) != 0 {
                            let (src_seq, value) = before[src]
                                .instance
                                .result_ref()
                                .expect("fresh producer holds a result");
                            node.instance.feed_ref(port, src_seq, value)?;
                        }
                    }
                }
            }
            let produced = node.instance.has_result();
            if S::ENABLED {
                self.sink.record(Event::NodeExecuted {
                    index: i,
                    node: node.instance.id(),
                    elapsed_ns: started.map_or(0, |t| t.elapsed().as_nanos() as u64),
                    produced,
                });
            }
            if produced {
                fresh |= 1u128 << i;
                ready |= node.consumer_mask;
                if i == self.out_index {
                    let (out_seq, value) = node
                        .instance
                        .result_ref()
                        .expect("has_result was just checked");
                    if let Some(value) = value.as_scalar() {
                        self.wake_buf.push(WakeEvent {
                            seq: out_seq,
                            value,
                        });
                        self.wake_count += 1;
                        if S::ENABLED {
                            self.sink.record(Event::Wake {
                                node: node.instance.id(),
                                seq: out_seq,
                                value,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// One interpreter pass: feed `sample` and propagate results down the
    /// topologically-ordered node list, appending any wake-ups to
    /// `wake_buf`. Fallback for programs too large for the mask pass.
    fn run_pass_scan(&mut self, channel: SensorChannel, sample: f64) -> Result<(), HubError> {
        let seq = self.channel_seq[channel.index()];
        self.channel_seq[channel.index()] += 1;

        self.ready.fill(false);
        self.fresh.fill(false);
        for &entry in &self.channel_entries[channel.index()] {
            self.ready[entry] = true;
        }

        for i in 0..self.nodes.len() {
            if !self.ready[i] {
                continue;
            }
            // Producers precede consumers in statement order, so node i's
            // active sources all live in `before`.
            let (before, rest) = self.nodes.split_at_mut(i);
            let node = &mut rest[0];
            node.instance.clear_result();
            let started = if S::ENABLED {
                Some(Instant::now())
            } else {
                None
            };
            for (port, source) in node.sources.iter().enumerate() {
                match *source {
                    PortSource::Channel(c) if c == channel => {
                        node.instance
                            .feed_ref(port, seq, ValueRef::Scalar(sample))?;
                    }
                    PortSource::Channel(_) => {}
                    PortSource::Node(src) => {
                        if self.fresh[src] {
                            let (src_seq, value) = before[src]
                                .instance
                                .result_ref()
                                .expect("fresh producer holds a result");
                            node.instance.feed_ref(port, src_seq, value)?;
                        }
                    }
                }
            }
            let produced = node.instance.has_result();
            if S::ENABLED {
                self.sink.record(Event::NodeExecuted {
                    index: i,
                    node: node.instance.id(),
                    elapsed_ns: started.map_or(0, |t| t.elapsed().as_nanos() as u64),
                    produced,
                });
            }
            if produced {
                self.fresh[i] = true;
                for &consumer in &node.consumers {
                    self.ready[consumer] = true;
                }
                if i == self.out_index {
                    let (out_seq, value) = node
                        .instance
                        .result_ref()
                        .expect("has_result was just checked");
                    if let Some(value) = value.as_scalar() {
                        self.wake_buf.push(WakeEvent {
                            seq: out_seq,
                            value,
                        });
                        self.wake_count += 1;
                        if S::ENABLED {
                            self.sink.record(Event::Wake {
                                node: node.instance.id(),
                                seq: out_seq,
                                value,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Clears all instance state and counters, keeping the configuration.
    pub fn reset(&mut self) {
        for node in &mut self.nodes {
            node.instance.reset();
        }
        self.channel_seq = [0; SensorChannel::COUNT];
        self.wake_count = 0;
        self.wake_buf.clear();
        if S::ENABLED {
            self.sink.record(Event::HubReset);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidewinder_ir::Program;

    fn load(text: &str) -> HubRuntime {
        let program: Program = text.parse().unwrap();
        HubRuntime::load(&program, &ChannelRates::default()).unwrap()
    }

    #[test]
    fn load_rejects_invalid_programs() {
        let program: Program = "ACC_X -> movingAvg(id=1, params={10});".parse().unwrap();
        let err = HubRuntime::load(&program, &ChannelRates::default()).unwrap_err();
        assert!(matches!(err, HubError::Invalid(ValidateError::MissingOut)));
        assert!(err.to_string().contains("OUT"));
    }

    // The next three tests feed the loader programs that bypass
    // validation (assembled with `Program::push_node` directly). Each
    // used to panic on a `BTreeMap` index; now each must produce the
    // matching typed `LoadError`.

    #[test]
    fn unvalidated_forward_rate_reference_is_a_typed_error() {
        use sidewinder_ir::{AlgorithmKind, NodeId, Source};
        let mut program = Program::new();
        // Node 1's rate comes from node 2, which is defined later.
        program.push_node(
            vec![Source::Node(NodeId(2))],
            NodeId(1),
            AlgorithmKind::AnyOf,
        );
        program.push_node(
            vec![Source::Channel(SensorChannel::AccX)],
            NodeId(2),
            AlgorithmKind::MovingAvg { window: 4 },
        );
        program.push_out(NodeId(1));
        let err =
            HubRuntime::<_, f64>::load_validated(&program, &ChannelRates::default(), NullSink)
                .unwrap_err();
        assert_eq!(
            err,
            HubError::Load(LoadError::UnknownSource {
                at: NodeId(1),
                source: NodeId(2),
            })
        );
        assert!(err.to_string().contains("not defined before use"));
    }

    #[test]
    fn unvalidated_undefined_port_source_is_a_typed_error() {
        use sidewinder_ir::{AlgorithmKind, NodeId, Source};
        let mut program = Program::new();
        program.push_node(
            vec![Source::Channel(SensorChannel::AccX)],
            NodeId(1),
            AlgorithmKind::MovingAvg { window: 4 },
        );
        // A join whose *second* port (not the rate-defining first) is
        // undefined exercises the dense-source lookup.
        program.push_node(
            vec![Source::Node(NodeId(1)), Source::Node(NodeId(9))],
            NodeId(2),
            AlgorithmKind::AllOf,
        );
        program.push_out(NodeId(2));
        let err =
            HubRuntime::<_, f64>::load_validated(&program, &ChannelRates::default(), NullSink)
                .unwrap_err();
        assert_eq!(
            err,
            HubError::Load(LoadError::UnknownSource {
                at: NodeId(2),
                source: NodeId(9),
            })
        );
    }

    #[test]
    fn unvalidated_undefined_out_is_a_typed_error() {
        use sidewinder_ir::{AlgorithmKind, NodeId, Source};
        let mut program = Program::new();
        program.push_node(
            vec![Source::Channel(SensorChannel::AccX)],
            NodeId(1),
            AlgorithmKind::MovingAvg { window: 4 },
        );
        program.push_out(NodeId(7));
        let err =
            HubRuntime::<_, f64>::load_validated(&program, &ChannelRates::default(), NullSink)
                .unwrap_err();
        assert_eq!(
            err,
            HubError::Load(LoadError::UnknownOut { source: NodeId(7) })
        );
        assert!(err.to_string().contains("undefined node 7"));
    }

    #[test]
    fn significant_motion_pipeline_wakes_on_vigorous_motion() {
        // The paper's Fig. 2 example, with a threshold above resting
        // gravity magnitude (~9.81).
        let mut hub = load(
            "ACC_X -> movingAvg(id=1, params={10});
             ACC_Y -> movingAvg(id=2, params={10});
             ACC_Z -> movingAvg(id=3, params={10});
             1,2,3 -> vectorMagnitude(id=4);
             4 -> minThreshold(id=5, params={15});
             5 -> OUT;",
        );
        assert_eq!(hub.node_count(), 5);

        // Resting: gravity only.
        for _ in 0..50 {
            for (c, v) in [
                (SensorChannel::AccX, 0.0),
                (SensorChannel::AccY, 0.0),
                (SensorChannel::AccZ, 9.81),
            ] {
                assert!(hub.push_sample(c, v).unwrap().is_empty());
            }
        }
        assert_eq!(hub.wake_count(), 0);

        // Vigorous shaking: large magnitude on all axes.
        let mut woke = false;
        for _ in 0..50 {
            for c in SensorChannel::ACCEL {
                woke |= !hub.push_sample(c, 12.0).unwrap().is_empty();
            }
        }
        assert!(woke);
        assert!(hub.wake_count() > 0);
    }

    #[test]
    fn wake_events_carry_value_and_seq() {
        let mut hub = load(
            "ACC_X -> movingAvg(id=1, params={2});
             1 -> minThreshold(id=2, params={5});
             2 -> OUT;",
        );
        hub.push_sample(SensorChannel::AccX, 6.0).unwrap();
        let wakes = hub.push_sample(SensorChannel::AccX, 8.0).unwrap();
        assert_eq!(wakes.len(), 1);
        assert_eq!(wakes[0].value, 7.0);
        assert_eq!(wakes[0].seq, 1);
    }

    #[test]
    fn irrelevant_channels_are_ignored() {
        let mut hub = load(
            "ACC_X -> movingAvg(id=1, params={1});
             1 -> minThreshold(id=2, params={0});
             2 -> OUT;",
        );
        // Mic samples never touch the accelerometer pipeline.
        assert!(hub
            .push_sample(SensorChannel::Mic, 99.0)
            .unwrap()
            .is_empty());
        assert!(!hub
            .push_sample(SensorChannel::AccX, 1.0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn audio_window_pipeline_counts_windows() {
        let mut hub = load(
            "MIC -> window(id=1, params={64, 64, 0});
             1 -> rms(id=2);
             2 -> minThreshold(id=3, params={0.5});
             3 -> OUT;",
        );
        // 128 loud samples → two windows → two wakes.
        let mut wakes = 0;
        for i in 0..128u64 {
            let x = if i % 2 == 0 { 1.0 } else { -1.0 };
            wakes += hub.push_sample(SensorChannel::Mic, x).unwrap().len();
        }
        assert_eq!(wakes, 2);
        // 128 quiet samples → no wakes.
        for _ in 0..128 {
            assert!(hub
                .push_sample(SensorChannel::Mic, 0.001)
                .unwrap()
                .is_empty());
        }
    }

    #[test]
    fn branching_window_feeds_two_consumers() {
        // One window feeding both a variance branch and a ZCR branch,
        // joined by allOf — the music-journal shape (paper §3.7.2).
        let mut hub = load(
            "MIC -> window(id=1, params={64, 64, 0});
             1 -> variance(id=2);
             1 -> zcrVariance(id=3, params={4});
             2 -> minThreshold(id=4, params={0.01});
             3 -> minThreshold(id=5, params={0});
             4,5 -> allOf(id=6);
             6 -> OUT;",
        );
        let mut woke = false;
        for i in 0..256u64 {
            // Alternate loud high-ZCR and quiet segments within windows.
            let x = if (i / 8) % 2 == 0 {
                if i % 2 == 0 {
                    1.0
                } else {
                    -1.0
                }
            } else {
                0.0
            };
            woke |= !hub.push_sample(SensorChannel::Mic, x).unwrap().is_empty();
        }
        assert!(woke);
    }

    #[test]
    fn sustained_siren_shape_requires_duration() {
        // Pitched windows must persist for 3 consecutive windows
        // (hop = 64) before OUT fires.
        let text = "MIC -> window(id=1, params={64, 64, 0});
             1 -> fft(id=2);
             2 -> spectralMagnitude(id=3);
             3 -> dominantRatio(id=4);
             4 -> minThreshold(id=5, params={5});
             5 -> sustained(id=6, params={3, 64});
             6 -> OUT;";
        let mut hub = load(text);
        let rate = 8000.0;
        let tone = |i: u64| (2.0 * std::f64::consts::PI * 1000.0 * i as f64 / rate).sin();

        // Two pitched windows: not enough.
        let mut wakes = 0;
        for i in 0..128u64 {
            wakes += hub.push_sample(SensorChannel::Mic, tone(i)).unwrap().len();
        }
        assert_eq!(wakes, 0);
        // A third consecutive pitched window triggers.
        for i in 128..192u64 {
            wakes += hub.push_sample(SensorChannel::Mic, tone(i)).unwrap().len();
        }
        assert_eq!(wakes, 1);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut hub = load(
            "ACC_X -> movingAvg(id=1, params={2});
             1 -> minThreshold(id=2, params={0});
             2 -> OUT;",
        );
        hub.push_sample(SensorChannel::AccX, 1.0).unwrap();
        hub.push_sample(SensorChannel::AccX, 1.0).unwrap();
        assert_eq!(hub.wake_count(), 1);
        hub.reset();
        assert_eq!(hub.wake_count(), 0);
        // Warm-up required again after reset.
        assert!(hub
            .push_sample(SensorChannel::AccX, 1.0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn channel_rates_validation() {
        let rates = ChannelRates::default().with_rate(SensorChannel::Mic, 16_000.0);
        assert_eq!(rates.rate_of(SensorChannel::Mic), 16_000.0);
        assert_eq!(rates.rate_of(SensorChannel::AccX), 50.0);
    }

    #[test]
    #[should_panic(expected = "sample rate must be positive")]
    fn channel_rates_reject_zero() {
        let _ = ChannelRates::default().with_rate(SensorChannel::Mic, 0.0);
    }

    #[test]
    fn fft_ifft_round_trip_inside_a_program() {
        // window → fft → ifft → rms reproduces the plain window → rms
        // pipeline (the inverse transform is exact).
        let text_roundtrip = "MIC -> window(id=1, params={64, 64, 0});
             1 -> fft(id=2);
             2 -> ifft(id=3);
             3 -> rms(id=4);
             4 -> minThreshold(id=5, params={0.5});
             5 -> OUT;";
        let text_direct = "MIC -> window(id=1, params={64, 64, 0});
             1 -> rms(id=2);
             2 -> minThreshold(id=3, params={0.5});
             3 -> OUT;";
        let mut roundtrip = load(text_roundtrip);
        let mut direct = load(text_direct);
        for i in 0..512u64 {
            let x = (i as f64 * 0.7).sin();
            let a = roundtrip.push_sample(SensorChannel::Mic, x).unwrap();
            let b = direct.push_sample(SensorChannel::Mic, x).unwrap();
            assert_eq!(a.len(), b.len(), "wake mismatch at sample {i}");
            for (wa, wb) in a.iter().zip(&b) {
                assert!((wa.value - wb.value).abs() < 1e-9);
            }
        }
        assert!(roundtrip.wake_count() > 0);
    }

    #[test]
    fn any_of_joins_with_or_semantics() {
        // Wake when either axis exceeds its own threshold.
        let mut hub = load(
            "ACC_X -> minThreshold(id=1, params={5});
             ACC_Y -> minThreshold(id=2, params={7});
             1,2 -> anyOf(id=3);
             3 -> OUT;",
        );
        // Only x exceeds: wakes.
        assert!(!hub
            .push_sample(SensorChannel::AccX, 6.0)
            .unwrap()
            .is_empty());
        assert!(hub
            .push_sample(SensorChannel::AccY, 6.0)
            .unwrap()
            .is_empty());
        // Only y exceeds: wakes.
        assert!(hub
            .push_sample(SensorChannel::AccX, 1.0)
            .unwrap()
            .is_empty());
        assert!(!hub
            .push_sample(SensorChannel::AccY, 8.0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn exp_moving_average_runs_in_a_program() {
        let mut hub = load(
            "ACC_X -> expMovingAvg(id=1, params={0.5});
             1 -> minThreshold(id=2, params={3});
             2 -> OUT;",
        );
        // EMA of constant 4: first output 4 ≥ 3 → immediate wake.
        assert!(!hub
            .push_sample(SensorChannel::AccX, 4.0)
            .unwrap()
            .is_empty());
        // EMA decays from 4 toward 0: 2.0 at the next quiet sample.
        assert!(hub
            .push_sample(SensorChannel::AccX, 0.0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn f32_runtime_agrees_with_f64_on_the_music_shape() {
        // The branching window/variance/zcr shape at both precisions:
        // identical wake decisions on a well-separated signal, with wake
        // values within single-precision tolerance.
        let text = "MIC -> window(id=1, params={64, 64, 0});
             1 -> variance(id=2);
             1 -> zcrVariance(id=3, params={4});
             2 -> minThreshold(id=4, params={0.01});
             3 -> minThreshold(id=5, params={0});
             4,5 -> allOf(id=6);
             6 -> OUT;";
        let program: Program = text.parse().unwrap();
        let mut h64 = HubRuntime::load(&program, &ChannelRates::default()).unwrap();
        let mut h32 = HubRuntime32::load_f32(&program, &ChannelRates::default()).unwrap();
        for i in 0..512u64 {
            let x = if (i / 8) % 2 == 0 {
                if i % 2 == 0 {
                    1.0
                } else {
                    -1.0
                }
            } else {
                0.0
            };
            let a = h64.push_sample(SensorChannel::Mic, x).unwrap();
            let b = h32.push_sample(SensorChannel::Mic, x).unwrap();
            assert_eq!(a.len(), b.len(), "wake count diverged at sample {i}");
            for (wa, wb) in a.iter().zip(&b) {
                assert_eq!(wa.seq, wb.seq);
                assert!(
                    (wa.value - wb.value).abs() < 1e-4,
                    "{} vs {}",
                    wa.value,
                    wb.value
                );
            }
        }
        assert!(h64.wake_count() > 0, "the loud segments must wake");
        assert_eq!(h64.wake_count(), h32.wake_count());
    }

    #[test]
    fn runtime_survives_exec_error() {
        // A magnitude vector (length 33) flowing into lowPass triggers a
        // run-time transform-length error; the runtime reports it and can
        // keep going.
        let mut hub = load(
            "MIC -> window(id=1, params={64, 64, 0});
             1 -> fft(id=2);
             2 -> spectralMagnitude(id=3);
             3 -> lowPass(id=4, params={100});
             4 -> rms(id=5);
             5 -> minThreshold(id=6, params={0});
             6 -> OUT;",
        );
        let mut saw_error = false;
        for i in 0..64u64 {
            match hub.push_sample(SensorChannel::Mic, (i as f64 * 0.1).sin()) {
                Ok(_) => {}
                Err(HubError::Exec(ExecError::BadTransformLength { len: 33, .. })) => {
                    saw_error = true;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(saw_error);
        // Still accepts samples afterwards.
        assert!(hub.push_sample(SensorChannel::Mic, 0.0).is_ok());
    }
}
