//! The hub interpreter.
//!
//! [`HubRuntime`] is this reproduction's equivalent of the paper's C
//! interpreter (§3.5): "Upon receiving a new configuration, the runtime
//! allocates memory for each algorithm in the configuration. The
//! interpreter then waits for sensor data to be available and feeds the
//! data into the appropriate algorithm. If the algorithm produces a
//! result, it sets a flag. The interpreter checks the flag and if
//! necessary sends the result to the next algorithm. … The final algorithm
//! feeds into OUT, indicating that the main processor should be woken up."
//!
//! Because the textual IR is define-before-use, statement order is a
//! topological order of the dataflow graph, and one pass over the node
//! list per incoming sample propagates every derived result.

use crate::instance::{AlgoInstance, ExecError};
use crate::value::Tagged;
use sidewinder_ir::{NodeId, Program, Source, ValidateError};
use sidewinder_sensors::SensorChannel;
use std::collections::BTreeMap;

/// Per-channel sample rates used to configure frequency-aware stages.
///
/// `Default` yields each channel's [`SensorChannel::default_rate_hz`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelRates {
    rates: BTreeMap<SensorChannel, f64>,
}

impl Default for ChannelRates {
    fn default() -> Self {
        ChannelRates {
            rates: SensorChannel::ALL
                .into_iter()
                .map(|c| (c, c.default_rate_hz()))
                .collect(),
        }
    }
}

impl ChannelRates {
    /// Overrides one channel's rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is not positive and finite.
    pub fn with_rate(mut self, channel: SensorChannel, rate_hz: f64) -> Self {
        assert!(
            rate_hz.is_finite() && rate_hz > 0.0,
            "sample rate must be positive, got {rate_hz}"
        );
        self.rates.insert(channel, rate_hz);
        self
    }

    /// The rate configured for `channel`.
    pub fn rate_of(&self, channel: SensorChannel) -> f64 {
        self.rates
            .get(&channel)
            .copied()
            .unwrap_or_else(|| channel.default_rate_hz())
    }
}

/// A wake-up raised by the hub: a value reached `OUT`.
#[derive(Debug, Clone, PartialEq)]
pub struct WakeEvent {
    /// Sequence number (source-sample index) the triggering value derives
    /// from.
    pub seq: u64,
    /// The scalar value delivered to `OUT`.
    pub value: f64,
}

/// Errors raised while loading or running a program on the hub.
#[derive(Debug, Clone, PartialEq)]
pub enum HubError {
    /// The program failed structural validation.
    Invalid(ValidateError),
    /// An algorithm instance failed at run time.
    Exec(ExecError),
}

impl std::fmt::Display for HubError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HubError::Invalid(e) => write!(f, "invalid program: {e}"),
            HubError::Exec(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for HubError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HubError::Invalid(e) => Some(e),
            HubError::Exec(e) => Some(e),
        }
    }
}

impl From<ValidateError> for HubError {
    fn from(e: ValidateError) -> Self {
        HubError::Invalid(e)
    }
}

impl From<ExecError> for HubError {
    fn from(e: ExecError) -> Self {
        HubError::Exec(e)
    }
}

/// One loaded node: its instance plus its input edges.
#[derive(Debug, Clone)]
struct LoadedNode {
    instance: AlgoInstance,
    sources: Vec<Source>,
}

/// The hub interpreter: a loaded wake-up condition ready to consume
/// samples.
#[derive(Debug, Clone)]
pub struct HubRuntime {
    nodes: Vec<LoadedNode>,
    out_source: NodeId,
    channel_seq: BTreeMap<SensorChannel, u64>,
    wake_count: u64,
}

impl HubRuntime {
    /// Validates `program` and allocates one algorithm instance per node.
    ///
    /// # Errors
    ///
    /// Returns [`HubError::Invalid`] if the program fails validation.
    pub fn load(program: &Program, rates: &ChannelRates) -> Result<Self, HubError> {
        program.validate()?;
        // Propagate sample rates: a node inherits the rate of its first
        // source (aggregators merge branches of equal rate in practice).
        let mut node_rates: BTreeMap<NodeId, f64> = BTreeMap::new();
        let mut nodes = Vec::new();
        for (sources, id, kind) in program.nodes() {
            let rate = match sources
                .first()
                .expect("validation guarantees at least one source")
            {
                Source::Channel(c) => rates.rate_of(*c),
                Source::Node(src) => node_rates[src],
            };
            node_rates.insert(id, rate);
            nodes.push(LoadedNode {
                instance: AlgoInstance::new(id, kind, sources.len(), rate),
                sources: sources.to_vec(),
            });
        }
        Ok(HubRuntime {
            nodes,
            out_source: program
                .out_source()
                .expect("validation guarantees an OUT statement"),
            channel_seq: BTreeMap::new(),
            wake_count: 0,
        })
    }

    /// Number of algorithm instances allocated.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total wake-ups raised since load (or the last [`HubRuntime::reset`]).
    pub fn wake_count(&self) -> u64 {
        self.wake_count
    }

    /// Feeds one sensor sample and propagates it through the pipeline.
    ///
    /// Returns the wake events raised by this sample (at most one per
    /// `OUT`-feeding emission).
    ///
    /// # Errors
    ///
    /// Returns [`HubError::Exec`] if an instance fails; the runtime is
    /// left in a consistent state and may continue receiving samples.
    pub fn push_sample(
        &mut self,
        channel: SensorChannel,
        sample: f64,
    ) -> Result<Vec<WakeEvent>, HubError> {
        let seq_entry = self.channel_seq.entry(channel).or_insert(0);
        let seq = *seq_entry;
        *seq_entry += 1;

        let sample_tag = Tagged::new(seq, sample);
        // Results freshly produced during this pass, consumable by later
        // nodes (statement order is topological).
        let mut fresh: BTreeMap<NodeId, Tagged> = BTreeMap::new();
        let mut wakes = Vec::new();

        for node in &mut self.nodes {
            let mut produced = None;
            for (port, source) in node.sources.iter().enumerate() {
                let input = match source {
                    Source::Channel(c) if *c == channel => Some(&sample_tag),
                    Source::Channel(_) => None,
                    Source::Node(src) => fresh.get(src),
                };
                if let Some(input) = input {
                    node.instance.feed(port, input)?;
                    if let Some(result) = node.instance.take_result() {
                        produced = Some(result);
                    }
                }
            }
            if let Some(result) = produced {
                if node.instance.id() == self.out_source {
                    if let Some(value) = result.value.as_scalar() {
                        wakes.push(WakeEvent {
                            seq: result.seq,
                            value,
                        });
                    }
                }
                fresh.insert(node.instance.id(), result);
            }
        }
        self.wake_count += wakes.len() as u64;
        Ok(wakes)
    }

    /// Clears all instance state and counters, keeping the configuration.
    pub fn reset(&mut self) {
        for node in &mut self.nodes {
            node.instance.reset();
        }
        self.channel_seq.clear();
        self.wake_count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidewinder_ir::Program;

    fn load(text: &str) -> HubRuntime {
        let program: Program = text.parse().unwrap();
        HubRuntime::load(&program, &ChannelRates::default()).unwrap()
    }

    #[test]
    fn load_rejects_invalid_programs() {
        let program: Program = "ACC_X -> movingAvg(id=1, params={10});".parse().unwrap();
        let err = HubRuntime::load(&program, &ChannelRates::default()).unwrap_err();
        assert!(matches!(err, HubError::Invalid(ValidateError::MissingOut)));
        assert!(err.to_string().contains("OUT"));
    }

    #[test]
    fn significant_motion_pipeline_wakes_on_vigorous_motion() {
        // The paper's Fig. 2 example, with a threshold above resting
        // gravity magnitude (~9.81).
        let mut hub = load(
            "ACC_X -> movingAvg(id=1, params={10});
             ACC_Y -> movingAvg(id=2, params={10});
             ACC_Z -> movingAvg(id=3, params={10});
             1,2,3 -> vectorMagnitude(id=4);
             4 -> minThreshold(id=5, params={15});
             5 -> OUT;",
        );
        assert_eq!(hub.node_count(), 5);

        // Resting: gravity only.
        for _ in 0..50 {
            for (c, v) in [
                (SensorChannel::AccX, 0.0),
                (SensorChannel::AccY, 0.0),
                (SensorChannel::AccZ, 9.81),
            ] {
                assert!(hub.push_sample(c, v).unwrap().is_empty());
            }
        }
        assert_eq!(hub.wake_count(), 0);

        // Vigorous shaking: large magnitude on all axes.
        let mut woke = false;
        for _ in 0..50 {
            for c in SensorChannel::ACCEL {
                woke |= !hub.push_sample(c, 12.0).unwrap().is_empty();
            }
        }
        assert!(woke);
        assert!(hub.wake_count() > 0);
    }

    #[test]
    fn wake_events_carry_value_and_seq() {
        let mut hub = load(
            "ACC_X -> movingAvg(id=1, params={2});
             1 -> minThreshold(id=2, params={5});
             2 -> OUT;",
        );
        hub.push_sample(SensorChannel::AccX, 6.0).unwrap();
        let wakes = hub.push_sample(SensorChannel::AccX, 8.0).unwrap();
        assert_eq!(wakes.len(), 1);
        assert_eq!(wakes[0].value, 7.0);
        assert_eq!(wakes[0].seq, 1);
    }

    #[test]
    fn irrelevant_channels_are_ignored() {
        let mut hub = load(
            "ACC_X -> movingAvg(id=1, params={1});
             1 -> minThreshold(id=2, params={0});
             2 -> OUT;",
        );
        // Mic samples never touch the accelerometer pipeline.
        assert!(hub
            .push_sample(SensorChannel::Mic, 99.0)
            .unwrap()
            .is_empty());
        assert!(!hub
            .push_sample(SensorChannel::AccX, 1.0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn audio_window_pipeline_counts_windows() {
        let mut hub = load(
            "MIC -> window(id=1, params={64, 64, 0});
             1 -> rms(id=2);
             2 -> minThreshold(id=3, params={0.5});
             3 -> OUT;",
        );
        // 128 loud samples → two windows → two wakes.
        let mut wakes = 0;
        for i in 0..128u64 {
            let x = if i % 2 == 0 { 1.0 } else { -1.0 };
            wakes += hub.push_sample(SensorChannel::Mic, x).unwrap().len();
        }
        assert_eq!(wakes, 2);
        // 128 quiet samples → no wakes.
        for _ in 0..128 {
            assert!(hub
                .push_sample(SensorChannel::Mic, 0.001)
                .unwrap()
                .is_empty());
        }
    }

    #[test]
    fn branching_window_feeds_two_consumers() {
        // One window feeding both a variance branch and a ZCR branch,
        // joined by allOf — the music-journal shape (paper §3.7.2).
        let mut hub = load(
            "MIC -> window(id=1, params={64, 64, 0});
             1 -> variance(id=2);
             1 -> zcrVariance(id=3, params={4});
             2 -> minThreshold(id=4, params={0.01});
             3 -> minThreshold(id=5, params={0});
             4,5 -> allOf(id=6);
             6 -> OUT;",
        );
        let mut woke = false;
        for i in 0..256u64 {
            // Alternate loud high-ZCR and quiet segments within windows.
            let x = if (i / 8) % 2 == 0 {
                if i % 2 == 0 {
                    1.0
                } else {
                    -1.0
                }
            } else {
                0.0
            };
            woke |= !hub.push_sample(SensorChannel::Mic, x).unwrap().is_empty();
        }
        assert!(woke);
    }

    #[test]
    fn sustained_siren_shape_requires_duration() {
        // Pitched windows must persist for 3 consecutive windows
        // (hop = 64) before OUT fires.
        let text = "MIC -> window(id=1, params={64, 64, 0});
             1 -> fft(id=2);
             2 -> spectralMagnitude(id=3);
             3 -> dominantRatio(id=4);
             4 -> minThreshold(id=5, params={5});
             5 -> sustained(id=6, params={3, 64});
             6 -> OUT;";
        let mut hub = load(text);
        let rate = 8000.0;
        let tone = |i: u64| (2.0 * std::f64::consts::PI * 1000.0 * i as f64 / rate).sin();

        // Two pitched windows: not enough.
        let mut wakes = 0;
        for i in 0..128u64 {
            wakes += hub.push_sample(SensorChannel::Mic, tone(i)).unwrap().len();
        }
        assert_eq!(wakes, 0);
        // A third consecutive pitched window triggers.
        for i in 128..192u64 {
            wakes += hub.push_sample(SensorChannel::Mic, tone(i)).unwrap().len();
        }
        assert_eq!(wakes, 1);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut hub = load(
            "ACC_X -> movingAvg(id=1, params={2});
             1 -> minThreshold(id=2, params={0});
             2 -> OUT;",
        );
        hub.push_sample(SensorChannel::AccX, 1.0).unwrap();
        hub.push_sample(SensorChannel::AccX, 1.0).unwrap();
        assert_eq!(hub.wake_count(), 1);
        hub.reset();
        assert_eq!(hub.wake_count(), 0);
        // Warm-up required again after reset.
        assert!(hub
            .push_sample(SensorChannel::AccX, 1.0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn channel_rates_validation() {
        let rates = ChannelRates::default().with_rate(SensorChannel::Mic, 16_000.0);
        assert_eq!(rates.rate_of(SensorChannel::Mic), 16_000.0);
        assert_eq!(rates.rate_of(SensorChannel::AccX), 50.0);
    }

    #[test]
    #[should_panic(expected = "sample rate must be positive")]
    fn channel_rates_reject_zero() {
        let _ = ChannelRates::default().with_rate(SensorChannel::Mic, 0.0);
    }

    #[test]
    fn fft_ifft_round_trip_inside_a_program() {
        // window → fft → ifft → rms reproduces the plain window → rms
        // pipeline (the inverse transform is exact).
        let text_roundtrip = "MIC -> window(id=1, params={64, 64, 0});
             1 -> fft(id=2);
             2 -> ifft(id=3);
             3 -> rms(id=4);
             4 -> minThreshold(id=5, params={0.5});
             5 -> OUT;";
        let text_direct = "MIC -> window(id=1, params={64, 64, 0});
             1 -> rms(id=2);
             2 -> minThreshold(id=3, params={0.5});
             3 -> OUT;";
        let mut roundtrip = load(text_roundtrip);
        let mut direct = load(text_direct);
        for i in 0..512u64 {
            let x = (i as f64 * 0.7).sin();
            let a = roundtrip.push_sample(SensorChannel::Mic, x).unwrap();
            let b = direct.push_sample(SensorChannel::Mic, x).unwrap();
            assert_eq!(a.len(), b.len(), "wake mismatch at sample {i}");
            for (wa, wb) in a.iter().zip(&b) {
                assert!((wa.value - wb.value).abs() < 1e-9);
            }
        }
        assert!(roundtrip.wake_count() > 0);
    }

    #[test]
    fn any_of_joins_with_or_semantics() {
        // Wake when either axis exceeds its own threshold.
        let mut hub = load(
            "ACC_X -> minThreshold(id=1, params={5});
             ACC_Y -> minThreshold(id=2, params={7});
             1,2 -> anyOf(id=3);
             3 -> OUT;",
        );
        // Only x exceeds: wakes.
        assert!(!hub
            .push_sample(SensorChannel::AccX, 6.0)
            .unwrap()
            .is_empty());
        assert!(hub
            .push_sample(SensorChannel::AccY, 6.0)
            .unwrap()
            .is_empty());
        // Only y exceeds: wakes.
        assert!(hub
            .push_sample(SensorChannel::AccX, 1.0)
            .unwrap()
            .is_empty());
        assert!(!hub
            .push_sample(SensorChannel::AccY, 8.0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn exp_moving_average_runs_in_a_program() {
        let mut hub = load(
            "ACC_X -> expMovingAvg(id=1, params={0.5});
             1 -> minThreshold(id=2, params={3});
             2 -> OUT;",
        );
        // EMA of constant 4: first output 4 ≥ 3 → immediate wake.
        assert!(!hub
            .push_sample(SensorChannel::AccX, 4.0)
            .unwrap()
            .is_empty());
        // EMA decays from 4 toward 0: 2.0 at the next quiet sample.
        assert!(hub
            .push_sample(SensorChannel::AccX, 0.0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn runtime_survives_exec_error() {
        // A magnitude vector (length 33) flowing into lowPass triggers a
        // run-time transform-length error; the runtime reports it and can
        // keep going.
        let mut hub = load(
            "MIC -> window(id=1, params={64, 64, 0});
             1 -> fft(id=2);
             2 -> spectralMagnitude(id=3);
             3 -> lowPass(id=4, params={100});
             4 -> rms(id=5);
             5 -> minThreshold(id=6, params={0});
             6 -> OUT;",
        );
        let mut saw_error = false;
        for i in 0..64u64 {
            match hub.push_sample(SensorChannel::Mic, (i as f64 * 0.1).sin()) {
                Ok(_) => {}
                Err(HubError::Exec(ExecError::BadTransformLength { len: 33, .. })) => {
                    saw_error = true;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(saw_error);
        // Still accepts samples afterwards.
        assert!(hub.push_sample(SensorChannel::Mic, 0.0).is_ok());
    }
}
