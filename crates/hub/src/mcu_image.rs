//! Compiling validated programs into MCU core images.
//!
//! The `no_std` interpreter in `sidewinder-mcu` executes a plain-data
//! [`McuImage`] instead of walking the IR: parsing, validation, and this
//! compilation step stay on the host (the paper's phone-side runtime),
//! and only the fixed-capacity image crosses the serial link to the hub
//! (DESIGN.md §6j). [`compile_image`] mirrors the host loader's
//! traversal exactly — the same rate propagation, the same dense
//! define-before-use indexing, the same single-channel direct-feed
//! classification — so a [`McuCore`](sidewinder_mcu::McuCore) running
//! the image is bit-identical to a [`HubRuntime`] running the program
//! (pinned by `tests/mcu_equivalence.rs` on every golden fixture).

use crate::runtime::{ChannelRates, HubError, LoadError};
use sidewinder_ir::{AlgorithmKind, NodeId, Program, Source, StatFn, WindowShapeParam};
use sidewinder_mcu::{ImageBuilder, McuImage, NodeKind, PortSource, StatKind, WindowShape};
use std::collections::BTreeMap;

/// Compiles a program into the fixed-capacity image the MCU core
/// executes.
///
/// # Errors
///
/// Returns [`HubError::Invalid`] if the program fails validation,
/// [`HubError::Load`] for structural holes in a program that bypassed
/// validation, and [`HubError::Image`] if the program exceeds the image's
/// fixed capacities ([`MAX_NODES`](sidewinder_mcu::image::MAX_NODES)
/// nodes, [`MAX_PORTS`](sidewinder_mcu::image::MAX_PORTS) ports per
/// node).
pub fn compile_image(program: &Program, rates: &ChannelRates) -> Result<McuImage, HubError> {
    program.validate()?;
    compile_validated(program, rates)
}

/// [`compile_image`] without the validation pass — the same split the
/// host loader has, so the defensive paths stay testable.
pub(crate) fn compile_validated(
    program: &Program,
    rates: &ChannelRates,
) -> Result<McuImage, HubError> {
    let mut node_rates: BTreeMap<NodeId, f64> = BTreeMap::new();
    let mut index_of: BTreeMap<NodeId, u16> = BTreeMap::new();
    let mut builder = ImageBuilder::new();
    for (sources, id, kind) in program.nodes() {
        let Some(first) = sources.first() else {
            return Err(HubError::Invalid(sidewinder_ir::ValidateError::BadArity {
                id,
                algorithm: kind.ir_name(),
                got: 0,
            }));
        };
        // Rate propagation: a node inherits the rate of its first source,
        // exactly as the host loader propagates it.
        let rate = match first {
            Source::Channel(c) => rates.rate_of(*c),
            Source::Node(src) => *node_rates.get(src).ok_or(LoadError::UnknownSource {
                at: id,
                source: *src,
            })?,
        };
        node_rates.insert(id, rate);
        let dense: Vec<PortSource> = sources
            .iter()
            .map(|s| match s {
                Source::Channel(c) => Ok(PortSource::Channel(c.index() as u8)),
                Source::Node(src) => index_of.get(src).map(|&i| PortSource::Node(i)).ok_or(
                    LoadError::UnknownSource {
                        at: id,
                        source: *src,
                    },
                ),
            })
            .collect::<Result<_, _>>()?;
        let index = builder.push_node(node_kind(kind), &dense, rate)?;
        index_of.insert(id, index);
    }
    let out_id = program
        .out_source()
        .ok_or(HubError::Invalid(sidewinder_ir::ValidateError::MissingOut))?;
    let out_index = *index_of
        .get(&out_id)
        .ok_or(LoadError::UnknownOut { source: out_id })?;
    Ok(builder.finish(out_index)?)
}

/// IR algorithm → image node kind. The two enums are deliberately
/// parallel; this match is the total (compiler-checked) bridge.
fn node_kind(kind: &AlgorithmKind) -> NodeKind {
    match *kind {
        AlgorithmKind::Window { size, hop, shape } => NodeKind::Window {
            size,
            hop,
            shape: window_shape(shape),
        },
        AlgorithmKind::Fft => NodeKind::Fft,
        AlgorithmKind::Ifft => NodeKind::Ifft,
        AlgorithmKind::SpectralMagnitude => NodeKind::SpectralMagnitude,
        AlgorithmKind::MovingAvg { window } => NodeKind::MovingAvg { window },
        AlgorithmKind::ExpMovingAvg { alpha } => NodeKind::ExpMovingAvg { alpha },
        AlgorithmKind::LowPass { cutoff_hz } => NodeKind::LowPass { cutoff_hz },
        AlgorithmKind::HighPass { cutoff_hz } => NodeKind::HighPass { cutoff_hz },
        AlgorithmKind::VectorMagnitude => NodeKind::VectorMagnitude,
        AlgorithmKind::Zcr => NodeKind::Zcr,
        AlgorithmKind::ZcrVariance { sub_windows } => NodeKind::ZcrVariance { sub_windows },
        AlgorithmKind::Stat(f) => NodeKind::Stat(stat_kind(f)),
        AlgorithmKind::DominantRatio => NodeKind::DominantRatio,
        AlgorithmKind::DominantFreq => NodeKind::DominantFreq,
        AlgorithmKind::Goertzel { lo_hz, hi_hz } => NodeKind::Goertzel { lo_hz, hi_hz },
        AlgorithmKind::GoertzelFreq { lo_hz, hi_hz } => NodeKind::GoertzelFreq { lo_hz, hi_hz },
        AlgorithmKind::GoertzelRatio { lo_hz, hi_hz } => NodeKind::GoertzelRatio { lo_hz, hi_hz },
        AlgorithmKind::MinThreshold { threshold } => NodeKind::MinThreshold { threshold },
        AlgorithmKind::MaxThreshold { threshold } => NodeKind::MaxThreshold { threshold },
        AlgorithmKind::BandThreshold { lo, hi } => NodeKind::BandThreshold { lo, hi },
        AlgorithmKind::OutsideThreshold { lo, hi } => NodeKind::OutsideThreshold { lo, hi },
        AlgorithmKind::Sustained { count, max_gap } => NodeKind::Sustained {
            count,
            max_gap: u64::from(max_gap),
        },
        AlgorithmKind::AllOf => NodeKind::AllOf,
        AlgorithmKind::AnyOf => NodeKind::AnyOf,
    }
}

fn window_shape(shape: WindowShapeParam) -> WindowShape {
    match shape {
        WindowShapeParam::Rectangular => WindowShape::Rectangular,
        WindowShapeParam::Hamming => WindowShape::Hamming,
        WindowShapeParam::Hann => WindowShape::Hann,
    }
}

fn stat_kind(f: StatFn) -> StatKind {
    match f {
        StatFn::Mean => StatKind::Mean,
        StatFn::Variance => StatKind::Variance,
        StatFn::StdDev => StatKind::StdDev,
        StatFn::MeanAbs => StatKind::MeanAbs,
        StatFn::Rms => StatKind::Rms,
        StatFn::Energy => StatKind::Energy,
        StatFn::Min => StatKind::Min,
        StatFn::Max => StatKind::Max,
        StatFn::PeakToPeak => StatKind::PeakToPeak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidewinder_mcu::McuCore;
    use sidewinder_sensors::SensorChannel;

    fn compile(text: &str) -> McuImage {
        let program: Program = text.parse().unwrap();
        compile_image(&program, &ChannelRates::default()).unwrap()
    }

    #[test]
    fn compiles_the_fig2_pipeline() {
        let image = compile(
            "ACC_X -> movingAvg(id=1, params={10});
             ACC_Y -> movingAvg(id=2, params={10});
             ACC_Z -> movingAvg(id=3, params={10});
             1,2,3 -> vectorMagnitude(id=4);
             4 -> minThreshold(id=5, params={15});
             5 -> OUT;",
        );
        assert_eq!(image.node_count(), 5);
        assert_eq!(image.out_index(), 4);
        // Each accelerometer axis direct-feeds exactly its moving average.
        assert_eq!(image.direct_feed_mask(SensorChannel::AccX.index()), 1 << 0);
        assert_eq!(image.direct_feed_mask(SensorChannel::AccZ.index()), 1 << 2);
    }

    #[test]
    fn compiled_image_runs_on_the_core() {
        let image = compile(
            "ACC_X -> movingAvg(id=1, params={2});
             1 -> minThreshold(id=2, params={5});
             2 -> OUT;",
        );
        let mut core: McuCore = McuCore::new();
        core.load(&image).unwrap();
        let mut wakes = Vec::new();
        let channel = SensorChannel::AccX.index() as u8;
        for x in [10.0, 10.0, 10.0] {
            core.push_sample(channel, x, &mut |w| wakes.push(w))
                .unwrap();
        }
        assert_eq!(wakes.len(), 2); // averages at seq 1 and 2 pass the gate
        assert_eq!(wakes[0].value, 10.0);
    }

    #[test]
    fn rejects_invalid_programs() {
        let program: Program = "ACC_X -> movingAvg(id=1, params={10});".parse().unwrap();
        let err = compile_image(&program, &ChannelRates::default()).unwrap_err();
        assert!(matches!(err, HubError::Invalid(_)));
    }

    #[test]
    fn oversized_programs_get_a_typed_capacity_error() {
        // Chain more nodes than the image can hold.
        let mut text = String::from("ACC_X -> movingAvg(id=1, params={2});\n");
        for id in 2..40 {
            text.push_str(&format!(
                "{} -> movingAvg(id={}, params={{2}});\n",
                id - 1,
                id
            ));
        }
        text.push_str("39 -> OUT;");
        let program: Program = text.parse().unwrap();
        let err = compile_image(&program, &ChannelRates::default()).unwrap_err();
        assert!(matches!(err, HubError::Image(_)), "got {err:?}");
        assert!(err.to_string().contains("image nodes"));
    }

    #[test]
    fn unvalidated_holes_surface_typed_load_errors() {
        let mut program = Program::new();
        program.push_node(
            vec![Source::Channel(SensorChannel::AccX)],
            NodeId(1),
            AlgorithmKind::MovingAvg { window: 4 },
        );
        program.push_out(NodeId(9));
        let err = compile_validated(&program, &ChannelRates::default()).unwrap_err();
        assert_eq!(
            err,
            HubError::Load(LoadError::UnknownOut { source: NodeId(9) })
        );
    }
}
