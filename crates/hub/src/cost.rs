//! Pipeline cost analysis.
//!
//! The paper's §3.8 "Sizing" discussion notes that the lower-power MCU
//! "was not able to run some algorithms (such as Fast Fourier Transforms)
//! in real-time". To reproduce that constraint without hardware, each
//! algorithm is assigned a floating-point-operation count per emission,
//! and each node an emission rate derived from its position in the
//! pipeline (windows emit every `hop` samples; scalar filters emit per
//! sample). An MCU then admits a pipeline iff the total flop/s — scaled by
//! the MCU's cycles-per-flop (software floating point on the MSP430 is an
//! order of magnitude slower than the Cortex-M4F's FPU) — fits within its
//! clock budget, and the buffers fit in RAM.

use crate::runtime::ChannelRates;
use sidewinder_ir::{AlgorithmKind, NodeId, Program, Source, StatFn};
use std::collections::BTreeMap;

/// Cost of a single node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeCost {
    /// The node.
    pub id: NodeId,
    /// Emissions per second this node processes.
    pub input_rate_hz: f64,
    /// Floating-point operations per input emission.
    pub flops_per_input: f64,
    /// Bytes of state the instance keeps.
    pub memory_bytes: usize,
}

impl NodeCost {
    /// Flops per second this node demands.
    pub fn flops_per_second(&self) -> f64 {
        self.input_rate_hz * self.flops_per_input
    }
}

/// The aggregate cost of a pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineCost {
    nodes: Vec<NodeCost>,
}

impl PipelineCost {
    /// Analyzes a validated program against channel rates.
    ///
    /// Unvalidated programs may yield meaningless costs, but analysis
    /// never panics on them.
    pub fn analyze(program: &Program, rates: &ChannelRates) -> PipelineCost {
        // Track per-node emission rate, vector length, and the sample
        // rate of the data *inside* those vectors (the base rate a
        // frequency-aware stage like goertzel sees) flowing out.
        let mut out_rate: BTreeMap<NodeId, f64> = BTreeMap::new();
        let mut out_len: BTreeMap<NodeId, usize> = BTreeMap::new();
        let mut out_base: BTreeMap<NodeId, f64> = BTreeMap::new();
        let mut nodes = Vec::new();

        for (sources, id, kind) in program.nodes() {
            // A multi-input aggregator processes every arriving value, so
            // it is charged for the *sum* of its source rates, not just
            // the first source's.
            let src_rates: Vec<f64> = sources
                .iter()
                .map(|s| match s {
                    Source::Channel(c) => rates.rate_of(*c),
                    Source::Node(n) => out_rate.get(n).copied().unwrap_or(0.0),
                })
                .collect();
            let input_rate: f64 = src_rates.iter().sum();
            let input_len = sources
                .iter()
                .map(|s| match s {
                    Source::Channel(_) => 1,
                    Source::Node(n) => out_len.get(n).copied().unwrap_or(1),
                })
                .max()
                .unwrap_or(1);
            let input_base = sources
                .iter()
                .map(|s| match s {
                    Source::Channel(c) => rates.rate_of(*c),
                    Source::Node(n) => out_base.get(n).copied().unwrap_or(0.0),
                })
                .fold(0.0, f64::max);

            let (flops, mem, mut rate_out, len_out) =
                cost_of(kind, input_rate, input_len, input_base);
            // Joins that wait for every branch emit at the slowest
            // branch's cadence; anyOf forwards every arrival (the summed
            // rate cost_of already returned).
            if matches!(kind, AlgorithmKind::VectorMagnitude | AlgorithmKind::AllOf) {
                rate_out = src_rates.iter().copied().fold(f64::INFINITY, f64::min);
                if !rate_out.is_finite() {
                    rate_out = 0.0;
                }
            }
            nodes.push(NodeCost {
                id,
                input_rate_hz: input_rate,
                flops_per_input: flops,
                memory_bytes: mem,
            });
            out_rate.insert(id, rate_out);
            out_len.insert(id, len_out);
            out_base.insert(id, input_base);
        }
        PipelineCost { nodes }
    }

    /// Per-node costs in statement order.
    pub fn nodes(&self) -> &[NodeCost] {
        &self.nodes
    }

    /// Total flops per second across all nodes.
    pub fn total_flops_per_second(&self) -> f64 {
        self.nodes.iter().map(|n| n.flops_per_second()).sum()
    }

    /// Total instance memory in bytes.
    pub fn total_memory_bytes(&self) -> usize {
        self.nodes.iter().map(|n| n.memory_bytes).sum()
    }
}

/// The per-kind cost table behind [`PipelineCost::analyze`], exposed so
/// the certifier can mirror the analysis over a compiled image with
/// bitwise-identical arithmetic. Returns `(flops_per_input,
/// memory_bytes, output_rate, output_len)`.
pub fn kind_cost(
    kind: &AlgorithmKind,
    input_rate: f64,
    input_len: usize,
    input_base_rate: f64,
) -> (f64, usize, f64, usize) {
    cost_of(kind, input_rate, input_len, input_base_rate)
}

/// Returns `(flops_per_input, memory_bytes, output_rate, output_len)`.
/// `input_base_rate` is the sample rate of the data inside incoming
/// vectors — what frequency-aware stages use to place DFT bins.
fn cost_of(
    kind: &AlgorithmKind,
    input_rate: f64,
    input_len: usize,
    input_base_rate: f64,
) -> (f64, usize, f64, usize) {
    let n = input_len as f64;
    match *kind {
        AlgorithmKind::Window { size, hop, shape } => {
            let taper = match shape {
                sidewinder_ir::WindowShapeParam::Rectangular => 0.0,
                _ => size as f64, // one multiply per sample on emission
            };
            // Per-sample buffer push ≈ 2 flops; amortize taper over hop.
            // Memory: one f32 ring buffer; emissions stream to consumers
            // in place on the MCU.
            (
                2.0 + (taper + size as f64) / hop as f64,
                size as usize * 4,
                input_rate / hop as f64,
                size as usize,
            )
        }
        // In-place complex f32 transforms: 8 bytes per point.
        AlgorithmKind::Fft => (
            5.0 * n * n.log2().max(1.0),
            input_len * 8,
            input_rate,
            input_len,
        ),
        AlgorithmKind::Ifft => (
            5.0 * n * n.log2().max(1.0) + n,
            input_len * 8,
            input_rate,
            input_len,
        ),
        AlgorithmKind::SpectralMagnitude => {
            // A sqrt per bin ≈ 15 flops on scalar hardware.
            (
                16.0 * (n / 2.0 + 1.0),
                (input_len / 2 + 1) * 4,
                input_rate,
                input_len / 2 + 1,
            )
        }
        AlgorithmKind::MovingAvg { window } => {
            (window as f64 + 2.0, window as usize * 4, input_rate, 1)
        }
        AlgorithmKind::ExpMovingAvg { .. } => (3.0, 16, input_rate, 1),
        AlgorithmKind::LowPass { .. } | AlgorithmKind::HighPass { .. } => (
            // Forward + inverse FFT plus a pass over the bins; one
            // in-place complex f32 workspace.
            10.0 * n * n.log2().max(1.0) + 2.0 * n,
            input_len * 8,
            input_rate,
            input_len,
        ),
        AlgorithmKind::VectorMagnitude => (20.0, 64, input_rate, 1),
        AlgorithmKind::Zcr => (3.0 * n, 16, input_rate, 1),
        AlgorithmKind::ZcrVariance { .. } => (4.0 * n, 64, input_rate, 1),
        AlgorithmKind::Stat(s) => {
            let per_sample = match s {
                StatFn::Mean | StatFn::Min | StatFn::Max | StatFn::PeakToPeak => 1.0,
                StatFn::MeanAbs | StatFn::Energy => 2.0,
                StatFn::Variance | StatFn::StdDev | StatFn::Rms => 3.0,
            };
            (per_sample * n + 10.0, 32, input_rate, 1)
        }
        AlgorithmKind::DominantRatio | AlgorithmKind::DominantFreq => (2.0 * n, 16, input_rate, 1),
        AlgorithmKind::Goertzel { lo_hz, hi_hz }
        | AlgorithmKind::GoertzelFreq { lo_hz, hi_hz }
        | AlgorithmKind::GoertzelRatio { lo_hz, hi_hz } => {
            // One Goertzel recurrence per in-band bin: ~3 flops per
            // sample plus the closing magnitude (a sqrt ≈ 15 flops).
            // Without a known base rate the bin spacing is unknown, so
            // assume the worst case (every bin in band). The freq/ratio
            // variants skip the DC probe; one bin of difference is noise
            // at this model's resolution, so all three share the count.
            let probes = if input_base_rate > 0.0 && input_len > 0 {
                let bin_hz = input_base_rate / n;
                (0..=input_len / 2)
                    .filter(|&k| {
                        let f = k as f64 * bin_hz;
                        lo_hz <= f && f <= hi_hz
                    })
                    .count() as f64
            } else {
                n / 2.0 + 1.0
            };
            (probes * (3.0 * n + 20.0), 32 + input_len * 4, input_rate, 1)
        }
        AlgorithmKind::MinThreshold { .. }
        | AlgorithmKind::MaxThreshold { .. }
        | AlgorithmKind::BandThreshold { .. }
        | AlgorithmKind::OutsideThreshold { .. } => (2.0, 16, input_rate, 1),
        AlgorithmKind::Sustained { .. } => (3.0, 24, input_rate, 1),
        AlgorithmKind::AllOf | AlgorithmKind::AnyOf => (2.0, 48, input_rate, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidewinder_ir::Program;

    fn analyze(text: &str) -> PipelineCost {
        let p: Program = text.parse().unwrap();
        p.validate().unwrap();
        PipelineCost::analyze(&p, &ChannelRates::default())
    }

    #[test]
    fn scalar_accel_pipeline_is_cheap() {
        let cost = analyze(
            "ACC_X -> movingAvg(id=1, params={10});
             1 -> minThreshold(id=2, params={15});
             2 -> OUT;",
        );
        // 50 Hz × (12 + 2) flops ≈ 700 flops/s.
        assert!(cost.total_flops_per_second() < 1_000.0);
        assert_eq!(cost.nodes().len(), 2);
        assert!(cost.total_memory_bytes() < 1_024);
    }

    #[test]
    fn fft_audio_pipeline_is_expensive() {
        let cost = analyze(
            "MIC -> window(id=1, params={256, 256, 1});
             1 -> highPass(id=2, params={750});
             2 -> fft(id=3);
             3 -> spectralMagnitude(id=4);
             4 -> dominantRatio(id=5);
             5 -> minThreshold(id=6, params={4});
             6 -> OUT;",
        );
        // Filters + FFT at 31.25 windows/s run in the hundreds of kiloflops.
        let f = cost.total_flops_per_second();
        assert!(f > 300_000.0, "flops/s = {f}");
    }

    #[test]
    fn window_rate_division_propagates() {
        let cost = analyze(
            "MIC -> window(id=1, params={512, 512, 0});
             1 -> rms(id=2);
             2 -> minThreshold(id=3, params={0.5});
             3 -> OUT;",
        );
        // The rms node sees 8000/512 = 15.625 windows/s.
        let rms = &cost.nodes()[1];
        assert!((rms.input_rate_hz - 15.625).abs() < 1e-9);
        // The threshold sees the same (scalar) rate.
        let thr = &cost.nodes()[2];
        assert!((thr.input_rate_hz - 15.625).abs() < 1e-9);
    }

    #[test]
    fn spectral_magnitude_halves_vector_length() {
        let p: Program = "MIC -> window(id=1, params={256, 256, 0});
             1 -> fft(id=2);
             2 -> spectralMagnitude(id=3);
             3 -> dominantFreq(id=4);
             4 -> minThreshold(id=5, params={0});
             5 -> OUT;"
            .parse()
            .unwrap();
        let cost = PipelineCost::analyze(&p, &ChannelRates::default());
        // dominantFreq consumes 129-point magnitude vectors: 2 flops/bin.
        let dom = &cost.nodes()[3];
        assert!((dom.flops_per_input - 258.0).abs() < 1e-9);
    }

    #[test]
    fn aggregator_input_rate_sums_all_sources() {
        // Regression: analyze() used to read only sources.first(), so a
        // two-input aggregator was charged for one 50 Hz stream instead
        // of two.
        let cost = analyze(
            "ACC_X -> movingAvg(id=1, params={5});
             ACC_Y -> movingAvg(id=2, params={5});
             1,2 -> vectorMagnitude(id=3);
             3 -> minThreshold(id=4, params={15});
             4 -> OUT;",
        );
        let join = &cost.nodes()[2];
        assert!((join.input_rate_hz - 100.0).abs() < 1e-9);
        // 100 arrivals/s × 20 flops each.
        assert!((join.flops_per_second() - 2_000.0).abs() < 1e-9);
        // The join emits once per completed set — at the branch rate —
        // so the downstream threshold sees 50 Hz, not 100 Hz.
        let thr = &cost.nodes()[3];
        assert!((thr.input_rate_hz - 50.0).abs() < 1e-9);
    }

    #[test]
    fn any_of_forwards_the_summed_rate() {
        let cost = analyze(
            "ACC_X -> movingAvg(id=1, params={5});
             ACC_Y -> movingAvg(id=2, params={5});
             1,2 -> anyOf(id=3);
             3 -> minThreshold(id=4, params={15});
             4 -> OUT;",
        );
        // An OR join emits on every arrival: downstream sees 100 Hz.
        let thr = &cost.nodes()[3];
        assert!((thr.input_rate_hz - 100.0).abs() < 1e-9);
    }

    #[test]
    fn memory_counts_buffers() {
        let cost = analyze(
            "MIC -> window(id=1, params={256, 256, 0});
             1 -> rms(id=2);
             2 -> minThreshold(id=3, params={0.1});
             3 -> OUT;",
        );
        assert!(cost.total_memory_bytes() >= 256 * 4);
    }
}
