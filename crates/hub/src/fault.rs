//! Deterministic fault injection for the phone↔hub channel.
//!
//! The paper's prototype hangs the whole wake-up architecture off an
//! audio-jack UART (§3.4) and a microcontroller that can brown out; a
//! production deployment has to survive corrupted frames, dropped frames,
//! watchdog resets, and sensors that stop reporting. This module provides
//! the *injection* side of that story: a [`FaultSchedule`] describes which
//! faults strike and when, and [`FaultSchedule::plan`] expands it into a
//! concrete, fully deterministic [`FaultPlan`] the simulator consumes.
//!
//! Determinism is load-bearing. The PR 1 conformance suite promises that
//! simulation results are bit-identical across worker counts, so nothing
//! here may consult the wall clock or any global randomness: all
//! rate-based decisions come from a seeded xorshift generator owned by the
//! plan, and every explicit fault is an absolute [`Micros`] timestamp.
//! Two plans built from the same schedule over the same horizon are equal;
//! a schedule with no faults configured injects nothing at all.

use sidewinder_sensors::{Micros, SensorChannel};

/// Bytes in the hub→phone wake notification frame (event id, sequence
/// tag, triggering value, buffer descriptor).
pub const WAKE_FRAME_BYTES: usize = 64;

/// Bytes in a phone→hub health-probe frame and its echoed reply.
pub const PROBE_FRAME_BYTES: usize = 8;

/// Time for the hub microcontroller to reboot after a watchdog reset,
/// before it can accept a program re-download.
pub const HUB_REBOOT_TIME: Micros = Micros::from_millis(200);

/// A small xorshift64* generator (Vigna 2016): three shifts and a
/// multiply, no allocation, no wall clock — the determinism workhorse
/// behind rate-based fault injection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Seeds the generator; a zero seed (the xorshift fixed point) is
    /// replaced by a golden-ratio constant.
    pub fn new(seed: u64) -> Self {
        FaultRng {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform draw in `[0, 1)` built from the top 53 bits.
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// One Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.next_unit() < p
    }
}

/// How the phone paces frame retransmissions: capped exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total transfer attempts per frame, including the first.
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_backoff: Micros,
    /// Ceiling on the per-retry delay.
    pub max_backoff: Micros,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Micros::from_millis(10),
            max_backoff: Micros::from_millis(160),
        }
    }
}

impl RetryPolicy {
    /// The backoff delay before retry number `retry` (1-based): doubles
    /// each time, capped at [`RetryPolicy::max_backoff`].
    pub fn backoff_before(&self, retry: u32) -> Micros {
        let factor = 1u64 << (retry.saturating_sub(1)).min(20);
        Micros(self.base_backoff.0.saturating_mul(factor)).min(self.max_backoff)
    }
}

/// A window during which one sensor channel reports nothing to the hub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelDropout {
    /// The silent channel.
    pub channel: SensorChannel,
    /// Dropout start (inclusive).
    pub start: Micros,
    /// Dropout end (exclusive).
    pub end: Micros,
}

impl ChannelDropout {
    /// A dropout of `channel` over `[start, end)`.
    pub fn new(channel: SensorChannel, start: Micros, end: Micros) -> Self {
        ChannelDropout {
            channel,
            start,
            end,
        }
    }

    /// Whether `t` falls inside the dropout.
    pub fn contains(&self, t: Micros) -> bool {
        t >= self.start && t < self.end
    }
}

/// A declarative fault configuration: rates and explicit timestamps, all
/// derived from one seed — no wall clock anywhere.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    seed: u64,
    frame_corruption_rate: f64,
    frame_drop_rate: f64,
    hub_resets_at: Vec<Micros>,
    hub_reset_mean_interval: Option<Micros>,
    hub_downtime: Vec<(Micros, Micros)>,
    dropouts: Vec<ChannelDropout>,
    retry: RetryPolicy,
}

impl Default for FaultSchedule {
    fn default() -> Self {
        FaultSchedule::none()
    }
}

impl FaultSchedule {
    /// The empty schedule: injects nothing, leaves every simulation
    /// bit-identical to the fault-free path.
    pub fn none() -> Self {
        FaultSchedule {
            seed: 0,
            frame_corruption_rate: 0.0,
            frame_drop_rate: 0.0,
            hub_resets_at: Vec::new(),
            hub_reset_mean_interval: None,
            hub_downtime: Vec::new(),
            dropouts: Vec::new(),
            retry: RetryPolicy::default(),
        }
    }

    /// An empty schedule carrying a PRNG seed for rate-based faults.
    pub fn seeded(seed: u64) -> Self {
        FaultSchedule {
            seed,
            ..FaultSchedule::none()
        }
    }

    /// Sets the per-frame probability that a transfer arrives with a CRC
    /// mismatch. Clamped to `[0, 1]`.
    pub fn with_frame_corruption(mut self, rate: f64) -> Self {
        self.frame_corruption_rate = clamp_rate(rate);
        self
    }

    /// Sets the per-frame probability that a transfer vanishes entirely
    /// (detected by timeout rather than CRC). Clamped to `[0, 1]`.
    pub fn with_frame_drops(mut self, rate: f64) -> Self {
        self.frame_drop_rate = clamp_rate(rate);
        self
    }

    /// Adds an explicit watchdog reset at `t`.
    pub fn with_hub_reset_at(mut self, t: Micros) -> Self {
        self.hub_resets_at.push(t);
        self
    }

    /// Enables rate-based watchdog resets with the given mean interval
    /// (jittered deterministically from the seed).
    pub fn with_hub_resets_every(mut self, mean_interval: Micros) -> Self {
        self.hub_reset_mean_interval = Some(mean_interval);
        self
    }

    /// Adds an explicit hub outage over `[start, end)`: the hub delivers
    /// no wake-ups and consumes no samples (a brown-out, a wedged MCU, a
    /// yanked audio jack).
    pub fn with_hub_downtime(mut self, start: Micros, end: Micros) -> Self {
        self.hub_downtime.push((start, end));
        self
    }

    /// Adds an explicit sensor-channel dropout window.
    pub fn with_dropout(mut self, dropout: ChannelDropout) -> Self {
        self.dropouts.push(dropout);
        self
    }

    /// Overrides the retry/backoff policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The retry policy in force.
    pub fn retry(&self) -> RetryPolicy {
        self.retry
    }

    /// Whether the schedule injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.frame_corruption_rate == 0.0
            && self.frame_drop_rate == 0.0
            && self.hub_resets_at.is_empty()
            && self.hub_reset_mean_interval.is_none()
            && self.hub_downtime.is_empty()
            && self.dropouts.is_empty()
    }

    /// Expands the schedule into a concrete plan over `[0, duration)`.
    ///
    /// `recovery` is how long the hub stays unusable after each watchdog
    /// reset (reboot plus program re-download plus health probe, as
    /// modeled by the caller). Rate-based resets are placed by walking
    /// the horizon with seed-jittered intervals, so the same schedule and
    /// horizon always yield the same plan.
    pub fn plan(&self, duration: Micros, recovery: Micros) -> FaultPlan {
        let mut rng = FaultRng::new(self.seed);
        let mut resets: Vec<Micros> = self
            .hub_resets_at
            .iter()
            .copied()
            .filter(|&t| t < duration)
            .collect();
        if let Some(mean) = self.hub_reset_mean_interval {
            let mut t = Micros::ZERO;
            loop {
                // Jittered interval in [mean/2, 3·mean/2): mean-preserving
                // without needing a log for a true exponential draw.
                let jitter = Micros::from_secs_f64(mean.as_secs_f64() * rng.next_unit());
                t = t + mean / 2 + jitter;
                if t >= duration {
                    break;
                }
                resets.push(t);
            }
        }
        resets.sort();
        resets.dedup();

        let mut downtime: Vec<(Micros, Micros)> = resets
            .iter()
            .map(|&t| (t, (t + recovery).min(duration)))
            .chain(
                self.hub_downtime
                    .iter()
                    .map(|&(s, e)| (s.min(duration), e.min(duration)))
                    .filter(|&(s, e)| s < e),
            )
            .collect();
        downtime.sort();
        let downtime = merge_windows(downtime);

        let mut dropouts: Vec<ChannelDropout> = self
            .dropouts
            .iter()
            .filter(|d| d.start < duration && d.start < d.end)
            .map(|d| ChannelDropout {
                end: d.end.min(duration),
                ..*d
            })
            .collect();
        dropouts.sort_by_key(|d| (d.channel.index(), d.start));

        FaultPlan {
            resets,
            downtime,
            dropouts,
            corruption_rate: self.frame_corruption_rate,
            drop_rate: self.frame_drop_rate,
            retry: self.retry,
            rng,
        }
    }
}

fn clamp_rate(rate: f64) -> f64 {
    if rate.is_finite() {
        rate.clamp(0.0, 1.0)
    } else {
        0.0
    }
}

/// Coalesces sorted, possibly-overlapping windows.
fn merge_windows(sorted: Vec<(Micros, Micros)>) -> Vec<(Micros, Micros)> {
    let mut out: Vec<(Micros, Micros)> = Vec::with_capacity(sorted.len());
    for (s, e) in sorted {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// What became of one frame transfer attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFate {
    /// Arrived intact (CRC verified).
    Delivered,
    /// Arrived with a CRC mismatch; the receiver detects and discards it.
    Corrupted,
    /// Never arrived; the receiver detects it by timeout.
    Dropped,
}

/// A schedule expanded over a concrete horizon: explicit reset instants,
/// merged hub-downtime windows, per-channel dropout windows, and an owned
/// generator for per-frame fates. Consumed mutably by one simulation run;
/// clone the plan (or re-plan the schedule) for another run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    resets: Vec<Micros>,
    downtime: Vec<(Micros, Micros)>,
    dropouts: Vec<ChannelDropout>,
    corruption_rate: f64,
    drop_rate: f64,
    retry: RetryPolicy,
    rng: FaultRng,
}

impl FaultPlan {
    /// Watchdog reset instants, sorted ascending.
    pub fn resets(&self) -> &[Micros] {
        &self.resets
    }

    /// Merged windows during which the hub is unusable.
    pub fn downtime(&self) -> &[(Micros, Micros)] {
        &self.downtime
    }

    /// The retry policy in force.
    pub fn retry(&self) -> RetryPolicy {
        self.retry
    }

    /// Whether the hub is down (resetting or in an explicit outage) at `t`.
    pub fn hub_down_at(&self, t: Micros) -> bool {
        self.downtime.iter().any(|&(s, e)| t >= s && t < e)
    }

    /// Whether `channel` is in a dropout window at `t`.
    pub fn channel_dropped(&self, channel: SensorChannel, t: Micros) -> bool {
        self.dropouts
            .iter()
            .any(|d| d.channel == channel && d.contains(t))
    }

    /// Draws the fate of the next frame transfer attempt. Corruption is
    /// checked before loss, so one attempt consumes one or two draws —
    /// always in the same order, keeping runs reproducible.
    pub fn next_frame_fate(&mut self) -> FrameFate {
        if self.rng.chance(self.corruption_rate) {
            FrameFate::Corrupted
        } else if self.rng.chance(self.drop_rate) {
            FrameFate::Dropped
        } else {
            FrameFate::Delivered
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_uniformish() {
        let mut a = FaultRng::new(42);
        let mut b = FaultRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = FaultRng::new(42);
        let mean: f64 = (0..10_000).map(|_| c.next_unit()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn zero_seed_is_not_a_fixed_point() {
        let mut rng = FaultRng::new(0);
        assert_ne!(rng.next_u64(), 0);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn empty_schedule_plans_nothing() {
        let plan = FaultSchedule::none().plan(Micros::from_secs(600), Micros::from_millis(300));
        assert!(FaultSchedule::none().is_empty());
        assert!(plan.resets().is_empty());
        assert!(plan.downtime().is_empty());
        assert!(!plan.hub_down_at(Micros::from_secs(1)));
        let mut plan = plan;
        for _ in 0..32 {
            assert_eq!(plan.next_frame_fate(), FrameFate::Delivered);
        }
    }

    #[test]
    fn plans_are_reproducible() {
        let schedule = FaultSchedule::seeded(7)
            .with_frame_corruption(0.3)
            .with_frame_drops(0.2)
            .with_hub_resets_every(Micros::from_secs(60));
        let mut a = schedule.plan(Micros::from_secs(600), Micros::from_millis(300));
        let mut b = schedule.plan(Micros::from_secs(600), Micros::from_millis(300));
        assert_eq!(a, b);
        assert!(!a.resets().is_empty());
        for _ in 0..100 {
            assert_eq!(a.next_frame_fate(), b.next_frame_fate());
        }
    }

    #[test]
    fn explicit_resets_open_downtime_windows() {
        let plan = FaultSchedule::seeded(1)
            .with_hub_reset_at(Micros::from_secs(10))
            .plan(Micros::from_secs(60), Micros::from_secs(2));
        assert_eq!(plan.resets(), &[Micros::from_secs(10)]);
        assert!(plan.hub_down_at(Micros::from_secs(11)));
        assert!(!plan.hub_down_at(Micros::from_secs(12)));
        assert!(!plan.hub_down_at(Micros::from_secs(9)));
    }

    #[test]
    fn resets_beyond_the_horizon_are_ignored() {
        let plan = FaultSchedule::seeded(1)
            .with_hub_reset_at(Micros::from_secs(99))
            .plan(Micros::from_secs(60), Micros::from_secs(2));
        assert!(plan.resets().is_empty());
    }

    #[test]
    fn overlapping_downtime_merges() {
        let plan = FaultSchedule::seeded(1)
            .with_hub_downtime(Micros::from_secs(10), Micros::from_secs(20))
            .with_hub_downtime(Micros::from_secs(15), Micros::from_secs(30))
            .plan(Micros::from_secs(60), Micros::ZERO);
        assert_eq!(
            plan.downtime(),
            &[(Micros::from_secs(10), Micros::from_secs(30))]
        );
    }

    #[test]
    fn dropouts_are_per_channel() {
        let plan = FaultSchedule::seeded(1)
            .with_dropout(ChannelDropout::new(
                SensorChannel::AccX,
                Micros::from_secs(5),
                Micros::from_secs(10),
            ))
            .plan(Micros::from_secs(60), Micros::ZERO);
        assert!(plan.channel_dropped(SensorChannel::AccX, Micros::from_secs(7)));
        assert!(!plan.channel_dropped(SensorChannel::AccY, Micros::from_secs(7)));
        assert!(!plan.channel_dropped(SensorChannel::AccX, Micros::from_secs(10)));
    }

    #[test]
    fn frame_fates_follow_configured_rates() {
        let mut plan = FaultSchedule::seeded(3)
            .with_frame_corruption(0.25)
            .with_frame_drops(0.25)
            .plan(Micros::from_secs(60), Micros::ZERO);
        let mut counts = [0u32; 3];
        for _ in 0..4000 {
            match plan.next_frame_fate() {
                FrameFate::Delivered => counts[0] += 1,
                FrameFate::Corrupted => counts[1] += 1,
                FrameFate::Dropped => counts[2] += 1,
            }
        }
        // ~56 % delivered, ~25 % corrupted, ~19 % dropped.
        assert!((counts[1] as f64 / 4000.0 - 0.25).abs() < 0.05);
        assert!((counts[2] as f64 / 4000.0 - 0.1875).abs() < 0.05);
        assert!(counts[0] > counts[1] && counts[0] > counts[2]);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base_backoff: Micros::from_millis(10),
            max_backoff: Micros::from_millis(50),
        };
        assert_eq!(policy.backoff_before(1), Micros::from_millis(10));
        assert_eq!(policy.backoff_before(2), Micros::from_millis(20));
        assert_eq!(policy.backoff_before(3), Micros::from_millis(40));
        assert_eq!(policy.backoff_before(4), Micros::from_millis(50));
        assert_eq!(policy.backoff_before(40), Micros::from_millis(50));
    }

    #[test]
    fn rate_clamping_rejects_nonsense() {
        let s = FaultSchedule::seeded(1)
            .with_frame_corruption(7.0)
            .with_frame_drops(f64::NAN);
        let mut plan = s.plan(Micros::from_secs(1), Micros::ZERO);
        // Corruption clamps to 1.0 (every frame), NaN drop rate to 0.
        assert_eq!(plan.next_frame_fate(), FrameFate::Corrupted);
    }
}
