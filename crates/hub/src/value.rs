//! Values flowing along pipeline edges.
//!
//! Values are generic over the vector sample precision `P` (default
//! `f64`): windows and magnitude spectra are stored as `Vec<P>`, while
//! scalars — raw samples, extracted features, admission-control outputs —
//! stay `f64` at every precision, matching the hub hardware (the MCU
//! ADCs and wake messages are narrow; only the buffered vector data is
//! stored at reduced width). Complex spectra stay `f64`: the FFT runs on
//! the larger MCU where double-precision twiddles are the reference.

use sidewinder_dsp::{Complex, Sample};
use sidewinder_ir::ValueType;

/// A value produced by an algorithm instance.
#[derive(Debug, Clone, PartialEq)]
pub enum Value<P: Sample = f64> {
    /// One number: a raw sample, an extracted feature, or an
    /// admission-control output.
    Scalar(f64),
    /// A window of real samples or a magnitude spectrum.
    Vector(Vec<P>),
    /// A complex spectrum produced by `fft`.
    Spectrum(Vec<Complex>),
}

impl<P: Sample> Value<P> {
    /// The IR-level type of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Scalar(_) => ValueType::Scalar,
            Value::Vector(_) => ValueType::Vector,
            Value::Spectrum(_) => ValueType::Spectrum,
        }
    }

    /// The scalar payload, if this is a scalar.
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            Value::Scalar(x) => Some(*x),
            _ => None,
        }
    }

    /// The vector payload, if this is a vector.
    pub fn as_vector(&self) -> Option<&[P]> {
        match self {
            Value::Vector(v) => Some(v),
            _ => None,
        }
    }

    /// The spectrum payload, if this is a spectrum.
    pub fn as_spectrum(&self) -> Option<&[Complex]> {
        match self {
            Value::Spectrum(s) => Some(s),
            _ => None,
        }
    }
}

/// A borrowed view of a [`Value`], used on the interpreter hot path so
/// fan-out to multiple consumers passes windows and spectra by reference
/// instead of cloning them per edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueRef<'a, P: Sample = f64> {
    /// One number.
    Scalar(f64),
    /// A window of real samples or a magnitude spectrum.
    Vector(&'a [P]),
    /// A complex spectrum produced by `fft`.
    Spectrum(&'a [Complex]),
}

impl<P: Sample> ValueRef<'_, P> {
    /// The IR-level type of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            ValueRef::Scalar(_) => ValueType::Scalar,
            ValueRef::Vector(_) => ValueType::Vector,
            ValueRef::Spectrum(_) => ValueType::Spectrum,
        }
    }

    /// The scalar payload, if this is a scalar.
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            ValueRef::Scalar(x) => Some(*x),
            _ => None,
        }
    }

    /// The vector payload, if this is a vector.
    pub fn as_vector(&self) -> Option<&[P]> {
        match self {
            ValueRef::Vector(v) => Some(v),
            _ => None,
        }
    }

    /// The spectrum payload, if this is a spectrum.
    pub fn as_spectrum(&self) -> Option<&[Complex]> {
        match self {
            ValueRef::Spectrum(s) => Some(s),
            _ => None,
        }
    }

    /// Copies the view into an owned [`Value`].
    pub fn to_owned(self) -> Value<P> {
        match self {
            ValueRef::Scalar(x) => Value::Scalar(x),
            ValueRef::Vector(v) => Value::Vector(v.to_vec()),
            ValueRef::Spectrum(s) => Value::Spectrum(s.to_vec()),
        }
    }
}

impl<P: Sample> Value<P> {
    /// Borrows this value as a [`ValueRef`].
    pub fn as_ref(&self) -> ValueRef<'_, P> {
        match self {
            Value::Scalar(x) => ValueRef::Scalar(*x),
            Value::Vector(v) => ValueRef::Vector(v),
            Value::Spectrum(s) => ValueRef::Spectrum(s),
        }
    }
}

impl<P: Sample> From<f64> for Value<P> {
    fn from(x: f64) -> Self {
        Value::Scalar(x)
    }
}

impl<P: Sample> From<Vec<P>> for Value<P> {
    fn from(v: Vec<P>) -> Self {
        Value::Vector(v)
    }
}

// Concrete per-precision impls: a blanket `impl<P: Sample>` would
// overlap `From<Vec<P>>` in coherence's eyes (it must assume `Complex`
// could implement `Sample` someday, sealed or not).
impl From<Vec<Complex>> for Value<f64> {
    fn from(s: Vec<Complex>) -> Self {
        Value::Spectrum(s)
    }
}

impl From<Vec<Complex>> for Value<f32> {
    fn from(s: Vec<Complex>) -> Self {
        Value::Spectrum(s)
    }
}

/// A value tagged with the source-sample sequence number it derives from.
///
/// Sequence numbers let duration conditions (`sustained`) recognize
/// *consecutive* window emissions without the interpreter having a clock:
/// two windows are consecutive when their tags differ by the window hop.
#[derive(Debug, Clone, PartialEq)]
pub struct Tagged<P: Sample = f64> {
    /// Index of the newest source sample this value derives from.
    pub seq: u64,
    /// The payload.
    pub value: Value<P>,
}

impl<P: Sample> Tagged<P> {
    /// Creates a tagged value.
    pub fn new(seq: u64, value: impl Into<Value<P>>) -> Self {
        Tagged {
            seq,
            value: value.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_types_match_payloads() {
        assert_eq!(Value::<f64>::Scalar(1.0).value_type(), ValueType::Scalar);
        assert_eq!(Value::<f64>::Vector(vec![]).value_type(), ValueType::Vector);
        assert_eq!(
            Value::<f64>::Spectrum(vec![]).value_type(),
            ValueType::Spectrum
        );
    }

    #[test]
    fn accessors_are_type_selective() {
        let s = Value::<f64>::Scalar(2.5);
        assert_eq!(s.as_scalar(), Some(2.5));
        assert!(s.as_vector().is_none());
        assert!(s.as_spectrum().is_none());

        let v = Value::<f64>::Vector(vec![1.0, 2.0]);
        assert_eq!(v.as_vector(), Some(&[1.0, 2.0][..]));
        assert!(v.as_scalar().is_none());

        let sp = Value::<f64>::Spectrum(vec![Complex::ONE]);
        assert_eq!(sp.as_spectrum().unwrap().len(), 1);
        assert!(sp.as_vector().is_none());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::<f64>::from(1.5), Value::Scalar(1.5));
        assert_eq!(Value::<f64>::from(vec![1.0]), Value::Vector(vec![1.0]));
        assert_eq!(
            Value::<f64>::from(vec![Complex::ZERO]),
            Value::Spectrum(vec![Complex::ZERO])
        );
    }

    #[test]
    fn f32_vectors_carry_single_precision_payloads() {
        let v = Value::<f32>::Vector(vec![1.5f32, -2.0]);
        assert_eq!(v.as_vector(), Some(&[1.5f32, -2.0][..]));
        assert_eq!(v.value_type(), ValueType::Vector);
        // Scalars stay f64 at every precision.
        assert_eq!(Value::<f32>::Scalar(2.5).as_scalar(), Some(2.5));
    }

    #[test]
    fn tagged_carries_seq() {
        let t = Tagged::<f64>::new(42, 1.0);
        assert_eq!(t.seq, 42);
        assert_eq!(t.value, Value::Scalar(1.0));
    }
}
