//! Values flowing along pipeline edges.

use sidewinder_dsp::Complex;
use sidewinder_ir::ValueType;

/// A value produced by an algorithm instance.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// One number: a raw sample, an extracted feature, or an
    /// admission-control output.
    Scalar(f64),
    /// A window of real samples or a magnitude spectrum.
    Vector(Vec<f64>),
    /// A complex spectrum produced by `fft`.
    Spectrum(Vec<Complex>),
}

impl Value {
    /// The IR-level type of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Scalar(_) => ValueType::Scalar,
            Value::Vector(_) => ValueType::Vector,
            Value::Spectrum(_) => ValueType::Spectrum,
        }
    }

    /// The scalar payload, if this is a scalar.
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            Value::Scalar(x) => Some(*x),
            _ => None,
        }
    }

    /// The vector payload, if this is a vector.
    pub fn as_vector(&self) -> Option<&[f64]> {
        match self {
            Value::Vector(v) => Some(v),
            _ => None,
        }
    }

    /// The spectrum payload, if this is a spectrum.
    pub fn as_spectrum(&self) -> Option<&[Complex]> {
        match self {
            Value::Spectrum(s) => Some(s),
            _ => None,
        }
    }
}

/// A borrowed view of a [`Value`], used on the interpreter hot path so
/// fan-out to multiple consumers passes windows and spectra by reference
/// instead of cloning them per edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueRef<'a> {
    /// One number.
    Scalar(f64),
    /// A window of real samples or a magnitude spectrum.
    Vector(&'a [f64]),
    /// A complex spectrum produced by `fft`.
    Spectrum(&'a [Complex]),
}

impl ValueRef<'_> {
    /// The IR-level type of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            ValueRef::Scalar(_) => ValueType::Scalar,
            ValueRef::Vector(_) => ValueType::Vector,
            ValueRef::Spectrum(_) => ValueType::Spectrum,
        }
    }

    /// The scalar payload, if this is a scalar.
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            ValueRef::Scalar(x) => Some(*x),
            _ => None,
        }
    }

    /// The vector payload, if this is a vector.
    pub fn as_vector(&self) -> Option<&[f64]> {
        match self {
            ValueRef::Vector(v) => Some(v),
            _ => None,
        }
    }

    /// The spectrum payload, if this is a spectrum.
    pub fn as_spectrum(&self) -> Option<&[Complex]> {
        match self {
            ValueRef::Spectrum(s) => Some(s),
            _ => None,
        }
    }

    /// Copies the view into an owned [`Value`].
    pub fn to_owned(self) -> Value {
        match self {
            ValueRef::Scalar(x) => Value::Scalar(x),
            ValueRef::Vector(v) => Value::Vector(v.to_vec()),
            ValueRef::Spectrum(s) => Value::Spectrum(s.to_vec()),
        }
    }
}

impl Value {
    /// Borrows this value as a [`ValueRef`].
    pub fn as_ref(&self) -> ValueRef<'_> {
        match self {
            Value::Scalar(x) => ValueRef::Scalar(*x),
            Value::Vector(v) => ValueRef::Vector(v),
            Value::Spectrum(s) => ValueRef::Spectrum(s),
        }
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Scalar(x)
    }
}

impl From<Vec<f64>> for Value {
    fn from(v: Vec<f64>) -> Self {
        Value::Vector(v)
    }
}

impl From<Vec<Complex>> for Value {
    fn from(s: Vec<Complex>) -> Self {
        Value::Spectrum(s)
    }
}

/// A value tagged with the source-sample sequence number it derives from.
///
/// Sequence numbers let duration conditions (`sustained`) recognize
/// *consecutive* window emissions without the interpreter having a clock:
/// two windows are consecutive when their tags differ by the window hop.
#[derive(Debug, Clone, PartialEq)]
pub struct Tagged {
    /// Index of the newest source sample this value derives from.
    pub seq: u64,
    /// The payload.
    pub value: Value,
}

impl Tagged {
    /// Creates a tagged value.
    pub fn new(seq: u64, value: impl Into<Value>) -> Self {
        Tagged {
            seq,
            value: value.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_types_match_payloads() {
        assert_eq!(Value::Scalar(1.0).value_type(), ValueType::Scalar);
        assert_eq!(Value::Vector(vec![]).value_type(), ValueType::Vector);
        assert_eq!(Value::Spectrum(vec![]).value_type(), ValueType::Spectrum);
    }

    #[test]
    fn accessors_are_type_selective() {
        let s = Value::Scalar(2.5);
        assert_eq!(s.as_scalar(), Some(2.5));
        assert!(s.as_vector().is_none());
        assert!(s.as_spectrum().is_none());

        let v = Value::Vector(vec![1.0, 2.0]);
        assert_eq!(v.as_vector(), Some(&[1.0, 2.0][..]));
        assert!(v.as_scalar().is_none());

        let sp = Value::Spectrum(vec![Complex::ONE]);
        assert_eq!(sp.as_spectrum().unwrap().len(), 1);
        assert!(sp.as_vector().is_none());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(1.5), Value::Scalar(1.5));
        assert_eq!(Value::from(vec![1.0]), Value::Vector(vec![1.0]));
        assert_eq!(
            Value::from(vec![Complex::ZERO]),
            Value::Spectrum(vec![Complex::ZERO])
        );
    }

    #[test]
    fn tagged_carries_seq() {
        let t = Tagged::new(42, 1.0);
        assert_eq!(t.seq, 42);
        assert_eq!(t.value, Value::Scalar(1.0));
    }
}
