//! The phone↔hub serial link model.
//!
//! The paper's prototype connects the Nexus 4 to the microcontroller over
//! the UART exposed on the audio jack (§3.4): "The serial connection
//! provides sufficient bandwidth to support low bit-rate sensors, such as
//! the accelerometer, a microphone or GPS. However, extending the
//! prototype to work with higher bit-rate sensors like the camera would
//! require a higher bandwidth data bus, such as I²C." This module models
//! that budget: per-channel byte rates against a configured baud rate, and
//! the transfer time for the raw-data buffer handed to the application on
//! wake-up.

use sidewinder_sensors::{Micros, SensorChannel};

/// Maximum payload bytes per CRC-protected frame.
pub const FRAME_PAYLOAD_BYTES: usize = 64;

/// Per-frame overhead: 1 start-of-frame byte, 1 length byte, 2 CRC bytes.
pub const FRAME_OVERHEAD_BYTES: usize = 4;

/// CRC-16/CCITT-FALSE (poly `0x1021`, init `0xFFFF`), the checksum the
/// frame format carries so the receiver can *detect* corruption rather
/// than silently interpret a flipped bit as a wake-up.
pub fn crc16_ccitt(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// Number of frames needed to carry `bytes` of payload (at least one, so
/// even an empty notification costs a frame on the wire).
pub fn frames_for(bytes: usize) -> usize {
    bytes.div_ceil(FRAME_PAYLOAD_BYTES).max(1)
}

/// Encodes one payload chunk as a wire frame: `[0x7E, len, payload…, crc]`.
///
/// # Panics
///
/// Panics if `payload` exceeds [`FRAME_PAYLOAD_BYTES`].
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= FRAME_PAYLOAD_BYTES,
        "payload exceeds frame capacity"
    );
    let mut frame = Vec::with_capacity(payload.len() + FRAME_OVERHEAD_BYTES);
    frame.push(0x7E);
    frame.push(payload.len() as u8);
    frame.extend_from_slice(payload);
    let crc = crc16_ccitt(&frame);
    frame.extend_from_slice(&crc.to_be_bytes());
    frame
}

/// Checks a wire frame's structure and CRC, returning the payload if it
/// is intact and `None` if any bit was flipped in transit.
pub fn verify_frame(frame: &[u8]) -> Option<&[u8]> {
    if frame.len() < FRAME_OVERHEAD_BYTES || frame[0] != 0x7E {
        return None;
    }
    let len = frame[1] as usize;
    if frame.len() != len + FRAME_OVERHEAD_BYTES {
        return None;
    }
    let (body, crc_bytes) = frame.split_at(frame.len() - 2);
    let wire_crc = u16::from_be_bytes([crc_bytes[0], crc_bytes[1]]);
    if crc16_ccitt(body) == wire_crc {
        Some(&body[2..])
    } else {
        None
    }
}

/// Flips one bit of `frame` in place — the corruption a fault schedule
/// models, used by tests to show the CRC catches it.
pub fn corrupt_bit(frame: &mut [u8], bit: usize) {
    let byte = (bit / 8) % frame.len();
    frame[byte] ^= 1 << (bit % 8);
}

/// Why a concatenated frame stream failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameStreamError {
    /// The stream ended mid-frame: frame `index` declares `expected`
    /// bytes but only `got` remain.
    Truncated {
        /// Zero-based index of the incomplete frame.
        index: usize,
        /// Bytes the frame header declares.
        expected: usize,
        /// Bytes actually remaining in the stream.
        got: usize,
    },
    /// Frame `index` is structurally invalid or fails its CRC.
    BadFrame {
        /// Zero-based index of the rejected frame.
        index: usize,
    },
}

impl std::fmt::Display for FrameStreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameStreamError::Truncated {
                index,
                expected,
                got,
            } => write!(
                f,
                "frame {index} truncated: header declares {expected} bytes, {got} remain"
            ),
            FrameStreamError::BadFrame { index } => {
                write!(f, "frame {index} rejected: bad framing or CRC mismatch")
            }
        }
    }
}

impl std::error::Error for FrameStreamError {}

/// Encodes an arbitrary-length payload as a concatenation of
/// CRC-protected frames — the on-the-wire form of any message larger
/// than one frame (a program download, a rollup reply). An empty payload
/// still costs one empty frame, mirroring [`frames_for`].
pub fn encode_frame_stream(payload: &[u8]) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(payload.len() + frames_for(payload.len()) * FRAME_OVERHEAD_BYTES);
    let mut chunks = payload.chunks(FRAME_PAYLOAD_BYTES);
    // `chunks` yields nothing for an empty payload; emit the one empty
    // frame explicitly.
    if payload.is_empty() {
        out.extend_from_slice(&encode_frame(&[]));
        return out;
    }
    for chunk in &mut chunks {
        out.extend_from_slice(&encode_frame(chunk));
    }
    out
}

/// Decodes a concatenation of CRC-protected frames back into the
/// original payload. Total on arbitrary bytes: truncated or corrupted
/// input yields a typed [`FrameStreamError`], never a panic.
///
/// # Errors
///
/// Returns [`FrameStreamError::Truncated`] when the stream ends
/// mid-frame and [`FrameStreamError::BadFrame`] when a frame fails its
/// structural checks or CRC.
pub fn decode_frame_stream(mut bytes: &[u8]) -> Result<Vec<u8>, FrameStreamError> {
    let mut payload = Vec::new();
    let mut index = 0usize;
    while !bytes.is_empty() {
        if bytes.len() < 2 {
            return Err(FrameStreamError::Truncated {
                index,
                expected: FRAME_OVERHEAD_BYTES,
                got: bytes.len(),
            });
        }
        let frame_len = bytes[1] as usize + FRAME_OVERHEAD_BYTES;
        if bytes.len() < frame_len {
            return Err(FrameStreamError::Truncated {
                index,
                expected: frame_len,
                got: bytes.len(),
            });
        }
        let (frame, rest) = bytes.split_at(frame_len);
        match verify_frame(frame) {
            Some(chunk) => payload.extend_from_slice(chunk),
            None => return Err(FrameStreamError::BadFrame { index }),
        }
        bytes = rest;
        index += 1;
    }
    Ok(payload)
}

/// A serial link with a fixed symbol rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SerialLink {
    baud: u32,
}

/// Error returned when the requested channel set exceeds the link budget.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthExceededError {
    /// Bytes per second the channels demand.
    pub demanded_bytes_per_s: f64,
    /// Bytes per second the link can carry.
    pub capacity_bytes_per_s: f64,
}

impl std::fmt::Display for BandwidthExceededError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "channels demand {:.0} B/s but the link carries {:.0} B/s",
            self.demanded_bytes_per_s, self.capacity_bytes_per_s
        )
    }
}

impl std::error::Error for BandwidthExceededError {}

impl SerialLink {
    /// The Nexus 4 debugging UART configuration used by the prototype.
    pub const NEXUS4_UART: SerialLink = SerialLink { baud: 115_200 };

    /// Creates a link with the given baud rate.
    ///
    /// # Panics
    ///
    /// Panics if `baud` is zero.
    pub fn new(baud: u32) -> Self {
        assert!(baud > 0, "baud rate must be non-zero");
        SerialLink { baud }
    }

    /// The configured baud rate.
    pub fn baud(&self) -> u32 {
        self.baud
    }

    /// Effective payload capacity in bytes per second (8N1 framing: 10
    /// symbols per byte).
    pub fn capacity_bytes_per_s(&self) -> f64 {
        self.baud as f64 / 10.0
    }

    /// Checks that streaming all `channels` concurrently fits the link.
    ///
    /// # Errors
    ///
    /// Returns [`BandwidthExceededError`] when the aggregate sensor byte
    /// rate exceeds capacity.
    pub fn check_channels(&self, channels: &[SensorChannel]) -> Result<(), BandwidthExceededError> {
        let demanded: f64 = channels.iter().map(|c| c.bytes_per_second()).sum();
        let capacity = self.capacity_bytes_per_s();
        if demanded > capacity {
            Err(BandwidthExceededError {
                demanded_bytes_per_s: demanded,
                capacity_bytes_per_s: capacity,
            })
        } else {
            Ok(())
        }
    }

    /// Time to transfer a buffer of `bytes` (e.g. the raw sensor window
    /// handed to the application on wake-up).
    pub fn transfer_time(&self, bytes: usize) -> Micros {
        Micros::from_secs_f64(bytes as f64 / self.capacity_bytes_per_s())
    }

    /// Time to transfer `bytes` of payload split into CRC-protected
    /// frames: the raw time plus [`FRAME_OVERHEAD_BYTES`] per frame.
    pub fn framed_transfer_time(&self, bytes: usize) -> Micros {
        self.transfer_time(bytes + frames_for(bytes) * FRAME_OVERHEAD_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uart_carries_every_prototype_sensor() {
        // "The serial connection provides sufficient bandwidth to support
        // low bit-rate sensors, such as the accelerometer, a microphone
        // or GPS" (§3.4).
        let link = SerialLink::NEXUS4_UART;
        assert!(link.check_channels(&SensorChannel::ALL).is_ok());
        // But a camera-class stream (a few MB/s) would not fit — the
        // paper points to I²C for that. Model it as 100 such channels.
        let camera_like = vec![SensorChannel::Mic; 100];
        assert!(link.check_channels(&camera_like).is_err());
    }

    #[test]
    fn capacity_accounts_for_framing() {
        assert_eq!(SerialLink::new(115_200).capacity_bytes_per_s(), 11_520.0);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let link = SerialLink::new(115_200);
        assert_eq!(link.transfer_time(11_520), Micros::from_secs(1));
        assert_eq!(link.transfer_time(0), Micros::ZERO);
    }

    #[test]
    fn error_reports_rates() {
        let err = SerialLink::new(300)
            .check_channels(&[SensorChannel::AccX])
            .unwrap_err();
        assert!(err.to_string().contains("B/s"));
        assert_eq!(err.capacity_bytes_per_s, 30.0);
    }

    #[test]
    #[should_panic(expected = "baud rate must be non-zero")]
    fn zero_baud_rejected() {
        SerialLink::new(0);
    }

    #[test]
    fn accessor_returns_baud() {
        assert_eq!(SerialLink::NEXUS4_UART.baud(), 115_200);
    }

    #[test]
    fn crc_matches_check_value() {
        // CRC-16/CCITT-FALSE check value for "123456789".
        assert_eq!(crc16_ccitt(b"123456789"), 0x29B1);
        assert_eq!(crc16_ccitt(&[]), 0xFFFF);
    }

    #[test]
    fn frame_round_trips() {
        let payload = b"wake: node 7 fired";
        let frame = encode_frame(payload);
        assert_eq!(frame.len(), payload.len() + FRAME_OVERHEAD_BYTES);
        assert_eq!(verify_frame(&frame), Some(&payload[..]));
    }

    #[test]
    fn single_bit_flip_is_detected() {
        let frame = encode_frame(b"sensor data");
        for bit in 0..frame.len() * 8 {
            let mut damaged = frame.clone();
            corrupt_bit(&mut damaged, bit);
            assert_eq!(verify_frame(&damaged), None, "bit {bit} slipped through");
        }
    }

    #[test]
    fn malformed_frames_rejected() {
        assert_eq!(verify_frame(&[]), None);
        assert_eq!(verify_frame(&[0x7E, 0x00]), None);
        let mut frame = encode_frame(b"ok");
        frame.pop();
        assert_eq!(verify_frame(&frame), None);
    }

    #[test]
    fn frame_streams_round_trip() {
        for len in [0usize, 1, 63, 64, 65, 128, 1000] {
            let payload: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let stream = encode_frame_stream(&payload);
            assert_eq!(
                stream.len(),
                payload.len() + frames_for(payload.len()) * FRAME_OVERHEAD_BYTES,
                "len {len}"
            );
            assert_eq!(decode_frame_stream(&stream), Ok(payload), "len {len}");
        }
    }

    #[test]
    fn truncated_streams_are_typed_errors() {
        let stream = encode_frame_stream(&[0xAB; 100]);
        // Chop mid-second-frame.
        let cut = &stream[..stream.len() - 3];
        match decode_frame_stream(cut) {
            Err(FrameStreamError::Truncated { index: 1, .. }) => {}
            other => panic!("expected Truncated at frame 1, got {other:?}"),
        }
        // A bare header fragment.
        assert!(matches!(
            decode_frame_stream(&[0x7E]),
            Err(FrameStreamError::Truncated { index: 0, .. })
        ));
    }

    #[test]
    fn corrupted_streams_are_typed_errors() {
        let mut stream = encode_frame_stream(b"hello hub");
        stream[4] ^= 0x40;
        assert_eq!(
            decode_frame_stream(&stream),
            Err(FrameStreamError::BadFrame { index: 0 })
        );
        // Garbage that never had frame structure. 0xFF is not a valid
        // start-of-frame byte, and the length byte points past the end.
        assert!(decode_frame_stream(&[0xFF; 7]).is_err());
    }

    #[test]
    fn frame_counts_at_boundaries() {
        assert_eq!(frames_for(0), 1);
        assert_eq!(frames_for(1), 1);
        assert_eq!(frames_for(FRAME_PAYLOAD_BYTES), 1);
        assert_eq!(frames_for(FRAME_PAYLOAD_BYTES + 1), 2);
        assert_eq!(frames_for(3 * FRAME_PAYLOAD_BYTES), 3);
    }

    #[test]
    fn framing_costs_more_than_raw() {
        let link = SerialLink::NEXUS4_UART;
        let raw = link.transfer_time(1_000);
        let framed = link.framed_transfer_time(1_000);
        assert!(framed > raw);
        // 1000 B → 16 frames → 64 B overhead.
        assert_eq!(
            framed,
            link.transfer_time(1_000 + 16 * FRAME_OVERHEAD_BYTES)
        );
    }
}
