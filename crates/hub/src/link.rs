//! The phone↔hub serial link model.
//!
//! The paper's prototype connects the Nexus 4 to the microcontroller over
//! the UART exposed on the audio jack (§3.4): "The serial connection
//! provides sufficient bandwidth to support low bit-rate sensors, such as
//! the accelerometer, a microphone or GPS. However, extending the
//! prototype to work with higher bit-rate sensors like the camera would
//! require a higher bandwidth data bus, such as I²C." This module models
//! that budget: per-channel byte rates against a configured baud rate, and
//! the transfer time for the raw-data buffer handed to the application on
//! wake-up.

use sidewinder_sensors::{Micros, SensorChannel};

/// A serial link with a fixed symbol rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SerialLink {
    baud: u32,
}

/// Error returned when the requested channel set exceeds the link budget.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthExceededError {
    /// Bytes per second the channels demand.
    pub demanded_bytes_per_s: f64,
    /// Bytes per second the link can carry.
    pub capacity_bytes_per_s: f64,
}

impl std::fmt::Display for BandwidthExceededError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "channels demand {:.0} B/s but the link carries {:.0} B/s",
            self.demanded_bytes_per_s, self.capacity_bytes_per_s
        )
    }
}

impl std::error::Error for BandwidthExceededError {}

impl SerialLink {
    /// The Nexus 4 debugging UART configuration used by the prototype.
    pub const NEXUS4_UART: SerialLink = SerialLink { baud: 115_200 };

    /// Creates a link with the given baud rate.
    ///
    /// # Panics
    ///
    /// Panics if `baud` is zero.
    pub fn new(baud: u32) -> Self {
        assert!(baud > 0, "baud rate must be non-zero");
        SerialLink { baud }
    }

    /// The configured baud rate.
    pub fn baud(&self) -> u32 {
        self.baud
    }

    /// Effective payload capacity in bytes per second (8N1 framing: 10
    /// symbols per byte).
    pub fn capacity_bytes_per_s(&self) -> f64 {
        self.baud as f64 / 10.0
    }

    /// Checks that streaming all `channels` concurrently fits the link.
    ///
    /// # Errors
    ///
    /// Returns [`BandwidthExceededError`] when the aggregate sensor byte
    /// rate exceeds capacity.
    pub fn check_channels(&self, channels: &[SensorChannel]) -> Result<(), BandwidthExceededError> {
        let demanded: f64 = channels.iter().map(|c| c.bytes_per_second()).sum();
        let capacity = self.capacity_bytes_per_s();
        if demanded > capacity {
            Err(BandwidthExceededError {
                demanded_bytes_per_s: demanded,
                capacity_bytes_per_s: capacity,
            })
        } else {
            Ok(())
        }
    }

    /// Time to transfer a buffer of `bytes` (e.g. the raw sensor window
    /// handed to the application on wake-up).
    pub fn transfer_time(&self, bytes: usize) -> Micros {
        Micros::from_secs_f64(bytes as f64 / self.capacity_bytes_per_s())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uart_carries_every_prototype_sensor() {
        // "The serial connection provides sufficient bandwidth to support
        // low bit-rate sensors, such as the accelerometer, a microphone
        // or GPS" (§3.4).
        let link = SerialLink::NEXUS4_UART;
        assert!(link.check_channels(&SensorChannel::ALL).is_ok());
        // But a camera-class stream (a few MB/s) would not fit — the
        // paper points to I²C for that. Model it as 100 such channels.
        let camera_like = vec![SensorChannel::Mic; 100];
        assert!(link.check_channels(&camera_like).is_err());
    }

    #[test]
    fn capacity_accounts_for_framing() {
        assert_eq!(SerialLink::new(115_200).capacity_bytes_per_s(), 11_520.0);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let link = SerialLink::new(115_200);
        assert_eq!(link.transfer_time(11_520), Micros::from_secs(1));
        assert_eq!(link.transfer_time(0), Micros::ZERO);
    }

    #[test]
    fn error_reports_rates() {
        let err = SerialLink::new(300)
            .check_channels(&[SensorChannel::AccX])
            .unwrap_err();
        assert!(err.to_string().contains("B/s"));
        assert_eq!(err.capacity_bytes_per_s, 30.0);
    }

    #[test]
    #[should_panic(expected = "baud rate must be non-zero")]
    fn zero_baud_rejected() {
        SerialLink::new(0);
    }

    #[test]
    fn accessor_returns_baud() {
        assert_eq!(SerialLink::NEXUS4_UART.baud(), 115_200);
    }
}
