//! The Sidewinder low-power sensor-hub substrate.
//!
//! The paper's hub (§3.4–3.6) is a microcontroller (TI MSP430 or TI
//! LM4F120) running a small interpreter over the intermediate language:
//! each IR node becomes an algorithm instance holding its own data
//! structure with a `hasResult` flag; the interpreter feeds sensor samples
//! in, propagates flagged results along the dataflow edges, and reports a
//! wake-up whenever a value reaches `OUT`.
//!
//! This crate reproduces that substrate:
//!
//! * [`value`] — the values flowing along edges (scalars, windows,
//!   complex spectra), tagged with source-sample sequence numbers;
//! * [`instance`] — executable algorithm instances (the paper's per-node
//!   data structure), one per [`sidewinder_ir::AlgorithmKind`];
//! * [`runtime`] — the interpreter ([`HubRuntime`]): loads a validated IR
//!   program, accepts samples, and emits [`runtime::WakeEvent`]s;
//! * [`cost`] — a flop/memory cost model for pipelines;
//! * [`mcu`] — microcontroller capability models; the MSP430 cannot run
//!   FFT stages in real time, reproducing the paper's Table 2 footnote;
//! * [`link`] — the phone↔hub serial link budget (paper §3.4), with
//!   CRC-framed transfer modeling so corruption is detectable;
//! * [`fault`] — deterministic fault injection for the link and hub
//!   (frame corruption/drops, watchdog resets, channel dropouts).
//!
//! # Example
//!
//! ```
//! use sidewinder_hub::runtime::HubRuntime;
//! use sidewinder_ir::Program;
//! use sidewinder_sensors::SensorChannel;
//!
//! let program: Program = "\
//! ACC_X -> movingAvg(id=1, params={4});
//! 1 -> minThreshold(id=2, params={5});
//! 2 -> OUT;
//! ".parse()?;
//! let mut hub = HubRuntime::load(&program, &Default::default())?;
//! // Quiet samples do not wake the CPU; a loud burst does.
//! for _ in 0..8 {
//!     assert!(hub.push_sample(SensorChannel::AccX, 0.0)?.is_empty());
//! }
//! let mut woke = false;
//! for _ in 0..8 {
//!     woke |= !hub.push_sample(SensorChannel::AccX, 9.0)?.is_empty();
//! }
//! assert!(woke);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cost;
pub mod energy;
pub mod fault;
pub mod instance;
pub mod link;
pub mod mcu;
pub mod mcu_image;
pub mod runtime;
pub mod value;

pub use fault::{ChannelDropout, FaultPlan, FaultSchedule, FrameFate, RetryPolicy};
pub use mcu::Mcu;
pub use mcu_image::compile_image;
pub use runtime::{HubError, HubRuntime, HubRuntime32, LoadError};
pub use sidewinder_dsp::Sample;
pub use sidewinder_mcu::{McuCore, McuExecError, McuImage, DEFAULT_ARENA};
pub use value::{Tagged, Value, ValueRef};
