//! Microcontroller capability and power models.
//!
//! The paper's prototype uses two TI microcontrollers (§4): the MSP430
//! (3.6 mW awake, no hardware floating point, small RAM — could not run
//! FFT filters in real time) and the LM4F120 (Cortex-M4F, 49.4 mW awake,
//! an order of magnitude more capable). Table 2's siren row is footnoted
//! "includes the more powerful TI LM4F120" because only that MCU could run
//! the FFT-based siren condition. This module makes that selection a
//! *derived* property of the cost model rather than a hard-coded rule.

use crate::cost::PipelineCost;
use crate::runtime::ChannelRates;
use sidewinder_ir::Program;

/// A microcontroller model for the sensor hub.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mcu {
    /// Human-readable name.
    pub name: &'static str,
    /// Average power while awake and processing, in milliwatts
    /// (paper §4).
    pub awake_power_mw: f64,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Cycles needed per floating-point operation (software float on the
    /// MSP430, single-cycle FPU on the Cortex-M4F).
    pub cycles_per_flop: f64,
    /// Usable RAM in bytes.
    pub ram_bytes: usize,
    /// Fraction of the clock available to wake-up conditions (the rest is
    /// reserved for sampling, the serial link, and the interpreter loop).
    pub utilization: f64,
}

impl Mcu {
    /// TI MSP430 (F5438-class): 3.6 mW awake, 16 MHz, software floating
    /// point, 16 KiB SRAM.
    pub const MSP430: Mcu = Mcu {
        name: "TI MSP430",
        awake_power_mw: 3.6,
        clock_hz: 16_000_000.0,
        cycles_per_flop: 50.0,
        ram_bytes: 16 * 1024,
        utilization: 0.8,
    };

    /// TI LM4F120 (Cortex-M4F): 49.4 mW awake, 80 MHz, hardware FPU,
    /// 32 KiB RAM.
    pub const LM4F120: Mcu = Mcu {
        name: "TI LM4F120",
        awake_power_mw: 49.4,
        clock_hz: 80_000_000.0,
        cycles_per_flop: 1.0,
        ram_bytes: 32 * 1024,
        utilization: 0.8,
    };

    /// A low-power flash FPGA (IGLOO-class) modelling the paper's §7
    /// future work: "developing an FPGA-based prototype". Pipelined
    /// dataflow in fabric makes a "flop" effectively fractional-cycle,
    /// at a fraction of the Cortex-M4F's power — at the cost of the
    /// reconfiguration workflow the paper's §2.1.1 discusses.
    ///
    /// Deliberately *not* in [`Mcu::CATALOG`]: the evaluation reproduces
    /// the paper's prototype, which only shipped the two TI parts. The
    /// sizing explorer reports this target as a what-if.
    pub const IGLOO_FPGA: Mcu = Mcu {
        name: "IGLOO-class FPGA",
        awake_power_mw: 12.0,
        clock_hz: 50_000_000.0,
        cycles_per_flop: 0.25,
        ram_bytes: 64 * 1024,
        utilization: 0.8,
    };

    /// The hub MCUs the prototype evaluated, cheapest first.
    pub const CATALOG: [Mcu; 2] = [Mcu::MSP430, Mcu::LM4F120];

    /// Cycles per second available to wake-up conditions.
    pub fn cycle_budget(&self) -> f64 {
        self.clock_hz * self.utilization
    }

    /// Whether this MCU can execute `cost` in real time and in memory.
    pub fn supports_cost(&self, cost: &PipelineCost) -> Result<(), CapacityError> {
        let demanded = cost.total_flops_per_second() * self.cycles_per_flop;
        if demanded > self.cycle_budget() {
            return Err(CapacityError::NotRealTime {
                mcu: self.name,
                demanded_cycles_per_s: demanded,
                budget_cycles_per_s: self.cycle_budget(),
            });
        }
        if cost.total_memory_bytes() > self.ram_bytes {
            return Err(CapacityError::OutOfMemory {
                mcu: self.name,
                demanded_bytes: cost.total_memory_bytes(),
                ram_bytes: self.ram_bytes,
            });
        }
        Ok(())
    }

    /// Whether this MCU can run `program` at the given channel rates.
    pub fn supports(&self, program: &Program, rates: &ChannelRates) -> Result<(), CapacityError> {
        self.supports_cost(&PipelineCost::analyze(program, rates))
    }

    /// Whether this MCU can *cache* raw sensor data for the Batching
    /// configuration: the batch buffer (per-channel byte rate × interval)
    /// must fit in RAM. The paper's Batching numbers assume the MSP430;
    /// this check shows that assumption only holds for low-rate sensors —
    /// a 10 s batch of 8 kHz audio (80 KB) fits no catalog part.
    pub fn can_cache(
        &self,
        channels: &[sidewinder_sensors::SensorChannel],
        interval: sidewinder_sensors::Micros,
    ) -> Result<(), CapacityError> {
        let bytes_per_s: f64 = channels.iter().map(|c| c.bytes_per_second()).sum();
        let demanded = (bytes_per_s * interval.as_secs_f64()).ceil() as usize;
        if demanded > self.ram_bytes {
            return Err(CapacityError::OutOfMemory {
                mcu: self.name,
                demanded_bytes: demanded,
                ram_bytes: self.ram_bytes,
            });
        }
        Ok(())
    }

    /// Picks the lowest-power MCU from the catalog able to run `program`.
    ///
    /// Reproduces the paper's sizing decision: accelerometer pipelines run
    /// on the MSP430; the FFT-heavy siren condition needs the LM4F120.
    ///
    /// # Errors
    ///
    /// Returns the last [`CapacityError`] if no catalog MCU suffices.
    pub fn cheapest_for(program: &Program, rates: &ChannelRates) -> Result<Mcu, CapacityError> {
        let mut last_err = None;
        for mcu in Mcu::CATALOG {
            match mcu.supports(program, rates) {
                Ok(()) => return Ok(mcu),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("catalog is non-empty"))
    }
}

impl std::fmt::Display for Mcu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name)
    }
}

/// Why a pipeline does not fit an MCU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CapacityError {
    /// The pipeline demands more cycles per second than the MCU has.
    NotRealTime {
        /// The MCU that was tried.
        mcu: &'static str,
        /// Cycles per second the pipeline needs.
        demanded_cycles_per_s: f64,
        /// Cycles per second available.
        budget_cycles_per_s: f64,
    },
    /// The pipeline's buffers exceed MCU RAM.
    OutOfMemory {
        /// The MCU that was tried.
        mcu: &'static str,
        /// Bytes the pipeline needs.
        demanded_bytes: usize,
        /// Bytes available.
        ram_bytes: usize,
    },
}

impl std::fmt::Display for CapacityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CapacityError::NotRealTime {
                mcu,
                demanded_cycles_per_s,
                budget_cycles_per_s,
            } => write!(
                f,
                "{mcu} cannot run the pipeline in real time \
                 ({demanded_cycles_per_s:.0} cycles/s needed, {budget_cycles_per_s:.0} available)"
            ),
            CapacityError::OutOfMemory {
                mcu,
                demanded_bytes,
                ram_bytes,
            } => write!(
                f,
                "{mcu} lacks memory for the pipeline ({demanded_bytes} B needed, {ram_bytes} B available)"
            ),
        }
    }
}

impl std::error::Error for CapacityError {}

#[cfg(test)]
mod tests {
    use super::*;
    use sidewinder_ir::Program;

    fn program(text: &str) -> Program {
        let p: Program = text.parse().unwrap();
        p.validate().unwrap();
        p
    }

    const ACCEL_PIPELINE: &str = "ACC_X -> movingAvg(id=1, params={10});
        1 -> minThreshold(id=2, params={15});
        2 -> OUT;";

    const SIREN_PIPELINE: &str = "MIC -> window(id=1, params={256, 256, 1});
        1 -> highPass(id=2, params={750});
        2 -> fft(id=3);
        3 -> spectralMagnitude(id=4);
        4 -> dominantRatio(id=5);
        5 -> minThreshold(id=6, params={4});
        6 -> sustained(id=7, params={3, 256});
        7 -> OUT;";

    #[test]
    fn msp430_runs_accelerometer_pipelines() {
        let p = program(ACCEL_PIPELINE);
        assert!(Mcu::MSP430.supports(&p, &ChannelRates::default()).is_ok());
    }

    #[test]
    fn msp430_cannot_run_fft_siren_in_real_time() {
        // Reproduces §4: "it was unable to run the FFT-based low-pass
        // filter in real-time".
        let p = program(SIREN_PIPELINE);
        let err = Mcu::MSP430
            .supports(&p, &ChannelRates::default())
            .unwrap_err();
        assert!(matches!(err, CapacityError::NotRealTime { .. }));
        assert!(err.to_string().contains("MSP430"));
    }

    #[test]
    fn lm4f120_runs_the_siren_pipeline() {
        let p = program(SIREN_PIPELINE);
        assert!(Mcu::LM4F120.supports(&p, &ChannelRates::default()).is_ok());
    }

    #[test]
    fn cheapest_for_matches_paper_assignments() {
        let rates = ChannelRates::default();
        assert_eq!(
            Mcu::cheapest_for(&program(ACCEL_PIPELINE), &rates).unwrap(),
            Mcu::MSP430
        );
        assert_eq!(
            Mcu::cheapest_for(&program(SIREN_PIPELINE), &rates).unwrap(),
            Mcu::LM4F120
        );
    }

    #[test]
    fn power_figures_match_table_1_sources() {
        assert_eq!(Mcu::MSP430.awake_power_mw, 3.6);
        assert_eq!(Mcu::LM4F120.awake_power_mw, 49.4);
    }

    #[test]
    fn cycle_budget_applies_utilization() {
        assert_eq!(Mcu::MSP430.cycle_budget(), 16_000_000.0 * 0.8);
    }

    #[test]
    fn display_prints_name() {
        assert_eq!(Mcu::LM4F120.to_string(), "TI LM4F120");
    }

    #[test]
    fn batching_cache_fits_accel_not_audio() {
        use sidewinder_sensors::{Micros, SensorChannel};
        // 10 s of 3-axis 50 Hz accelerometer data: 3 kB — fits.
        assert!(Mcu::MSP430
            .can_cache(&SensorChannel::ACCEL, Micros::from_secs(10))
            .is_ok());
        // 10 s of 8 kHz audio: 80 kB — fits no catalog MCU, so audio
        // batching implicitly assumes host-side memory.
        for mcu in Mcu::CATALOG {
            let err = mcu
                .can_cache(&[SensorChannel::Mic], Micros::from_secs(10))
                .unwrap_err();
            assert!(matches!(err, CapacityError::OutOfMemory { .. }));
        }
    }

    #[test]
    fn fpga_what_if_runs_the_siren_pipeline_cheaper() {
        // The §7 FPGA prototype would lift the siren condition off the
        // LM4F120 at a quarter of its power...
        let p = program(SIREN_PIPELINE);
        assert!(Mcu::IGLOO_FPGA
            .supports(&p, &ChannelRates::default())
            .is_ok());
        let (fpga_mw, m4_mw) = (Mcu::IGLOO_FPGA.awake_power_mw, Mcu::LM4F120.awake_power_mw);
        assert!(fpga_mw < m4_mw / 4.0, "{fpga_mw} vs {m4_mw}");
        // ...but is intentionally excluded from the evaluation catalog.
        assert!(!Mcu::CATALOG.iter().any(|m| m.name == Mcu::IGLOO_FPGA.name));
    }
}
