//! Executable algorithm instances.
//!
//! Following the paper's runtime design (§3.5–3.6), each IR node becomes an
//! instance owning its own data structure: the node id, its algorithm
//! state, and a result slot guarded by a `has result` flag. The
//! interpreter invokes [`AlgoInstance::feed`] with incoming values and then
//! polls [`AlgoInstance::take_result`] — the flag is needed because "some
//! algorithms may not always produce a result": a moving average is silent
//! until its window fills, and a threshold only produces a result when it
//! is met.

use crate::value::{Tagged, ValueRef};
use sidewinder_dsp::filter::{BandFilterPlan, BandShape, ExponentialMovingAverage, MovingAverage};
use sidewinder_dsp::window::{WindowShape, Windower};
use sidewinder_dsp::{fft, goertzel, spectral, stats, zcr, Complex, FftPlan, Sample};
use sidewinder_ir::{AlgorithmKind, NodeId, StatFn, WindowShapeParam};

/// An execution-time failure inside an algorithm instance.
///
/// These defects cannot be caught by static validation because they depend
/// on value *lengths* that only exist at run time (e.g. feeding a
/// 129-point magnitude vector into an FFT-based filter).
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A transform stage received a window whose length is not a power of
    /// two.
    BadTransformLength {
        /// The node that failed.
        id: NodeId,
        /// The offending window length.
        len: usize,
    },
    /// An instance received a value of the wrong type — indicates the
    /// program was not validated before loading.
    TypeError {
        /// The node that failed.
        id: NodeId,
    },
    /// An instance received input on a port it does not have.
    BadPort {
        /// The node that failed.
        id: NodeId,
        /// The offending port index.
        port: usize,
    },
    /// An algorithm parameter that static validation should have rejected
    /// reached instantiation — the shape a corrupted program re-download
    /// produces if it slips past the parser.
    BadParameter {
        /// The node that failed.
        id: NodeId,
        /// What is wrong with the parameter.
        what: &'static str,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::BadTransformLength { id, len } => {
                write!(f, "node {id}: window length {len} is not a power of two")
            }
            ExecError::TypeError { id } => {
                write!(f, "node {id}: received a value of the wrong type")
            }
            ExecError::BadPort { id, port } => {
                write!(f, "node {id}: no input port {port}")
            }
            ExecError::BadParameter { id, what } => {
                write!(f, "node {id}: invalid parameter: {what}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Per-kind mutable algorithm state.
///
/// Generic over the vector sample precision `P`: windows buffer and
/// reduce at `P`, while scalar state (thresholds, joins, averages of
/// scalar features) stays `f64` — see [`crate::value::Value`].
#[derive(Debug, Clone)]
enum AlgoState<P: Sample> {
    Window(Windower<P>),
    Fft {
        /// Cached transform plan, rebuilt only when the window length
        /// changes (in practice: built once on the first window).
        plan: Option<FftPlan>,
    },
    Ifft {
        plan: Option<FftPlan>,
    },
    SpectralMagnitude,
    MovingAvg(MovingAverage),
    ExpMovingAvg(ExponentialMovingAverage),
    LowPass {
        cutoff_hz: f64,
        rate_hz: f64,
        plan: Option<BandFilterPlan>,
    },
    HighPass {
        cutoff_hz: f64,
        rate_hz: f64,
        plan: Option<BandFilterPlan>,
    },
    /// AND-join across ports computing the Euclidean norm; emits when
    /// every port holds a value derived from the same source samples
    /// (equal sequence tags).
    VectorMagnitude {
        latest: Vec<Option<(u64, f64)>>,
    },
    Zcr,
    ZcrVariance {
        sub_windows: u32,
    },
    Stat(StatFn),
    DominantRatio,
    DominantFreq {
        rate_hz: f64,
    },
    /// Narrow-band spectral probe: max Goertzel magnitude over the DFT
    /// bins of the incoming window whose center frequency falls in
    /// `[lo_hz, hi_hz]`. The probe frequency list is cached per window
    /// length so steady-state feeds never allocate.
    Goertzel {
        lo_hz: f64,
        hi_hz: f64,
        rate_hz: f64,
        planned_len: usize,
        probes: Vec<f64>,
    },
    /// Like [`AlgoState::Goertzel`], but reporting the *frequency* of the
    /// strongest in-band probe — the strength-reduced `dominantFreq`
    /// consumer. The probe grid skips DC, as the replaced chain does.
    GoertzelFreq {
        lo_hz: f64,
        hi_hz: f64,
        rate_hz: f64,
        planned_len: usize,
        probes: Vec<f64>,
    },
    /// Like [`AlgoState::Goertzel`], but reporting the peak-to-mean
    /// magnitude ratio the replaced `dominantRatio` chain computes; the
    /// mean's denominator is the full non-DC bin count, since out-of-band
    /// bins of the filtered spectrum carry only rounding residue.
    GoertzelRatio {
        lo_hz: f64,
        hi_hz: f64,
        rate_hz: f64,
        planned_len: usize,
        probes: Vec<f64>,
    },
    MinThreshold {
        threshold: f64,
    },
    MaxThreshold {
        threshold: f64,
    },
    BandThreshold {
        lo: f64,
        hi: f64,
    },
    OutsideThreshold {
        lo: f64,
        hi: f64,
    },
    Sustained {
        count: u32,
        max_gap: u64,
        streak: u32,
        last_seq: Option<u64>,
    },
    AllOf {
        latest: Vec<Option<(u64, f64)>>,
    },
    AnyOf,
}

/// The kind of value currently held by a [`ResultSlot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum SlotKind {
    #[default]
    Empty,
    Scalar,
    Vector,
    Spectrum,
}

/// The paper's per-node result + `hasResult` flag, with owned storage that
/// is reused across emissions: clearing the slot resets only the kind tag,
/// so the vector/spectrum buffers keep their capacity and steady-state
/// emissions write in place without allocating.
#[derive(Debug, Clone, Default)]
struct ResultSlot<P: Sample> {
    kind: SlotKind,
    seq: u64,
    scalar: f64,
    vector: Vec<P>,
    spectrum: Vec<Complex>,
    /// Widening scratch presenting a `P` window to the f64-only FFT
    /// kernels; never touched when `P = f64` (the window is borrowed
    /// straight through).
    wide_in: Vec<f64>,
    /// Narrowing scratch collecting f64 filter output back into `P`;
    /// never touched when `P = f64`.
    wide_out: Vec<f64>,
}

impl<P: Sample> ResultSlot<P> {
    fn set_scalar(&mut self, seq: u64, x: f64) {
        self.kind = SlotKind::Scalar;
        self.seq = seq;
        self.scalar = x;
    }
}

/// One executable node: the paper's per-algorithm data structure.
///
/// Generic over the vector sample precision `P` (default `f64`); see
/// [`crate::value::Value`] for the precision model.
#[derive(Debug, Clone)]
pub struct AlgoInstance<P: Sample = f64> {
    id: NodeId,
    state: AlgoState<P>,
    out: ResultSlot<P>,
}

impl<P: Sample> AlgoInstance<P> {
    /// Instantiates an algorithm.
    ///
    /// `ports` is the number of input edges (only aggregators use more
    /// than one) and `rate_hz` the sample rate of the data arriving on the
    /// node's input path, needed by frequency-aware stages.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::BadParameter`] when an algorithm parameter is
    /// unusable (zero-size window, out-of-range smoothing factor).
    /// Validation rejects these statically, but a malformed program that
    /// bypasses validation must surface an error here, not panic the hub.
    pub fn new(
        id: NodeId,
        kind: &AlgorithmKind,
        ports: usize,
        rate_hz: f64,
    ) -> Result<Self, ExecError> {
        let state = match *kind {
            AlgorithmKind::Window { size, hop, shape } => AlgoState::Window(
                Windower::new(size as usize, hop as usize, convert_shape(shape)).map_err(|_| {
                    ExecError::BadParameter {
                        id,
                        what: "window size and hop must be positive",
                    }
                })?,
            ),
            AlgorithmKind::Fft => AlgoState::Fft { plan: None },
            AlgorithmKind::Ifft => AlgoState::Ifft { plan: None },
            AlgorithmKind::SpectralMagnitude => AlgoState::SpectralMagnitude,
            AlgorithmKind::MovingAvg { window } => {
                AlgoState::MovingAvg(MovingAverage::new(window as usize).map_err(|_| {
                    ExecError::BadParameter {
                        id,
                        what: "moving-average window must be positive",
                    }
                })?)
            }
            AlgorithmKind::ExpMovingAvg { alpha } => {
                AlgoState::ExpMovingAvg(ExponentialMovingAverage::new(alpha).map_err(|_| {
                    ExecError::BadParameter {
                        id,
                        what: "smoothing factor must be in (0, 1]",
                    }
                })?)
            }
            AlgorithmKind::LowPass { cutoff_hz } => AlgoState::LowPass {
                cutoff_hz,
                rate_hz,
                plan: None,
            },
            AlgorithmKind::HighPass { cutoff_hz } => AlgoState::HighPass {
                cutoff_hz,
                rate_hz,
                plan: None,
            },
            AlgorithmKind::VectorMagnitude => AlgoState::VectorMagnitude {
                latest: vec![None; ports],
            },
            AlgorithmKind::Zcr => AlgoState::Zcr,
            AlgorithmKind::ZcrVariance { sub_windows } => AlgoState::ZcrVariance { sub_windows },
            AlgorithmKind::Stat(s) => AlgoState::Stat(s),
            AlgorithmKind::DominantRatio => AlgoState::DominantRatio,
            AlgorithmKind::DominantFreq => AlgoState::DominantFreq { rate_hz },
            AlgorithmKind::Goertzel { lo_hz, hi_hz } => {
                if !(lo_hz.is_finite() && hi_hz.is_finite() && 0.0 <= lo_hz && lo_hz <= hi_hz) {
                    return Err(ExecError::BadParameter {
                        id,
                        what: "goertzel band must be finite with 0 <= lo <= hi",
                    });
                }
                AlgoState::Goertzel {
                    lo_hz,
                    hi_hz,
                    rate_hz,
                    // Sentinel: no window length planned yet.
                    planned_len: usize::MAX,
                    probes: Vec::new(),
                }
            }
            AlgorithmKind::GoertzelFreq { lo_hz, hi_hz } => {
                if !(lo_hz.is_finite() && hi_hz.is_finite() && 0.0 <= lo_hz && lo_hz <= hi_hz) {
                    return Err(ExecError::BadParameter {
                        id,
                        what: "goertzel band must be finite with 0 <= lo <= hi",
                    });
                }
                AlgoState::GoertzelFreq {
                    lo_hz,
                    hi_hz,
                    rate_hz,
                    planned_len: usize::MAX,
                    probes: Vec::new(),
                }
            }
            AlgorithmKind::GoertzelRatio { lo_hz, hi_hz } => {
                if !(lo_hz.is_finite() && hi_hz.is_finite() && 0.0 <= lo_hz && lo_hz <= hi_hz) {
                    return Err(ExecError::BadParameter {
                        id,
                        what: "goertzel band must be finite with 0 <= lo <= hi",
                    });
                }
                AlgoState::GoertzelRatio {
                    lo_hz,
                    hi_hz,
                    rate_hz,
                    planned_len: usize::MAX,
                    probes: Vec::new(),
                }
            }
            AlgorithmKind::MinThreshold { threshold } => AlgoState::MinThreshold { threshold },
            AlgorithmKind::MaxThreshold { threshold } => AlgoState::MaxThreshold { threshold },
            AlgorithmKind::BandThreshold { lo, hi } => AlgoState::BandThreshold { lo, hi },
            AlgorithmKind::OutsideThreshold { lo, hi } => AlgoState::OutsideThreshold { lo, hi },
            AlgorithmKind::Sustained { count, max_gap } => AlgoState::Sustained {
                count,
                max_gap: max_gap as u64,
                streak: 0,
                last_seq: None,
            },
            AlgorithmKind::AllOf => AlgoState::AllOf {
                latest: vec![None; ports],
            },
            AlgorithmKind::AnyOf => AlgoState::AnyOf,
        };
        Ok(AlgoInstance {
            id,
            state,
            out: ResultSlot::default(),
        })
    }

    /// The node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Whether a result is waiting to be collected — the paper's
    /// `hasResult` flag.
    pub fn has_result(&self) -> bool {
        self.out.kind != SlotKind::Empty
    }

    /// Clears the `hasResult` flag without touching the slot's storage,
    /// so the next emission reuses the buffers. The interpreter calls this
    /// on a node before feeding it, replacing the take-per-pass pattern.
    pub fn clear_result(&mut self) {
        self.out.kind = SlotKind::Empty;
    }

    /// Borrows the pending result without clearing the flag.
    ///
    /// This is the hot-path read: fan-out to several consumers borrows the
    /// same slot repeatedly instead of cloning the payload per edge.
    pub fn result_ref(&self) -> Option<(u64, ValueRef<'_, P>)> {
        let value = match self.out.kind {
            SlotKind::Empty => return None,
            SlotKind::Scalar => ValueRef::Scalar(self.out.scalar),
            SlotKind::Vector => ValueRef::Vector(&self.out.vector),
            SlotKind::Spectrum => ValueRef::Spectrum(&self.out.spectrum),
        };
        Some((self.out.seq, value))
    }

    /// Collects the pending result, clearing the flag.
    ///
    /// This clones the payload out of the reusable slot; hot paths use
    /// [`AlgoInstance::result_ref`] instead.
    pub fn take_result(&mut self) -> Option<Tagged<P>> {
        let (seq, value) = self.result_ref()?;
        let owned = Tagged {
            seq,
            value: value.to_owned(),
        };
        self.clear_result();
        Some(owned)
    }

    /// Feeds one input value on `port`.
    ///
    /// On success the result slot may or may not be populated; the
    /// interpreter must poll [`AlgoInstance::take_result`].
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on type confusion (unvalidated programs)
    /// or impossible transform lengths.
    pub fn feed(&mut self, port: usize, input: &Tagged<P>) -> Result<(), ExecError> {
        self.feed_ref(port, input.seq, input.value.as_ref())
    }

    /// Feeds one borrowed input value on `port` — the allocation-free form
    /// of [`AlgoInstance::feed`]. Emissions are written into the instance's
    /// reusable result slot; a pending result is only overwritten when a
    /// new one is produced.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on type confusion (unvalidated programs)
    /// or impossible transform lengths.
    pub fn feed_ref(
        &mut self,
        port: usize,
        seq: u64,
        input: ValueRef<'_, P>,
    ) -> Result<(), ExecError> {
        let AlgoInstance { id, state, out } = self;
        let id = *id;
        let type_err = ExecError::TypeError { id };
        match state {
            AlgoState::Window(w) => {
                let x = input.as_scalar().ok_or(type_err)?;
                // The precision boundary: samples narrow to `P` as they
                // enter the window ring buffer, exactly where the paper's
                // hub stores its f32 sample buffers.
                if w.push_into(P::from_f64(x), &mut out.vector) {
                    out.kind = SlotKind::Vector;
                    out.seq = seq;
                }
            }
            AlgoState::Fft { plan } => {
                let window = input.as_vector().ok_or(type_err)?;
                let plan = ensure_fft_plan(plan, window.len(), id)?;
                let wide = P::widen_into(window, &mut out.wide_in);
                plan.process_real_forward_into(wide, &mut out.spectrum);
                out.kind = SlotKind::Spectrum;
                out.seq = seq;
            }
            AlgoState::Ifft { plan } => {
                let spectrum = input.as_spectrum().ok_or(type_err)?;
                let plan = ensure_fft_plan(plan, spectrum.len(), id)?;
                // The spectrum buffer doubles as the inverse-transform
                // scratch; the result itself is the real part, a vector.
                out.spectrum.clear();
                out.spectrum.extend_from_slice(spectrum);
                plan.process_inverse(&mut out.spectrum);
                out.vector.clear();
                let ResultSlot {
                    vector, spectrum, ..
                } = &mut *out;
                P::extend_from_f64(vector, spectrum.iter().map(|z| z.re));
                out.kind = SlotKind::Vector;
                out.seq = seq;
            }
            AlgoState::SpectralMagnitude => {
                let spectrum = input.as_spectrum().ok_or(type_err)?;
                if !spectrum.is_empty() {
                    out.vector.clear();
                    P::extend_from_f64(
                        &mut out.vector,
                        spectrum[..=spectrum.len() / 2]
                            .iter()
                            .map(|z| z.magnitude()),
                    );
                    out.kind = SlotKind::Vector;
                    out.seq = seq;
                }
            }
            AlgoState::MovingAvg(ma) => {
                let x = input.as_scalar().ok_or(type_err)?;
                if let Some(y) = ma.push(x) {
                    out.set_scalar(seq, y);
                }
            }
            AlgoState::ExpMovingAvg(ema) => {
                let x = input.as_scalar().ok_or(type_err)?;
                let y = ema.push(x);
                out.set_scalar(seq, y);
            }
            AlgoState::LowPass {
                cutoff_hz,
                rate_hz,
                plan,
            } => {
                let window = input.as_vector().ok_or(type_err)?;
                let shape = BandShape::LowPass {
                    cutoff_hz: *cutoff_hz,
                };
                let plan = ensure_band_plan(plan, window.len(), shape, *rate_hz, id)?;
                let ResultSlot {
                    vector,
                    spectrum,
                    wide_in,
                    wide_out,
                    ..
                } = &mut *out;
                let wide = P::widen_into(window, wide_in);
                P::with_wide_out(vector, wide_out, |dst| {
                    plan.filter_into(wide, spectrum, dst);
                });
                out.kind = SlotKind::Vector;
                out.seq = seq;
            }
            AlgoState::HighPass {
                cutoff_hz,
                rate_hz,
                plan,
            } => {
                let window = input.as_vector().ok_or(type_err)?;
                let shape = BandShape::HighPass {
                    cutoff_hz: *cutoff_hz,
                };
                let plan = ensure_band_plan(plan, window.len(), shape, *rate_hz, id)?;
                let ResultSlot {
                    vector,
                    spectrum,
                    wide_in,
                    wide_out,
                    ..
                } = &mut *out;
                let wide = P::widen_into(window, wide_in);
                P::with_wide_out(vector, wide_out, |dst| {
                    plan.filter_into(wide, spectrum, dst);
                });
                out.kind = SlotKind::Vector;
                out.seq = seq;
            }
            AlgoState::VectorMagnitude { latest } => {
                let x = input.as_scalar().ok_or(type_err)?;
                let slot = latest
                    .get_mut(port)
                    .ok_or(ExecError::BadPort { id, port })?;
                *slot = Some((seq, x));
                // Emit only when every branch has produced a value from
                // the same source samples: a stale axis must never be
                // combined with a fresh one.
                if latest
                    .iter()
                    .all(|v| matches!(v, Some((s, _)) if *s == seq))
                {
                    // Σx² in port order — the same reduction (and float
                    // op order) as `stats::vector_magnitude`, without
                    // collecting the components.
                    let energy: f64 = latest
                        .iter()
                        .map(|v| {
                            let x = v.expect("checked Some").1;
                            x * x
                        })
                        .sum();
                    out.set_scalar(seq, energy.sqrt());
                }
            }
            AlgoState::Zcr => {
                let window = input.as_vector().ok_or(type_err)?;
                if let Some(r) = zcr::zero_crossing_rate(window) {
                    out.set_scalar(seq, r.to_f64());
                }
            }
            AlgoState::ZcrVariance { sub_windows } => {
                let window = input.as_vector().ok_or(type_err)?;
                if let Some(v) = zcr::zcr_variance(window, *sub_windows as usize) {
                    out.set_scalar(seq, v.to_f64());
                }
            }
            AlgoState::Stat(s) => {
                let window = input.as_vector().ok_or(type_err)?;
                if let Some(summary) = stats::Summary::of(window) {
                    let y = match s {
                        StatFn::Mean => summary.mean,
                        StatFn::Variance => summary.variance,
                        StatFn::StdDev => summary.std_dev(),
                        StatFn::MeanAbs => {
                            stats::mean_abs(window).ok_or(ExecError::TypeError { id })?
                        }
                        StatFn::Rms => summary.rms,
                        StatFn::Energy => stats::energy(window),
                        StatFn::Min => summary.min,
                        StatFn::Max => summary.max,
                        StatFn::PeakToPeak => summary.peak_to_peak(),
                    };
                    // Features leave the vector domain here, so widen the
                    // reduction back to the f64 scalar plane.
                    out.set_scalar(seq, y.to_f64());
                }
            }
            AlgoState::DominantRatio => {
                let mags = input.as_vector().ok_or(type_err)?;
                // Skip DC: pitched-sound detection must not be fooled by
                // offset.
                if mags.len() > 1 {
                    if let Some(r) = spectral::dominant_to_mean_ratio(&mags[1..]) {
                        out.set_scalar(seq, r.to_f64());
                    }
                }
            }
            AlgoState::DominantFreq { rate_hz } => {
                let mags = input.as_vector().ok_or(type_err)?;
                if mags.len() > 1 {
                    if let Some(peak) = spectral::dominant_bin(&mags[1..]) {
                        // One-sided magnitudes of an N-point transform have
                        // N/2+1 entries.
                        let n = (mags.len() - 1) * 2;
                        let freq = fft::bin_to_frequency(peak.bin + 1, n, *rate_hz);
                        out.set_scalar(seq, freq);
                    }
                }
            }
            AlgoState::Goertzel {
                lo_hz,
                hi_hz,
                rate_hz,
                planned_len,
                probes,
            } => {
                let window = input.as_vector().ok_or(type_err)?;
                replan_probes(
                    probes,
                    planned_len,
                    window.len(),
                    *rate_hz,
                    *lo_hz,
                    *hi_hz,
                    false,
                );
                // Zero in-band bins behaves like an empty band filter's
                // downstream: nothing to measure, so no emission. The
                // grouped kernel runs the probes in interleaved lanes but
                // keeps per-probe math and the first-max reduction
                // identical to probing one frequency at a time.
                if let Some(m) = goertzel::strongest_magnitude(window, probes, *rate_hz) {
                    out.set_scalar(seq, m);
                }
            }
            AlgoState::GoertzelFreq {
                lo_hz,
                hi_hz,
                rate_hz,
                planned_len,
                probes,
            } => {
                let window = input.as_vector().ok_or(type_err)?;
                replan_probes(
                    probes,
                    planned_len,
                    window.len(),
                    *rate_hz,
                    *lo_hz,
                    *hi_hz,
                    true,
                );
                // Ties keep the last maximal probe — `dominantFreq`'s
                // `max_by` semantics over the spectrum it replaces.
                if let Some((f, _)) = goertzel::strongest_of(window, probes, *rate_hz) {
                    out.set_scalar(seq, f);
                }
            }
            AlgoState::GoertzelRatio {
                lo_hz,
                hi_hz,
                rate_hz,
                planned_len,
                probes,
            } => {
                let window = input.as_vector().ok_or(type_err)?;
                replan_probes(
                    probes,
                    planned_len,
                    window.len(),
                    *rate_hz,
                    *lo_hz,
                    *hi_hz,
                    true,
                );
                if let Some((peak, sum)) = goertzel::magnitude_max_and_sum(window, probes, *rate_hz)
                {
                    // The replaced chain divides the peak by the mean over
                    // all n/2 non-DC bins; the out-of-band bins it averages
                    // in are rounding residue of the filters, so the
                    // in-band sum stands in for the total. A zero sum
                    // mirrors `dominantRatio`'s no-emission guard.
                    let bins = (window.len() / 2) as f64;
                    if sum > 0.0 && bins > 0.0 {
                        out.set_scalar(seq, peak * bins / sum);
                    }
                }
            }
            AlgoState::MinThreshold { threshold } => {
                let x = input.as_scalar().ok_or(type_err)?;
                if x >= *threshold {
                    out.set_scalar(seq, x);
                }
            }
            AlgoState::MaxThreshold { threshold } => {
                let x = input.as_scalar().ok_or(type_err)?;
                if x <= *threshold {
                    out.set_scalar(seq, x);
                }
            }
            AlgoState::BandThreshold { lo, hi } => {
                let x = input.as_scalar().ok_or(type_err)?;
                if x >= *lo && x <= *hi {
                    out.set_scalar(seq, x);
                }
            }
            AlgoState::OutsideThreshold { lo, hi } => {
                let x = input.as_scalar().ok_or(type_err)?;
                if x < *lo || x > *hi {
                    out.set_scalar(seq, x);
                }
            }
            AlgoState::Sustained {
                count,
                max_gap,
                streak,
                last_seq,
            } => {
                let x = input.as_scalar().ok_or(type_err)?;
                let consecutive = match last_seq {
                    Some(prev) => seq.saturating_sub(*prev) <= *max_gap,
                    None => false,
                };
                *streak = if consecutive { *streak + 1 } else { 1 };
                *last_seq = Some(seq);
                if *streak >= *count {
                    out.set_scalar(seq, x);
                }
            }
            AlgoState::AllOf { latest } => {
                let x = input.as_scalar().ok_or(type_err)?;
                let slot = latest
                    .get_mut(port)
                    .ok_or(ExecError::BadPort { id, port })?;
                *slot = Some((seq, x));
                // AND-join over the same window: all branches must have
                // passed their admission control for this seq.
                if latest
                    .iter()
                    .all(|v| matches!(v, Some((s, _)) if *s == seq))
                {
                    out.set_scalar(seq, x);
                }
            }
            AlgoState::AnyOf => {
                let x = input.as_scalar().ok_or(type_err)?;
                out.set_scalar(seq, x);
            }
        }
        Ok(())
    }

    /// Resets all mutable state (buffered windows, averages, streaks) while
    /// keeping the configuration; used when an application re-arms a
    /// condition.
    pub fn reset(&mut self) {
        self.clear_result();
        match &mut self.state {
            AlgoState::Window(w) => w.reset(),
            AlgoState::MovingAvg(ma) => ma.reset(),
            AlgoState::ExpMovingAvg(ema) => ema.reset(),
            AlgoState::VectorMagnitude { latest } | AlgoState::AllOf { latest } => {
                latest.iter_mut().for_each(|v| *v = None);
            }
            AlgoState::Sustained {
                streak, last_seq, ..
            } => {
                *streak = 0;
                *last_seq = None;
            }
            _ => {}
        }
    }
}

/// Returns the cached transform plan, (re)building it when the incoming
/// window length differs from the planned length.
fn ensure_fft_plan(
    slot: &mut Option<FftPlan>,
    len: usize,
    id: NodeId,
) -> Result<&FftPlan, ExecError> {
    if slot.as_ref().map(FftPlan::len) != Some(len) {
        *slot =
            Some(FftPlan::new(len).map_err(|e| ExecError::BadTransformLength { id, len: e.len })?);
    }
    Ok(slot.as_ref().expect("just ensured"))
}

/// Returns the cached band-filter plan, (re)building it when the incoming
/// window length differs from the planned length.
fn ensure_band_plan(
    slot: &mut Option<BandFilterPlan>,
    len: usize,
    shape: BandShape,
    rate_hz: f64,
    id: NodeId,
) -> Result<&BandFilterPlan, ExecError> {
    if slot.as_ref().map(BandFilterPlan::len) != Some(len) {
        *slot = Some(
            BandFilterPlan::new(len, shape, rate_hz)
                .map_err(|e| ExecError::BadTransformLength { id, len: e.len })?,
        );
    }
    Ok(slot.as_ref().expect("just ensured"))
}

/// Rebuilds a goertzel-family node's cached probe grid when the observed
/// window length changes: one probe per DFT bin of an `n`-point window
/// whose center frequency lies in `[lo_hz, hi_hz]` (inclusive edges,
/// mirroring the fft-filter keep masks these nodes replace). `skip_dc`
/// drops bin 0 — the dominant-feature chains search `mags[1..]`, so
/// their strength-reduced forms never probe DC.
fn replan_probes(
    probes: &mut Vec<f64>,
    planned_len: &mut usize,
    n: usize,
    rate_hz: f64,
    lo_hz: f64,
    hi_hz: f64,
    skip_dc: bool,
) {
    if *planned_len == n {
        return;
    }
    *planned_len = n;
    probes.clear();
    if rate_hz > 0.0 && n > 0 {
        for k in usize::from(skip_dc)..=n / 2 {
            let f = fft::bin_to_frequency(k, n, rate_hz);
            if lo_hz <= f && f <= hi_hz {
                probes.push(f);
            }
        }
    }
}

fn convert_shape(shape: WindowShapeParam) -> WindowShape {
    match shape {
        WindowShapeParam::Rectangular => WindowShape::Rectangular,
        WindowShapeParam::Hamming => WindowShape::Hamming,
        WindowShapeParam::Hann => WindowShape::Hann,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar(seq: u64, x: f64) -> Tagged {
        Tagged::new(seq, x)
    }

    fn feed_scalar(inst: &mut AlgoInstance, seq: u64, x: f64) -> Option<f64> {
        inst.feed(0, &scalar(seq, x)).unwrap();
        inst.take_result().and_then(|t| t.value.as_scalar())
    }

    #[test]
    fn moving_avg_warms_up_like_the_paper_says() {
        // §3.5: "A moving average with a window size of N will not produce
        // a result until it has received N data points."
        let mut inst =
            AlgoInstance::new(NodeId(1), &AlgorithmKind::MovingAvg { window: 3 }, 1, 50.0).unwrap();
        assert!(!inst.has_result());
        assert_eq!(feed_scalar(&mut inst, 0, 3.0), None);
        assert_eq!(feed_scalar(&mut inst, 1, 6.0), None);
        assert_eq!(feed_scalar(&mut inst, 2, 9.0), Some(6.0));
    }

    #[test]
    fn threshold_only_produces_when_met() {
        let mut inst = AlgoInstance::new(
            NodeId(1),
            &AlgorithmKind::MinThreshold { threshold: 5.0 },
            1,
            50.0,
        )
        .unwrap();
        assert_eq!(feed_scalar(&mut inst, 0, 4.9), None);
        assert_eq!(feed_scalar(&mut inst, 1, 5.0), Some(5.0));
        assert_eq!(feed_scalar(&mut inst, 2, 7.5), Some(7.5));
    }

    #[test]
    fn max_band_and_outside_thresholds() {
        let mut max = AlgoInstance::new(
            NodeId(1),
            &AlgorithmKind::MaxThreshold { threshold: -3.75 },
            1,
            50.0,
        )
        .unwrap();
        assert_eq!(feed_scalar(&mut max, 0, -1.0), None);
        assert_eq!(feed_scalar(&mut max, 1, -5.0), Some(-5.0));

        let mut band = AlgoInstance::new(
            NodeId(2),
            &AlgorithmKind::BandThreshold { lo: 2.5, hi: 4.5 },
            1,
            50.0,
        )
        .unwrap();
        assert_eq!(feed_scalar(&mut band, 0, 2.0), None);
        assert_eq!(feed_scalar(&mut band, 1, 3.0), Some(3.0));
        assert_eq!(feed_scalar(&mut band, 2, 5.0), None);

        let mut outside = AlgoInstance::new(
            NodeId(3),
            &AlgorithmKind::OutsideThreshold { lo: -1.0, hi: 1.0 },
            1,
            50.0,
        )
        .unwrap();
        assert_eq!(feed_scalar(&mut outside, 0, 0.0), None);
        assert_eq!(feed_scalar(&mut outside, 1, 2.0), Some(2.0));
        assert_eq!(feed_scalar(&mut outside, 2, -2.0), Some(-2.0));
    }

    #[test]
    fn vector_magnitude_waits_for_all_ports() {
        let mut vm =
            AlgoInstance::new(NodeId(4), &AlgorithmKind::VectorMagnitude, 3, 50.0).unwrap();
        vm.feed(0, &scalar(0, 3.0)).unwrap();
        assert!(!vm.has_result());
        vm.feed(1, &scalar(0, 4.0)).unwrap();
        assert!(!vm.has_result());
        vm.feed(2, &scalar(0, 0.0)).unwrap();
        let r = vm.take_result().unwrap();
        assert_eq!(r.value.as_scalar(), Some(5.0));
        // After emitting, all ports must update again before the next one.
        vm.feed(0, &scalar(1, 1.0)).unwrap();
        assert!(!vm.has_result());
    }

    #[test]
    fn window_emits_every_hop() {
        let mut w = AlgoInstance::new(
            NodeId(1),
            &AlgorithmKind::Window {
                size: 4,
                hop: 4,
                shape: WindowShapeParam::Rectangular,
            },
            1,
            8000.0,
        )
        .unwrap();
        let mut windows = 0;
        for i in 0..12 {
            w.feed(0, &scalar(i, i as f64)).unwrap();
            if let Some(t) = w.take_result() {
                windows += 1;
                assert_eq!(t.value.as_vector().unwrap().len(), 4);
                assert_eq!(t.seq, i);
            }
        }
        assert_eq!(windows, 3);
    }

    #[test]
    fn fft_pipeline_extracts_dominant_frequency() {
        let rate = 8000.0;
        let n = 256;
        let freq = 1000.0;
        let mut window = AlgoInstance::new(
            NodeId(1),
            &AlgorithmKind::Window {
                size: n,
                hop: n,
                shape: WindowShapeParam::Rectangular,
            },
            1,
            rate,
        )
        .unwrap();
        let mut fft_node = AlgoInstance::new(NodeId(2), &AlgorithmKind::Fft, 1, rate).unwrap();
        let mut mag =
            AlgoInstance::new(NodeId(3), &AlgorithmKind::SpectralMagnitude, 1, rate).unwrap();
        let mut dom = AlgoInstance::new(NodeId(4), &AlgorithmKind::DominantFreq, 1, rate).unwrap();

        let mut freq_out = None;
        for i in 0..n as u64 {
            let x = (2.0 * std::f64::consts::PI * freq * i as f64 / rate).sin();
            window.feed(0, &scalar(i, x)).unwrap();
            if let Some(w) = window.take_result() {
                fft_node.feed(0, &w).unwrap();
                let s = fft_node.take_result().unwrap();
                mag.feed(0, &s).unwrap();
                let m = mag.take_result().unwrap();
                assert_eq!(m.value.as_vector().unwrap().len(), 129);
                dom.feed(0, &m).unwrap();
                freq_out = dom.take_result().and_then(|t| t.value.as_scalar());
            }
        }
        let f = freq_out.expect("a full window must yield a dominant frequency");
        assert!((f - freq).abs() < rate / n as f64, "freq = {f}");
    }

    #[test]
    fn dominant_ratio_flags_pitched_windows() {
        let rate = 8000.0;
        let mut ratio =
            AlgoInstance::new(NodeId(1), &AlgorithmKind::DominantRatio, 1, rate).unwrap();
        // Peaked magnitude spectrum (as if from a siren).
        let mut mags = vec![0.1; 129];
        mags[40] = 30.0;
        ratio.feed(0, &Tagged::new(0, mags)).unwrap();
        let pitched = ratio.take_result().unwrap().value.as_scalar().unwrap();
        assert!(pitched > 20.0);
        // Flat spectrum (noise).
        ratio.feed(0, &Tagged::new(1, vec![1.0; 129])).unwrap();
        let noisy = ratio.take_result().unwrap().value.as_scalar().unwrap();
        assert!((noisy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sustained_requires_consecutive_arrivals() {
        // Windows arrive every 256 samples; require 3 consecutive.
        let mut s = AlgoInstance::new(
            NodeId(1),
            &AlgorithmKind::Sustained {
                count: 3,
                max_gap: 256,
            },
            1,
            8000.0,
        )
        .unwrap();
        assert_eq!(feed_scalar(&mut s, 256, 1.0), None);
        assert_eq!(feed_scalar(&mut s, 512, 1.0), None);
        assert_eq!(feed_scalar(&mut s, 768, 1.0), Some(1.0));
        // A gap resets the streak.
        assert_eq!(feed_scalar(&mut s, 2048, 1.0), None);
        assert_eq!(feed_scalar(&mut s, 2304, 1.0), None);
        assert_eq!(feed_scalar(&mut s, 2560, 1.0), Some(1.0));
    }

    #[test]
    fn all_of_and_any_of_join_semantics() {
        let mut all = AlgoInstance::new(NodeId(1), &AlgorithmKind::AllOf, 2, 50.0).unwrap();
        all.feed(0, &scalar(0, 1.0)).unwrap();
        assert!(!all.has_result());
        all.feed(1, &scalar(0, 2.0)).unwrap();
        assert_eq!(all.take_result().unwrap().value.as_scalar(), Some(2.0));

        let mut any = AlgoInstance::new(NodeId(2), &AlgorithmKind::AnyOf, 2, 50.0).unwrap();
        any.feed(1, &scalar(0, 7.0)).unwrap();
        assert_eq!(any.take_result().unwrap().value.as_scalar(), Some(7.0));
    }

    #[test]
    fn stats_reduce_windows() {
        let window = Tagged::new(0, vec![1.0, 2.0, 3.0, 4.0]);
        let cases = [
            (StatFn::Mean, 2.5),
            (StatFn::Variance, 1.25),
            (StatFn::Min, 1.0),
            (StatFn::Max, 4.0),
            (StatFn::PeakToPeak, 3.0),
            (StatFn::Energy, 30.0),
        ];
        for (s, expected) in cases {
            let mut inst = AlgoInstance::new(NodeId(1), &AlgorithmKind::Stat(s), 1, 50.0).unwrap();
            inst.feed(0, &window).unwrap();
            let got = inst.take_result().unwrap().value.as_scalar().unwrap();
            assert!((got - expected).abs() < 1e-9, "{s:?}: {got} != {expected}");
        }
    }

    #[test]
    fn zcr_variance_distinguishes_modulated_windows() {
        let mut inst = AlgoInstance::new(
            NodeId(1),
            &AlgorithmKind::ZcrVariance { sub_windows: 4 },
            1,
            8000.0,
        )
        .unwrap();
        // Half alternating, half constant → non-zero variance.
        let mut samples: Vec<f64> = (0..32)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        samples.extend(std::iter::repeat_n(1.0, 32));
        inst.feed(0, &Tagged::new(0, samples)).unwrap();
        let v = inst.take_result().unwrap().value.as_scalar().unwrap();
        assert!(v > 0.0);
    }

    #[test]
    fn type_errors_are_reported() {
        let mut fft_node = AlgoInstance::new(NodeId(9), &AlgorithmKind::Fft, 1, 8000.0).unwrap();
        let err = fft_node.feed(0, &scalar(0, 1.0)).unwrap_err();
        assert_eq!(err, ExecError::TypeError { id: NodeId(9) });
        assert!(err.to_string().contains("node 9"));
    }

    #[test]
    fn bad_transform_length_is_reported() {
        let mut fft_node = AlgoInstance::new(NodeId(3), &AlgorithmKind::Fft, 1, 8000.0).unwrap();
        let err = fft_node
            .feed(0, &Tagged::new(0, vec![0.0; 100]))
            .unwrap_err();
        assert_eq!(
            err,
            ExecError::BadTransformLength {
                id: NodeId(3),
                len: 100
            }
        );
    }

    #[test]
    fn bad_port_is_reported() {
        let mut vm =
            AlgoInstance::new(NodeId(5), &AlgorithmKind::VectorMagnitude, 2, 50.0).unwrap();
        let err = vm.feed(5, &scalar(0, 1.0)).unwrap_err();
        assert_eq!(
            err,
            ExecError::BadPort {
                id: NodeId(5),
                port: 5
            }
        );
    }

    #[test]
    fn ifft_round_trips_through_fft() {
        let n = 64;
        let mut fft_node = AlgoInstance::new(NodeId(1), &AlgorithmKind::Fft, 1, 8000.0).unwrap();
        let mut ifft_node = AlgoInstance::new(NodeId(2), &AlgorithmKind::Ifft, 1, 8000.0).unwrap();
        let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        fft_node.feed(0, &Tagged::new(0, signal.clone())).unwrap();
        let spectrum = fft_node.take_result().unwrap();
        ifft_node.feed(0, &spectrum).unwrap();
        let back = ifft_node.take_result().unwrap();
        for (a, b) in back.value.as_vector().unwrap().iter().zip(&signal) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut ma =
            AlgoInstance::new(NodeId(1), &AlgorithmKind::MovingAvg { window: 2 }, 1, 50.0).unwrap();
        feed_scalar(&mut ma, 0, 100.0);
        ma.reset();
        assert_eq!(feed_scalar(&mut ma, 1, 1.0), None);
        assert_eq!(feed_scalar(&mut ma, 2, 3.0), Some(2.0));

        let mut s = AlgoInstance::new(
            NodeId(2),
            &AlgorithmKind::Sustained {
                count: 2,
                max_gap: 1,
            },
            1,
            50.0,
        )
        .unwrap();
        feed_scalar(&mut s, 0, 1.0);
        s.reset();
        assert_eq!(feed_scalar(&mut s, 1, 1.0), None);
    }

    #[test]
    fn bad_parameters_error_instead_of_panicking() {
        // These kinds are rejected by validation, but a malformed program
        // that bypasses it (the shape a corrupted re-download produces)
        // must surface a typed error, not panic the hub.
        let zero_window = AlgorithmKind::Window {
            size: 0,
            hop: 0,
            shape: WindowShapeParam::Rectangular,
        };
        assert_eq!(
            AlgoInstance::<f64>::new(NodeId(1), &zero_window, 1, 50.0).unwrap_err(),
            ExecError::BadParameter {
                id: NodeId(1),
                what: "window size and hop must be positive",
            }
        );
        let zero_avg = AlgorithmKind::MovingAvg { window: 0 };
        assert_eq!(
            AlgoInstance::<f64>::new(NodeId(2), &zero_avg, 1, 50.0).unwrap_err(),
            ExecError::BadParameter {
                id: NodeId(2),
                what: "moving-average window must be positive",
            }
        );
        let bad_alpha = AlgorithmKind::ExpMovingAvg { alpha: f64::NAN };
        let err = AlgoInstance::<f64>::new(NodeId(3), &bad_alpha, 1, 50.0).unwrap_err();
        assert!(err.to_string().contains("node 3"), "{err}");
    }

    #[test]
    fn mean_abs_on_empty_window_does_not_panic() {
        let mut inst =
            AlgoInstance::new(NodeId(1), &AlgorithmKind::Stat(StatFn::MeanAbs), 1, 50.0).unwrap();
        // An empty window yields no summary, hence no result — and must
        // never reach the unchecked reduction that used to unwrap.
        inst.feed(0, &Tagged::new(0, Vec::<f64>::new())).unwrap();
        assert!(!inst.has_result());
        inst.feed(0, &Tagged::new(1, vec![-2.0, 2.0])).unwrap();
        assert_eq!(inst.take_result().unwrap().value.as_scalar(), Some(2.0));
    }

    #[test]
    fn goertzel_matches_fft_band_peak_on_bin_tones() {
        let rate = 8000.0;
        let n = 1024usize;
        // A tone exactly on bin 128 (1000 Hz at 8 kHz / 1024).
        let tone: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * 1000.0 * i as f64 / rate).sin())
            .collect();

        let mut g = AlgoInstance::new(
            NodeId(1),
            &AlgorithmKind::Goertzel {
                lo_hz: 980.0,
                hi_hz: 1020.0,
            },
            1,
            rate,
        )
        .unwrap();
        g.feed(0, &Tagged::new(0, tone.clone())).unwrap();
        let probe = g.take_result().unwrap().value.as_scalar().unwrap();

        // Reference: fft → spectralMagnitude, max over bins in band.
        let mut fft_node = AlgoInstance::new(NodeId(2), &AlgorithmKind::Fft, 1, rate).unwrap();
        let mut mag =
            AlgoInstance::new(NodeId(3), &AlgorithmKind::SpectralMagnitude, 1, rate).unwrap();
        fft_node.feed(0, &Tagged::new(0, tone)).unwrap();
        mag.feed(0, &fft_node.take_result().unwrap()).unwrap();
        let mags = mag.take_result().unwrap();
        let mags = mags.value.as_vector().unwrap();
        let peak = mags
            .iter()
            .enumerate()
            .filter(|(k, _)| {
                let f = *k as f64 * rate / n as f64;
                (980.0..=1020.0).contains(&f)
            })
            .map(|(_, &m)| m)
            .fold(0.0f64, f64::max);

        assert!(
            (probe - peak).abs() / peak < 1e-9,
            "goertzel {probe} vs fft peak {peak}"
        );
    }

    #[test]
    fn goertzel_freq_and_ratio_match_the_dominant_chain_on_bin_tones() {
        let rate = 8000.0;
        let n = 1024usize;
        // Two in-band tones: the stronger one at bin 128 (1000 Hz) must
        // win the argmax; a weaker one at bin 130 pads the in-band sum.
        let tone: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / rate;
                (2.0 * std::f64::consts::PI * 1000.0 * t).sin()
                    + 0.3 * (2.0 * std::f64::consts::PI * 1015.625 * t).sin()
            })
            .collect();
        let band = (980.0, 1020.0);

        let mut gf = AlgoInstance::new(
            NodeId(1),
            &AlgorithmKind::GoertzelFreq {
                lo_hz: band.0,
                hi_hz: band.1,
            },
            1,
            rate,
        )
        .unwrap();
        gf.feed(0, &Tagged::new(0, tone.clone())).unwrap();
        let freq = gf.take_result().unwrap().value.as_scalar().unwrap();
        assert!(
            (freq - 1000.0).abs() < 1e-9,
            "strongest in-band probe should sit on the 1000 Hz bin, got {freq}"
        );

        let mut gr = AlgoInstance::new(
            NodeId(2),
            &AlgorithmKind::GoertzelRatio {
                lo_hz: band.0,
                hi_hz: band.1,
            },
            1,
            rate,
        )
        .unwrap();
        gr.feed(0, &Tagged::new(0, tone.clone())).unwrap();
        let ratio = gr.take_result().unwrap().value.as_scalar().unwrap();

        // Reference: the chain this node strength-reduces, with an ideal
        // band filter (out-of-band bins zeroed exactly).
        let mut fft_node = AlgoInstance::new(NodeId(3), &AlgorithmKind::Fft, 1, rate).unwrap();
        let mut mag =
            AlgoInstance::new(NodeId(4), &AlgorithmKind::SpectralMagnitude, 1, rate).unwrap();
        fft_node.feed(0, &Tagged::new(0, tone)).unwrap();
        mag.feed(0, &fft_node.take_result().unwrap()).unwrap();
        let mags = mag.take_result().unwrap();
        let mags = mags.value.as_vector().unwrap();
        let in_band: Vec<f64> = mags
            .iter()
            .enumerate()
            .filter(|(k, _)| {
                let f = *k as f64 * rate / n as f64;
                *k > 0 && (band.0..=band.1).contains(&f)
            })
            .map(|(_, &m)| m)
            .collect();
        let peak = in_band.iter().copied().fold(0.0f64, f64::max);
        let mean = in_band.iter().sum::<f64>() / (n / 2) as f64;
        let expected = peak / mean;
        assert!(
            (ratio - expected).abs() / expected < 1e-6,
            "goertzelRatio {ratio} vs chain ratio {expected}"
        );
    }

    #[test]
    fn goertzel_freq_and_ratio_skip_dc_and_empty_bands() {
        // A DC-only "signal": the band covers only bin 0, which the
        // dominant-feature probes skip, so neither node may emit.
        for kind in [
            AlgorithmKind::GoertzelFreq {
                lo_hz: 0.0,
                hi_hz: 100.0,
            },
            AlgorithmKind::GoertzelRatio {
                lo_hz: 0.0,
                hi_hz: 100.0,
            },
        ] {
            let mut g = AlgoInstance::new(NodeId(1), &kind, 1, 8000.0).unwrap();
            g.feed(0, &Tagged::new(0, vec![1.0; 64])).unwrap();
            assert!(!g.has_result(), "{kind:?} probed the DC bin");
        }
    }

    #[test]
    fn goertzel_with_empty_band_never_emits() {
        // 100–101 Hz at 8 kHz / 64-point windows: bins are 125 Hz apart,
        // so no bin center lands in the band.
        let mut g = AlgoInstance::new(
            NodeId(1),
            &AlgorithmKind::Goertzel {
                lo_hz: 100.0,
                hi_hz: 101.0,
            },
            1,
            8000.0,
        )
        .unwrap();
        g.feed(0, &Tagged::new(0, vec![1.0; 64])).unwrap();
        assert!(!g.has_result());
    }

    #[test]
    fn goertzel_rejects_bad_band() {
        let bad = AlgorithmKind::Goertzel {
            lo_hz: 500.0,
            hi_hz: 100.0,
        };
        let err = AlgoInstance::<f64>::new(NodeId(7), &bad, 1, 8000.0).unwrap_err();
        assert!(err.to_string().contains("node 7"), "{err}");
    }

    #[test]
    fn f32_instances_run_the_vector_pipeline_at_single_precision() {
        let rate = 8000.0;
        let n = 256;
        let freq = 1000.0;
        let mut window = AlgoInstance::<f32>::new(
            NodeId(1),
            &AlgorithmKind::Window {
                size: n,
                hop: n,
                shape: WindowShapeParam::Rectangular,
            },
            1,
            rate,
        )
        .unwrap();
        let mut fft_node =
            AlgoInstance::<f32>::new(NodeId(2), &AlgorithmKind::Fft, 1, rate).unwrap();
        let mut mag =
            AlgoInstance::<f32>::new(NodeId(3), &AlgorithmKind::SpectralMagnitude, 1, rate)
                .unwrap();
        let mut dom =
            AlgoInstance::<f32>::new(NodeId(4), &AlgorithmKind::DominantFreq, 1, rate).unwrap();

        let mut freq_out = None;
        for i in 0..n as u64 {
            let x = (2.0 * std::f64::consts::PI * freq * i as f64 / rate).sin();
            // Scalars are fed as f64 and narrow inside the window node.
            window.feed(0, &Tagged::new(i, x)).unwrap();
            if let Some(w) = window.take_result() {
                assert!(matches!(w.value, crate::value::Value::Vector(ref v)
                    if v.len() == n as usize));
                fft_node.feed(0, &w).unwrap();
                let s = fft_node.take_result().unwrap();
                mag.feed(0, &s).unwrap();
                let m = mag.take_result().unwrap();
                dom.feed(0, &m).unwrap();
                freq_out = dom.take_result().and_then(|t| t.value.as_scalar());
            }
        }
        let f = freq_out.expect("a full f32 window must yield a dominant frequency");
        assert!((f - freq).abs() < rate / f64::from(n), "freq = {f}");
    }

    #[test]
    fn f32_stats_track_f64_within_single_precision() {
        let window: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
        let tagged64 = Tagged::<f64>::new(0, window.clone());
        let tagged32 =
            Tagged::<f32>::new(0, window.iter().map(|&x| x as f32).collect::<Vec<f32>>());
        for s in [StatFn::Mean, StatFn::Rms, StatFn::Energy, StatFn::Max] {
            let mut i64_ =
                AlgoInstance::<f64>::new(NodeId(1), &AlgorithmKind::Stat(s), 1, 50.0).unwrap();
            let mut i32_ =
                AlgoInstance::<f32>::new(NodeId(1), &AlgorithmKind::Stat(s), 1, 50.0).unwrap();
            i64_.feed(0, &tagged64).unwrap();
            i32_.feed(0, &tagged32).unwrap();
            let a = i64_.take_result().unwrap().value.as_scalar().unwrap();
            let b = i32_.take_result().unwrap().value.as_scalar().unwrap();
            let scale = a.abs().max(1.0);
            assert!((a - b).abs() / scale < 1e-4, "{s:?}: f64 {a} vs f32 {b}");
        }
    }

    #[test]
    fn lowpass_instance_filters_window() {
        let rate = 8000.0;
        let n = 256;
        let mut lp = AlgoInstance::new(
            NodeId(1),
            &AlgorithmKind::LowPass { cutoff_hz: 500.0 },
            1,
            rate,
        )
        .unwrap();
        let high_tone: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * 3000.0 * i as f64 / rate).sin())
            .collect();
        lp.feed(0, &Tagged::new(0, high_tone)).unwrap();
        let out = lp.take_result().unwrap();
        let filtered = out.value.as_vector().unwrap();
        let rms = (filtered.iter().map(|x| x * x).sum::<f64>() / n as f64).sqrt();
        assert!(rms < 0.01, "high tone should be removed, rms = {rms}");
    }
}
