//! Action scheduling: turning time budgets into randomized action lists.
//!
//! Mirrors the paper's methodology (§4.1): "To eliminate bias, the list of
//! actions was generated randomly for each run, based on the expected
//! probabilities of each action."

use rand::Rng;
use sidewinder_sensors::Micros;

/// A time budget for one action category.
#[derive(Debug, Clone)]
pub struct Budget<K> {
    /// The action kind this budget belongs to.
    pub kind: K,
    /// Time remaining for this kind.
    pub remaining: Micros,
    /// Shortest segment to schedule.
    pub min_len: Micros,
    /// Longest segment to schedule.
    pub max_len: Micros,
}

impl<K: Copy> Budget<K> {
    /// Creates a budget.
    pub fn new(kind: K, total: Micros, min_len: Micros, max_len: Micros) -> Self {
        assert!(min_len <= max_len, "min_len must not exceed max_len");
        assert!(min_len > Micros::ZERO, "segments must have positive length");
        Budget {
            kind,
            remaining: total,
            min_len,
            max_len,
        }
    }
}

/// A scheduled segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment<K> {
    /// The action kind.
    pub kind: K,
    /// Segment start.
    pub start: Micros,
    /// Segment end (exclusive).
    pub end: Micros,
}

impl<K> Segment<K> {
    /// Segment length.
    pub fn duration(&self) -> Micros {
        self.end - self.start
    }
}

/// Fills `[0, duration)` with segments drawn randomly in proportion to the
/// remaining budget of each kind. `filler` labels whatever time is left
/// once all budgets are exhausted (or when only slivers remain).
///
/// Budgets are treated as targets: actual allocations land within one
/// segment length of the target, which is the same fidelity a scripted
/// robot run achieves.
pub fn fill_schedule<K: Copy, R: Rng>(
    rng: &mut R,
    duration: Micros,
    mut budgets: Vec<Budget<K>>,
    filler: K,
) -> Vec<Segment<K>> {
    let mut segments = Vec::new();
    let mut t = Micros::ZERO;
    let mut filler_since_action = false;

    while t < duration {
        let total_remaining: u64 = budgets.iter().map(|b| b.remaining.as_micros()).sum();
        if total_remaining == 0 {
            segments.push(Segment {
                kind: filler,
                start: t,
                end: duration,
            });
            break;
        }

        // Alternate: after every scheduled action insert a filler gap so
        // actions do not run back-to-back unrealistically.
        if filler_since_action {
            filler_since_action = false;
            // Pick the next action kind in proportion to remaining budget.
            let mut pick = rng.random_range(0..total_remaining);
            let idx = budgets
                .iter()
                .position(|b| {
                    if pick < b.remaining.as_micros() {
                        true
                    } else {
                        pick -= b.remaining.as_micros();
                        false
                    }
                })
                .expect("total_remaining > 0 guarantees a pick");
            let b = &mut budgets[idx];
            let span = rng.random_range(b.min_len.as_micros()..=b.max_len.as_micros());
            let span = Micros::from_micros(span)
                .min(b.remaining.max(b.min_len))
                .min(duration.saturating_sub(t));
            if span == Micros::ZERO {
                break;
            }
            segments.push(Segment {
                kind: b.kind,
                start: t,
                end: t + span,
            });
            b.remaining = b.remaining.saturating_sub(span);
            t += span;
        } else {
            filler_since_action = true;
            // Size the gap so that total filler time converges to the
            // time not claimed by action budgets: split the remaining
            // filler time across the expected number of remaining
            // actions, with ±50 % jitter.
            let filler_remaining = duration
                .saturating_sub(t)
                .saturating_sub(Micros::from_micros(total_remaining));
            let avg_action: u64 = budgets
                .iter()
                .map(|b| (b.min_len.as_micros() + b.max_len.as_micros()) / 2)
                .sum::<u64>()
                / budgets.len().max(1) as u64;
            let n_actions = (total_remaining / avg_action.max(1)).max(1);
            let target_gap = filler_remaining.as_micros() / (n_actions + 1);
            if target_gap > 0 {
                let jittered = rng.random_range(target_gap / 2..=target_gap * 3 / 2);
                let gap = Micros::from_micros(jittered.max(200_000))
                    .min(filler_remaining)
                    .min(duration.saturating_sub(t));
                if gap > Micros::ZERO {
                    segments.push(Segment {
                        kind: filler,
                        start: t,
                        end: t + gap,
                    });
                    t += gap;
                }
            }
        }
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    enum Kind {
        Idle,
        Walk,
        Jump,
    }

    fn total_of(segments: &[Segment<Kind>], kind: Kind) -> Micros {
        segments
            .iter()
            .filter(|s| s.kind == kind)
            .fold(Micros::ZERO, |acc, s| acc + s.duration())
    }

    #[test]
    fn schedule_covers_duration_contiguously() {
        let mut rng = StdRng::seed_from_u64(1);
        let duration = Micros::from_secs(600);
        let segments = fill_schedule(
            &mut rng,
            duration,
            vec![Budget::new(
                Kind::Walk,
                Micros::from_secs(60),
                Micros::from_secs(5),
                Micros::from_secs(15),
            )],
            Kind::Idle,
        );
        assert_eq!(segments.first().unwrap().start, Micros::ZERO);
        assert_eq!(segments.last().unwrap().end, duration);
        for w in segments.windows(2) {
            assert_eq!(w[0].end, w[1].start, "gap between segments");
        }
    }

    #[test]
    fn budgets_are_respected_within_one_segment() {
        let mut rng = StdRng::seed_from_u64(2);
        let duration = Micros::from_secs(1800);
        let walk_target = Micros::from_secs(300);
        let jump_target = Micros::from_secs(30);
        let segments = fill_schedule(
            &mut rng,
            duration,
            vec![
                Budget::new(
                    Kind::Walk,
                    walk_target,
                    Micros::from_secs(5),
                    Micros::from_secs(15),
                ),
                Budget::new(
                    Kind::Jump,
                    jump_target,
                    Micros::from_millis(400),
                    Micros::from_millis(400),
                ),
            ],
            Kind::Idle,
        );
        let walk = total_of(&segments, Kind::Walk);
        let jump = total_of(&segments, Kind::Jump);
        assert!(
            walk.as_secs_f64() >= 285.0 && walk.as_secs_f64() <= 315.0,
            "walk total = {walk}"
        );
        assert!(
            jump.as_secs_f64() >= 29.0 && jump.as_secs_f64() <= 31.0,
            "jump total = {jump}"
        );
    }

    #[test]
    fn actions_are_separated_by_filler() {
        let mut rng = StdRng::seed_from_u64(3);
        let segments = fill_schedule(
            &mut rng,
            Micros::from_secs(300),
            vec![Budget::new(
                Kind::Walk,
                Micros::from_secs(100),
                Micros::from_secs(5),
                Micros::from_secs(10),
            )],
            Kind::Idle,
        );
        for w in segments.windows(2) {
            assert!(
                !(w[0].kind == Kind::Walk && w[1].kind == Kind::Walk),
                "two walks back to back"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let schedule = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            fill_schedule(
                &mut rng,
                Micros::from_secs(120),
                vec![Budget::new(
                    Kind::Walk,
                    Micros::from_secs(30),
                    Micros::from_secs(5),
                    Micros::from_secs(10),
                )],
                Kind::Idle,
            )
        };
        assert_eq!(schedule(5), schedule(5));
        assert_ne!(schedule(5), schedule(6));
    }

    #[test]
    fn zero_budget_yields_pure_filler() {
        let mut rng = StdRng::seed_from_u64(4);
        let segments = fill_schedule(
            &mut rng,
            Micros::from_secs(30),
            vec![Budget::new(
                Kind::Walk,
                Micros::ZERO,
                Micros::from_secs(1),
                Micros::from_secs(2),
            )],
            Kind::Idle,
        );
        assert!(segments.iter().all(|s| s.kind == Kind::Idle));
    }

    #[test]
    #[should_panic(expected = "min_len must not exceed max_len")]
    fn budget_validates_lengths() {
        Budget::new(
            Kind::Walk,
            Micros::from_secs(10),
            Micros::from_secs(5),
            Micros::from_secs(1),
        );
    }
}
