//! Synthetic environmental audio traces.
//!
//! The paper collected three half-hour audio traces (office, coffee shop,
//! outdoors) and mixed in events of interest: music (5 % of each trace),
//! speech (5 %), and sirens (2 %) (§4.1). This module synthesizes
//! equivalents whose acoustic features exercise exactly what the wake-up
//! conditions measure:
//!
//! * **backgrounds** are quiet, broadband, and unpitched — below the
//!   energy thresholds;
//! * **music** is a chord of low harmonics (fundamental 180–340 Hz, so
//!   its energy sits below the siren detector's 750 Hz high-pass) with a
//!   steady envelope → high energy variance vs. background, *low*
//!   zero-crossing-rate variance;
//! * **speech** alternates voiced, unvoiced, and pause sub-segments →
//!   high energy, *high* ZCR variance; a subset of speech segments
//!   carries the 2-second target phrase;
//! * **sirens** sweep a pure tone between 850 and 1800 Hz for several
//!   seconds → a dominant spectral peak above 750 Hz sustained beyond
//!   650 ms.

use crate::schedule::{fill_schedule, Budget};
use crate::synth::{noise, ColoredNoise, Oscillator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sidewinder_sensors::{
    EventKind, GroundTruth, LabeledInterval, Micros, SensorChannel, SensorTrace, TimeSeries,
};

/// The recording environment, setting the background bed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AudioEnvironment {
    /// Quiet office: faint white noise plus sparse keyboard clicks.
    Office,
    /// Coffee shop: modulated babble-band noise plus clatter.
    CoffeeShop,
    /// Outdoors: low-frequency rumble and wind gusts.
    Outdoors,
}

impl AudioEnvironment {
    /// All environments, paper order.
    pub const ALL: [AudioEnvironment; 3] = [
        AudioEnvironment::Office,
        AudioEnvironment::CoffeeShop,
        AudioEnvironment::Outdoors,
    ];

    /// A short label for names and reports.
    pub fn label(self) -> &'static str {
        match self {
            AudioEnvironment::Office => "office",
            AudioEnvironment::CoffeeShop => "coffeeshop",
            AudioEnvironment::Outdoors => "outdoors",
        }
    }
}

impl std::fmt::Display for AudioEnvironment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Configuration for one audio trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AudioTraceConfig {
    /// Trace length (the paper uses 30 minutes).
    pub duration: Micros,
    /// Background environment.
    pub environment: AudioEnvironment,
    /// Fraction of the trace containing music (paper: 0.05).
    pub music_fraction: f64,
    /// Fraction containing speech (paper: 0.05).
    pub speech_fraction: f64,
    /// Fraction containing sirens (paper: 0.02).
    pub siren_fraction: f64,
    /// Probability that a speech segment contains the target phrase.
    pub phrase_probability: f64,
    /// Sample rate (8 kHz telephone band).
    pub rate_hz: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AudioTraceConfig {
    fn default() -> Self {
        AudioTraceConfig {
            duration: Micros::from_secs(600),
            environment: AudioEnvironment::Office,
            music_fraction: 0.05,
            speech_fraction: 0.05,
            siren_fraction: 0.02,
            phrase_probability: 0.5,
            rate_hz: 8_000.0,
            seed: 1,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Sound {
    Background,
    Music,
    Speech,
    Siren,
}

/// Generates one audio trace with ground-truth labels on the `MIC`
/// channel.
///
/// # Panics
///
/// Panics if fractions are negative or sum to 1.0 or more, or the
/// configuration is degenerate.
pub fn audio_trace(config: &AudioTraceConfig) -> SensorTrace {
    let total_frac = config.music_fraction + config.speech_fraction + config.siren_fraction;
    assert!(
        config.music_fraction >= 0.0
            && config.speech_fraction >= 0.0
            && config.siren_fraction >= 0.0
            && total_frac < 1.0,
        "event fractions must be non-negative and sum below 1"
    );
    assert!(config.duration > Micros::ZERO && config.rate_hz > 0.0);
    assert!((0.0..=1.0).contains(&config.phrase_probability));

    let mut rng = StdRng::seed_from_u64(config.seed);
    let secs = config.duration.as_secs_f64();
    let budgets = vec![
        Budget::new(
            Sound::Music,
            Micros::from_secs_f64(secs * config.music_fraction),
            Micros::from_secs(8),
            Micros::from_secs(25),
        ),
        Budget::new(
            Sound::Speech,
            Micros::from_secs_f64(secs * config.speech_fraction),
            Micros::from_secs(6),
            Micros::from_secs(15),
        ),
        Budget::new(
            Sound::Siren,
            Micros::from_secs_f64(secs * config.siren_fraction),
            Micros::from_secs(3),
            Micros::from_secs(8),
        ),
    ];
    let segments = fill_schedule(&mut rng, config.duration, budgets, Sound::Background);

    let rate = config.rate_hz;
    let n = config.duration.samples_at(rate);
    let mut samples = Vec::with_capacity(n);
    let mut gt = GroundTruth::new();

    // Background state shared across the whole trace.
    let mut bed = BackgroundBed::new(config.environment);

    let mut produced = 0usize;
    for seg in &segments {
        let end_index = ((seg.end.as_secs_f64() * rate) - 1e-9).ceil() as usize;
        let end_index = end_index.min(n);
        let count = end_index.saturating_sub(produced);
        if count == 0 {
            continue;
        }
        match seg.kind {
            Sound::Background => {
                for _ in 0..count {
                    samples.push(bed.tick(&mut rng, rate));
                }
            }
            Sound::Music => {
                gt.push(
                    LabeledInterval::new(EventKind::Music, seg.start, seg.end)
                        .expect("non-empty segment"),
                );
                synth_music(&mut rng, &mut bed, rate, count, &mut samples);
            }
            Sound::Speech => {
                gt.push(
                    LabeledInterval::new(EventKind::Speech, seg.start, seg.end)
                        .expect("non-empty segment"),
                );
                if rng.random_range(0.0..1.0) < config.phrase_probability {
                    let seg_len = (seg.end - seg.start).as_secs_f64();
                    if seg_len > 3.0 {
                        let offset = rng.random_range(0.5..seg_len - 2.5);
                        let start = seg.start + Micros::from_secs_f64(offset);
                        gt.push(
                            LabeledInterval::new(
                                EventKind::Phrase,
                                start,
                                start + Micros::from_secs(2),
                            )
                            .expect("non-empty phrase"),
                        );
                    }
                }
                synth_speech(&mut rng, &mut bed, rate, count, &mut samples);
            }
            Sound::Siren => {
                gt.push(
                    LabeledInterval::new(EventKind::Siren, seg.start, seg.end)
                        .expect("non-empty segment"),
                );
                synth_siren(&mut rng, &mut bed, rate, count, &mut samples);
            }
        }
        produced += count;
    }
    // Round out any samples lost to boundary arithmetic.
    while samples.len() < n {
        let s = bed.tick(&mut rng, rate);
        samples.push(s);
    }

    let mut trace = SensorTrace::new(format!(
        "audio-{}-seed{}",
        config.environment.label(),
        config.seed
    ));
    trace.insert(
        SensorChannel::Mic,
        TimeSeries::from_samples(rate, samples).expect("validated rate"),
    );
    *trace.ground_truth_mut() = gt;
    trace
}

/// The environment-specific background noise generator.
#[derive(Debug)]
struct BackgroundBed {
    environment: AudioEnvironment,
    rumble: ColoredNoise,
    babble: ColoredNoise,
    mod_phase: f64,
    click_remaining: usize,
}

impl BackgroundBed {
    fn new(environment: AudioEnvironment) -> Self {
        BackgroundBed {
            environment,
            rumble: ColoredNoise::new(0.02),
            babble: ColoredNoise::new(0.15),
            mod_phase: 0.0,
            click_remaining: 0,
        }
    }

    fn tick<R: Rng>(&mut self, rng: &mut R, rate: f64) -> f64 {
        match self.environment {
            AudioEnvironment::Office => {
                // Sparse keyboard clicks (~0.5/s) on a faint noise floor.
                if self.click_remaining == 0 && rng.random_range(0.0..1.0) < 0.5 / rate {
                    self.click_remaining = (rate * 0.01) as usize;
                }
                let click = if self.click_remaining > 0 {
                    self.click_remaining -= 1;
                    rng.random_range(-0.04..0.04)
                } else {
                    0.0
                };
                noise(rng, 0.004) + click
            }
            AudioEnvironment::CoffeeShop => {
                // Babble: band-limited noise with 4 Hz loudness modulation.
                self.mod_phase += 4.0 / rate;
                let env = 0.7 + 0.3 * (2.0 * std::f64::consts::PI * self.mod_phase).sin();
                self.babble.tick(rng, 0.012) * env + noise(rng, 0.003)
            }
            AudioEnvironment::Outdoors => {
                // Rumble plus broadband wind.
                self.rumble.tick(rng, 0.015) + noise(rng, 0.006)
            }
        }
    }
}

/// Music: a chord of a fundamental (180–340 Hz) and two harmonics with a
/// steady envelope. Notes change every ~0.5 s. All significant energy
/// stays below 750 Hz.
fn synth_music<R: Rng>(
    rng: &mut R,
    bed: &mut BackgroundBed,
    rate: f64,
    count: usize,
    out: &mut Vec<f64>,
) {
    let mut osc1 = Oscillator::new();
    let mut osc2 = Oscillator::new();
    let mut osc3 = Oscillator::new();
    let mut fundamental = rng.random_range(180.0..340.0);
    let mut until_note_change = (rate * rng.random_range(0.4..0.7)) as usize;
    for i in 0..count {
        if until_note_change == 0 {
            fundamental = rng.random_range(180.0..340.0);
            until_note_change = (rate * rng.random_range(0.4..0.7)) as usize;
        }
        until_note_change -= 1;
        let envelope = fade(i, count, rate);
        let tone = 0.18 * osc1.tick(fundamental, rate)
            + 0.12 * osc2.tick(fundamental * 2.0, rate)
            + 0.02 * osc3.tick(fundamental * 3.0, rate);
        out.push(tone * envelope + bed.tick(rng, rate));
    }
}

/// Speech: alternating voiced (low harmonics), unvoiced (broadband hiss),
/// and pause sub-segments.
fn synth_speech<R: Rng>(
    rng: &mut R,
    bed: &mut BackgroundBed,
    rate: f64,
    count: usize,
    out: &mut Vec<f64>,
) {
    #[derive(Clone, Copy, PartialEq)]
    enum Phone {
        Voiced,
        Unvoiced,
        Pause,
    }
    let mut osc1 = Oscillator::new();
    let mut osc2 = Oscillator::new();
    let mut phone = Phone::Voiced;
    let mut remaining = (rate * 0.25) as usize;
    let mut pitch = rng.random_range(120.0..180.0);
    for i in 0..count {
        if remaining == 0 {
            phone = match (phone, rng.random_range(0.0..1.0)) {
                (Phone::Voiced, p) if p < 0.5 => Phone::Unvoiced,
                (Phone::Voiced, _) => Phone::Pause,
                (Phone::Unvoiced, p) if p < 0.7 => Phone::Voiced,
                (Phone::Unvoiced, _) => Phone::Pause,
                (Phone::Pause, _) => Phone::Voiced,
            };
            remaining = match phone {
                Phone::Voiced => (rate * rng.random_range(0.2..0.4)) as usize,
                Phone::Unvoiced => (rate * rng.random_range(0.1..0.2)) as usize,
                Phone::Pause => (rate * rng.random_range(0.05..0.15)) as usize,
            };
            if phone == Phone::Voiced {
                pitch = rng.random_range(120.0..180.0);
            }
        }
        remaining -= 1;
        let envelope = fade(i, count, rate);
        let s = match phone {
            Phone::Voiced => 0.22 * osc1.tick(pitch, rate) + 0.12 * osc2.tick(pitch * 3.0, rate),
            Phone::Unvoiced => noise(rng, 0.12),
            Phone::Pause => 0.0,
        };
        out.push(s * envelope + bed.tick(rng, rate));
    }
}

/// Siren: a pure tone sweeping 850–1800 Hz with a 3 s period.
fn synth_siren<R: Rng>(
    rng: &mut R,
    bed: &mut BackgroundBed,
    rate: f64,
    count: usize,
    out: &mut Vec<f64>,
) {
    let mut osc = Oscillator::new();
    for i in 0..count {
        let t = i as f64 / rate;
        let sweep = 0.5 * (1.0 - (2.0 * std::f64::consts::PI * t / 3.0).cos());
        let freq = 850.0 + (1800.0 - 850.0) * sweep;
        let envelope = fade(i, count, rate);
        out.push(0.32 * osc.tick(freq, rate) * envelope + bed.tick(rng, rate));
    }
}

/// 100 ms linear fade-in/out so events do not start with clicks.
fn fade(i: usize, count: usize, rate: f64) -> f64 {
    let ramp = (rate * 0.1) as usize;
    if ramp == 0 {
        return 1.0;
    }
    let from_start = i as f64 / ramp as f64;
    let from_end = (count.saturating_sub(i + 1)) as f64 / ramp as f64;
    from_start.min(from_end).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidewinder_dsp::{fft, spectral, stats, zcr};

    fn trace(env: AudioEnvironment, seed: u64) -> SensorTrace {
        audio_trace(&AudioTraceConfig {
            duration: Micros::from_secs(120),
            environment: env,
            seed,
            ..AudioTraceConfig::default()
        })
    }

    /// Computes `f` over up to six 2048-sample windows spread across each
    /// event of `kind`, skipping the 100 ms fade zones.
    fn window_feature<F: Fn(&[f64]) -> f64>(
        trace: &SensorTrace,
        kind: EventKind,
        f: F,
    ) -> Vec<f64> {
        let mic = trace.channel(SensorChannel::Mic).unwrap();
        let mut out = Vec::new();
        for iv in trace.ground_truth().of_kind(kind) {
            let usable_start = iv.start() + Micros::from_millis(200);
            let usable_end = iv.end().saturating_sub(Micros::from_millis(450));
            if usable_end <= usable_start {
                continue;
            }
            let span = (usable_end - usable_start).as_micros();
            for k in 0..6u64 {
                let start = usable_start + Micros::from_micros(span * k / 6);
                let slice = mic.slice(start, start + Micros::from_millis(256));
                if slice.len() >= 2048 {
                    out.push(f(&slice[..2048]));
                }
            }
        }
        out
    }

    #[test]
    fn event_fractions_match_the_paper_mix() {
        let t = trace(AudioEnvironment::Office, 1);
        let gt = t.ground_truth();
        let total = t.duration().as_secs_f64();
        let frac = |k: EventKind| gt.total_duration_of(k).as_secs_f64() / total;
        assert!(
            (frac(EventKind::Music) - 0.05).abs() < 0.03,
            "music {}",
            frac(EventKind::Music)
        );
        assert!(
            (frac(EventKind::Speech) - 0.05).abs() < 0.03,
            "speech {}",
            frac(EventKind::Speech)
        );
        assert!(
            (frac(EventKind::Siren) - 0.02).abs() < 0.02,
            "siren {}",
            frac(EventKind::Siren)
        );
    }

    #[test]
    fn events_are_louder_than_every_background() {
        for env in AudioEnvironment::ALL {
            let t = trace(env, 3);
            let mic = t.channel(SensorChannel::Mic).unwrap();
            // Background variance from the first second (always filler).
            let bg = stats::variance(mic.slice(Micros::ZERO, Micros::from_secs(1))).unwrap();
            for kind in [EventKind::Music, EventKind::Speech, EventKind::Siren] {
                for v in window_feature(&t, kind, |w| stats::variance(w).unwrap_or(0.0)) {
                    assert!(
                        v > 8.0 * bg,
                        "{env}: {kind} window variance {v} vs background {bg}"
                    );
                }
            }
        }
    }

    #[test]
    fn speech_has_higher_zcr_variance_than_music() {
        let t = trace(AudioEnvironment::Office, 5);
        let music = window_feature(&t, EventKind::Music, |w| {
            zcr::zcr_variance(w, 8).unwrap_or(0.0)
        });
        let speech = window_feature(&t, EventKind::Speech, |w| {
            zcr::zcr_variance(w, 8).unwrap_or(0.0)
        });
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&speech) > 4.0 * mean(&music),
            "speech zcrvar {} vs music {}",
            mean(&speech),
            mean(&music)
        );
    }

    #[test]
    fn sirens_dominate_the_spectrum_above_750hz() {
        let t = trace(AudioEnvironment::Office, 7);
        // The siren wake-up feature: peak spectral magnitude after the
        // 750 Hz high-pass. Sirens (0.32 amplitude tone at 850–1800 Hz)
        // tower over music (whose energy sits below 750 Hz) and speech
        // (broadband unvoiced hiss).
        let peak_above_750 = |w: &[f64]| {
            let filtered = sidewinder_dsp::filter::fft_highpass(w, 750.0, 8000.0).unwrap();
            let mags = fft::real_fft_magnitudes(&filtered);
            spectral::dominant_bin(&mags[1..])
                .map(|p| p.magnitude)
                .unwrap_or(0.0)
        };
        let sirens = window_feature(&t, EventKind::Siren, peak_above_750);
        let music = window_feature(&t, EventKind::Music, peak_above_750);
        let speech = window_feature(&t, EventKind::Speech, peak_above_750);
        let min_siren = sirens.iter().cloned().fold(f64::MAX, f64::min);
        let max_other = music.iter().chain(&speech).cloned().fold(0.0f64, f64::max);
        assert!(
            min_siren > 2.0 * max_other,
            "siren peaks {sirens:?} vs others max {max_other}"
        );
        // And sirens are *pitched*: dominant-to-mean ratio is high.
        let ratio = |w: &[f64]| {
            let filtered = sidewinder_dsp::filter::fft_highpass(w, 750.0, 8000.0).unwrap();
            let mags = fft::real_fft_magnitudes(&filtered);
            spectral::dominant_to_mean_ratio(&mags[1..]).unwrap_or(0.0)
        };
        for r in window_feature(&t, EventKind::Siren, ratio) {
            assert!(r > 10.0, "siren ratio {r}");
        }
    }

    #[test]
    fn phrases_lie_inside_speech() {
        let t = trace(AudioEnvironment::CoffeeShop, 9);
        let gt = t.ground_truth();
        let phrases: Vec<_> = gt.of_kind(EventKind::Phrase).collect();
        for p in &phrases {
            assert!(
                gt.of_kind(EventKind::Speech)
                    .any(|s| s.start() <= p.start() && p.end() <= s.end()),
                "phrase escapes its speech segment"
            );
        }
        // Phrase time is well under 1 % + margin of the trace.
        let frac =
            gt.total_duration_of(EventKind::Phrase).as_secs_f64() / t.duration().as_secs_f64();
        assert!(frac < 0.02, "phrase fraction {frac}");
    }

    #[test]
    fn trace_is_full_length_and_deterministic() {
        let a = trace(AudioEnvironment::Outdoors, 11);
        assert_eq!(a.duration(), Micros::from_secs(120));
        assert_eq!(a.channel(SensorChannel::Mic).unwrap().len(), 120 * 8000);
        let b = trace(AudioEnvironment::Outdoors, 11);
        assert_eq!(a, b);
        assert_ne!(a, trace(AudioEnvironment::Outdoors, 12));
        assert!(a.name().contains("outdoors"));
    }

    #[test]
    #[should_panic(expected = "event fractions")]
    fn rejects_overfull_event_mix() {
        audio_trace(&AudioTraceConfig {
            music_fraction: 0.5,
            speech_fraction: 0.4,
            siren_fraction: 0.2,
            ..AudioTraceConfig::default()
        });
    }

    #[test]
    fn samples_stay_in_unit_range() {
        let t = trace(AudioEnvironment::CoffeeShop, 13);
        let mic = t.channel(SensorChannel::Mic).unwrap();
        assert!(mic.samples().iter().all(|s| s.abs() <= 1.0));
    }
}
