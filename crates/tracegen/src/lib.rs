//! Synthetic trace generation with ground truth.
//!
//! The paper's evaluation is trace-driven (§4.1): 18 scripted runs of an
//! AIBO robot with a prototype phone on its back, six hours of human
//! accelerometer recordings, and three half-hour audio recordings with
//! events mixed in. None of those artifacts are available, so this crate
//! synthesizes the closest equivalents (see DESIGN.md §2 for the
//! substitution rationale):
//!
//! * [`robot`] — scripted robot runs. Activity groups spend 90 / 50 /
//!   10 % of the time standing idle; the active remainder splits 73 %
//!   walking, 24 % posture transitions, 3 % headbutts, with per-action
//!   acceleration signatures matching the classifier bands of §3.7.1.
//! * [`human`] — daily-activity traces: 20–37 % walking plus
//!   *miscellaneous non-target motion* (commuting vibration, fidgeting,
//!   carrying) that makes generic wake-up conditions fire spuriously
//!   (§5.5).
//! * [`audio`] — environmental audio beds (office, coffee shop,
//!   outdoors) with mixed-in music (5 %), speech (5 %) and sirens (2 %),
//!   the paper's §4.1 mix. A subset of speech carries the target phrase.
//!
//! Every generator takes an explicit seed and is fully deterministic, so
//! the experiment binaries reproduce their tables run-to-run.

pub mod audio;
pub mod human;
pub mod robot;
pub mod schedule;
pub mod synth;

pub use audio::{audio_trace, AudioEnvironment, AudioTraceConfig};
pub use human::{human_trace, HumanTraceConfig};
pub use robot::{robot_group_runs, robot_run, ActivityGroup, RobotRunConfig};
