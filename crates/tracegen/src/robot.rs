//! Scripted robot runs — the AIBO substitute.
//!
//! The paper mounts a prototype phone on an AIBO ERA-210 robot dog and
//! scripts runs of five actions: standing idle, walking, sit-to-stand,
//! stand-to-sit, and headbutts (§4.1). The robot's action log is the
//! ground truth. This module reproduces that setup synthetically:
//!
//! * the action schedule is generated randomly from per-category time
//!   budgets (90/50/10 % idle groups; active time split 73 % walking,
//!   24 % transitions, 3 % headbutts);
//! * each action synthesizes 50 Hz 3-axis accelerometer data matching the
//!   signatures the paper's classifiers assume (§3.7.1): walking as an
//!   x-axis oscillation whose filtered peaks land in 2.5–4.5 m/s²,
//!   postures as gravity orientation (standing: z≈9.81, y≈0; sitting:
//!   z≈8.7, y≈4.5), and headbutts as brief y-axis dips into
//!   −6.75…−3.75 m/s².

use crate::schedule::{fill_schedule, Budget, Segment};
use crate::synth::{noise, pulse, smoothstep};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sidewinder_sensors::{
    EventKind, GroundTruth, LabeledInterval, Micros, SensorChannel, SensorTrace, TimeSeries,
};

/// Gravity, m/s².
const GRAVITY: f64 = 9.81;
/// Sitting posture: y-axis gravity component (paper: 3.5–5.5 band).
const SIT_Y: f64 = 4.5;
/// Sitting posture: z-axis gravity component √(9.81² − 4.5²) ≈ 8.717
/// (inside the paper's 7.5–9.5 band), so the tilted gravity vector keeps
/// magnitude 9.81.
fn sit_z() -> f64 {
    (GRAVITY * GRAVITY - SIT_Y * SIT_Y).sqrt()
}

/// The paper's three activity groups (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActivityGroup {
    /// 90 % standing idle (9 runs in the paper).
    Group1,
    /// 50 % standing idle (6 runs).
    Group2,
    /// 10 % standing idle (3 runs).
    Group3,
}

impl ActivityGroup {
    /// All groups in paper order.
    pub const ALL: [ActivityGroup; 3] = [
        ActivityGroup::Group1,
        ActivityGroup::Group2,
        ActivityGroup::Group3,
    ];

    /// The fraction of the run spent standing idle.
    pub fn idle_fraction(self) -> f64 {
        match self {
            ActivityGroup::Group1 => 0.90,
            ActivityGroup::Group2 => 0.50,
            ActivityGroup::Group3 => 0.10,
        }
    }

    /// Number of runs the paper executed for this group.
    pub fn paper_run_count(self) -> usize {
        match self {
            ActivityGroup::Group1 => 9,
            ActivityGroup::Group2 => 6,
            ActivityGroup::Group3 => 3,
        }
    }

    /// A short label used in trace names and reports.
    pub fn label(self) -> &'static str {
        match self {
            ActivityGroup::Group1 => "90% idle",
            ActivityGroup::Group2 => "50% idle",
            ActivityGroup::Group3 => "10% idle",
        }
    }
}

impl std::fmt::Display for ActivityGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Configuration for one robot run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobotRunConfig {
    /// Total run length.
    pub duration: Micros,
    /// Fraction of time standing idle (the rest splits 73/24/3).
    pub idle_fraction: f64,
    /// Accelerometer sample rate.
    pub rate_hz: f64,
    /// RNG seed; equal configs produce identical traces.
    pub seed: u64,
}

impl Default for RobotRunConfig {
    fn default() -> Self {
        RobotRunConfig {
            duration: Micros::from_secs(600),
            idle_fraction: 0.9,
            rate_hz: 50.0,
            seed: 1,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Action {
    Idle,
    Walk,
    Transition, // direction decided by posture at synthesis time
    Headbutt,
}

/// Generates one scripted robot run with ground-truth labels.
///
/// # Panics
///
/// Panics if `idle_fraction` is outside `[0, 1)` or the configuration is
/// degenerate (zero duration or rate).
pub fn robot_run(config: &RobotRunConfig) -> SensorTrace {
    assert!(
        (0.0..1.0).contains(&config.idle_fraction),
        "idle_fraction must be in [0, 1)"
    );
    assert!(config.duration > Micros::ZERO, "duration must be positive");
    assert!(config.rate_hz > 0.0, "rate must be positive");

    let mut rng = StdRng::seed_from_u64(config.seed);
    let active =
        Micros::from_secs_f64(config.duration.as_secs_f64() * (1.0 - config.idle_fraction));
    let walk_budget = Micros::from_secs_f64(active.as_secs_f64() * 0.73);
    let trans_budget = Micros::from_secs_f64(active.as_secs_f64() * 0.24);
    let head_budget = Micros::from_secs_f64(active.as_secs_f64() * 0.03);

    let budgets = vec![
        Budget::new(
            Action::Walk,
            walk_budget,
            Micros::from_secs(5),
            Micros::from_secs(15),
        ),
        Budget::new(
            Action::Transition,
            trans_budget,
            Micros::from_millis(1_500),
            Micros::from_millis(1_500),
        ),
        Budget::new(
            Action::Headbutt,
            head_budget,
            Micros::from_millis(400),
            Micros::from_millis(400),
        ),
    ];
    let segments = fill_schedule(&mut rng, config.duration, budgets, Action::Idle);

    synthesize(config, &mut rng, &segments)
}

/// Generates the paper's run set for one group: `count` runs of
/// `duration` each, seeded from `base_seed`.
pub fn robot_group_runs(
    group: ActivityGroup,
    count: usize,
    duration: Micros,
    base_seed: u64,
) -> Vec<SensorTrace> {
    (0..count)
        .map(|i| {
            robot_run(&RobotRunConfig {
                duration,
                idle_fraction: group.idle_fraction(),
                rate_hz: 50.0,
                seed: base_seed
                    .wrapping_mul(1_000_003)
                    .wrapping_add(i as u64 * 7_919 + group.idle_fraction() as u64),
            })
        })
        .collect()
}

/// Walking oscillation amplitude: filtered peaks must land inside the
/// steps classifier's 2.5–4.5 m/s² band (§3.7.1).
const WALK_AMPLITUDE: f64 = 3.5;
/// Robot step frequency in Hz.
const STEP_FREQ: f64 = 1.5;
/// Headbutt y-axis trough: inside the classifier's −6.75…−3.75 band.
const HEADBUTT_DEPTH: f64 = -5.25;

fn synthesize(
    config: &RobotRunConfig,
    rng: &mut StdRng,
    segments: &[Segment<Action>],
) -> SensorTrace {
    let rate = config.rate_hz;
    let n = config.duration.samples_at(rate);
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    let mut z = Vec::with_capacity(n);
    let mut gt = GroundTruth::new();

    // Posture state: false = standing, true = sitting. Each transition
    // segment flips it.
    let mut sitting = false;

    // Precompute per-segment posture and labels.
    struct Planned {
        start: Micros,
        end: Micros,
        action: Action,
        from_sitting: bool,
        to_sitting: bool,
    }
    let mut planned = Vec::with_capacity(segments.len());
    for seg in segments {
        let from_sitting = sitting;
        let to_sitting = match seg.kind {
            Action::Transition => !sitting,
            // Walking and headbutts require standing: the robot stands up
            // implicitly during scheduling. To keep the trace physical,
            // force posture to standing at the start of such segments.
            Action::Walk | Action::Headbutt => false,
            Action::Idle => sitting,
        };
        sitting = to_sitting;
        planned.push(Planned {
            start: seg.start,
            end: seg.end,
            action: seg.kind,
            from_sitting: if matches!(seg.kind, Action::Walk | Action::Headbutt) {
                false
            } else {
                from_sitting
            },
            to_sitting,
        });
        match seg.kind {
            Action::Walk => {
                gt.push(
                    LabeledInterval::new(EventKind::Walking, seg.start, seg.end)
                        .expect("segments are non-empty"),
                );
                // Step labels at each oscillation peak.
                let dur = (seg.end - seg.start).as_secs_f64();
                let mut k = 0u32;
                loop {
                    let t_peak = (k as f64 + 0.25) / STEP_FREQ;
                    if t_peak + 0.1 >= dur {
                        break;
                    }
                    let peak_at = seg.start + Micros::from_secs_f64(t_peak);
                    gt.push(
                        LabeledInterval::new(
                            EventKind::Step,
                            peak_at.saturating_sub(Micros::from_millis(100)),
                            peak_at + Micros::from_millis(100),
                        )
                        .expect("non-empty step window"),
                    );
                    k += 1;
                }
            }
            Action::Transition => {
                let kind = if to_sitting {
                    EventKind::StandToSit
                } else {
                    EventKind::SitToStand
                };
                gt.push(LabeledInterval::new(kind, seg.start, seg.end).expect("non-empty segment"));
            }
            Action::Headbutt => {
                gt.push(
                    LabeledInterval::new(EventKind::Headbutt, seg.start, seg.end)
                        .expect("non-empty segment"),
                );
            }
            Action::Idle => {}
        }
    }

    // Sample synthesis.
    let mut seg_idx = 0usize;
    for i in 0..n {
        let t = Micros::from_secs_f64(i as f64 / rate);
        while seg_idx + 1 < planned.len() && t >= planned[seg_idx].end {
            seg_idx += 1;
        }
        let seg = &planned[seg_idx];
        let local = (t.saturating_sub(seg.start)).as_secs_f64();
        let frac = local / (seg.end - seg.start).as_secs_f64().max(1e-9);

        let posture_y = |sit: bool| if sit { SIT_Y } else { 0.0 };
        let posture_z = |sit: bool| if sit { sit_z() } else { GRAVITY };

        let (sx, sy, sz) = match seg.action {
            Action::Idle => (
                noise(rng, 0.05),
                posture_y(seg.to_sitting) + noise(rng, 0.05),
                posture_z(seg.to_sitting) + noise(rng, 0.05),
            ),
            Action::Walk => {
                let osc = WALK_AMPLITUDE * (2.0 * std::f64::consts::PI * STEP_FREQ * local).sin();
                (
                    osc + noise(rng, 0.25),
                    noise(rng, 0.35),
                    GRAVITY
                        + 0.6 * (2.0 * std::f64::consts::PI * 2.0 * STEP_FREQ * local).sin()
                        + noise(rng, 0.25),
                )
            }
            Action::Transition => {
                let y0 = posture_y(seg.from_sitting);
                let y1 = posture_y(seg.to_sitting);
                let z0 = posture_z(seg.from_sitting);
                let z1 = posture_z(seg.to_sitting);
                (
                    noise(rng, 0.15),
                    smoothstep(y0, y1, frac) + noise(rng, 0.25),
                    // Posture changes carry real body acceleration on top
                    // of the rotating gravity vector; the bump peaks
                    // mid-transition so significant-motion detectors see
                    // every transition.
                    smoothstep(z0, z1, frac)
                        + 0.8 * (std::f64::consts::PI * frac).sin()
                        + noise(rng, 0.25),
                )
            }
            Action::Headbutt => (
                noise(rng, 0.15),
                HEADBUTT_DEPTH * pulse(frac) + noise(rng, 0.2),
                GRAVITY + noise(rng, 0.2),
            ),
        };
        x.push(sx);
        y.push(sy);
        z.push(sz);
    }

    let name = format!(
        "robot-idle{:02}-seed{}",
        (config.idle_fraction * 100.0).round() as u32,
        config.seed
    );
    let mut trace = SensorTrace::new(name);
    trace.insert(
        SensorChannel::AccX,
        TimeSeries::from_samples(rate, x).expect("validated rate"),
    );
    trace.insert(
        SensorChannel::AccY,
        TimeSeries::from_samples(rate, y).expect("validated rate"),
    );
    trace.insert(
        SensorChannel::AccZ,
        TimeSeries::from_samples(rate, z).expect("validated rate"),
    );
    *trace.ground_truth_mut() = gt;
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(idle: f64, seed: u64) -> SensorTrace {
        robot_run(&RobotRunConfig {
            duration: Micros::from_secs(600),
            idle_fraction: idle,
            rate_hz: 50.0,
            seed,
        })
    }

    #[test]
    fn produces_aligned_three_axis_trace() {
        let t = run(0.5, 1);
        assert!(t.has_channel(SensorChannel::AccX));
        assert!(t.has_channel(SensorChannel::AccY));
        assert!(t.has_channel(SensorChannel::AccZ));
        assert!(!t.has_channel(SensorChannel::Mic));
        t.check_aligned().unwrap();
        assert_eq!(t.duration(), Micros::from_secs(600));
        assert!(t.name().contains("idle50"));
    }

    #[test]
    fn activity_budgets_are_respected() {
        for (idle, seed) in [(0.9, 1u64), (0.5, 2), (0.1, 3)] {
            let t = run(idle, seed);
            let gt = t.ground_truth();
            let active = 600.0 * (1.0 - idle);
            let walking = gt.total_duration_of(EventKind::Walking).as_secs_f64();
            let transitions = gt.total_duration_of(EventKind::SitToStand).as_secs_f64()
                + gt.total_duration_of(EventKind::StandToSit).as_secs_f64();
            let headbutts = gt.total_duration_of(EventKind::Headbutt).as_secs_f64();
            assert!(
                (walking - active * 0.73).abs() < active * 0.12 + 16.0,
                "idle={idle}: walking {walking} vs target {}",
                active * 0.73
            );
            assert!(
                (transitions - active * 0.24).abs() < active * 0.08 + 6.0,
                "idle={idle}: transitions {transitions} vs target {}",
                active * 0.24
            );
            assert!(
                (headbutts - active * 0.03).abs() < active * 0.03 + 2.0,
                "idle={idle}: headbutts {headbutts} vs target {}",
                active * 0.03
            );
        }
    }

    /// Finds a window of `len` that no ground-truth interval overlaps.
    fn quiet_window(t: &SensorTrace, len: Micros) -> Option<(Micros, Micros)> {
        let gt = t.ground_truth();
        let mut candidate = Micros::ZERO;
        loop {
            if candidate + len > t.duration() {
                return None;
            }
            match gt
                .intervals()
                .iter()
                .find(|iv| iv.overlaps(candidate, candidate + len))
            {
                None => return Some((candidate, candidate + len)),
                Some(iv) => candidate = iv.end() + Micros::from_millis(200),
            }
        }
    }

    #[test]
    fn walking_oscillates_on_x_within_band() {
        let t = run(0.5, 7);
        let x = t.channel(SensorChannel::AccX).unwrap();
        let gt = t.ground_truth();
        let walk = gt.of_kind(EventKind::Walking).next().expect("has walking");
        let slice = x.slice(walk.start(), walk.end());
        let max = slice.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > 2.5 && max < 5.5, "walking x peak = {max}");
        // Idle x is flat: check a window with no labeled activity.
        let (qs, qe) = quiet_window(&t, Micros::from_secs(1)).expect("has idle time");
        let idle_slice = x.slice(qs, qe);
        let idle_max = idle_slice.iter().cloned().fold(f64::MIN, f64::max);
        assert!(idle_max < 1.0, "idle x peak = {idle_max}");
    }

    #[test]
    fn transitions_move_gravity_between_postures() {
        let t = run(0.5, 11);
        let y = t.channel(SensorChannel::AccY).unwrap();
        let gt = t.ground_truth();
        // Pick a stand-to-sit with unlabeled (idle) time on both sides so
        // the surrounding samples reflect the postures, not other actions.
        let margin = Micros::from_millis(500);
        let s2s =
            gt.of_kind(EventKind::StandToSit)
                .find(|iv| {
                    let before_clear = !gt.intervals().iter().any(|o| {
                        o != *iv && o.overlaps(iv.start().saturating_sub(margin), iv.start())
                    });
                    let after_clear = !gt
                        .intervals()
                        .iter()
                        .any(|o| o != *iv && o.overlaps(iv.end(), iv.end() + margin));
                    before_clear && after_clear
                })
                .expect("an isolated stand-to-sit exists");
        // Just before: standing (y≈0); just after: sitting (y≈4.5).
        let before = y.slice(s2s.start().saturating_sub(margin), s2s.start());
        let after = y.slice(s2s.end(), s2s.end() + margin);
        let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len().max(1) as f64;
        assert!(mean(before).abs() < 1.0, "before = {}", mean(before));
        assert!((mean(after) - SIT_Y).abs() < 1.0, "after = {}", mean(after));
    }

    #[test]
    fn headbutts_dip_y_into_the_detection_band() {
        let t = run(0.1, 13);
        let y = t.channel(SensorChannel::AccY).unwrap();
        let gt = t.ground_truth();
        for hb in gt.of_kind(EventKind::Headbutt) {
            let slice = y.slice(hb.start(), hb.end());
            let min = slice.iter().cloned().fold(f64::MAX, f64::min);
            assert!((-6.75..=-3.75).contains(&min), "headbutt trough = {min}");
        }
    }

    #[test]
    fn steps_are_labeled_within_walking() {
        let t = run(0.5, 17);
        let gt = t.ground_truth();
        let steps = gt.count_of(EventKind::Step);
        let walking_s = gt.total_duration_of(EventKind::Walking).as_secs_f64();
        // ~1.5 steps per second of walking.
        let expected = walking_s * STEP_FREQ;
        assert!(
            (steps as f64) > expected * 0.7 && (steps as f64) < expected * 1.1,
            "steps = {steps}, expected ≈ {expected}"
        );
        // Every step lies inside some walking interval.
        for step in gt.of_kind(EventKind::Step) {
            assert!(
                gt.of_kind(EventKind::Walking)
                    .any(|w| w.overlaps(step.start(), step.end())),
                "orphan step at {}",
                step.start()
            );
        }
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let a = run(0.5, 42);
        let b = run(0.5, 42);
        assert_eq!(a, b);
        let c = run(0.5, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn group_runs_produce_distinct_traces() {
        let runs = robot_group_runs(ActivityGroup::Group2, 3, Micros::from_secs(60), 9);
        assert_eq!(runs.len(), 3);
        assert_ne!(runs[0], runs[1]);
        assert_ne!(runs[1], runs[2]);
    }

    #[test]
    fn group_metadata_matches_paper() {
        assert_eq!(ActivityGroup::Group1.idle_fraction(), 0.9);
        assert_eq!(ActivityGroup::Group2.idle_fraction(), 0.5);
        assert_eq!(ActivityGroup::Group3.idle_fraction(), 0.1);
        assert_eq!(ActivityGroup::Group1.paper_run_count(), 9);
        assert_eq!(ActivityGroup::Group2.paper_run_count(), 6);
        assert_eq!(ActivityGroup::Group3.paper_run_count(), 3);
        assert_eq!(ActivityGroup::Group3.to_string(), "10% idle");
    }

    #[test]
    #[should_panic(expected = "idle_fraction")]
    fn rejects_bad_idle_fraction() {
        robot_run(&RobotRunConfig {
            idle_fraction: 1.5,
            ..RobotRunConfig::default()
        });
    }

    #[test]
    fn sitting_posture_stays_in_paper_bands() {
        // The synthesized sitting orientation must fall in the classifier
        // bands: z in 7.5–9.5 and y in 3.5–5.5.
        assert!((7.5..=9.5).contains(&sit_z()));
        assert!((3.5..=5.5).contains(&SIT_Y));
        // And the gravity magnitude is preserved.
        assert!(((SIT_Y * SIT_Y + sit_z() * sit_z()).sqrt() - GRAVITY).abs() < 1e-9);
    }
}
