//! Synthetic human accelerometer traces.
//!
//! The paper collected six hours of recordings from three subjects during
//! routine daily activities — morning commute, retail work, office work —
//! with 20–37 % of each trace spent walking (§4.1). The key property its
//! §5.5 draws on is that humans produce a *wide range of non-target
//! motion*: a generic significant-motion detector fires on all of it,
//! while the step-tuned Sidewinder condition fires mostly on walking.
//! The synthetic traces reproduce that structure: walking bouts with the
//! same signature as the robot generator (scaled to human intensity),
//! plus three kinds of miscellaneous motion that excite a significant-
//! motion detector without matching the step band.

use crate::schedule::{fill_schedule, Budget, Segment};
use crate::synth::noise;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sidewinder_sensors::{
    EventKind, GroundTruth, LabeledInterval, Micros, SensorChannel, SensorTrace, TimeSeries,
};

const GRAVITY: f64 = 9.81;
/// Human walking oscillation amplitude on x (filtered peaks in the
/// 2.5–4.5 m/s² step band).
const WALK_AMPLITUDE: f64 = 3.6;
/// Human step cadence, Hz.
const STEP_FREQ: f64 = 1.8;

/// Configuration for one synthetic human trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HumanTraceConfig {
    /// Trace length.
    pub duration: Micros,
    /// Fraction of time walking (the paper's traces: 0.20–0.37).
    pub walking_fraction: f64,
    /// Fraction of time in miscellaneous non-target motion.
    pub misc_fraction: f64,
    /// Accelerometer rate.
    pub rate_hz: f64,
    /// RNG seed.
    pub seed: u64,
    /// Subject label used in the trace name (the paper has three).
    pub subject: &'static str,
}

impl Default for HumanTraceConfig {
    fn default() -> Self {
        HumanTraceConfig {
            duration: Micros::from_secs(1_200),
            walking_fraction: 0.28,
            misc_fraction: 0.25,
            rate_hz: 50.0,
            seed: 1,
            subject: "commute",
        }
    }
}

/// The paper's three subjects/contexts with representative mixes.
pub fn paper_subjects(duration: Micros, base_seed: u64) -> Vec<HumanTraceConfig> {
    vec![
        HumanTraceConfig {
            duration,
            walking_fraction: 0.20,
            misc_fraction: 0.40, // commuting: lots of vehicle vibration
            rate_hz: 50.0,
            seed: base_seed,
            subject: "commute",
        },
        HumanTraceConfig {
            duration,
            walking_fraction: 0.37,
            misc_fraction: 0.30, // retail: walking plus carrying/shelving
            rate_hz: 50.0,
            seed: base_seed + 1,
            subject: "retail",
        },
        HumanTraceConfig {
            duration,
            walking_fraction: 0.22,
            misc_fraction: 0.15, // office: mostly still, some fidgeting
            rate_hz: 50.0,
            seed: base_seed + 2,
            subject: "office",
        },
    ]
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Action {
    Still,
    Walk,
    /// Vehicle vibration: sustained small-amplitude broadband shaking.
    Vibration,
    /// Fidgeting / carrying: irregular medium-amplitude movements.
    Fidget,
}

/// Generates one synthetic human trace.
///
/// # Panics
///
/// Panics if the fractions are negative or sum to 1.0 or more.
pub fn human_trace(config: &HumanTraceConfig) -> SensorTrace {
    assert!(
        config.walking_fraction >= 0.0
            && config.misc_fraction >= 0.0
            && config.walking_fraction + config.misc_fraction < 1.0,
        "fractions must be non-negative and sum below 1"
    );
    assert!(config.duration > Micros::ZERO && config.rate_hz > 0.0);

    let mut rng = StdRng::seed_from_u64(config.seed);
    let walk_total = Micros::from_secs_f64(config.duration.as_secs_f64() * config.walking_fraction);
    let misc_total = Micros::from_secs_f64(config.duration.as_secs_f64() * config.misc_fraction);

    let budgets = vec![
        Budget::new(
            Action::Walk,
            walk_total,
            Micros::from_secs(10),
            Micros::from_secs(40),
        ),
        Budget::new(
            Action::Vibration,
            misc_total / 2,
            Micros::from_secs(10),
            Micros::from_secs(30),
        ),
        Budget::new(
            Action::Fidget,
            misc_total / 2,
            Micros::from_secs(3),
            Micros::from_secs(10),
        ),
    ];
    let segments = fill_schedule(&mut rng, config.duration, budgets, Action::Still);

    let rate = config.rate_hz;
    let n = config.duration.samples_at(rate);
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    let mut z = Vec::with_capacity(n);
    let mut gt = GroundTruth::new();

    for seg in &segments {
        match seg.kind {
            Action::Walk => {
                gt.push(
                    LabeledInterval::new(EventKind::Walking, seg.start, seg.end)
                        .expect("non-empty segment"),
                );
                label_steps(&mut gt, seg);
            }
            Action::Vibration | Action::Fidget => {
                gt.push(
                    LabeledInterval::new(EventKind::Misc, seg.start, seg.end)
                        .expect("non-empty segment"),
                );
            }
            Action::Still => {}
        }
    }

    let mut seg_idx = 0usize;
    // Slow fidget state: a random-walk target for irregular motion.
    let mut fidget_phase = 0.0f64;
    for i in 0..n {
        let t = Micros::from_secs_f64(i as f64 / rate);
        while seg_idx + 1 < segments.len() && t >= segments[seg_idx].end {
            seg_idx += 1;
        }
        let seg = &segments[seg_idx];
        let local = t.saturating_sub(seg.start).as_secs_f64();

        let (sx, sy, sz) = match seg.kind {
            Action::Still => (
                noise(&mut rng, 0.06),
                noise(&mut rng, 0.06),
                GRAVITY + noise(&mut rng, 0.06),
            ),
            Action::Walk => (
                WALK_AMPLITUDE * (2.0 * std::f64::consts::PI * STEP_FREQ * local).sin()
                    + noise(&mut rng, 0.3),
                noise(&mut rng, 0.4),
                GRAVITY
                    + 0.8 * (2.0 * std::f64::consts::PI * 2.0 * STEP_FREQ * local).sin()
                    + noise(&mut rng, 0.3),
            ),
            Action::Vibration => (
                // Sub-step-band shaking: strong enough for significant
                // motion, too small for the 2.5 m/s² step threshold.
                noise(&mut rng, 0.7),
                noise(&mut rng, 0.7),
                GRAVITY + noise(&mut rng, 0.9),
            ),
            Action::Fidget => {
                fidget_phase += rng.random_range(-0.3..0.3);
                fidget_phase = fidget_phase.clamp(-1.5, 1.5);
                (
                    // Irregular swings that occasionally graze the step
                    // band — the source of Sidewinder's extra wake-ups on
                    // human traces (§5.5).
                    1.6 * fidget_phase * (2.0 * std::f64::consts::PI * 0.7 * local).sin()
                        + noise(&mut rng, 0.45),
                    1.5 * fidget_phase + noise(&mut rng, 0.5),
                    GRAVITY + noise(&mut rng, 0.6),
                )
            }
        };
        x.push(sx);
        y.push(sy);
        z.push(sz);
    }

    let mut trace = SensorTrace::new(format!("human-{}-seed{}", config.subject, config.seed));
    trace.insert(
        SensorChannel::AccX,
        TimeSeries::from_samples(rate, x).expect("validated rate"),
    );
    trace.insert(
        SensorChannel::AccY,
        TimeSeries::from_samples(rate, y).expect("validated rate"),
    );
    trace.insert(
        SensorChannel::AccZ,
        TimeSeries::from_samples(rate, z).expect("validated rate"),
    );
    *trace.ground_truth_mut() = gt;
    trace
}

fn label_steps(gt: &mut GroundTruth, seg: &Segment<Action>) {
    let dur = (seg.end - seg.start).as_secs_f64();
    let mut k = 0u32;
    loop {
        let t_peak = (k as f64 + 0.25) / STEP_FREQ;
        if t_peak + 0.1 >= dur {
            break;
        }
        let at = seg.start + Micros::from_secs_f64(t_peak);
        gt.push(
            LabeledInterval::new(
                EventKind::Step,
                at.saturating_sub(Micros::from_millis(100)),
                at + Micros::from_millis(100),
            )
            .expect("non-empty step window"),
        );
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(walk: f64, misc: f64, seed: u64) -> SensorTrace {
        human_trace(&HumanTraceConfig {
            duration: Micros::from_secs(1_200),
            walking_fraction: walk,
            misc_fraction: misc,
            rate_hz: 50.0,
            seed,
            subject: "test",
        })
    }

    #[test]
    fn walking_fraction_is_respected() {
        let t = trace(0.3, 0.2, 1);
        let walking = t
            .ground_truth()
            .total_duration_of(EventKind::Walking)
            .as_secs_f64();
        assert!(
            (walking - 360.0).abs() < 80.0,
            "walking = {walking}, target 360"
        );
    }

    #[test]
    fn misc_motion_is_labeled() {
        let t = trace(0.25, 0.3, 2);
        let misc = t
            .ground_truth()
            .total_duration_of(EventKind::Misc)
            .as_secs_f64();
        assert!((misc - 360.0).abs() < 100.0, "misc = {misc}, target 360");
    }

    #[test]
    fn misc_motion_stays_below_step_band() {
        // Vibration segments shake but must not reach walking peaks.
        let t = trace(0.2, 0.4, 3);
        let x = t.channel(SensorChannel::AccX).unwrap();
        for m in t.ground_truth().of_kind(EventKind::Misc) {
            let slice = x.slice(m.start(), m.end());
            let over: usize = slice.iter().filter(|&&v| v.abs() > 4.5).count();
            // Fidgets may graze the band, but sustained walking-strength
            // oscillation must be absent.
            assert!(
                (over as f64) < slice.len() as f64 * 0.02,
                "misc segment too energetic: {over}/{}",
                slice.len()
            );
        }
    }

    #[test]
    fn still_segments_are_quiet() {
        let t = trace(0.2, 0.2, 4);
        let x = t.channel(SensorChannel::AccX).unwrap();
        // The first segment is always filler (Still).
        let slice = x.slice(Micros::ZERO, Micros::from_millis(500));
        assert!(slice.iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn paper_subjects_have_paper_walking_range() {
        let subjects = paper_subjects(Micros::from_secs(600), 7);
        assert_eq!(subjects.len(), 3);
        for s in &subjects {
            assert!((0.20..=0.37).contains(&s.walking_fraction));
        }
        let names: Vec<_> = subjects.iter().map(|s| s.subject).collect();
        assert_eq!(names, vec!["commute", "retail", "office"]);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(trace(0.3, 0.2, 5), trace(0.3, 0.2, 5));
        assert_ne!(trace(0.3, 0.2, 5), trace(0.3, 0.2, 6));
    }

    #[test]
    #[should_panic(expected = "fractions")]
    fn rejects_overfull_fractions() {
        trace(0.7, 0.5, 1);
    }
}
