//! Low-level signal synthesis helpers shared by the generators.

use rand::Rng;

/// Gaussian-ish noise via the sum of three uniforms (Irwin–Hall), scaled
/// to the requested standard deviation. Cheap, deterministic, and close
/// enough to Gaussian for sensor noise.
pub fn noise<R: Rng>(rng: &mut R, std_dev: f64) -> f64 {
    let sum: f64 = (0..3).map(|_| rng.random_range(-1.0..1.0)).sum();
    // Var of one uniform(-1,1) = 1/3; of the sum = 1. So `sum` already has
    // unit variance.
    sum * std_dev
}

/// Smoothstep interpolation `3t² − 2t³` between `a` and `b` for
/// `t ∈ [0, 1]` (clamped).
pub fn smoothstep(a: f64, b: f64, t: f64) -> f64 {
    let t = t.clamp(0.0, 1.0);
    let s = t * t * (3.0 - 2.0 * t);
    a + (b - a) * s
}

/// A raised-cosine pulse of unit peak: `0.5(1 − cos(2πt))` for
/// `t ∈ [0, 1]`, zero outside.
pub fn pulse(t: f64) -> f64 {
    if !(0.0..=1.0).contains(&t) {
        0.0
    } else {
        0.5 * (1.0 - (2.0 * std::f64::consts::PI * t).cos())
    }
}

/// A phase-continuous oscillator for tones with time-varying frequency.
#[derive(Debug, Clone, Default)]
pub struct Oscillator {
    phase: f64,
}

impl Oscillator {
    /// Creates an oscillator at phase zero.
    pub fn new() -> Self {
        Oscillator::default()
    }

    /// Advances by one sample of `freq_hz` at `rate_hz` and returns the
    /// sine value.
    pub fn tick(&mut self, freq_hz: f64, rate_hz: f64) -> f64 {
        let v = (2.0 * std::f64::consts::PI * self.phase).sin();
        self.phase += freq_hz / rate_hz;
        if self.phase >= 1.0 {
            self.phase -= self.phase.floor();
        }
        v
    }
}

/// A one-pole low-pass noise source: `y += alpha (white − y)`. Produces
/// "rumble"-like colored noise for backgrounds.
#[derive(Debug, Clone)]
pub struct ColoredNoise {
    state: f64,
    alpha: f64,
}

impl ColoredNoise {
    /// `alpha` in `(0, 1]`: smaller is darker.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        ColoredNoise { state: 0.0, alpha }
    }

    /// Next colored-noise sample with the given peak scale.
    pub fn tick<R: Rng>(&mut self, rng: &mut R, scale: f64) -> f64 {
        let white = rng.random_range(-1.0..1.0);
        self.state += self.alpha * (white - self.state);
        self.state * scale / self.alpha.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noise_has_requested_scale() {
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..20_000).map(|_| noise(&mut rng, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.1, "mean = {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.2, "std = {}", var.sqrt());
    }

    #[test]
    fn smoothstep_endpoints_and_midpoint() {
        assert_eq!(smoothstep(1.0, 5.0, 0.0), 1.0);
        assert_eq!(smoothstep(1.0, 5.0, 1.0), 5.0);
        assert_eq!(smoothstep(1.0, 5.0, 0.5), 3.0);
        // Clamped outside [0, 1].
        assert_eq!(smoothstep(1.0, 5.0, -3.0), 1.0);
        assert_eq!(smoothstep(1.0, 5.0, 9.0), 5.0);
    }

    #[test]
    fn pulse_is_zero_outside_and_peaks_at_half() {
        assert_eq!(pulse(-0.1), 0.0);
        assert_eq!(pulse(1.1), 0.0);
        assert!((pulse(0.5) - 1.0).abs() < 1e-12);
        assert!(pulse(0.0).abs() < 1e-12);
    }

    #[test]
    fn oscillator_produces_requested_frequency() {
        let mut osc = Oscillator::new();
        let rate = 8000.0;
        let samples: Vec<f64> = (0..8000).map(|_| osc.tick(100.0, rate)).collect();
        // Count zero crossings: a 100 Hz sine crosses ~200 times/second.
        let crossings = samples
            .windows(2)
            .filter(|w| (w[0] > 0.0) != (w[1] > 0.0))
            .count();
        assert!(
            (crossings as i64 - 200).abs() <= 2,
            "crossings = {crossings}"
        );
    }

    #[test]
    fn oscillator_is_phase_continuous_across_frequency_change() {
        let mut osc = Oscillator::new();
        let rate = 8000.0;
        let mut prev = osc.tick(500.0, rate);
        let mut max_jump: f64 = 0.0;
        for i in 0..2000 {
            let f = if i < 1000 { 500.0 } else { 1500.0 };
            let v = osc.tick(f, rate);
            max_jump = max_jump.max((v - prev).abs());
            prev = v;
        }
        // At 1500 Hz / 8 kHz the max per-sample delta of a sine is
        // 2π·1500/8000 ≈ 1.18; a phase glitch would jump by up to 2.
        assert!(max_jump < 1.3, "max jump = {max_jump}");
    }

    #[test]
    fn colored_noise_is_darker_than_white() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut cn = ColoredNoise::new(0.05);
        let samples: Vec<f64> = (0..8192).map(|_| cn.tick(&mut rng, 0.1)).collect();
        // Successive samples must be strongly correlated (unlike white).
        let mut corr = 0.0;
        let mut var = 0.0;
        for w in samples.windows(2) {
            corr += w[0] * w[1];
            var += w[0] * w[0];
        }
        assert!(corr / var > 0.8, "lag-1 correlation = {}", corr / var);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn colored_noise_rejects_bad_alpha() {
        ColoredNoise::new(0.0);
    }
}
