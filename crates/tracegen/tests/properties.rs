//! Property tests over the trace generators: structural invariants that
//! must hold for any configuration.

use proptest::prelude::*;
use sidewinder_sensors::{EventKind, Micros, SensorChannel};
use sidewinder_tracegen::{
    audio_trace, human_trace, robot_run, AudioEnvironment, AudioTraceConfig, HumanTraceConfig,
    RobotRunConfig,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Robot traces: exact duration, aligned channels, labels inside the
    /// trace, activity fractions near their budgets, and physical sample
    /// ranges.
    #[test]
    fn robot_traces_are_structurally_sound(
        idle_pct in 5u32..=90,
        seed in 0u64..1_000,
        duration_s in 120u64..=400,
    ) {
        let trace = robot_run(&RobotRunConfig {
            duration: Micros::from_secs(duration_s),
            idle_fraction: idle_pct as f64 / 100.0,
            rate_hz: 50.0,
            seed,
        });
        prop_assert_eq!(trace.duration(), Micros::from_secs(duration_s));
        trace.check_aligned().unwrap();
        for channel in SensorChannel::ACCEL {
            let series = trace.channel(channel).expect("accel channel present");
            prop_assert_eq!(series.len(), (duration_s * 50) as usize);
            // Accelerations stay physically plausible.
            prop_assert!(series.samples().iter().all(|v| v.abs() < 25.0));
        }
        let gt = trace.ground_truth();
        for interval in gt.intervals() {
            prop_assert!(interval.end() <= trace.duration() + Micros::from_millis(1));
        }
        // Walking time tracks its budget (73% of active) loosely.
        let active = duration_s as f64 * (1.0 - idle_pct as f64 / 100.0);
        let walking = gt.total_duration_of(EventKind::Walking).as_secs_f64();
        prop_assert!(
            (walking - active * 0.73).abs() < active * 0.25 + 20.0,
            "walking {walking} vs target {}", active * 0.73
        );
    }

    /// Human traces: full length, labels in range, steps inside walking.
    #[test]
    fn human_traces_are_structurally_sound(
        walk_pct in 10u32..=40,
        misc_pct in 0u32..=40,
        seed in 0u64..1_000,
    ) {
        let trace = human_trace(&HumanTraceConfig {
            duration: Micros::from_secs(300),
            walking_fraction: walk_pct as f64 / 100.0,
            misc_fraction: misc_pct as f64 / 100.0,
            rate_hz: 50.0,
            seed,
            subject: "prop",
        });
        prop_assert_eq!(trace.duration(), Micros::from_secs(300));
        trace.check_aligned().unwrap();
        let gt = trace.ground_truth();
        for step in gt.of_kind(EventKind::Step) {
            prop_assert!(
                gt.of_kind(EventKind::Walking)
                    .any(|w| w.overlaps(step.start(), step.end())),
                "orphan step at {}", step.start()
            );
        }
    }

    /// Audio traces: full length, samples in [-1, 1], non-overlapping
    /// events of different kinds, phrases inside speech.
    #[test]
    fn audio_traces_are_structurally_sound(
        env_idx in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let trace = audio_trace(&AudioTraceConfig {
            duration: Micros::from_secs(120),
            environment: AudioEnvironment::ALL[env_idx],
            seed,
            ..AudioTraceConfig::default()
        });
        prop_assert_eq!(trace.duration(), Micros::from_secs(120));
        let mic = trace.channel(SensorChannel::Mic).expect("mic present");
        prop_assert!(mic.samples().iter().all(|v| v.abs() <= 1.0));
        let gt = trace.ground_truth();
        // Top-level events (music/speech/siren) never overlap each other.
        let top: Vec<_> = gt
            .intervals()
            .iter()
            .filter(|iv| {
                matches!(
                    iv.kind(),
                    EventKind::Music | EventKind::Speech | EventKind::Siren
                )
            })
            .collect();
        for (i, a) in top.iter().enumerate() {
            for b in &top[i + 1..] {
                prop_assert!(
                    !a.overlaps(b.start(), b.end()),
                    "{a:?} overlaps {b:?}"
                );
            }
        }
        for phrase in gt.of_kind(EventKind::Phrase) {
            prop_assert!(
                gt.of_kind(EventKind::Speech)
                    .any(|s| s.start() <= phrase.start() && phrase.end() <= s.end()),
                "phrase outside speech"
            );
        }
    }

    /// Every generator is a pure function of its configuration.
    #[test]
    fn generators_are_deterministic(seed in 0u64..10_000) {
        let robot_config = RobotRunConfig {
            duration: Micros::from_secs(60),
            idle_fraction: 0.5,
            rate_hz: 50.0,
            seed,
        };
        prop_assert_eq!(robot_run(&robot_config), robot_run(&robot_config));
        let audio_config = AudioTraceConfig {
            duration: Micros::from_secs(20),
            seed,
            ..AudioTraceConfig::default()
        };
        prop_assert_eq!(audio_trace(&audio_config), audio_trace(&audio_config));
    }
}
