//! Drift tests: each evaluation application's hub wake-up condition
//! must print exactly to its golden `.swir` fixture (the same files the
//! IR round-trip suite pins as parse → print fixed points, under
//! `crates/ir/tests/fixtures/`). Changing a condition therefore forces
//! a conscious fixture update that reviewers see as a plain-text diff.

use sidewinder_apps::{
    HeadbuttsApp, MusicJournalApp, PhraseDetectionApp, SirenDetectorApp, StepsApp, TransitionsApp,
};
use sidewinder_sim::Application;

fn fixtures() -> Vec<(Box<dyn Application>, &'static str)> {
    vec![
        (
            Box::new(StepsApp::new()),
            include_str!("../../ir/tests/fixtures/steps.swir"),
        ),
        (
            Box::new(TransitionsApp::new()),
            include_str!("../../ir/tests/fixtures/transitions.swir"),
        ),
        (
            Box::new(HeadbuttsApp::new()),
            include_str!("../../ir/tests/fixtures/headbutts.swir"),
        ),
        (
            Box::new(SirenDetectorApp::new()),
            include_str!("../../ir/tests/fixtures/sirens.swir"),
        ),
        (
            Box::new(MusicJournalApp::new()),
            include_str!("../../ir/tests/fixtures/music.swir"),
        ),
        (
            Box::new(PhraseDetectionApp::new()),
            include_str!("../../ir/tests/fixtures/phrase.swir"),
        ),
    ]
}

#[test]
fn wake_conditions_match_their_golden_fixtures() {
    for (app, fixture) in fixtures() {
        assert_eq!(
            app.wake_condition().to_string(),
            fixture,
            "{}: wake condition drifted from its .swir fixture \
             (update crates/ir/tests/fixtures/{}.swir deliberately if intended)",
            app.name(),
            app.name()
        );
    }
}

#[test]
fn wake_conditions_round_trip_through_the_fixture_text() {
    use sidewinder_ir::Program;
    for (app, fixture) in fixtures() {
        let parsed: Program = fixture
            .parse()
            .unwrap_or_else(|e| panic!("{}: fixture does not parse: {e}", app.name()));
        assert_eq!(
            parsed,
            app.wake_condition(),
            "{}: parsed fixture is not the application's condition",
            app.name()
        );
    }
}
