//! End-to-end evaluation shape tests: the qualitative claims of the
//! paper's §5 must hold on the synthetic traces.

use sidewinder_apps::predefined;
use sidewinder_apps::{
    HeadbuttsApp, MusicJournalApp, PhraseDetectionApp, SirenDetectorApp, StepsApp, TransitionsApp,
};
use sidewinder_sensors::{Micros, SensorTrace};
use sidewinder_sim::report::savings_fraction;
use sidewinder_sim::{
    simulate, Application, BatchReport, BatchRunner, PhonePowerProfile, SharedApp, SimConfig,
    SimResult, Strategy, SweepSpec,
};
use sidewinder_tracegen::{audio_trace, robot_run, AudioTraceConfig, RobotRunConfig};
use std::sync::Arc;

fn robot(idle: f64, seed: u64) -> SensorTrace {
    robot_run(&RobotRunConfig {
        duration: Micros::from_secs(600),
        idle_fraction: idle,
        rate_hz: 50.0,
        seed,
    })
}

fn audio(seed: u64) -> SensorTrace {
    audio_trace(&AudioTraceConfig {
        duration: Micros::from_secs(300),
        seed,
        ..AudioTraceConfig::default()
    })
}

fn run(
    trace: &SensorTrace,
    app: &dyn Application,
    strategy: Strategy,
) -> sidewinder_sim::SimResult {
    simulate(
        trace,
        app,
        &strategy,
        &PhonePowerProfile::NEXUS4,
        &SimConfig::default(),
    )
    .unwrap_or_else(|e| panic!("simulate {} under {}: {e}", app.name(), strategy.label()))
}

/// Runs an app × strategy grid over one trace on the batch runner;
/// grid-shaped tests use this so the evaluation exercises the same
/// parallel path as the experiment binaries.
fn sweep(
    trace: &SensorTrace,
    apps: impl IntoIterator<Item = SharedApp>,
    strategies: impl Fn(&dyn Application) -> Vec<Strategy> + Send + Sync + 'static,
) -> BatchReport {
    let spec = SweepSpec::new()
        .shared_apps(apps)
        .trace(trace.clone())
        .strategies_per_app(strategies);
    BatchRunner::new().run(&spec)
}

/// The single result of one (app, strategy) cell of a one-trace sweep.
fn cell(report: &BatchReport, app: &str, strategy: &str) -> SimResult {
    let mut results = report.cell(app, strategy);
    assert_eq!(results.len(), 1, "expected one {app}/{strategy} cell");
    results.remove(0)
}

fn accel_apps() -> Vec<SharedApp> {
    vec![
        Arc::new(StepsApp::new()),
        Arc::new(TransitionsApp::new()),
        Arc::new(HeadbuttsApp::new()),
    ]
}

fn sidewinder(app: &dyn Application) -> Strategy {
    Strategy::HubWake {
        program: app.wake_condition(),
        hub_mw: app.wake_condition_hub_mw(),
        label: "Sw",
    }
}

fn predefined_motion() -> Strategy {
    Strategy::HubWake {
        program: predefined::significant_motion(),
        hub_mw: predefined::hub_mw(),
        label: "PA",
    }
}

fn predefined_sound() -> Strategy {
    Strategy::HubWake {
        program: predefined::significant_sound(),
        hub_mw: predefined::hub_mw(),
        label: "PA",
    }
}

#[test]
fn accel_apps_sidewinder_recall_is_perfect() {
    let trace = robot(0.5, 11);
    let report = sweep(&trace, accel_apps(), |app| vec![sidewinder(app)]);
    for sw in report.expect_all() {
        assert_eq!(
            sw.recall(),
            1.0,
            "{}: Sidewinder missed events ({}/{} recalled)",
            sw.app,
            sw.stats.recalled,
            sw.stats.events,
        );
    }
}

#[test]
fn accel_apps_power_ordering_matches_fig5() {
    let trace = robot(0.9, 7);
    let report = sweep(&trace, accel_apps(), |app| {
        vec![Strategy::AlwaysAwake, Strategy::Oracle, sidewinder(app)]
    });
    for app in ["steps", "transitions", "headbutts"] {
        let aa = cell(&report, app, "AA");
        let oracle = cell(&report, app, "Oracle");
        let sw = cell(&report, app, "Sw");
        assert!((aa.average_power_mw - 323.0).abs() < 1e-6);
        assert!(
            oracle.average_power_mw < sw.average_power_mw,
            "{}: oracle {} !< sw {}",
            app,
            oracle.average_power_mw,
            sw.average_power_mw
        );
        assert!(
            sw.average_power_mw < aa.average_power_mw / 3.0,
            "{}: sw {} too close to always-awake",
            app,
            sw.average_power_mw
        );
        let saved = savings_fraction(
            sw.average_power_mw,
            aa.average_power_mw,
            oracle.average_power_mw,
        );
        assert!(
            saved > 0.80,
            "{}: Sidewinder achieves only {:.1}% of possible savings (sw {:.1} mW, oracle {:.1} mW)",
            app,
            saved * 100.0,
            sw.average_power_mw,
            oracle.average_power_mw,
        );
    }
}

#[test]
fn predefined_activity_wastes_power_on_rare_events() {
    // §5.3: PA ≈ Sw for steps (common events) but several times more
    // power for headbutts and transitions (rare events).
    let trace = robot(0.5, 13);
    let steps = StepsApp::new();
    let headbutts = HeadbuttsApp::new();

    let pa_steps = run(&trace, &steps, predefined_motion());
    let sw_steps = run(&trace, &steps, sidewinder(&steps));
    let pa_head = run(&trace, &headbutts, predefined_motion());
    let sw_head = run(&trace, &headbutts, sidewinder(&headbutts));

    // PA has 100% recall everywhere (it fires on any motion).
    assert_eq!(pa_steps.recall(), 1.0);
    assert_eq!(pa_head.recall(), 1.0);

    // For steps, PA and Sw wake on nearly the same occasions.
    let ratio_steps = pa_steps.average_power_mw / sw_steps.average_power_mw;
    assert!(
        (0.7..1.7).contains(&ratio_steps),
        "steps: PA/Sw = {ratio_steps} (PA {} mW, Sw {} mW)",
        pa_steps.average_power_mw,
        sw_steps.average_power_mw
    );

    // For headbutts, PA wakes on all walking too: much more power.
    let ratio_head = pa_head.average_power_mw / sw_head.average_power_mw;
    assert!(
        ratio_head > 2.0,
        "headbutts: PA/Sw = {ratio_head} (PA {} mW, Sw {} mW)",
        pa_head.average_power_mw,
        sw_head.average_power_mw
    );
}

#[test]
fn duty_cycling_loses_recall_on_short_events() {
    // Fig. 6: at a 10 s sleep interval, headbutt and transition recall
    // collapse while walking-bout recall stays high.
    let trace = robot(0.9, 19);
    let dc10 = |app: &dyn Application| {
        run(
            &trace,
            app,
            Strategy::DutyCycle {
                sleep: Micros::from_secs(10),
            },
        )
    };
    let steps = dc10(&StepsApp::new());
    let headbutts = dc10(&HeadbuttsApp::new());
    assert!(
        steps.recall() > 0.6,
        "steps DC-10 recall = {}",
        steps.recall()
    );
    assert!(
        headbutts.recall() < 0.6,
        "headbutts DC-10 recall = {}",
        headbutts.recall()
    );
}

#[test]
fn short_duty_cycle_wastes_transition_power() {
    // §5.4: a 2 s sleep interval costs more than always awake
    // (paper: 339 mW vs. 323 mW).
    let trace = robot(0.9, 19);
    let dc2 = run(
        &trace,
        &StepsApp::new(),
        Strategy::DutyCycle {
            sleep: Micros::from_secs(2),
        },
    );
    assert!(
        dc2.average_power_mw > 250.0,
        "DC-2 = {} mW",
        dc2.average_power_mw
    );
}

#[test]
fn batching_keeps_recall_with_low_power() {
    let trace = robot(0.5, 23);
    let app = HeadbuttsApp::new();
    let ba = run(
        &trace,
        &app,
        Strategy::Batching {
            interval: Micros::from_secs(10),
            hub_mw: 3.6,
        },
    );
    assert_eq!(ba.recall(), 1.0);
    assert!(ba.average_power_mw < 323.0 / 2.0);
}

#[test]
fn audio_apps_match_table2_shape() {
    let trace = audio(36);
    let audio_apps: Vec<SharedApp> = vec![
        Arc::new(SirenDetectorApp::new()),
        Arc::new(MusicJournalApp::new()),
        Arc::new(PhraseDetectionApp::new()),
    ];
    let report = sweep(&trace, audio_apps, |app| {
        vec![
            sidewinder(app),
            predefined_sound(),
            Strategy::Oracle,
            Strategy::AlwaysAwake,
        ]
    });

    // Recall: every approach that sees the data catches its events.
    for app in ["sirens", "music", "phrase"] {
        let sw = cell(&report, app, "Sw");
        assert_eq!(
            sw.recall(),
            1.0,
            "{}: Sidewinder recall {} ({}/{})",
            app,
            sw.recall(),
            sw.stats.recalled,
            sw.stats.events
        );

        let pa = cell(&report, app, "PA");
        assert_eq!(pa.recall(), 1.0, "{}: PA recall {}", app, pa.recall());

        let oracle = cell(&report, app, "Oracle");
        let aa = cell(&report, app, "AA");
        assert!(oracle.average_power_mw < aa.average_power_mw);
    }

    // Power shape (Table 2): the siren condition carries the LM4F120 and
    // lands above PA; music and phrase carry the MSP430 and land below
    // PA.
    let sw_siren = cell(&report, "sirens", "Sw");
    let pa_siren = cell(&report, "sirens", "PA");
    assert!(
        sw_siren.breakdown.hub_mw > 40.0,
        "siren must use the LM4F120"
    );
    assert!(
        sw_siren.average_power_mw > pa_siren.average_power_mw,
        "siren: Sw {} !> PA {}",
        sw_siren.average_power_mw,
        pa_siren.average_power_mw
    );

    for app in ["music", "phrase"] {
        let sw = cell(&report, app, "Sw");
        let pa = cell(&report, app, "PA");
        assert!(
            sw.average_power_mw < pa.average_power_mw,
            "{}: Sw {} !< PA {}",
            app,
            sw.average_power_mw,
            pa.average_power_mw
        );
    }
}

#[test]
fn audio_recall_holds_across_every_environment() {
    // The wake conditions must stay calibrated on all three background
    // beds, not just the office trace the other tests use.
    use sidewinder_tracegen::AudioEnvironment;
    for (i, environment) in [AudioEnvironment::CoffeeShop, AudioEnvironment::Outdoors]
        .into_iter()
        .enumerate()
    {
        let trace = sidewinder_tracegen::audio_trace(&sidewinder_tracegen::AudioTraceConfig {
            duration: Micros::from_secs(300),
            environment,
            seed: 41 + i as u64,
            ..Default::default()
        });
        let audio_apps: Vec<SharedApp> = vec![
            Arc::new(SirenDetectorApp::new()),
            Arc::new(MusicJournalApp::new()),
            Arc::new(PhraseDetectionApp::new()),
        ];
        let report = sweep(&trace, audio_apps, |app| vec![sidewinder(app)]);
        for sw in report.expect_all() {
            assert_eq!(
                sw.recall(),
                1.0,
                "{} on {environment}: recall {} ({}/{})",
                sw.app,
                sw.recall(),
                sw.stats.recalled,
                sw.stats.events
            );
        }
    }
}

#[test]
fn step_counts_track_ground_truth() {
    // The application's actual *output* — the step count — must match
    // the labeled steps when the phone sees everything.
    let trace = robot(0.5, 29);
    let app = StepsApp::new();
    let counted = app.count_steps(&trace, Micros::ZERO, trace.duration());
    let labeled = trace
        .ground_truth()
        .count_of(sidewinder_sensors::EventKind::Step);
    let error = (counted as f64 - labeled as f64).abs() / labeled as f64;
    assert!(
        error < 0.1,
        "counted {counted} vs labeled {labeled} ({:.1}% error)",
        error * 100.0
    );
}

#[test]
fn phrase_condition_wakes_on_speech_but_oracle_only_on_phrase() {
    // §5.2's sub-optimality example: the phrase wake condition powers up
    // on every speech segment (~5 % of the trace) although the phrase is
    // <1 %; Sidewinder still achieves most of the possible savings.
    let trace = audio(37);
    let phrase = PhraseDetectionApp::new();
    let sw = run(&trace, &phrase, sidewinder(&phrase));
    let oracle = run(&trace, &phrase, Strategy::Oracle);
    let aa = run(&trace, &phrase, Strategy::AlwaysAwake);
    assert!(sw.breakdown.awake > oracle.breakdown.awake * 2);
    let saved = savings_fraction(
        sw.average_power_mw,
        aa.average_power_mw,
        oracle.average_power_mw,
    );
    assert!(
        saved > 0.8,
        "phrase saves only {:.1}% (sw {:.1} mW, oracle {:.1} mW)",
        saved * 100.0,
        sw.average_power_mw,
        oracle.average_power_mw
    );
}
