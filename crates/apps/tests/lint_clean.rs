//! Linting the shipped wake conditions from the application crate's own
//! perspective: the developer-API programs stay clean through the
//! print → parse round trip (where diagnostics gain line numbers), and
//! the threshold autotuner never tunes a condition into a lint finding.

use sidewinder_apps::autotune::tune_final_threshold;
use sidewinder_apps::{accelerometer_apps, audio_apps};
use sidewinder_hub::runtime::ChannelRates;
use sidewinder_ir::Program;
use sidewinder_lint::{lint_program, LintReport};
use sidewinder_sensors::{
    EventKind, GroundTruth, LabeledInterval, Micros, SensorChannel, SensorTrace, TimeSeries,
};

#[test]
fn wake_conditions_stay_clean_through_the_text_round_trip() {
    let rates = ChannelRates::default();
    for app in accelerometer_apps().iter().chain(audio_apps().iter()) {
        let built = app.wake_condition();
        let reparsed: Program = built
            .to_string()
            .parse()
            .unwrap_or_else(|e| panic!("{}: printed form does not parse: {e}", app.name()));
        let direct = lint_program(&built, &rates);
        let textual = lint_program(&reparsed, &rates);
        assert!(
            !direct.fails(true),
            "{} (API-built) fails --deny warnings:\n{}",
            app.name(),
            direct.render_human(app.name())
        );
        // Same findings either way; only the line anchors differ
        // (API-built programs have no source lines).
        let codes = |r: &LintReport| r.diagnostics.iter().map(|d| d.code).collect::<Vec<_>>();
        assert_eq!(
            codes(&direct),
            codes(&textual),
            "{}: lint findings changed across the text round trip",
            app.name()
        );
        for d in &textual.diagnostics {
            assert!(
                d.line.is_some(),
                "{}: parsed program lost line anchors: {:?}",
                app.name(),
                d
            );
        }
    }
}

/// Events of amplitude 6 at t=10 and t=20; noise bursts of amplitude 3
/// elsewhere that a lax threshold wakes on.
fn calibration_trace() -> SensorTrace {
    let rate = 50.0;
    let mut x = vec![0.0f64; 30 * 50];
    let mut gt = GroundTruth::new();
    for (start, amp, label) in [
        (5u64, 3.0, false),
        (10, 6.0, true),
        (15, 3.0, false),
        (20, 6.0, true),
        (25, 3.0, false),
    ] {
        for sample in &mut x[(start * 50) as usize..((start + 1) * 50) as usize] {
            *sample = amp;
        }
        if label {
            gt.push(
                LabeledInterval::new(
                    EventKind::Headbutt,
                    Micros::from_secs(start),
                    Micros::from_secs(start + 1),
                )
                .unwrap(),
            );
        }
    }
    let mut trace = SensorTrace::new("calib");
    trace.insert(
        SensorChannel::AccX,
        TimeSeries::from_samples(rate, x).unwrap(),
    );
    *trace.ground_truth_mut() = gt;
    trace
}

#[test]
fn autotuned_thresholds_stay_lint_clean() {
    let rates = ChannelRates::default();
    let lax: Program = "ACC_X -> movingAvg(id=1, params={2});
         1 -> minThreshold(id=2, params={1});
         2 -> OUT;"
        .parse()
        .unwrap();
    let result = tune_final_threshold(
        &lax,
        &calibration_trace(),
        &[EventKind::Headbutt],
        &[1.0, 2.0, 4.0, 5.0, 7.0],
        Micros::from_secs(1),
    )
    .expect("tuning succeeds on the calibration trace");
    result
        .program
        .validate()
        .expect("tuned program must stay valid");
    let report = lint_program(&result.program, &rates);
    assert!(
        !report.fails(true),
        "autotuned condition fails --deny warnings:\n{}",
        report.render_human("autotuned")
    );
    // Had the sweep picked 7.0 — above everything the trace delivers —
    // recall would be zero; the tuner's recall floor and the dead-wake
    // lint agree that the chosen threshold stays reachable.
    assert!(result.chosen.threshold < 6.0);
}
