//! Predefined Activity baselines (paper §4.2).
//!
//! "This configuration simulates Android's built-in significant motion
//! detector. We constructed simple classifiers to wake up the device and
//! invoke the callback method in the application when significant
//! activity is detected (significant acceleration or sound)." These are
//! the two fixed detectors a manufacturer would hard-wire; every
//! application that uses the Predefined Activity configuration shares
//! them, which is exactly why infrequent-event applications waste power
//! under this model (§5.3).

use sidewinder_core::algorithm::{
    MinThreshold, MovingAverage, OutsideThreshold, Statistic, VectorMagnitude, Window,
};
use sidewinder_core::{ProcessingBranch, ProcessingPipeline};
use sidewinder_ir::Program;
use sidewinder_sensors::SensorChannel;

/// Earth gravity, m/s².
const GRAVITY: f64 = 9.81;
/// Significant motion: how far the smoothed acceleration magnitude must
/// deviate from gravity. Tuned, as in the paper §5.3, to the smallest
/// value that retains 100 % recall on the evaluation traces.
const MOTION_DEVIATION: f64 = 0.5;
/// Significant sound: RMS threshold over a 128 ms window, tuned the same
/// way.
const SOUND_RMS: f64 = 0.03;
/// Significant-sound analysis window (samples at 8 kHz).
const SOUND_WINDOW: u32 = 1024;

/// The *significant motion* predefined activity: smoothed 3-axis
/// magnitude leaving the gravity band.
pub fn significant_motion_pipeline() -> ProcessingPipeline {
    let mut pipeline = ProcessingPipeline::new();
    let mut branches = vec![
        ProcessingBranch::new(SensorChannel::AccX),
        ProcessingBranch::new(SensorChannel::AccY),
        ProcessingBranch::new(SensorChannel::AccZ),
    ];
    for branch in &mut branches {
        branch.add(MovingAverage::new(5));
    }
    pipeline.add_branches(branches);
    pipeline.add(VectorMagnitude::new());
    pipeline.add(OutsideThreshold::new(
        GRAVITY - MOTION_DEVIATION,
        GRAVITY + MOTION_DEVIATION,
    ));
    pipeline
}

/// The *significant motion* program in intermediate-language form.
pub fn significant_motion() -> Program {
    significant_motion_pipeline()
        .compile()
        .expect("significant motion pipeline is well-formed")
}

/// The *significant sound* predefined activity: windowed RMS above a
/// fixed loudness.
pub fn significant_sound_pipeline() -> ProcessingPipeline {
    let mut pipeline = ProcessingPipeline::new();
    let mut mic = ProcessingBranch::new(SensorChannel::Mic);
    mic.add(Window::rectangular(SOUND_WINDOW))
        .add(Statistic::rms())
        .add(MinThreshold::new(SOUND_RMS));
    pipeline.add_branch(mic);
    pipeline
}

/// The *significant sound* program in intermediate-language form.
pub fn significant_sound() -> Program {
    significant_sound_pipeline()
        .compile()
        .expect("significant sound pipeline is well-formed")
}

/// Hub power for the predefined activities: both fit the MSP430 (they
/// are exactly the kind of fixed, simple detector manufacturers bake in).
pub fn hub_mw() -> f64 {
    crate::common::hub_mw_for(&significant_motion())
        .max(crate::common::hub_mw_for(&significant_sound()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidewinder_hub::runtime::{ChannelRates, HubRuntime};

    #[test]
    fn both_programs_validate_on_the_msp430() {
        significant_motion().validate().unwrap();
        significant_sound().validate().unwrap();
        assert_eq!(hub_mw(), 3.6);
    }

    #[test]
    fn motion_detector_ignores_gravity_fires_on_shake() {
        let mut hub = HubRuntime::load(&significant_motion(), &ChannelRates::default()).unwrap();
        // At rest: gravity on z only.
        for _ in 0..50 {
            for (c, v) in [
                (SensorChannel::AccX, 0.0),
                (SensorChannel::AccY, 0.0),
                (SensorChannel::AccZ, 9.81),
            ] {
                assert!(hub.push_sample(c, v).unwrap().is_empty());
            }
        }
        // Walking-strength x oscillation changes the magnitude.
        let mut woke = false;
        for i in 0..100 {
            let x = 3.5 * (i as f64 * 0.2).sin();
            for (c, v) in [
                (SensorChannel::AccX, x),
                (SensorChannel::AccY, 0.0),
                (SensorChannel::AccZ, 9.81),
            ] {
                woke |= !hub.push_sample(c, v).unwrap().is_empty();
            }
        }
        assert!(woke);
    }

    #[test]
    fn sound_detector_fires_on_loud_audio_only() {
        let mut hub = HubRuntime::load(&significant_sound(), &ChannelRates::default()).unwrap();
        // Quiet background.
        for i in 0..2048 {
            let v = 0.005 * ((i % 9) as f64 / 4.0 - 1.0);
            assert!(hub.push_sample(SensorChannel::Mic, v).unwrap().is_empty());
        }
        // Loud tone.
        let mut woke = false;
        for i in 0..2048 {
            let v = 0.2 * (i as f64 * 0.3).sin();
            woke |= !hub.push_sample(SensorChannel::Mic, v).unwrap().is_empty();
        }
        assert!(woke);
    }

    #[test]
    fn significant_motion_matches_fig2_shape() {
        // Same structure as the paper's Fig. 2 significant-motion
        // example: three averaged axes, a vector magnitude, and one
        // admission-control threshold.
        let text = significant_motion().to_string();
        assert_eq!(text.matches("movingAvg").count(), 3);
        assert_eq!(text.matches("vectorMagnitude").count(), 1);
        assert_eq!(text.matches("Threshold").count(), 1);
    }
}
