//! The Phrase Detection application (paper §3.7.2).
//!
//! "Similar to Music Journal, except different parameters are used in the
//! wake-up condition and Google Speech API was used for speech-to-text
//! translation." The wake-up condition fires on *speech-like* audio (loud
//! with high ZCR variance); the speech service then checks whether the
//! phrase of interest was actually uttered. The paper's §5.2 uses this
//! application to illustrate wake-condition sub-optimality: the condition
//! wakes on every speech segment (~5 % of each trace) although the phrase
//! itself occupies <1 %.

use crate::cloud::CloudRecognizer;
use crate::common::{debounce, hub_mw_for, visible_slice, windows_of};
use crate::features::{
    AudioFeatures, VARIANCE_GATE, VAR_WINDOW, WINDOW, ZCRVAR_SPLIT_POINT, ZCR_SPLIT,
};
use sidewinder_core::algorithm::{AllOf, MinThreshold, Statistic, Window, ZcrVariance};
use sidewinder_core::{ProcessingBranch, ProcessingPipeline};
use sidewinder_ir::Program;
use sidewinder_sensors::{EventKind, Micros, SensorChannel, SensorTrace};
use sidewinder_sim::Application;

/// The spoken-phrase detector.
#[derive(Debug, Clone)]
pub struct PhraseDetectionApp {
    recognizer: CloudRecognizer,
}

impl Default for PhraseDetectionApp {
    fn default() -> Self {
        PhraseDetectionApp {
            recognizer: CloudRecognizer::perfect(EventKind::Phrase),
        }
    }
}

impl PhraseDetectionApp {
    /// Creates the application with a perfect speech-to-text stand-in.
    pub fn new() -> Self {
        PhraseDetectionApp::default()
    }

    /// Creates the application with a custom recognizer accuracy.
    pub fn with_recognizer(recognizer: CloudRecognizer) -> Self {
        PhraseDetectionApp { recognizer }
    }

    /// Wake-up condition: same two branches as the music journal with the
    /// ZCR-variance threshold flipped — wake on *modulated* loud audio.
    pub fn wake_pipeline() -> ProcessingPipeline {
        let mut pipeline = ProcessingPipeline::new();

        let mut variance_branch = ProcessingBranch::new(SensorChannel::Mic);
        variance_branch
            .add(Window::rectangular(VAR_WINDOW as u32))
            .add(Statistic::variance())
            .add(MinThreshold::new(VARIANCE_GATE));

        let mut zcr_branch = ProcessingBranch::new(SensorChannel::Mic);
        zcr_branch
            .add(Window::rectangular(WINDOW as u32))
            .add(ZcrVariance::new(ZCR_SPLIT as u32))
            .add(MinThreshold::new(ZCRVAR_SPLIT_POINT));

        pipeline.add_branches([variance_branch, zcr_branch]);
        pipeline.add(AllOf::new());
        pipeline
    }
}

impl Application for PhraseDetectionApp {
    fn name(&self) -> &str {
        "phrase"
    }

    fn target_kinds(&self) -> Vec<EventKind> {
        vec![EventKind::Phrase]
    }

    fn classify(&self, trace: &SensorTrace, start: Micros, end: Micros) -> Vec<Micros> {
        let Some((slice, first_index, rate)) = visible_slice(trace, SensorChannel::Mic, start, end)
        else {
            return Vec::new();
        };
        let mut detections = Vec::new();
        for (window, end_time) in windows_of(slice, first_index, rate, WINDOW, WINDOW) {
            let Some(features) = AudioFeatures::of(window) else {
                continue;
            };
            // Any loud window during speech goes to the speech service;
            // it transcribes and matches the phrase.
            if features.is_loud() && self.recognizer.recognize(trace.ground_truth(), end_time) {
                detections.push(end_time);
            }
        }
        debounce(detections, Micros::from_secs(2))
    }

    fn wake_condition(&self) -> Program {
        PhraseDetectionApp::wake_pipeline()
            .compile()
            .expect("phrase pipeline is well-formed")
    }

    fn wake_condition_hub_mw(&self) -> f64 {
        hub_mw_for(&self.wake_condition())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidewinder_sensors::{GroundTruth, LabeledInterval, TimeSeries};

    /// 30 s at 8 kHz: speech-like audio (alternating voiced/unvoiced)
    /// from t=8 to t=18, with the phrase at t=12..14.
    fn speech_trace() -> SensorTrace {
        let rate = 8000.0;
        let n = 30 * 8000;
        let mut samples = Vec::with_capacity(n);
        for i in 0..n {
            let t = i as f64 / rate;
            let mut v = 0.003 * (((i * 61) % 100) as f64 / 50.0 - 1.0);
            if (8.0..18.0).contains(&t) {
                // 0.2 s voiced / 0.1 s unvoiced alternation.
                let in_voiced = (t * 10.0) as u64 % 3 < 2;
                if in_voiced {
                    let p = 2.0 * std::f64::consts::PI * 150.0 * t;
                    v += 0.22 * p.sin() + 0.12 * (3.0 * p).sin();
                } else {
                    v += if i % 2 == 0 { 0.12 } else { -0.12 };
                }
            }
            samples.push(v);
        }
        let mut trace = SensorTrace::new("speech");
        trace.insert(
            SensorChannel::Mic,
            TimeSeries::from_samples(rate, samples).unwrap(),
        );
        let mut gt = GroundTruth::new();
        gt.push(
            LabeledInterval::new(
                EventKind::Speech,
                Micros::from_secs(8),
                Micros::from_secs(18),
            )
            .unwrap(),
        );
        gt.push(
            LabeledInterval::new(
                EventKind::Phrase,
                Micros::from_secs(12),
                Micros::from_secs(14),
            )
            .unwrap(),
        );
        *trace.ground_truth_mut() = gt;
        trace
    }

    #[test]
    fn finds_the_phrase_inside_speech() {
        let app = PhraseDetectionApp::new();
        let detections = app.classify(&speech_trace(), Micros::ZERO, Micros::from_secs(30));
        assert_eq!(detections.len(), 1, "{detections:?}");
        assert!(detections[0] >= Micros::from_secs(12) && detections[0] <= Micros::from_secs(14));
    }

    #[test]
    fn speech_without_the_phrase_is_ignored() {
        let app = PhraseDetectionApp::new();
        // Visible range covers speech before the phrase only.
        assert!(app
            .classify(&speech_trace(), Micros::from_secs(8), Micros::from_secs(11))
            .is_empty());
    }

    #[test]
    fn wake_condition_fits_the_msp430() {
        let app = PhraseDetectionApp::new();
        let program = app.wake_condition();
        program.validate().unwrap();
        assert_eq!(app.wake_condition_hub_mw(), 3.6);
    }

    #[test]
    fn wake_condition_fires_on_speech_not_quiet() {
        use sidewinder_hub::runtime::{ChannelRates, HubRuntime};
        let trace = speech_trace();
        let app = PhraseDetectionApp::new();
        let mut hub = HubRuntime::load(&app.wake_condition(), &ChannelRates::default()).unwrap();
        let mic = trace.channel(SensorChannel::Mic).unwrap();
        let mut wakes_speech = 0usize;
        let mut wakes_quiet = 0usize;
        for (i, &v) in mic.samples().iter().enumerate() {
            let t = i as f64 / 8000.0;
            let w = hub.push_sample(SensorChannel::Mic, v).unwrap().len();
            if (8.0..18.3).contains(&t) {
                wakes_speech += w;
            } else {
                wakes_quiet += w;
            }
        }
        assert!(wakes_speech > 10, "got {wakes_speech}");
        assert_eq!(wakes_quiet, 0);
    }

    #[test]
    fn phrase_wake_flips_the_music_wake_threshold() {
        // "Similar to Music Journal, except different parameters are
        // used in the wake-up condition" (§3.7.2): same feature
        // branches, opposite ZCR-variance threshold direction.
        let phrase = PhraseDetectionApp::new().wake_condition().to_string();
        let music = crate::music::MusicJournalApp::new()
            .wake_condition()
            .to_string();
        assert!(phrase.contains("minThreshold"));
        assert!(music.contains("maxThreshold"));
        assert!(phrase.contains("zcrVariance") && music.contains("zcrVariance"));
        assert!(phrase.contains("allOf") && music.contains("allOf"));
    }
}
