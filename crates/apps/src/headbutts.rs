//! The Headbutts application (paper §3.7.1).
//!
//! "Detects a sudden forward head movement. The application monitors the
//! y-axis acceleration and searches for local minima between −3.75 m/s²
//! and −6.75 m/s²." Headbutts stand in for very infrequent human actions
//! such as falling.

use crate::common::{debounce, hub_mw_for, visible_slice};
use sidewinder_core::algorithm::{MaxThreshold, MovingAverage};
use sidewinder_core::{ProcessingBranch, ProcessingPipeline};
use sidewinder_dsp::filter::MovingAverage as MaFilter;
use sidewinder_dsp::stats;
use sidewinder_ir::Program;
use sidewinder_sensors::{EventKind, Micros, SensorChannel, SensorTrace};
use sidewinder_sim::Application;

/// Lower edge of the trough band, m/s².
const TROUGH_LO: f64 = -6.75;
/// Upper edge of the trough band, m/s².
const TROUGH_HI: f64 = -3.75;
/// Light smoothing (samples at 50 Hz).
const SMOOTH: usize = 3;
/// Wake-up condition: smoothed y below this triggers.
const WAKE_THRESHOLD: f64 = -3.0;

/// The headbutt (fall-like event) application.
#[derive(Debug, Clone, Default)]
pub struct HeadbuttsApp {
    _private: (),
}

impl HeadbuttsApp {
    /// Creates the application.
    pub fn new() -> Self {
        HeadbuttsApp::default()
    }

    /// Wake-up condition: lightly smoothed y-axis acceleration dipping
    /// below −3 m/s² — conservative relative to the classifier's
    /// −3.75 m/s² band edge so no headbutt is missed.
    pub fn wake_pipeline() -> ProcessingPipeline {
        let mut pipeline = ProcessingPipeline::new();
        let mut y = ProcessingBranch::new(SensorChannel::AccY);
        y.add(MovingAverage::new(SMOOTH as u32))
            .add(MaxThreshold::new(WAKE_THRESHOLD));
        pipeline.add_branch(y);
        pipeline
    }
}

impl Application for HeadbuttsApp {
    fn name(&self) -> &str {
        "headbutts"
    }

    fn target_kinds(&self) -> Vec<EventKind> {
        vec![EventKind::Headbutt]
    }

    fn classify(&self, trace: &SensorTrace, start: Micros, end: Micros) -> Vec<Micros> {
        let Some((slice, first_index, rate)) =
            visible_slice(trace, SensorChannel::AccY, start, end)
        else {
            return Vec::new();
        };
        let mut filter = MaFilter::new(SMOOTH).expect("non-zero window");
        let smoothed = filter.filter(slice);
        let troughs = stats::local_minima_in_band(&smoothed, TROUGH_LO, TROUGH_HI);
        let detections = troughs
            .into_iter()
            .map(|i| sidewinder_sensors::time::sample_time(first_index + i + SMOOTH - 1, rate))
            .collect();
        debounce(detections, Micros::from_millis(500))
    }

    fn wake_condition(&self) -> Program {
        HeadbuttsApp::wake_pipeline()
            .compile()
            .expect("headbutts pipeline is well-formed")
    }

    fn wake_condition_hub_mw(&self) -> f64 {
        hub_mw_for(&self.wake_condition())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidewinder_sensors::TimeSeries;

    /// 20 s at 50 Hz with headbutt dips (to −5.25) at t=5 and t=15.
    fn headbutt_trace() -> SensorTrace {
        let rate = 50.0;
        let mut y = Vec::new();
        for i in 0..1000 {
            let t = i as f64 / rate;
            let mut v = 0.02 * ((i % 5) as f64 - 2.0);
            for event_start in [5.0, 15.0] {
                let f = (t - event_start) / 0.4;
                if (0.0..=1.0).contains(&f) {
                    v += -5.25 * 0.5 * (1.0 - (2.0 * std::f64::consts::PI * f).cos());
                }
            }
            y.push(v);
        }
        let mut trace = SensorTrace::new("headbutts");
        trace.insert(
            SensorChannel::AccY,
            TimeSeries::from_samples(rate, y).unwrap(),
        );
        trace
    }

    #[test]
    fn detects_each_headbutt_once() {
        let app = HeadbuttsApp::new();
        let detections = app.classify(&headbutt_trace(), Micros::ZERO, Micros::from_secs(20));
        assert_eq!(detections.len(), 2, "{detections:?}");
        assert!(detections[0] >= Micros::from_secs(5) && detections[0] < Micros::from_secs(6));
        assert!(detections[1] >= Micros::from_secs(15) && detections[1] < Micros::from_secs(16));
    }

    #[test]
    fn quiet_regions_are_clean() {
        let app = HeadbuttsApp::new();
        assert!(app
            .classify(
                &headbutt_trace(),
                Micros::from_secs(7),
                Micros::from_secs(14)
            )
            .is_empty());
    }

    #[test]
    fn upward_spikes_do_not_count() {
        // A +5 spike (e.g. sitting posture) is not a headbutt.
        let rate = 50.0;
        let y: Vec<f64> = (0..500)
            .map(|i| if (100..120).contains(&i) { 5.0 } else { 0.0 })
            .collect();
        let mut trace = SensorTrace::new("up");
        trace.insert(
            SensorChannel::AccY,
            TimeSeries::from_samples(rate, y).unwrap(),
        );
        let app = HeadbuttsApp::new();
        assert!(app
            .classify(&trace, Micros::ZERO, Micros::from_secs(10))
            .is_empty());
    }

    #[test]
    fn wake_condition_fits_msp430() {
        let app = HeadbuttsApp::new();
        let program = app.wake_condition();
        program.validate().unwrap();
        assert_eq!(app.wake_condition_hub_mw(), 3.6);
    }

    #[test]
    fn wake_fires_on_dips_only() {
        use sidewinder_hub::runtime::{ChannelRates, HubRuntime};
        let trace = headbutt_trace();
        let app = HeadbuttsApp::new();
        let mut hub = HubRuntime::load(&app.wake_condition(), &ChannelRates::default()).unwrap();
        let y = trace.channel(SensorChannel::AccY).unwrap();
        let mut wakes = Vec::new();
        for (i, &v) in y.samples().iter().enumerate() {
            if !hub.push_sample(SensorChannel::AccY, v).unwrap().is_empty() {
                wakes.push(i as f64 / 50.0);
            }
        }
        assert!(!wakes.is_empty());
        for t in wakes {
            assert!(
                (5.0..5.5).contains(&t) || (15.0..15.5).contains(&t),
                "unexpected wake at {t}"
            );
        }
    }
}
