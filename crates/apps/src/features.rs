//! Shared audio features for the music-journal and phrase-detection
//! applications (paper §3.7.2).
//!
//! Both applications window the microphone and extract two features per
//! window: the **variance of the amplitude** (an energy gate that rejects
//! quiet backgrounds) and the **variance of per-sub-window zero-crossing
//! rates** (speech alternates voiced and unvoiced segments and therefore
//! has high ZCR variance; music and other steady sounds do not). The two
//! applications differ only in how they threshold the second feature.

use sidewinder_dsp::{stats, zcr};

/// Window for the ZCR-variance feature and the main classifier (256 ms
/// at 8 kHz). It must span several speech phones — voiced and unvoiced
/// segments run 50–400 ms — or a window inside a single phone would
/// look spectrally steady and be mistaken for music.
pub const WINDOW: usize = 2048;
/// Window for the energy (variance) gate (64 ms at 8 kHz): loudness
/// needs no phone-level context, and the smaller buffer keeps the
/// two-branch condition inside the MSP430's SRAM.
pub const VAR_WINDOW: usize = 512;
/// Sub-windows for the ZCR-variance feature (32 ms each).
pub const ZCR_SPLIT: usize = 8;
/// Energy gate: amplitude variance separating events from backgrounds.
pub const VARIANCE_GATE: f64 = 0.002;
/// ZCR-variance split point: below = steady (music-like), above =
/// modulated (speech-like).
pub const ZCRVAR_SPLIT_POINT: f64 = 0.005;

/// The two features of one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AudioFeatures {
    /// Variance of the amplitude over the window.
    pub variance: f64,
    /// Variance of the per-sub-window zero-crossing rates.
    pub zcr_variance: f64,
}

impl AudioFeatures {
    /// Extracts both features; `None` for windows too short to split.
    pub fn of(window: &[f64]) -> Option<AudioFeatures> {
        Some(AudioFeatures {
            variance: stats::variance(window)?,
            zcr_variance: zcr::zcr_variance(window, ZCR_SPLIT)?,
        })
    }

    /// Loud enough to be an event at all.
    pub fn is_loud(&self) -> bool {
        self.variance >= VARIANCE_GATE
    }

    /// Loud and spectrally steady — music-like.
    pub fn is_music_like(&self) -> bool {
        self.is_loud() && self.zcr_variance <= ZCRVAR_SPLIT_POINT
    }

    /// Loud and ZCR-modulated — speech-like.
    pub fn is_speech_like(&self) -> bool {
        self.is_loud() && self.zcr_variance >= ZCRVAR_SPLIT_POINT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, amp: f64) -> Vec<f64> {
        (0..WINDOW)
            .map(|i| amp * (2.0 * std::f64::consts::PI * freq * i as f64 / 8000.0).sin())
            .collect()
    }

    #[test]
    fn steady_tone_is_music_like() {
        let f = AudioFeatures::of(&tone(300.0, 0.2)).unwrap();
        assert!(f.is_loud());
        assert!(f.is_music_like());
        assert!(!f.is_speech_like());
    }

    #[test]
    fn quiet_noise_is_not_loud() {
        let window: Vec<f64> = (0..WINDOW)
            .map(|i| 0.004 * (((i * 37) % 100) as f64 / 50.0 - 1.0))
            .collect();
        let f = AudioFeatures::of(&window).unwrap();
        assert!(!f.is_loud());
        assert!(!f.is_music_like());
        assert!(!f.is_speech_like());
    }

    #[test]
    fn voiced_unvoiced_alternation_is_speech_like() {
        // Half low-frequency tone, half broadband alternation.
        let mut w = tone(150.0, 0.25);
        for (i, sample) in w.iter_mut().enumerate().skip(WINDOW / 2) {
            *sample = if i % 2 == 0 { 0.15 } else { -0.15 };
        }
        let f = AudioFeatures::of(&w).unwrap();
        assert!(f.is_loud());
        assert!(f.is_speech_like(), "zcr variance = {}", f.zcr_variance);
        assert!(!f.is_music_like());
    }

    #[test]
    fn short_windows_yield_none() {
        assert!(AudioFeatures::of(&[0.0; 3]).is_none());
        assert!(AudioFeatures::of(&[]).is_none());
    }
}
