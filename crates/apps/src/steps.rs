//! The Steps application (paper §3.7.1).
//!
//! "Counts how many steps the robot takes when it walks. The algorithm is
//! based on the human step detection algorithm proposed by Ryan Libby.
//! The application takes in raw accelerometer readings and applies a
//! low-pass filter on the x-axis acceleration. It then searches for local
//! maxima in the filtered x-axis acceleration. Local maxima between
//! 2.5 m/s² and 4.5 m/s² are detected as steps."

use crate::common::{debounce, hub_mw_for, visible_slice};
use sidewinder_core::algorithm::{MovingAverage, OutsideThreshold};
use sidewinder_core::{ProcessingBranch, ProcessingPipeline};
use sidewinder_dsp::filter::MovingAverage as MaFilter;
use sidewinder_dsp::stats;
use sidewinder_ir::Program;
use sidewinder_sensors::{EventKind, Micros, SensorChannel, SensorTrace};
use sidewinder_sim::Application;

/// Lower edge of the step peak band, m/s².
const PEAK_LO: f64 = 2.5;
/// Upper edge of the step peak band, m/s².
const PEAK_HI: f64 = 4.5;
/// Low-pass window (samples at 50 Hz) for the main classifier.
const SMOOTH: usize = 5;
/// Wake-up condition: smoothed |x| must leave this band.
const WAKE_BAND: f64 = 2.0;

/// The step-counting application.
#[derive(Debug, Clone, Default)]
pub struct StepsApp {
    _private: (),
}

impl StepsApp {
    /// Creates the application.
    pub fn new() -> Self {
        StepsApp::default()
    }

    /// The wake-up condition as a developer would build it with the API:
    /// smooth x-axis acceleration and wake when it leaves the ±2 m/s²
    /// resting band — conservative (high recall, moderate precision) as
    /// §2.1.2 prescribes.
    pub fn wake_pipeline() -> ProcessingPipeline {
        let mut pipeline = ProcessingPipeline::new();
        let mut x = ProcessingBranch::new(SensorChannel::AccX);
        x.add(MovingAverage::new(SMOOTH as u32))
            .add(OutsideThreshold::new(-WAKE_BAND, WAKE_BAND));
        pipeline.add_branch(x);
        pipeline
    }

    /// Counts individual steps in the visible range (the application's
    /// actual output; the wake/recall accounting uses walking bouts).
    pub fn count_steps(&self, trace: &SensorTrace, start: Micros, end: Micros) -> usize {
        self.classify(trace, start, end).len()
    }
}

impl Application for StepsApp {
    fn name(&self) -> &str {
        "steps"
    }

    fn target_kinds(&self) -> Vec<EventKind> {
        vec![EventKind::Walking]
    }

    fn classify(&self, trace: &SensorTrace, start: Micros, end: Micros) -> Vec<Micros> {
        let Some((slice, first_index, rate)) =
            visible_slice(trace, SensorChannel::AccX, start, end)
        else {
            return Vec::new();
        };
        let mut filter = MaFilter::new(SMOOTH).expect("non-zero window");
        let smoothed = filter.filter(slice);
        let peaks = stats::local_maxima_in_band(&smoothed, PEAK_LO, PEAK_HI);
        let detections = peaks
            .into_iter()
            .map(|i| {
                // Smoothed sample i derives from raw samples ending at
                // i + SMOOTH - 1.
                sidewinder_sensors::time::sample_time(first_index + i + SMOOTH - 1, rate)
            })
            .collect();
        // Steps cannot repeat faster than 3 Hz.
        debounce(detections, Micros::from_millis(330))
    }

    fn wake_condition(&self) -> Program {
        StepsApp::wake_pipeline()
            .compile()
            .expect("steps pipeline is well-formed")
    }

    fn wake_condition_hub_mw(&self) -> f64 {
        hub_mw_for(&self.wake_condition())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidewinder_sensors::TimeSeries;

    /// 20 s at 50 Hz: idle for 8 s, walking (1.5 Hz, 3.5 m/s²) for 8 s,
    /// idle again.
    fn walking_trace() -> SensorTrace {
        let rate = 50.0;
        let mut x = Vec::new();
        for i in 0..1000 {
            let t = i as f64 / rate;
            let v = if (8.0..16.0).contains(&t) {
                3.5 * (2.0 * std::f64::consts::PI * 1.5 * (t - 8.0)).sin()
            } else {
                0.01 * ((i % 7) as f64 - 3.0)
            };
            x.push(v);
        }
        let mut trace = SensorTrace::new("walk");
        trace.insert(
            SensorChannel::AccX,
            TimeSeries::from_samples(rate, x).unwrap(),
        );
        trace
    }

    #[test]
    fn counts_steps_at_cadence() {
        let trace = walking_trace();
        let app = StepsApp::new();
        let steps = app.count_steps(&trace, Micros::ZERO, Micros::from_secs(20));
        // 8 s at 1.5 steps/s = 12 peaks.
        assert!((11..=13).contains(&steps), "steps = {steps}");
    }

    #[test]
    fn no_steps_when_idle() {
        let trace = walking_trace();
        let app = StepsApp::new();
        assert_eq!(
            app.count_steps(&trace, Micros::ZERO, Micros::from_secs(8)),
            0
        );
    }

    #[test]
    fn detections_fall_inside_the_walking_window() {
        let trace = walking_trace();
        let app = StepsApp::new();
        for d in app.classify(&trace, Micros::ZERO, Micros::from_secs(20)) {
            assert!(d >= Micros::from_secs(8) && d <= Micros::from_millis(16_200));
        }
    }

    #[test]
    fn wake_condition_compiles_and_fits_the_msp430() {
        let app = StepsApp::new();
        let program = app.wake_condition();
        program.validate().unwrap();
        assert!(!program.uses_fft());
        assert_eq!(app.wake_condition_hub_mw(), 3.6);
        assert_eq!(program.channels(), vec![SensorChannel::AccX]);
    }

    #[test]
    fn wake_condition_fires_on_walking_not_idle() {
        use sidewinder_hub::runtime::{ChannelRates, HubRuntime};
        let trace = walking_trace();
        let app = StepsApp::new();
        let mut hub = HubRuntime::load(&app.wake_condition(), &ChannelRates::default()).unwrap();
        let series = trace.channel(SensorChannel::AccX).unwrap();
        let mut idle_wakes = 0usize;
        let mut walk_wakes = 0usize;
        for (i, &v) in series.samples().iter().enumerate() {
            let t = i as f64 / 50.0;
            let wakes = hub.push_sample(SensorChannel::AccX, v).unwrap().len();
            if (8.0..16.0).contains(&t) {
                walk_wakes += wakes;
            } else {
                idle_wakes += wakes;
            }
        }
        assert_eq!(idle_wakes, 0);
        assert!(walk_wakes > 0);
    }

    #[test]
    fn empty_range_classifies_to_nothing() {
        let trace = walking_trace();
        let app = StepsApp::new();
        assert!(app
            .classify(&trace, Micros::from_secs(5), Micros::from_secs(5))
            .is_empty());
    }
}
