//! The Transitions application (paper §3.7.1).
//!
//! "Detects transitions between sitting and standing. The application
//! monitors changes in acceleration due to gravity on the y and z axes to
//! determine the orientation of the device. If the z-axis acceleration is
//! between 9 and 11 m/s², and the acceleration on the y-axis is between
//! −1 and 1 m/s², the device is in a horizontal position and the robot is
//! assumed to be in a standing posture. Similarly, if the z-axis
//! acceleration is between 7.5 and 9.5 m/s², and the acceleration on the
//! y-axis is between 3.5 and 5.5 m/s², … a sitting posture. The
//! application detects transitions by looking for posture changes."

use crate::common::{debounce, hub_mw_for, visible_slice};
use sidewinder_core::algorithm::{MinThreshold, Statistic, Window};
use sidewinder_core::{ProcessingBranch, ProcessingPipeline};
use sidewinder_dsp::filter::MovingAverage as MaFilter;
use sidewinder_ir::{Program, WindowShapeParam};
use sidewinder_sensors::{EventKind, Micros, SensorChannel, SensorTrace};
use sidewinder_sim::Application;

/// Smoothing window (samples at 50 Hz) before posture classification.
const SMOOTH: usize = 10;
/// Wake-up condition: y-axis peak-to-peak within a 1.28 s window that
/// indicates the gravity vector is rotating.
const WAKE_P2P: f64 = 3.0;

/// Device posture inferred from smoothed gravity components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Posture {
    Standing,
    Sitting,
}

fn posture_of(y: f64, z: f64) -> Option<Posture> {
    if (9.0..=11.0).contains(&z) && (-1.0..=1.0).contains(&y) {
        Some(Posture::Standing)
    } else if (7.5..=9.5).contains(&z) && (3.5..=5.5).contains(&y) {
        Some(Posture::Sitting)
    } else {
        None
    }
}

/// The sit/stand transition application.
#[derive(Debug, Clone, Default)]
pub struct TransitionsApp {
    _private: (),
}

impl TransitionsApp {
    /// Creates the application.
    pub fn new() -> Self {
        TransitionsApp::default()
    }

    /// Wake-up condition: window the y axis and wake when the
    /// peak-to-peak spread shows the gravity vector rotating. Posture
    /// *changes* move y by ≈4.5 m/s² within 1.5 s, while static postures
    /// (standing or sitting) keep y nearly constant.
    pub fn wake_pipeline() -> ProcessingPipeline {
        let mut pipeline = ProcessingPipeline::new();
        let mut y = ProcessingBranch::new(SensorChannel::AccY);
        y.add(Window::with_hop(64, 32, WindowShapeParam::Rectangular))
            .add(Statistic::peak_to_peak())
            .add(MinThreshold::new(WAKE_P2P));
        pipeline.add_branch(y);
        pipeline
    }
}

impl Application for TransitionsApp {
    fn name(&self) -> &str {
        "transitions"
    }

    fn target_kinds(&self) -> Vec<EventKind> {
        vec![EventKind::SitToStand, EventKind::StandToSit]
    }

    fn classify(&self, trace: &SensorTrace, start: Micros, end: Micros) -> Vec<Micros> {
        let Some((y_slice, first_index, rate)) =
            visible_slice(trace, SensorChannel::AccY, start, end)
        else {
            return Vec::new();
        };
        let Some((z_slice, _, _)) = visible_slice(trace, SensorChannel::AccZ, start, end) else {
            return Vec::new();
        };
        let n = y_slice.len().min(z_slice.len());

        let mut y_filter = MaFilter::new(SMOOTH).expect("non-zero window");
        let mut z_filter = MaFilter::new(SMOOTH).expect("non-zero window");
        let y_smooth = y_filter.filter(&y_slice[..n]);
        let z_smooth = z_filter.filter(&z_slice[..n]);

        let mut detections = Vec::new();
        let mut last_posture: Option<Posture> = None;
        for (i, (&y, &z)) in y_smooth.iter().zip(&z_smooth).enumerate() {
            if let Some(current) = posture_of(y, z) {
                if let Some(prev) = last_posture {
                    if prev != current {
                        detections.push(sidewinder_sensors::time::sample_time(
                            first_index + i + SMOOTH - 1,
                            rate,
                        ));
                    }
                }
                last_posture = Some(current);
            }
        }
        // A posture change takes ≥1 s; suppress jitter around band edges.
        debounce(detections, Micros::from_secs(1))
    }

    fn wake_condition(&self) -> Program {
        TransitionsApp::wake_pipeline()
            .compile()
            .expect("transitions pipeline is well-formed")
    }

    fn wake_condition_hub_mw(&self) -> f64 {
        hub_mw_for(&self.wake_condition())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidewinder_sensors::TimeSeries;

    /// 30 s at 50 Hz: standing, sit at t=10 (1.5 s ramp), sitting, stand
    /// at t=20, standing.
    fn posture_trace() -> SensorTrace {
        let rate = 50.0;
        let sit_y = 4.5;
        let sit_z = 8.717;
        let mut y = Vec::new();
        let mut z = Vec::new();
        for i in 0..1500 {
            let t = i as f64 / rate;
            let (vy, vz) = if t < 10.0 {
                (0.0, 9.81)
            } else if t < 11.5 {
                let f = (t - 10.0) / 1.5;
                (sit_y * f, 9.81 + (sit_z - 9.81) * f)
            } else if t < 20.0 {
                (sit_y, sit_z)
            } else if t < 21.5 {
                let f = (t - 20.0) / 1.5;
                (sit_y * (1.0 - f), sit_z + (9.81 - sit_z) * f)
            } else {
                (0.0, 9.81)
            };
            y.push(vy);
            z.push(vz);
        }
        let mut trace = SensorTrace::new("postures");
        trace.insert(
            SensorChannel::AccY,
            TimeSeries::from_samples(rate, y).unwrap(),
        );
        trace.insert(
            SensorChannel::AccZ,
            TimeSeries::from_samples(rate, z).unwrap(),
        );
        trace
    }

    #[test]
    fn detects_both_transitions() {
        let app = TransitionsApp::new();
        let detections = app.classify(&posture_trace(), Micros::ZERO, Micros::from_secs(30));
        assert_eq!(detections.len(), 2, "{detections:?}");
        assert!(detections[0] >= Micros::from_secs(10) && detections[0] <= Micros::from_secs(13));
        assert!(detections[1] >= Micros::from_secs(20) && detections[1] <= Micros::from_secs(23));
    }

    #[test]
    fn static_postures_yield_no_detections() {
        let app = TransitionsApp::new();
        assert!(app
            .classify(&posture_trace(), Micros::ZERO, Micros::from_secs(9))
            .is_empty());
        assert!(app
            .classify(
                &posture_trace(),
                Micros::from_secs(13),
                Micros::from_secs(19)
            )
            .is_empty());
    }

    #[test]
    fn partial_visibility_misses_the_transition() {
        // Seeing only the middle of the ramp (no posture on either side)
        // cannot produce a detection — the recall mechanism duty cycling
        // suffers from.
        let app = TransitionsApp::new();
        assert!(app
            .classify(
                &posture_trace(),
                Micros::from_millis(10_400),
                Micros::from_millis(11_200)
            )
            .is_empty());
    }

    #[test]
    fn wake_condition_fits_msp430_and_reads_y() {
        let app = TransitionsApp::new();
        let program = app.wake_condition();
        program.validate().unwrap();
        assert_eq!(app.wake_condition_hub_mw(), 3.6);
        assert_eq!(program.channels(), vec![SensorChannel::AccY]);
    }

    #[test]
    fn wake_condition_fires_during_ramp_only() {
        use sidewinder_hub::runtime::{ChannelRates, HubRuntime};
        let trace = posture_trace();
        let app = TransitionsApp::new();
        let mut hub = HubRuntime::load(&app.wake_condition(), &ChannelRates::default()).unwrap();
        let y = trace.channel(SensorChannel::AccY).unwrap();
        let mut wakes_in_ramp = 0;
        let mut wakes_static = 0;
        for (i, &v) in y.samples().iter().enumerate() {
            let t = i as f64 / 50.0;
            let w = hub.push_sample(SensorChannel::AccY, v).unwrap().len();
            // Window reports lag by up to 1.28 s.
            if (10.0..13.0).contains(&t) || (20.0..23.0).contains(&t) {
                wakes_in_ramp += w;
            } else {
                wakes_static += w;
            }
        }
        assert!(wakes_in_ramp > 0);
        assert_eq!(wakes_static, 0);
    }
}
