//! Cloud-service stand-ins.
//!
//! The paper's music journal identifies songs with the Echoprint.me web
//! service and phrase detection uses the Google Speech API (§3.7.2).
//! Those services run *after* the phone wakes, so they influence the
//! application's final output but not the energy or recall of the wake-up
//! mechanisms under study. The stand-ins consult ground truth with
//! configurable true/false-positive rates, deterministically derived from
//! the query timestamp so simulations are reproducible.

use sidewinder_sensors::{EventKind, GroundTruth, Micros};

/// A deterministic recognizer stub for one event kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloudRecognizer {
    kind: EventKind,
    true_positive_rate: f64,
    false_positive_rate: f64,
    seed: u64,
}

impl CloudRecognizer {
    /// A perfect recognizer for `kind` (the default used in the power
    /// experiments, where the paper calibrates for 100 % recall).
    pub fn perfect(kind: EventKind) -> Self {
        CloudRecognizer {
            kind,
            true_positive_rate: 1.0,
            false_positive_rate: 0.0,
            seed: 0,
        }
    }

    /// A recognizer with the given accuracy.
    ///
    /// # Panics
    ///
    /// Panics if either rate is outside `[0, 1]`.
    pub fn with_rates(kind: EventKind, true_positive: f64, false_positive: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&true_positive) && (0.0..=1.0).contains(&false_positive),
            "rates must be probabilities"
        );
        CloudRecognizer {
            kind,
            true_positive_rate: true_positive,
            false_positive_rate: false_positive,
            seed,
        }
    }

    /// The event kind this recognizer identifies.
    pub fn kind(&self) -> EventKind {
        self.kind
    }

    /// Whether the service recognizes its target at time `t`, given the
    /// recording's ground truth.
    pub fn recognize(&self, ground_truth: &GroundTruth, t: Micros) -> bool {
        let present = ground_truth.of_kind(self.kind).any(|iv| iv.contains(t));
        let rate = if present {
            self.true_positive_rate
        } else {
            self.false_positive_rate
        };
        hash_unit(t.as_micros() ^ self.seed) < rate
    }
}

/// Maps a 64-bit value to `[0, 1)` via the SplitMix64 finalizer —
/// deterministic, uniform, and with no RNG state to thread through the
/// simulator.
fn hash_unit(mut x: u64) -> f64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidewinder_sensors::LabeledInterval;

    fn music_gt() -> GroundTruth {
        [LabeledInterval::new(
            EventKind::Music,
            Micros::from_secs(10),
            Micros::from_secs(20),
        )
        .unwrap()]
        .into_iter()
        .collect()
    }

    #[test]
    fn perfect_recognizer_matches_ground_truth() {
        let r = CloudRecognizer::perfect(EventKind::Music);
        let gt = music_gt();
        assert!(r.recognize(&gt, Micros::from_secs(15)));
        assert!(!r.recognize(&gt, Micros::from_secs(25)));
        assert_eq!(r.kind(), EventKind::Music);
    }

    #[test]
    fn rates_shape_accuracy() {
        let gt = music_gt();
        let flaky = CloudRecognizer::with_rates(EventKind::Music, 0.8, 0.05, 42);
        let mut tp = 0;
        let mut fp = 0;
        let n = 2_000;
        for i in 0..n {
            // Inside the event.
            if flaky.recognize(&gt, Micros::from_secs(10) + Micros::from_micros(i)) {
                tp += 1;
            }
            // Outside the event.
            if flaky.recognize(&gt, Micros::from_secs(30) + Micros::from_micros(i)) {
                fp += 1;
            }
        }
        let tp_rate = tp as f64 / n as f64;
        let fp_rate = fp as f64 / n as f64;
        assert!((tp_rate - 0.8).abs() < 0.05, "tp rate {tp_rate}");
        assert!((fp_rate - 0.05).abs() < 0.03, "fp rate {fp_rate}");
    }

    #[test]
    fn recognition_is_deterministic() {
        let gt = music_gt();
        let r = CloudRecognizer::with_rates(EventKind::Music, 0.5, 0.0, 7);
        let t = Micros::from_secs(12);
        assert_eq!(r.recognize(&gt, t), r.recognize(&gt, t));
    }

    #[test]
    #[should_panic(expected = "rates must be probabilities")]
    fn rejects_bad_rates() {
        CloudRecognizer::with_rates(EventKind::Music, 1.5, 0.0, 0);
    }
}
