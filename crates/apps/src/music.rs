//! The Music Journal application (paper §3.7.2).
//!
//! "Creates a list of all the songs heard during the day using the web
//! services provided by Echoprint.me. Audio data is partitioned into
//! windows and passed to two branches for feature extraction. The first
//! branch computes the variance of the amplitude over the entire window.
//! The second branch further partitions the data into smaller windows and
//! computes the zero crossing rate … It then calculates the variance in
//! zero crossing rate across the set of the sub-windows. Finally, an
//! admission control step uses thresholds … to determine if an event of
//! interest has occurred. Data is then passed to the Echoprint.me web
//! service to identify the song."

use crate::cloud::CloudRecognizer;
use crate::common::{debounce, hub_mw_for, visible_slice, windows_of};
use crate::features::{
    AudioFeatures, VARIANCE_GATE, VAR_WINDOW, WINDOW, ZCRVAR_SPLIT_POINT, ZCR_SPLIT,
};
use sidewinder_core::algorithm::{
    AllOf, MaxThreshold, MinThreshold, Statistic, Sustained, Window, ZcrVariance,
};
use sidewinder_core::{ProcessingBranch, ProcessingPipeline};
use sidewinder_ir::Program;
use sidewinder_sensors::{EventKind, Micros, SensorChannel, SensorTrace};
use sidewinder_sim::Application;

/// The song-journaling application.
#[derive(Debug, Clone)]
pub struct MusicJournalApp {
    recognizer: CloudRecognizer,
}

impl Default for MusicJournalApp {
    fn default() -> Self {
        MusicJournalApp {
            recognizer: CloudRecognizer::perfect(EventKind::Music),
        }
    }
}

impl MusicJournalApp {
    /// Creates the application with a perfect Echoprint stand-in.
    pub fn new() -> Self {
        MusicJournalApp::default()
    }

    /// Creates the application with a custom recognizer accuracy.
    pub fn with_recognizer(recognizer: CloudRecognizer) -> Self {
        MusicJournalApp { recognizer }
    }

    /// The wake-up condition exactly as the paper describes: two feature
    /// branches joined by an AND, thresholded for *loud and steady*
    /// audio.
    pub fn wake_pipeline() -> ProcessingPipeline {
        let mut pipeline = ProcessingPipeline::new();

        let mut variance_branch = ProcessingBranch::new(SensorChannel::Mic);
        variance_branch
            .add(Window::rectangular(VAR_WINDOW as u32))
            .add(Statistic::variance())
            .add(MinThreshold::new(VARIANCE_GATE));

        let mut zcr_branch = ProcessingBranch::new(SensorChannel::Mic);
        zcr_branch
            .add(Window::rectangular(WINDOW as u32))
            .add(ZcrVariance::new(ZCR_SPLIT as u32))
            .add(MaxThreshold::new(ZCRVAR_SPLIT_POINT));

        pipeline.add_branches([variance_branch, zcr_branch]);
        pipeline.add(AllOf::new());
        // Songs are continuous: require three consecutive music-like
        // windows (~0.75 s) so isolated steady patches inside speech do
        // not wake the phone.
        pipeline.add(Sustained::new(3));
        pipeline
    }
}

impl Application for MusicJournalApp {
    fn name(&self) -> &str {
        "music"
    }

    fn target_kinds(&self) -> Vec<EventKind> {
        vec![EventKind::Music]
    }

    fn classify(&self, trace: &SensorTrace, start: Micros, end: Micros) -> Vec<Micros> {
        let Some((slice, first_index, rate)) = visible_slice(trace, SensorChannel::Mic, start, end)
        else {
            return Vec::new();
        };
        let mut detections = Vec::new();
        for (window, end_time) in windows_of(slice, first_index, rate, WINDOW, WINDOW) {
            let Some(features) = AudioFeatures::of(window) else {
                continue;
            };
            if features.is_music_like() && self.recognizer.recognize(trace.ground_truth(), end_time)
            {
                detections.push(end_time);
            }
        }
        // One journal entry per song; the generator's songs are ≥8 s.
        debounce(detections, Micros::from_secs(5))
    }

    fn wake_condition(&self) -> Program {
        MusicJournalApp::wake_pipeline()
            .compile()
            .expect("music pipeline is well-formed")
    }

    fn wake_condition_hub_mw(&self) -> f64 {
        hub_mw_for(&self.wake_condition())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidewinder_sensors::{GroundTruth, LabeledInterval, TimeSeries};

    /// 30 s at 8 kHz: quiet, then a steady 280 Hz chord (music) from
    /// t=10 to t=20, labeled.
    fn music_trace() -> SensorTrace {
        let rate = 8000.0;
        let n = 30 * 8000;
        let mut samples = Vec::with_capacity(n);
        for i in 0..n {
            let t = i as f64 / rate;
            let mut v = 0.003 * (((i * 37) % 100) as f64 / 50.0 - 1.0);
            if (10.0..20.0).contains(&t) {
                let p = 2.0 * std::f64::consts::PI * 280.0 * t;
                v += 0.18 * p.sin() + 0.12 * (2.0 * p).sin();
            }
            samples.push(v);
        }
        let mut trace = SensorTrace::new("music");
        trace.insert(
            SensorChannel::Mic,
            TimeSeries::from_samples(rate, samples).unwrap(),
        );
        let mut gt = GroundTruth::new();
        gt.push(
            LabeledInterval::new(
                EventKind::Music,
                Micros::from_secs(10),
                Micros::from_secs(20),
            )
            .unwrap(),
        );
        *trace.ground_truth_mut() = gt;
        trace
    }

    #[test]
    fn journals_the_song() {
        let app = MusicJournalApp::new();
        let detections = app.classify(&music_trace(), Micros::ZERO, Micros::from_secs(30));
        // The 10 s song yields one entry per 5 s debounce period.
        assert!((1..=2).contains(&detections.len()), "{detections:?}");
        assert!(detections[0] >= Micros::from_secs(10));
        assert!(detections[0] <= Micros::from_secs(11));
    }

    #[test]
    fn quiet_audio_yields_nothing() {
        let app = MusicJournalApp::new();
        assert!(app
            .classify(&music_trace(), Micros::ZERO, Micros::from_secs(9))
            .is_empty());
    }

    #[test]
    fn imperfect_recognizer_can_miss() {
        let never = CloudRecognizer::with_rates(EventKind::Music, 0.0, 0.0, 1);
        let app = MusicJournalApp::with_recognizer(never);
        assert!(app
            .classify(&music_trace(), Micros::ZERO, Micros::from_secs(30))
            .is_empty());
    }

    #[test]
    fn wake_condition_fits_the_msp430() {
        // Music journal runs on the low-power MCU (Table 2: 32.3 mW
        // includes the MSP430's 3.6 mW, not the LM4F120).
        let app = MusicJournalApp::new();
        let program = app.wake_condition();
        program.validate().unwrap();
        assert!(!program.uses_fft());
        assert_eq!(app.wake_condition_hub_mw(), 3.6);
    }

    #[test]
    fn wake_condition_fires_on_music() {
        use sidewinder_hub::runtime::{ChannelRates, HubRuntime};
        let trace = music_trace();
        let app = MusicJournalApp::new();
        let mut hub = HubRuntime::load(&app.wake_condition(), &ChannelRates::default()).unwrap();
        let mic = trace.channel(SensorChannel::Mic).unwrap();
        let mut wakes_in_music = 0usize;
        let mut wakes_quiet = 0usize;
        for (i, &v) in mic.samples().iter().enumerate() {
            let t = i as f64 / 8000.0;
            let w = hub.push_sample(SensorChannel::Mic, v).unwrap().len();
            if (10.0..20.3).contains(&t) {
                wakes_in_music += w;
            } else {
                wakes_quiet += w;
            }
        }
        // The AND-join emits once per aligned 2048-sample window:
        // ~3.9 wakes per second of music.
        assert!(wakes_in_music > 20, "got {wakes_in_music}");
        assert_eq!(wakes_quiet, 0);
    }
}
