//! The Siren detector (paper §3.7.2).
//!
//! "Detects sirens originating from emergency vehicles. The application
//! applies a 750 Hz high-pass filter in order to remove a significant
//! portion of sounds that aren't sirens. The data in each window is
//! transformed to the frequency domain using a FFT in order to extract
//! the magnitude of the dominant frequency and the mean magnitude of all
//! frequency bins. The ratio … is used to determine if the window
//! contains pitched sounds. Pitched sounds between 850 Hz and 1800 Hz
//! that last longer than 650 ms are classified as sirens."
//!
//! The wake-up condition is the one application whose pipeline the MSP430
//! cannot run in real time; the power model charges the LM4F120 instead,
//! reproducing the paper's Table 2 footnote.

use crate::common::{hub_mw_for, visible_slice, windows_of};
use sidewinder_core::algorithm::{
    Fft, HighPassFilter, LowPassFilter, MinThreshold, SpectralMagnitude, Statistic, Sustained,
    Window,
};
use sidewinder_core::{ProcessingBranch, ProcessingPipeline};
use sidewinder_dsp::{fft, filter, spectral};
use sidewinder_ir::Program;
use sidewinder_sensors::{EventKind, Micros, SensorChannel, SensorTrace};
use sidewinder_sim::Application;

/// Analysis window length in samples (128 ms at 8 kHz).
const WINDOW: usize = 1024;
/// High-pass cut-off, Hz (paper value).
const HIGHPASS_HZ: f64 = 750.0;
/// Wake-up condition: peak spectral magnitude above the cut-off.
const WAKE_PEAK: f64 = 25.0;
/// Consecutive wake windows required: 6 × 128 ms = 768 ms ≥ 650 ms.
const WAKE_SUSTAIN: u32 = 6;
/// Classifier: minimum pitched duration, µs (paper: 650 ms).
const MIN_PITCHED_US: u64 = 650_000;
/// Classifier: accepted dominant-frequency band, Hz (paper: 850–1800,
/// with margin for spectral leakage).
const BAND_LO_HZ: f64 = 800.0;
const BAND_HI_HZ: f64 = 1_900.0;
/// Classifier: dominant-to-mean ratio for "pitched".
const PITCH_RATIO: f64 = 6.0;
/// Narrow-band variant: fixed-tone alarm band, Hz. Many regulated
/// alarm tones sit at a known frequency (the bench tone is 1 kHz), so
/// the wake-up condition only needs the spectral peak *inside* this
/// 40 Hz band — 5 FFT bins at 8 kHz / 1024 — not the whole spectrum.
const TONE_LO_HZ: f64 = 980.0;
const TONE_HI_HZ: f64 = 1_020.0;

/// The emergency-siren detector.
#[derive(Debug, Clone, Default)]
pub struct SirenDetectorApp {
    _private: (),
}

impl SirenDetectorApp {
    /// Creates the application.
    pub fn new() -> Self {
        SirenDetectorApp::default()
    }

    /// Wake-up condition: high-pass at 750 Hz, FFT, and wake when a
    /// strong spectral peak persists for six consecutive windows. The
    /// FFT stages push this pipeline beyond the MSP430's real-time
    /// capability.
    pub fn wake_pipeline() -> ProcessingPipeline {
        let mut pipeline = ProcessingPipeline::new();
        let mut mic = ProcessingBranch::new(SensorChannel::Mic);
        mic.add(Window::rectangular(WINDOW as u32))
            .add(HighPassFilter::new(HIGHPASS_HZ))
            .add(Fft::new())
            .add(SpectralMagnitude::new())
            .add(Statistic::max())
            .add(MinThreshold::new(WAKE_PEAK))
            .add(Sustained::new(WAKE_SUSTAIN));
        pipeline.add_branch(mic);
        pipeline
    }

    /// Narrow-band wake-up condition for fixed-tone alarms: band-pass
    /// the 40 Hz tone band, then wake on a sustained in-band spectral
    /// peak. Written the natural way — filters plus an FFT — it needs
    /// the LM4F120 like [`SirenDetectorApp::wake_pipeline`]; the
    /// optimizer's Goertzel strength reduction rewrites the whole
    /// spectral chain into 5 single-bin probes that fit the MSP430
    /// (see the `narrowband_*` tests).
    pub fn narrowband_wake_pipeline() -> ProcessingPipeline {
        let mut pipeline = ProcessingPipeline::new();
        let mut mic = ProcessingBranch::new(SensorChannel::Mic);
        mic.add(Window::rectangular(WINDOW as u32))
            .add(HighPassFilter::new(TONE_LO_HZ))
            .add(LowPassFilter::new(TONE_HI_HZ))
            .add(Fft::new())
            .add(SpectralMagnitude::new())
            .add(Statistic::max())
            .add(MinThreshold::new(WAKE_PEAK))
            .add(Sustained::new(WAKE_SUSTAIN));
        pipeline.add_branch(mic);
        pipeline
    }

    /// The narrow-band pipeline compiled to IR.
    pub fn narrowband_wake_condition() -> Program {
        SirenDetectorApp::narrowband_wake_pipeline()
            .compile()
            .expect("narrow-band siren pipeline is well-formed")
    }

    /// Whether one window is a pitched sound in the siren band.
    fn window_is_siren(window: &[f64], rate: f64) -> bool {
        let filtered = match filter::fft_highpass(window, HIGHPASS_HZ, rate) {
            Ok(f) => f,
            Err(_) => return false,
        };
        let mags = fft::real_fft_magnitudes(&filtered);
        let Some(peak) = spectral::dominant_bin(&mags[1..]) else {
            return false;
        };
        let freq = fft::bin_to_frequency(peak.bin + 1, window.len(), rate);
        let Some(ratio) = spectral::dominant_to_mean_ratio(&mags[1..]) else {
            return false;
        };
        peak.magnitude > WAKE_PEAK
            && ratio > PITCH_RATIO
            && (BAND_LO_HZ..=BAND_HI_HZ).contains(&freq)
    }
}

impl Application for SirenDetectorApp {
    fn name(&self) -> &str {
        "sirens"
    }

    fn target_kinds(&self) -> Vec<EventKind> {
        vec![EventKind::Siren]
    }

    fn classify(&self, trace: &SensorTrace, start: Micros, end: Micros) -> Vec<Micros> {
        let Some((slice, first_index, rate)) = visible_slice(trace, SensorChannel::Mic, start, end)
        else {
            return Vec::new();
        };
        let hop = WINDOW / 2;
        let mut detections = Vec::new();
        let mut run_windows = 0usize;
        let mut reported = false;
        for (window, end_time) in windows_of(slice, first_index, rate, WINDOW, hop) {
            if SirenDetectorApp::window_is_siren(window, rate) {
                run_windows += 1;
                let pitched_us =
                    (WINDOW + (run_windows - 1) * hop) as u64 * 1_000_000 / rate as u64;
                if pitched_us >= MIN_PITCHED_US && !reported {
                    detections.push(end_time);
                    reported = true;
                }
            } else {
                run_windows = 0;
                reported = false;
            }
        }
        detections
    }

    fn wake_condition(&self) -> Program {
        SirenDetectorApp::wake_pipeline()
            .compile()
            .expect("siren pipeline is well-formed")
    }

    fn wake_condition_hub_mw(&self) -> f64 {
        hub_mw_for(&self.wake_condition())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidewinder_hub::Mcu;
    use sidewinder_sensors::TimeSeries;

    /// 30 s at 8 kHz: quiet noise with a 1.2 kHz sweep-like siren from
    /// t=10 to t=14 and a short (0.4 s) pitched blip at t=20.
    fn siren_trace() -> SensorTrace {
        let rate = 8000.0;
        let n = 30 * 8000;
        let mut samples = Vec::with_capacity(n);
        let mut phase = 0.0f64;
        for i in 0..n {
            let t = i as f64 / rate;
            let mut v = 0.004 * ((i * 2_654_435_761 % 1000) as f64 / 500.0 - 1.0);
            if (10.0..14.0).contains(&t) || (20.0..20.4).contains(&t) {
                let freq = 1200.0 + 300.0 * (2.0 * std::f64::consts::PI * t / 3.0).sin();
                phase += freq / rate;
                v += 0.32 * (2.0 * std::f64::consts::PI * phase).sin();
            }
            samples.push(v);
        }
        let mut trace = SensorTrace::new("siren");
        trace.insert(
            SensorChannel::Mic,
            TimeSeries::from_samples(rate, samples).unwrap(),
        );
        trace
    }

    #[test]
    fn detects_the_long_siren_not_the_blip() {
        let app = SirenDetectorApp::new();
        let detections = app.classify(&siren_trace(), Micros::ZERO, Micros::from_secs(30));
        assert_eq!(detections.len(), 1, "{detections:?}");
        assert!(
            detections[0] >= Micros::from_millis(10_600)
                && detections[0] <= Micros::from_millis(12_500),
            "{:?}",
            detections[0]
        );
    }

    #[test]
    fn quiet_audio_yields_nothing() {
        let app = SirenDetectorApp::new();
        assert!(app
            .classify(&siren_trace(), Micros::ZERO, Micros::from_secs(9))
            .is_empty());
    }

    #[test]
    fn wake_condition_requires_the_lm4f120() {
        // Reproduces the Table 2 footnote: the siren condition's FFT
        // stages exceed the MSP430.
        let app = SirenDetectorApp::new();
        let program = app.wake_condition();
        program.validate().unwrap();
        assert!(program.uses_fft());
        assert_eq!(app.wake_condition_hub_mw(), Mcu::LM4F120.awake_power_mw);
    }

    /// 30 s at 8 kHz: quiet noise with a steady 1 kHz alarm tone (the
    /// center of the narrow band) from t=10 to t=14.
    fn tone_trace() -> SensorTrace {
        let rate = 8000.0;
        let n = 30 * 8000;
        let mut samples = Vec::with_capacity(n);
        for i in 0..n {
            let t = i as f64 / rate;
            let mut v = 0.004 * ((i * 2_654_435_761 % 1000) as f64 / 500.0 - 1.0);
            if (10.0..14.0).contains(&t) {
                v += 0.32 * (2.0 * std::f64::consts::PI * 1000.0 * t).sin();
            }
            samples.push(v);
        }
        let mut trace = SensorTrace::new("tone");
        trace.insert(
            SensorChannel::Mic,
            TimeSeries::from_samples(rate, samples).unwrap(),
        );
        trace
    }

    #[test]
    fn narrowband_condition_strength_reduces_to_goertzel() {
        use sidewinder_hub::runtime::ChannelRates;
        use sidewinder_opt::{optimize, EquivalenceTier, OptOptions};
        let program = SirenDetectorApp::narrowband_wake_condition();
        program.validate().unwrap();
        assert!(program.uses_fft(), "written naively, the condition FFTs");
        let (optimized, report) = optimize(
            &program,
            &ChannelRates::default(),
            &OptOptions::aggressive(),
        );
        assert_eq!(report.goertzel_rewrites, 1, "{}", report.summary());
        assert_eq!(report.tier, EquivalenceTier::TolerancePinned);
        assert!(optimized.validate().is_ok());
        assert!(!optimized.uses_fft(), "the spectral chain must be gone");
        // window + goertzel + minThreshold + sustained.
        assert_eq!(optimized.nodes().count(), 4);
        assert!(
            report.flops_after < report.flops_before / 2.0,
            "{} -> {}",
            report.flops_before,
            report.flops_after
        );
    }

    #[test]
    fn optimized_narrowband_fits_the_msp430() {
        use sidewinder_hub::runtime::ChannelRates;
        use sidewinder_opt::{optimize, OptOptions};
        let rates = ChannelRates::default();
        let program = SirenDetectorApp::narrowband_wake_condition();
        assert_eq!(Mcu::cheapest_for(&program, &rates).unwrap(), Mcu::LM4F120);
        let (optimized, _) = optimize(&program, &rates, &OptOptions::aggressive());
        // 5 Goertzel probes over a 1024-sample window at 8 kHz is
        // ~120 kflops/s, inside the MSP430's 256 kflop/s budget; the
        // hub idles at 3.6 mW instead of 49.4 mW.
        assert_eq!(Mcu::cheapest_for(&optimized, &rates).unwrap(), Mcu::MSP430);
        assert_eq!(hub_mw_for(&optimized), Mcu::MSP430.awake_power_mw);
    }

    #[test]
    fn narrowband_detection_parity_on_the_alarm_tone() {
        use sidewinder_hub::runtime::{ChannelRates, HubRuntime};
        use sidewinder_opt::{optimize, OptOptions};
        let program = SirenDetectorApp::narrowband_wake_condition();
        let (optimized, report) = optimize(
            &program,
            &ChannelRates::default(),
            &OptOptions::aggressive(),
        );
        assert_eq!(report.goertzel_rewrites, 1);

        let trace = tone_trace();
        let mic = trace.channel(SensorChannel::Mic).unwrap();
        let replay = |p: &Program| {
            let mut hub = HubRuntime::load(p, &ChannelRates::default()).unwrap();
            let mut wakes = Vec::new();
            for (i, &v) in mic.samples().iter().enumerate() {
                for wake in hub.push_sample(SensorChannel::Mic, v).unwrap() {
                    wakes.push((i, wake.seq, wake.value));
                }
            }
            wakes
        };
        let before = replay(&program);
        let after = replay(&optimized);
        assert!(!before.is_empty(), "the tone must trigger the wake");
        assert_eq!(before.len(), after.len(), "wake cadence diverges");
        for (&(i_a, seq_a, val_a), &(i_b, seq_b, val_b)) in before.iter().zip(after.iter()) {
            assert_eq!((i_a, seq_a), (i_b, seq_b), "wake timing diverges");
            assert!((10.0..14.5).contains(&(i_a as f64 / 8000.0)));
            let scale = val_a.abs().max(val_b.abs()).max(1.0);
            assert!(
                (val_a - val_b).abs() <= 1e-6 * scale,
                "in-band peak diverges: {val_a} vs {val_b}"
            );
        }
    }

    #[test]
    fn wake_condition_fires_during_the_siren() {
        use sidewinder_hub::runtime::{ChannelRates, HubRuntime};
        let trace = siren_trace();
        let app = SirenDetectorApp::new();
        let mut hub = HubRuntime::load(&app.wake_condition(), &ChannelRates::default()).unwrap();
        let mic = trace.channel(SensorChannel::Mic).unwrap();
        let mut wake_times = Vec::new();
        for (i, &v) in mic.samples().iter().enumerate() {
            if !hub.push_sample(SensorChannel::Mic, v).unwrap().is_empty() {
                wake_times.push(i as f64 / 8000.0);
            }
        }
        assert!(!wake_times.is_empty(), "the siren must trigger the wake");
        // All wakes within the long siren (the 0.4 s blip cannot sustain
        // 6 windows).
        for t in &wake_times {
            assert!((10.5..14.3).contains(t), "unexpected wake at {t}");
        }
    }
}
