//! The six Sidewinder evaluation applications.
//!
//! The paper builds three accelerometer applications — *Steps*,
//! *Transitions*, *Headbutts* — and three microphone applications —
//! *Siren detector*, *Music journal*, *Phrase detection* (§3.7). Each
//! application here provides:
//!
//! * a **wake-up condition**: a pipeline built with the `sidewinder-core`
//!   developer API from the platform's algorithm menu, compiled to the
//!   intermediate language and sized onto the cheapest capable
//!   microcontroller (only the FFT-based siren condition needs the
//!   LM4F120, as in the paper's Table 2 footnote);
//! * a **main-CPU classifier**: the full-quality second stage that runs
//!   while the phone is awake and filters the wake-up condition's false
//!   positives (§2.1.2).
//!
//! The [`predefined`] module provides the *Predefined Activity* baselines
//! (significant motion / significant sound), [`cloud`] the Echoprint and
//! speech-to-text service stand-ins, and [`autotune`] the paper's §7
//! "self-learning" extension that tightens thresholds from false-positive
//! feedback.

pub mod autotune;
pub mod cloud;
pub mod common;
pub mod features;
pub mod headbutts;
pub mod music;
pub mod phrase;
pub mod predefined;
pub mod siren;
pub mod steps;
pub mod transitions;

pub use headbutts::HeadbuttsApp;
pub use music::MusicJournalApp;
pub use phrase::PhraseDetectionApp;
pub use siren::SirenDetectorApp;
pub use steps::StepsApp;
pub use transitions::TransitionsApp;

use sidewinder_sim::Application;

/// The three accelerometer applications, paper order.
pub fn accelerometer_apps() -> Vec<Box<dyn Application>> {
    vec![
        Box::new(StepsApp::new()),
        Box::new(TransitionsApp::new()),
        Box::new(HeadbuttsApp::new()),
    ]
}

/// The three audio applications, paper order.
pub fn audio_apps() -> Vec<Box<dyn Application>> {
    vec![
        Box::new(SirenDetectorApp::new()),
        Box::new(MusicJournalApp::new()),
        Box::new(PhraseDetectionApp::new()),
    ]
}
