//! Helpers shared by the application implementations.

use sidewinder_hub::mcu::Mcu;
use sidewinder_hub::runtime::ChannelRates;
use sidewinder_ir::Program;
use sidewinder_sensors::{Micros, SensorChannel, SensorTrace};

/// Power draw (mW) of the cheapest catalog microcontroller able to run
/// `program` in real time.
///
/// # Panics
///
/// Panics if no catalog MCU can run the program — evaluation wake-up
/// conditions are sized to fit by construction.
pub fn hub_mw_for(program: &Program) -> f64 {
    Mcu::cheapest_for(program, &ChannelRates::default())
        .expect("evaluation wake-up conditions fit a catalog MCU")
        .awake_power_mw
}

/// Extracts the samples of `channel` visible in `[start, end)` together
/// with the index of the first returned sample in the full series.
///
/// Returns `None` when the trace lacks the channel or the range is empty.
pub fn visible_slice(
    trace: &SensorTrace,
    channel: SensorChannel,
    start: Micros,
    end: Micros,
) -> Option<(&[f64], usize, f64)> {
    let series = trace.channel(channel)?;
    let slice = series.slice(start, end);
    if slice.is_empty() {
        return None;
    }
    let rate = series.rate_hz();
    let first_index = (((start.as_secs_f64() * rate) - 1e-9).ceil().max(0.0)) as usize;
    Some((slice, first_index, rate))
}

/// Thins detections so that no two are closer than `min_gap`. Input must
/// be sorted; the first detection of each cluster is kept.
pub fn debounce(mut detections: Vec<Micros>, min_gap: Micros) -> Vec<Micros> {
    detections.sort();
    let mut out: Vec<Micros> = Vec::with_capacity(detections.len());
    for d in detections {
        match out.last() {
            Some(&last) if d.saturating_sub(last) < min_gap => {}
            _ => out.push(d),
        }
    }
    out
}

/// Iterates non-overlapping windows of `len` samples over a visible
/// slice, yielding `(window, end_time)` pairs where `end_time` is the
/// trace timestamp of the sample just past the window.
pub fn windows_of<'a>(
    slice: &'a [f64],
    first_index: usize,
    rate: f64,
    len: usize,
    hop: usize,
) -> impl Iterator<Item = (&'a [f64], Micros)> + 'a {
    assert!(len > 0 && hop > 0, "window geometry must be non-zero");
    (0..)
        .map(move |k| k * hop)
        .take_while(move |&off| off + len <= slice.len())
        .map(move |off| {
            let end_index = first_index + off + len;
            (
                &slice[off..off + len],
                sidewinder_sensors::time::sample_time(end_index, rate),
            )
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidewinder_sensors::TimeSeries;

    #[test]
    fn visible_slice_reports_offset_and_rate() {
        let mut trace = SensorTrace::new("t");
        trace.insert(
            SensorChannel::AccX,
            TimeSeries::from_samples(50.0, (0..100).map(|i| i as f64).collect()).unwrap(),
        );
        let (slice, first, rate) = visible_slice(
            &trace,
            SensorChannel::AccX,
            Micros::from_secs(1),
            Micros::from_secs(2),
        )
        .unwrap();
        assert_eq!(first, 50);
        assert_eq!(rate, 50.0);
        assert_eq!(slice[0], 50.0);
        assert!(visible_slice(&trace, SensorChannel::Mic, Micros::ZERO, Micros::MAX).is_none());
        assert!(visible_slice(
            &trace,
            SensorChannel::AccX,
            Micros::from_secs(9),
            Micros::from_secs(10)
        )
        .is_none());
    }

    #[test]
    fn debounce_keeps_first_of_cluster() {
        let d = vec![
            Micros::from_millis(100),
            Micros::from_millis(150),
            Micros::from_millis(600),
            Micros::from_millis(601),
        ];
        let out = debounce(d, Micros::from_millis(300));
        assert_eq!(
            out,
            vec![Micros::from_millis(100), Micros::from_millis(600)]
        );
    }

    #[test]
    fn debounce_sorts_unordered_input() {
        let d = vec![Micros::from_millis(600), Micros::from_millis(100)];
        let out = debounce(d, Micros::from_millis(50));
        assert_eq!(
            out,
            vec![Micros::from_millis(100), Micros::from_millis(600)]
        );
    }

    #[test]
    fn windows_iterate_with_hop_and_timestamps() {
        let slice: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let windows: Vec<_> = windows_of(&slice, 100, 50.0, 4, 2).collect();
        assert_eq!(windows.len(), 4);
        assert_eq!(windows[0].0, &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(
            windows[0].1,
            sidewinder_sensors::time::sample_time(104, 50.0)
        );
        assert_eq!(windows[3].0, &[6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn short_slices_yield_no_windows() {
        let slice = [1.0, 2.0];
        assert_eq!(windows_of(&slice, 0, 50.0, 4, 4).count(), 0);
    }
}
