//! Threshold self-tuning from wake-up feedback (paper §7).
//!
//! "Given feedback from the more complex algorithms running on the
//! application level, self-learning mechanisms may be able to tune the
//! parameters used on the wake-up conditions. It is easy to imagine an
//! application notifying the sensor hub about wake-ups when events of
//! interest were not actually detected (i.e. false positives)."
//!
//! [`tune_final_threshold`] implements that loop offline: it sweeps the
//! final admission-control threshold of a wake-up condition over a
//! calibration trace, measuring per-candidate recall (did every event of
//! interest still produce a wake?) and wake-up count (the false-positive
//! proxy the application reports), and returns the most selective
//! threshold that keeps recall at 100 %. The paper's caution also holds
//! here: tightening can only use observed wake-ups, so the search never
//! proposes a threshold that would have missed an event on the
//! calibration trace, but it cannot rule out misses on unseen data.

use sidewinder_hub::runtime::{ChannelRates, HubRuntime};
use sidewinder_ir::{AlgorithmKind, NodeId, Program, Stmt};
use sidewinder_sensors::{EventKind, Micros, SensorTrace};

/// One candidate evaluated during tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The threshold value tried.
    pub threshold: f64,
    /// Wake-ups raised over the calibration trace.
    pub wake_ups: u64,
    /// Fraction of target events that produced at least one wake.
    pub recall: f64,
}

/// The tuning outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneResult {
    /// The re-parameterized program.
    pub program: Program,
    /// The chosen threshold.
    pub chosen: Candidate,
    /// Every candidate evaluated, in sweep order.
    pub sweep: Vec<Candidate>,
}

/// Errors raised by tuning.
#[derive(Debug, Clone, PartialEq)]
pub enum TuneError {
    /// The program's final node (feeding `OUT`) is not a tunable
    /// threshold (min, max, or symmetric outside band).
    NotAThreshold,
    /// The calibration trace has no events of the target kinds.
    NoEvents,
    /// The hub could not run a candidate program.
    Hub(String),
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::NotAThreshold => {
                write!(
                    f,
                    "the wake-up condition does not end in a tunable threshold"
                )
            }
            TuneError::NoEvents => write!(f, "calibration trace has no target events"),
            TuneError::Hub(e) => write!(f, "hub failure during tuning: {e}"),
        }
    }
}

impl std::error::Error for TuneError {}

/// Sweeps the final threshold of `program` across `candidates` and picks
/// the most selective value that preserves 100 % recall of `kinds` on the
/// calibration trace.
///
/// # Errors
///
/// See [`TuneError`].
pub fn tune_final_threshold(
    program: &Program,
    trace: &SensorTrace,
    kinds: &[EventKind],
    candidates: &[f64],
    tolerance: Micros,
) -> Result<TuneResult, TuneError> {
    let out = program.out_source().ok_or(TuneError::NotAThreshold)?;
    let is_tunable = program.nodes().any(|(_, id, kind)| {
        id == out
            && matches!(
                kind,
                AlgorithmKind::MinThreshold { .. }
                    | AlgorithmKind::MaxThreshold { .. }
                    | AlgorithmKind::OutsideThreshold { .. }
            )
    });
    if !is_tunable {
        return Err(TuneError::NotAThreshold);
    }
    let events: Vec<_> = kinds
        .iter()
        .flat_map(|&k| trace.ground_truth().of_kind(k))
        .collect();
    if events.is_empty() {
        return Err(TuneError::NoEvents);
    }

    let mut sweep = Vec::new();
    let mut best: Option<(Candidate, Program)> = None;
    for &threshold in candidates {
        let tuned = retarget(program, out, threshold);
        let wake_times = run_hub(&tuned, trace).map_err(|e| TuneError::Hub(e.to_string()))?;
        let recalled = events
            .iter()
            .filter(|ev| {
                let lo = ev.start().saturating_sub(tolerance);
                let hi = ev.end() + tolerance;
                wake_times.iter().any(|&w| w >= lo && w < hi)
            })
            .count();
        let candidate = Candidate {
            threshold,
            wake_ups: wake_times.len() as u64,
            recall: recalled as f64 / events.len() as f64,
        };
        sweep.push(candidate);
        if candidate.recall >= 1.0 {
            // Ties go to the later (more selective) candidate.
            let better = match &best {
                None => true,
                Some((cur, _)) => candidate.wake_ups <= cur.wake_ups,
            };
            if better {
                best = Some((candidate, tuned));
            }
        }
    }
    let (chosen, program) = best.ok_or_else(|| {
        TuneError::Hub("no candidate threshold preserved 100% recall".to_string())
    })?;
    Ok(TuneResult {
        program,
        chosen,
        sweep,
    })
}

/// Rewrites the threshold parameter of node `target`.
fn retarget(program: &Program, target: NodeId, threshold: f64) -> Program {
    let stmts: Vec<Stmt> = program
        .stmts()
        .iter()
        .map(|stmt| match stmt {
            Stmt::Node {
                sources,
                id,
                kind,
                line,
            } if *id == target => {
                let kind = match kind {
                    AlgorithmKind::MinThreshold { .. } => AlgorithmKind::MinThreshold { threshold },
                    AlgorithmKind::MaxThreshold { .. } => AlgorithmKind::MaxThreshold { threshold },
                    // For the complement band, the candidate is the
                    // symmetric band half-width.
                    AlgorithmKind::OutsideThreshold { .. } => AlgorithmKind::OutsideThreshold {
                        lo: -threshold,
                        hi: threshold,
                    },
                    other => *other,
                };
                Stmt::Node {
                    sources: sources.clone(),
                    id: *id,
                    kind,
                    line: *line,
                }
            }
            other => other.clone(),
        })
        .collect();
    Program::from_stmts(stmts)
}

/// Replays the trace through a hub running `program`, returning wake
/// times.
fn run_hub(
    program: &Program,
    trace: &SensorTrace,
) -> Result<Vec<Micros>, sidewinder_hub::HubError> {
    let mut rates = ChannelRates::default();
    for channel in program.channels() {
        if let Some(series) = trace.channel(channel) {
            rates = rates.with_rate(channel, series.rate_hz());
        }
    }
    let mut hub = HubRuntime::load(program, &rates)?;
    let mut wakes = Vec::new();
    for channel in program.channels() {
        let Some(series) = trace.channel(channel) else {
            continue;
        };
        // Single-channel replay per channel is exact for the evaluation
        // wake conditions (each reads one channel); multi-channel
        // conditions are replayed through the simulator instead.
        for (i, &v) in series.samples().iter().enumerate() {
            if !hub.push_sample(channel, v)?.is_empty() {
                wakes.push(series.time_of(i));
            }
        }
    }
    wakes.sort();
    Ok(wakes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidewinder_sensors::{GroundTruth, LabeledInterval, SensorChannel, TimeSeries};

    /// Events of amplitude 6 at t=10 and t=20; noise bursts of amplitude
    /// 3 elsewhere that a lax threshold wakes on.
    fn calibration_trace() -> SensorTrace {
        let rate = 50.0;
        let mut x = vec![0.0f64; 30 * 50];
        let mut gt = GroundTruth::new();
        for (start, amp, label) in [
            (5u64, 3.0, false),
            (10, 6.0, true),
            (15, 3.0, false),
            (20, 6.0, true),
            (25, 3.0, false),
        ] {
            for sample in &mut x[(start * 50) as usize..((start + 1) * 50) as usize] {
                *sample = amp;
            }
            if label {
                gt.push(
                    LabeledInterval::new(
                        EventKind::Headbutt,
                        Micros::from_secs(start),
                        Micros::from_secs(start + 1),
                    )
                    .unwrap(),
                );
            }
        }
        let mut trace = SensorTrace::new("calib");
        trace.insert(
            SensorChannel::AccX,
            TimeSeries::from_samples(rate, x).unwrap(),
        );
        *trace.ground_truth_mut() = gt;
        trace
    }

    fn lax_program() -> Program {
        "ACC_X -> movingAvg(id=1, params={2});
         1 -> minThreshold(id=2, params={1});
         2 -> OUT;"
            .parse()
            .unwrap()
    }

    #[test]
    fn tightens_to_drop_false_positives() {
        let result = tune_final_threshold(
            &lax_program(),
            &calibration_trace(),
            &[EventKind::Headbutt],
            &[1.0, 2.0, 4.0, 5.0, 7.0],
            Micros::from_secs(1),
        )
        .unwrap();
        // 7.0 misses the events; 4.0 and 5.0 keep recall and drop the
        // noise bursts; the most selective recall-preserving one wins.
        assert_eq!(result.chosen.threshold, 5.0);
        assert_eq!(result.chosen.recall, 1.0);
        assert_eq!(result.sweep.len(), 5);
        // The lax candidate wakes more often than the chosen one.
        assert!(result.sweep[0].wake_ups > result.chosen.wake_ups);
        // Recall collapses past the event amplitude.
        assert_eq!(result.sweep[4].recall, 0.0);
        // The tuned program carries the new parameter.
        assert!(result.program.to_string().contains("params={5}"));
    }

    #[test]
    fn refuses_untunable_programs() {
        let program: Program = "ACC_X -> movingAvg(id=1, params={2});
             1 -> bandThreshold(id=2, params={0, 1});
             2 -> OUT;"
            .parse()
            .unwrap();
        let err = tune_final_threshold(
            &program,
            &calibration_trace(),
            &[EventKind::Headbutt],
            &[1.0],
            Micros::from_secs(1),
        )
        .unwrap_err();
        assert_eq!(err, TuneError::NotAThreshold);
    }

    #[test]
    fn refuses_eventless_traces() {
        let mut trace = calibration_trace();
        *trace.ground_truth_mut() = GroundTruth::new();
        let err = tune_final_threshold(
            &lax_program(),
            &trace,
            &[EventKind::Headbutt],
            &[1.0],
            Micros::from_secs(1),
        )
        .unwrap_err();
        assert_eq!(err, TuneError::NoEvents);
    }

    #[test]
    fn reports_when_nothing_preserves_recall() {
        let err = tune_final_threshold(
            &lax_program(),
            &calibration_trace(),
            &[EventKind::Headbutt],
            &[50.0],
            Micros::from_secs(1),
        )
        .unwrap_err();
        assert!(err.to_string().contains("recall"));
    }
}
