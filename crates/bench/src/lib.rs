//! Shared harness for the experiment binaries and Criterion benches.
//!
//! One binary regenerates each table/figure of the paper:
//!
//! | Binary   | Paper artifact |
//! |----------|----------------|
//! | `table1` | Table 1 — Nexus 4 power profile |
//! | `table2` | Table 2 — audio application power |
//! | `fig3`   | Fig. 3 — the six wake-up-condition pipelines |
//! | `fig5`   | Fig. 5 — power relative to Oracle, robot traces |
//! | `fig6`   | Fig. 6 — duty-cycling recall at 90 % idle |
//! | `fig7`   | Fig. 7 — power relative to Oracle, human traces |
//! | `sizing` | §3.8 — microcontroller sizing exploration |
//! | `fusion` | §7 — pipeline-fusion ablation |
//! | `ablation` | parameter sweeps for DESIGN.md's design choices |
//! | `concurrent` | §7 — several applications sharing one phone |
//! | `latency` | §5.4 — batching's power/timeliness trade-off |
//!
//! Trace lengths default to a fast configuration; set
//! `SIDEWINDER_PAPER_SCALE=1` to reproduce the paper's full trace lengths
//! (30-minute audio traces, hour-long robot runs, the full 18-run set).

pub mod gate;
pub mod suites;

use sidewinder_apps::predefined;
use sidewinder_sensors::{Micros, SensorTrace};
use sidewinder_sim::{
    simulate, Application, BatchReport, BatchRunner, PhonePowerProfile, SharedApp, SimConfig,
    SimResult, Strategy, SweepSpec,
};
use sidewinder_tracegen::{
    audio_trace, human_trace, robot_group_runs, ActivityGroup, AudioEnvironment, AudioTraceConfig,
};
use std::sync::Arc;

/// Whether the user asked for full paper-scale traces.
pub fn paper_scale() -> bool {
    std::env::var("SIDEWINDER_PAPER_SCALE")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// Robot run duration (paper: close to an hour per run; default 10 min).
pub fn robot_duration() -> Micros {
    if paper_scale() {
        Micros::from_secs(3_600)
    } else {
        Micros::from_secs(600)
    }
}

/// Audio trace duration (paper: 30 min; default 5 min).
pub fn audio_duration() -> Micros {
    if paper_scale() {
        Micros::from_secs(1_800)
    } else {
        Micros::from_secs(300)
    }
}

/// Number of robot runs per group (paper: 9/6/3; default 3/2/1).
pub fn runs_for(group: ActivityGroup) -> usize {
    if paper_scale() {
        group.paper_run_count()
    } else {
        (group.paper_run_count() / 3).max(1)
    }
}

fn seed_base(group: ActivityGroup) -> u64 {
    match group {
        ActivityGroup::Group1 => 101,
        ActivityGroup::Group2 => 202,
        ActivityGroup::Group3 => 303,
    }
}

/// The paper's robot run set for one activity group.
pub fn robot_traces(group: ActivityGroup) -> Vec<SensorTrace> {
    robot_group_runs(group, runs_for(group), robot_duration(), seed_base(group))
}

/// The paper's three audio environments.
pub fn audio_traces() -> Vec<SensorTrace> {
    AudioEnvironment::ALL
        .into_iter()
        .enumerate()
        .map(|(i, environment)| {
            audio_trace(&AudioTraceConfig {
                duration: audio_duration(),
                environment,
                seed: 400 + i as u64,
                ..AudioTraceConfig::default()
            })
        })
        .collect()
}

/// The paper's three human subjects.
pub fn human_traces() -> Vec<SensorTrace> {
    sidewinder_tracegen::human::paper_subjects(robot_duration(), 500)
        .iter()
        .map(human_trace)
        .collect()
}

/// The Sidewinder strategy for an application.
pub fn sidewinder_strategy(app: &dyn Application) -> Strategy {
    Strategy::HubWake {
        program: app.wake_condition(),
        hub_mw: app.wake_condition_hub_mw(),
        label: "Sw",
    }
}

/// The Predefined Activity strategy for accelerometer applications.
pub fn predefined_motion_strategy() -> Strategy {
    Strategy::HubWake {
        program: predefined::significant_motion(),
        hub_mw: predefined::hub_mw(),
        label: "PA",
    }
}

/// The Predefined Activity strategy for audio applications.
pub fn predefined_sound_strategy() -> Strategy {
    Strategy::HubWake {
        program: predefined::significant_sound(),
        hub_mw: predefined::hub_mw(),
        label: "PA",
    }
}

/// Runs one application under one strategy over a set of traces.
///
/// # Panics
///
/// Panics if the simulation rejects the configuration — experiment
/// configurations are validated by construction.
pub fn run_over(
    traces: &[SensorTrace],
    app: &dyn Application,
    strategy: &Strategy,
) -> Vec<SimResult> {
    traces
        .iter()
        .map(|trace| {
            simulate(
                trace,
                app,
                strategy,
                &PhonePowerProfile::NEXUS4,
                &SimConfig::default(),
            )
            .unwrap_or_else(|e| {
                panic!(
                    "simulate {} / {} / {}: {e}",
                    trace.name(),
                    app.name(),
                    strategy.label()
                )
            })
        })
        .collect()
}

/// Wraps freshly synthesized traces for cross-thread sharing.
pub fn share_traces(traces: Vec<SensorTrace>) -> Vec<Arc<SensorTrace>> {
    traces.into_iter().map(Arc::new).collect()
}

/// Runs an application × strategy × trace grid over the
/// [`BatchRunner`] worker pool (`SIDEWINDER_SWEEP_WORKERS` overrides
/// the worker count) and returns outcomes in deterministic spec order.
///
/// This is the parallel counterpart of [`run_over`]: each cell calls
/// the same serial [`simulate`], so the results are bit-identical —
/// `crates/sim/tests/batch_conformance.rs` pins that equivalence.
pub fn sweep_over(
    traces: &[Arc<SensorTrace>],
    apps: impl IntoIterator<Item = SharedApp>,
    strategies: impl Fn(&dyn Application) -> Vec<Strategy> + Send + Sync + 'static,
) -> BatchReport {
    let spec = SweepSpec::new()
        .shared_apps(apps)
        .shared_traces(traces.iter().cloned())
        .strategies_per_app(strategies);
    BatchRunner::new().run(&spec)
}

/// The single result of one (application, strategy, trace) cell in a
/// one-config sweep.
///
/// # Panics
///
/// Panics if the cell is absent or failed — experiment configurations
/// are validated by construction.
pub fn one_result<'r>(
    report: &'r BatchReport,
    app: &str,
    strategy: &str,
    trace: &str,
) -> &'r SimResult {
    report
        .outcomes()
        .iter()
        .find(|o| o.app == app && o.strategy == strategy && o.trace == trace)
        .unwrap_or_else(|| panic!("no sweep cell {trace} / {app} / {strategy}"))
        .result
        .as_ref()
        .unwrap_or_else(|e| panic!("sweep cell {trace} / {app} / {strategy} failed: {e}"))
}

/// The duty-cycling sleep intervals the paper sweeps (§4.2).
pub const DC_SLEEPS_S: [u64; 5] = [2, 5, 10, 20, 30];

/// Formats a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_fast() {
        // Unless the env var is set, traces stay short enough for CI.
        if !paper_scale() {
            assert_eq!(robot_duration(), Micros::from_secs(600));
            assert_eq!(audio_duration(), Micros::from_secs(300));
            assert_eq!(runs_for(ActivityGroup::Group1), 3);
            assert_eq!(runs_for(ActivityGroup::Group3), 1);
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f2(1.256), "1.26");
        assert_eq!(pct(0.927), "92.7%");
    }
}
