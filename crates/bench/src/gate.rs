//! Performance and wake-conformance gate logic.
//!
//! The CI `perf-gate` job runs the `perfgate` binary, which is a thin
//! shell around this module: pure comparison functions over parsed
//! benchmark reports (so the pass/fail rules are unit-testable without
//! running a single benchmark) plus a deterministic wake-sequence digest
//! for each golden wake-up condition.
//!
//! Two perf rules, both against the committed pre-optimization baseline
//! in `results/bench_interpreter_baseline.json`:
//!
//! 1. **Regression rule** — a bench may not run more than
//!    [`MAX_REGRESSION`] slower than its allowed time.
//! 2. **Speedup floors** — the interpreter benches that the hot-path
//!    rework accelerated must keep their gains: the allowed time for a
//!    floored bench is `baseline / floor`, so e.g. the music condition
//!    failing back to 1.5× of baseline trips the gate even though it is
//!    still faster than the committed numbers.
//!
//! Wake conformance comes in two tiers:
//!
//! * **Bit-exact tier** — the wake digest hashes the exact wake sequence
//!   (sequence numbers and result bits) each fixture program produces on
//!   a fixed synthetic input at the reference f64 precision. Committed
//!   goldens live in `results/wake_digests.json`; any change to
//!   interpreter semantics — including the SIMD lane kernels, which are
//!   bit-exact by construction — shows up as a digest mismatch.
//! * **Tolerance tier** — [`check_f32_conformance`] replays the same
//!   input through the single-precision (`f32` vector) pipeline and
//!   requires the same wake sequence with values within
//!   [`F32_RELATIVE_TOLERANCE`] of the f64 reference.

use sidewinder_hub::runtime::{ChannelRates, HubRuntime};
use sidewinder_hub::{HubError, Sample};
use sidewinder_ir::Program;
use sidewinder_sim::NullSink;
use std::collections::BTreeMap;

/// Maximum tolerated slowdown versus the allowed time: 0.15 = 15 %.
pub const MAX_REGRESSION: f64 = 0.15;

/// Minimum speedups versus the committed pre-optimization baseline.
///
/// Three tiers, pinned as the reworks that earned them landed:
///
/// * the end-to-end interpreter rows (zero-allocation hot-path rework);
/// * the five flat DSP kernel rows at 1.8x each (multi-accumulator lane
///   vectorization) — their baselines are the pre-SIMD scalar numbers;
/// * the `_f32` interpreter rows, measured against the *f64* seed
///   baselines, so they pin the combined lane + single-precision win.
pub const SPEEDUP_FLOORS: [(&str, f64); 11] = [
    ("hub_interpreter/steps_condition", 1.3),
    ("hub_interpreter/music_condition", 2.0),
    ("hub_interpreter/siren_condition", 2.0),
    ("hub_interpreter/steps_condition_f32", 1.3),
    ("hub_interpreter/music_condition_f32", 2.0),
    ("hub_interpreter/siren_condition_f32", 2.0),
    ("moving_average_w10_1024_samples", 1.8),
    ("zcr_variance_8x2048", 1.8),
    ("summary_stats_2048", 1.8),
    ("hamming_window_2048", 1.8),
    ("siren_band_detection/goertzel_8_probes", 1.8),
];

/// Minimum ratios between two rows of the *same* fresh report:
/// `(slow_id, fast_id, floor)` demands `slow / fast >= floor`. Unlike
/// [`SPEEDUP_FLOORS`], both sides are measured in the same run, so the
/// rule is immune to machine-speed drift; it pins what the optimizing
/// compiler buys, not how fast this host is.
///
/// * The optimized-fused row must hold at least 1.3x over the runtime
///   fusion of the same two conditions — the paper's 1.34x fusion gap
///   is the optimizer's to close, and losing CSE would silently reopen
///   it.
/// * The Goertzel strength reduction must keep the narrow-band alarm
///   condition at least 2x cheaper than its filters-plus-FFT form.
pub const RATIO_FLOORS: [(&str, &str, f64); 2] = [
    (
        "concurrent_conditions/one_fused_runtime",
        "concurrent_conditions/one_optimized_fused_runtime",
        1.3,
    ),
    (
        "siren_band_detection/narrowband_fft_pipeline",
        "siren_band_detection/goertzel_rewrite",
        2.0,
    ),
];

/// The six golden wake-up conditions, by fixture name.
pub const FIXTURES: [(&str, &str); 6] = [
    ("steps", include_str!("../../ir/tests/fixtures/steps.swir")),
    (
        "transitions",
        include_str!("../../ir/tests/fixtures/transitions.swir"),
    ),
    (
        "headbutts",
        include_str!("../../ir/tests/fixtures/headbutts.swir"),
    ),
    (
        "sirens",
        include_str!("../../ir/tests/fixtures/sirens.swir"),
    ),
    ("music", include_str!("../../ir/tests/fixtures/music.swir")),
    (
        "phrase",
        include_str!("../../ir/tests/fixtures/phrase.swir"),
    ),
];

/// One gate failure, human-readable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateViolation {
    /// The bench or fixture that tripped the gate.
    pub id: String,
    /// What went wrong, with the numbers.
    pub message: String,
}

impl std::fmt::Display for GateViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.id, self.message)
    }
}

/// Parses the flat `"id": number` map format of the committed baseline
/// (one entry per line; a `comment` key is ignored). No JSON dependency:
/// the files are machine-written in exactly this shape.
pub fn parse_flat_json(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.rsplit_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if key == "comment" {
            continue;
        }
        if let Ok(ns) = value.trim().parse::<f64>() {
            out.insert(key.to_string(), ns);
        }
    }
    out
}

/// Extracts `id → ns_per_iter` from the nested `BENCH_interpreter.json`
/// report `perfreport` writes (each bench is an object opened by a
/// quoted id; its `ns_per_iter` field follows before the object closes).
pub fn parse_bench_report(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let mut current: Option<String> = None;
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if let Some(id) = line
            .strip_suffix(": {")
            .map(|k| k.trim().trim_matches('"'))
            .filter(|k| !k.is_empty() && *k != "benches")
        {
            current = Some(id.to_string());
            continue;
        }
        if let Some((key, value)) = line.split_once(':') {
            if key.trim().trim_matches('"') == "ns_per_iter" {
                if let (Some(id), Ok(ns)) = (current.take(), value.trim().parse::<f64>()) {
                    out.insert(id, ns);
                }
            }
        }
    }
    out
}

/// Parses the committed digest map: `"name": "0x..."` per line.
pub fn parse_digests(text: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if key == "comment" {
            continue;
        }
        let value = value.trim().trim_matches('"');
        if let Some(hex) = value.strip_prefix("0x") {
            if let Ok(digest) = u64::from_str_radix(hex, 16) {
                out.insert(key.to_string(), digest);
            }
        }
    }
    out
}

/// The perf gate rule, pure over parsed reports: for every baseline
/// bench, the fresh time must not exceed `baseline / floor ×
/// (1 + max_regression)`. Unmatched baseline entries (bench renamed or
/// dropped) are violations too — a silently vanished bench must not pass.
pub fn check_perf(
    baseline: &BTreeMap<String, f64>,
    fresh: &BTreeMap<String, f64>,
    max_regression: f64,
    floors: &[(&str, f64)],
) -> Vec<GateViolation> {
    let mut violations = Vec::new();
    for (id, &base_ns) in baseline {
        let Some(&fresh_ns) = fresh.get(id) else {
            violations.push(GateViolation {
                id: id.clone(),
                message: "present in baseline but missing from the fresh report".to_string(),
            });
            continue;
        };
        let floor = floors
            .iter()
            .find(|(fid, _)| fid == id)
            .map_or(1.0, |&(_, f)| f);
        let allowed_ns = base_ns / floor * (1.0 + max_regression);
        if fresh_ns > allowed_ns {
            violations.push(GateViolation {
                id: id.clone(),
                message: format!(
                    "{fresh_ns:.0} ns/iter exceeds the allowed {allowed_ns:.0} ns/iter \
                     (baseline {base_ns:.0}, required speedup {floor}x, tolerance {:.0}%)",
                    max_regression * 100.0
                ),
            });
        }
    }
    violations
}

/// The ratio rule, pure over the fresh report: each [`RATIO_FLOORS`]
/// entry requires both rows to be present and `slow / fast >= floor`.
/// A missing row is a violation — the optimizer's win must stay
/// measured, not silently dropped.
pub fn check_ratios(
    fresh: &BTreeMap<String, f64>,
    ratios: &[(&str, &str, f64)],
) -> Vec<GateViolation> {
    let mut violations = Vec::new();
    for &(slow_id, fast_id, floor) in ratios {
        let (slow, fast) = match (fresh.get(slow_id), fresh.get(fast_id)) {
            (Some(&s), Some(&f)) => (s, f),
            (slow, _) => {
                let missing = if slow.is_none() { slow_id } else { fast_id };
                violations.push(GateViolation {
                    id: missing.to_string(),
                    message: "ratio-floor row missing from the fresh report".to_string(),
                });
                continue;
            }
        };
        let ratio = slow / fast;
        if ratio < floor {
            violations.push(GateViolation {
                id: fast_id.to_string(),
                message: format!(
                    "only {ratio:.2}x faster than {slow_id} \
                     ({slow:.0} / {fast:.0} ns/iter); the floor is {floor}x"
                ),
            });
        }
    }
    violations
}

/// FNV-1a over a byte stream.
fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Samples per channel fed to [`wake_digest`]; enough to fill the
/// largest fixture window (2048) and `sustained` span (6 × 1024) many
/// times over.
const DIGEST_SAMPLES: usize = 16_384;

/// Hashes the wake sequence a program produces on a fixed synthetic
/// input: per channel, a sinusoid alternating every 8192 samples (long
/// enough to hold the fixtures' `sustained` spans) between a loud
/// steady tone at 1.3 rad/sample (≈1.65 kHz at the default mic rate —
/// above the siren fixture's 750 Hz high-pass, with the near-zero
/// zero-crossing variance the music fixture looks for) and a quiet
/// frequency-modulated segment (the high zero-crossing variance the
/// phrase fixture looks for). The digest covers each wake's order,
/// sequence tag, and exact result bits — any semantic change to the
/// interpreter or the fixture moves it.
///
/// # Errors
///
/// Returns [`HubError`] if the program fails to load or execute.
pub fn wake_digest(program: &Program) -> Result<u64, HubError> {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for (seq, value) in wake_trace::<f64>(program)? {
        hash = fnv1a(hash, &seq.to_le_bytes());
        hash = fnv1a(hash, &value.to_bits().to_le_bytes());
    }
    Ok(hash)
}

/// Replays the digest input (see [`wake_digest`]) through a hub at
/// vector precision `P` and collects the wake sequence as
/// `(seq, value)` pairs. At `f64` this is exactly the stream
/// [`wake_digest`] hashes; at `f32` it is the stream the tolerance tier
/// compares against it.
///
/// # Errors
///
/// Returns [`HubError`] if the program fails to load or execute.
pub fn wake_trace<P: Sample>(program: &Program) -> Result<Vec<(u64, f64)>, HubError> {
    let mut hub =
        HubRuntime::<NullSink, P>::load_generic(program, &ChannelRates::default(), NullSink)?;
    let channels = program.channels();
    let mut trace = Vec::new();
    for i in 0..DIGEST_SAMPLES {
        let loud = (i / 8192) % 2 == 1;
        let step = if loud {
            1.3
        } else {
            1.3 + 0.8 * (i as f64 / 97.0).sin()
        };
        for (ci, &channel) in channels.iter().enumerate() {
            let phase = i as f64 * step + ci as f64 * 0.7;
            let sample = phase.sin() * if loud { 12.0 } else { 2.0 };
            for wake in hub.push_samples(channel, &[sample])? {
                trace.push((wake.seq, wake.value));
            }
        }
    }
    Ok(trace)
}

/// Relative tolerance for the f32 conformance tier: the single-precision
/// pipeline's wake values must land within this fraction of the f64
/// reference (floored at an absolute scale of 1.0 so near-zero features
/// are not held to an impossible relative bar). The budget comes from
/// DESIGN.md §6h: a 2048-sample f32 accumulation carries ≈2.5e-4
/// relative error; 1e-3 leaves honest headroom without masking a
/// precision bug, which shows up orders of magnitude above it.
pub const F32_RELATIVE_TOLERANCE: f64 = 1e-3;

/// The tolerance-pinned conformance tier: every golden fixture, replayed
/// through the single-precision (`f32` vector) pipeline on the digest
/// input, must produce the *same wake sequence* as the f64 reference —
/// same count, same sequence tags, values within
/// [`F32_RELATIVE_TOLERANCE`]. The bit-exact tier ([`check_digests`])
/// pins f64 against the committed goldens; this tier pins f32 against
/// f64 in the same run, so it holds on any host.
///
/// # Panics
///
/// Panics if a committed fixture fails to parse or execute — that is
/// itself a conformance failure.
pub fn check_f32_conformance() -> Vec<GateViolation> {
    let mut violations = Vec::new();
    for (name, text) in FIXTURES {
        let program: Program = text
            .parse()
            .unwrap_or_else(|e| panic!("fixture {name} does not parse: {e}"));
        let wide = wake_trace::<f64>(&program)
            .unwrap_or_else(|e| panic!("fixture {name} failed at f64: {e}"));
        let narrow = wake_trace::<f32>(&program)
            .unwrap_or_else(|e| panic!("fixture {name} failed at f32: {e}"));
        if wide.len() != narrow.len() {
            violations.push(GateViolation {
                id: format!("f32_conformance/{name}"),
                message: format!(
                    "wake count diverged: {} at f64 vs {} at f32",
                    wide.len(),
                    narrow.len()
                ),
            });
            continue;
        }
        for (k, (&(seq64, v64), &(seq32, v32))) in wide.iter().zip(narrow.iter()).enumerate() {
            if seq64 != seq32 {
                violations.push(GateViolation {
                    id: format!("f32_conformance/{name}"),
                    message: format!("wake #{k} moved: seq {seq64} at f64 vs {seq32} at f32"),
                });
                break;
            }
            let scale = v64.abs().max(1.0);
            if (v64 - v32).abs() > F32_RELATIVE_TOLERANCE * scale {
                violations.push(GateViolation {
                    id: format!("f32_conformance/{name}"),
                    message: format!(
                        "wake #{k} (seq {seq64}) value off: {v64:.9} at f64 vs {v32:.9} at f32 \
                         (tolerance {F32_RELATIVE_TOLERANCE:.0e} relative)"
                    ),
                });
                break;
            }
        }
    }
    violations
}

/// Digests every golden fixture, in [`FIXTURES`] order, plus the
/// `fused_all_six` entry: all six conditions merged by
/// [`sidewinder_opt::fuse_programs`] and run through the optimizer at
/// the aggressive level. The committed golden therefore pins the
/// acceptance criterion end to end — any optimizer change that alters
/// the fused program's wake stream moves this digest.
///
/// # Panics
///
/// Panics if a committed fixture fails to parse or execute — that is
/// itself a conformance failure.
pub fn fixture_digests() -> Vec<(String, u64)> {
    let programs: Vec<Program> = FIXTURES
        .iter()
        .map(|(name, text)| {
            text.parse()
                .unwrap_or_else(|e| panic!("fixture {name} does not parse: {e}"))
        })
        .collect();
    let mut digests: Vec<(String, u64)> = FIXTURES
        .iter()
        .zip(programs.iter())
        .map(|(&(name, _), program)| {
            let digest =
                wake_digest(program).unwrap_or_else(|e| panic!("fixture {name} failed: {e}"));
            (name.to_string(), digest)
        })
        .collect();
    let fused = sidewinder_opt::fuse_programs(&programs);
    let (optimized, _) = sidewinder_opt::optimize(
        &fused,
        &ChannelRates::default(),
        &sidewinder_opt::OptOptions::aggressive(),
    );
    let digest =
        wake_digest(&optimized).unwrap_or_else(|e| panic!("optimized fused fixture failed: {e}"));
    digests.push(("fused_all_six".to_string(), digest));
    digests
}

/// Renders the digest map in the committed `wake_digests.json` format.
pub fn render_digests(digests: &[(String, u64)]) -> String {
    let mut out = String::from("{\n");
    out.push_str(
        "  \"comment\": \"FNV-1a digests of each golden fixture's wake sequence on the \
         perfgate synthetic input; regenerate with perfgate --write-digests\",\n",
    );
    for (i, (name, digest)) in digests.iter().enumerate() {
        out.push_str(&format!("  \"{name}\": \"{digest:#018x}\""));
        out.push_str(if i + 1 < digests.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}

/// Compares fresh digests against the committed goldens: mismatches and
/// fixtures missing from the goldens are violations.
pub fn check_digests(
    golden: &BTreeMap<String, u64>,
    fresh: &[(String, u64)],
) -> Vec<GateViolation> {
    let mut violations = Vec::new();
    for (name, digest) in fresh {
        match golden.get(name) {
            None => violations.push(GateViolation {
                id: name.clone(),
                message: "no committed wake digest; run perfgate --write-digests".to_string(),
            }),
            Some(&want) if want != *digest => violations.push(GateViolation {
                id: name.clone(),
                message: format!("wake digest {digest:#018x} != committed {want:#018x}"),
            }),
            Some(_) => {}
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(entries: &[(&str, f64)]) -> BTreeMap<String, f64> {
        entries.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn twenty_percent_regression_fails_the_fifteen_percent_gate() {
        let baseline = map(&[("bench/a", 100_000.0)]);
        let fresh = map(&[("bench/a", 120_000.0)]);
        let violations = check_perf(&baseline, &fresh, MAX_REGRESSION, &[]);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].id, "bench/a");
        assert!(violations[0].message.contains("exceeds"));
    }

    #[test]
    fn regressions_inside_the_tolerance_pass() {
        let baseline = map(&[("bench/a", 100_000.0)]);
        let fresh = map(&[("bench/a", 114_000.0)]);
        assert!(check_perf(&baseline, &fresh, MAX_REGRESSION, &[]).is_empty());
    }

    #[test]
    fn speedup_floor_rejects_losing_the_optimization() {
        let baseline = map(&[("hub_interpreter/music_condition", 474_220.0)]);
        let floors = [("hub_interpreter/music_condition", 2.0)];
        // Allowed: 474220 / 2 × 1.15 ≈ 272677 ns. 300 µs — still faster
        // than baseline, but the 2× gain is gone.
        let fresh = map(&[("hub_interpreter/music_condition", 300_000.0)]);
        assert_eq!(
            check_perf(&baseline, &fresh, MAX_REGRESSION, &floors).len(),
            1
        );
        // At 250 µs the floor holds.
        let fresh = map(&[("hub_interpreter/music_condition", 250_000.0)]);
        assert!(check_perf(&baseline, &fresh, MAX_REGRESSION, &floors).is_empty());
    }

    #[test]
    fn vanished_benches_are_violations() {
        let baseline = map(&[("bench/a", 100.0)]);
        let violations = check_perf(&baseline, &BTreeMap::new(), MAX_REGRESSION, &[]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("missing"));
    }

    #[test]
    fn bench_report_parser_reads_perfreport_output() {
        let text = r#"{
  "benches": {
    "hub_interpreter/steps_condition": {
      "ns_per_iter": 190687.0,
      "melem_per_s": 157.33,
      "baseline_ns_per_iter": 463370.0,
      "speedup": 2.43
    },
    "fft/real_fft/256": {
      "ns_per_iter": 4111.0
    }
  }
}"#;
        let parsed = parse_bench_report(text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed["hub_interpreter/steps_condition"], 190_687.0);
        assert_eq!(parsed["fft/real_fft/256"], 4_111.0);
    }

    #[test]
    fn flat_parser_skips_comments() {
        let text = "{\n  \"comment\": \"notes: x\",\n  \"a\": 12.5,\n  \"b\": 3\n}\n";
        let parsed = parse_flat_json(text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed["a"], 12.5);
    }

    #[test]
    fn ratio_floor_rejects_a_lost_optimization() {
        let floors = [("suite/slow", "suite/fast", 1.3)];
        // 1.5x holds the 1.3x floor.
        let fresh = map(&[("suite/slow", 300_000.0), ("suite/fast", 200_000.0)]);
        assert!(check_ratios(&fresh, &floors).is_empty());
        // 1.2x does not.
        let fresh = map(&[("suite/slow", 240_000.0), ("suite/fast", 200_000.0)]);
        let violations = check_ratios(&fresh, &floors);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].id, "suite/fast");
        assert!(violations[0].message.contains("1.20x"), "{}", violations[0]);
    }

    #[test]
    fn ratio_floor_rejects_missing_rows() {
        let floors = [("suite/slow", "suite/fast", 1.3)];
        let fresh = map(&[("suite/slow", 300_000.0)]);
        let violations = check_ratios(&fresh, &floors);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].id, "suite/fast");
        assert!(violations[0].message.contains("missing"));
    }

    /// The acceptance criterion behind the committed `fused_all_six`
    /// golden: optimizing the fused six-app program must not move its
    /// wake digest — the exact-tier passes are digest-preserving on the
    /// conformance input.
    #[test]
    fn optimizing_the_fused_fixtures_preserves_the_wake_digest() {
        let programs: Vec<Program> = FIXTURES.iter().map(|(_, t)| t.parse().unwrap()).collect();
        let fused = sidewinder_opt::fuse_programs(&programs);
        let (optimized, report) = sidewinder_opt::optimize(
            &fused,
            &ChannelRates::default(),
            &sidewinder_opt::OptOptions::aggressive(),
        );
        assert!(report.changed(), "CSE must fire on the fused fixtures");
        assert_eq!(
            wake_digest(&fused).unwrap(),
            wake_digest(&optimized).unwrap(),
            "optimization moved the fused wake digest"
        );
    }

    #[test]
    fn digests_are_deterministic_and_distinguish_fixtures() {
        let all = fixture_digests();
        assert_eq!(
            all.len(),
            FIXTURES.len() + 1,
            "six fixtures + fused_all_six"
        );
        assert_eq!(all.last().unwrap().0, "fused_all_six");
        let again = fixture_digests();
        assert_eq!(all, again);
        let unique: std::collections::BTreeSet<u64> = all.iter().map(|&(_, d)| d).collect();
        assert_eq!(unique.len(), all.len(), "digest collision across fixtures");
    }

    /// The acceptance criterion for the f32 pipeline mode: every golden
    /// fixture passes the tolerance-pinned tier against its own f64 run.
    #[test]
    fn f32_conformance_holds_on_all_fixtures() {
        let violations = check_f32_conformance();
        assert!(violations.is_empty(), "{violations:?}");
    }

    /// The f32 tier is not vacuous: the fixtures actually wake on the
    /// digest input, so the tolerance comparison has substance.
    #[test]
    fn f32_conformance_compares_real_wakes() {
        let total: usize = FIXTURES
            .iter()
            .map(|(name, text)| {
                let program: Program = text.parse().unwrap();
                let trace = wake_trace::<f32>(&program)
                    .unwrap_or_else(|e| panic!("fixture {name} failed at f32: {e}"));
                trace.len()
            })
            .sum();
        assert!(total > 0, "no fixture woke at f32 on the digest input");
    }

    #[test]
    fn digest_roundtrip_through_render_and_parse() {
        let digests = vec![("steps".to_string(), 0x1234_5678_9abc_def0u64)];
        let text = render_digests(&digests);
        let parsed = parse_digests(&text);
        assert_eq!(parsed["steps"], 0x1234_5678_9abc_def0);
        assert!(check_digests(&parsed, &digests).is_empty());
        let mismatched = vec![("steps".to_string(), 1u64)];
        assert_eq!(check_digests(&parsed, &mismatched).len(), 1);
        let unknown = vec![("novel".to_string(), 2u64)];
        assert!(check_digests(&parsed, &unknown)[0]
            .message
            .contains("no committed"));
    }
}
