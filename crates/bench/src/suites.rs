//! The Criterion bench suites, exposed as plain functions so they can be
//! driven two ways: by the `cargo bench` harnesses in `benches/` and by
//! the `perfreport` binary, which runs them in calibrated smoke mode and
//! writes the measurements to `BENCH_interpreter.json` via
//! [`criterion::take_records`].

use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use sidewinder_apps::{MusicJournalApp, SirenDetectorApp, StepsApp};
use sidewinder_core::fusion::{FusedPlan, FusedRuntime};
use sidewinder_dsp::filter::{fft_highpass, MovingAverage};
use sidewinder_dsp::window::WindowShape;
use sidewinder_dsp::{fft, goertzel, stats, zcr};
use sidewinder_hub::runtime::{ChannelRates, HubRuntime, HubRuntime32};
use sidewinder_opt::{fuse_programs, optimize, OptOptions};
use sidewinder_sensors::SensorChannel;
use sidewinder_sim::Application;

/// Samples per batch fed to the interpreter benches; also the declared
/// element throughput, so reported rates are samples per second.
pub const INTERPRETER_BATCH: usize = 8192;

fn tone(freq: f64, rate: f64, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / rate).sin())
        .collect()
}

/// Hub-interpreter throughput: how many sensor samples per second the IR
/// runtime sustains for each evaluation wake-up condition.
pub fn bench_conditions(c: &mut Criterion) {
    let cases: Vec<(&str, sidewinder_ir::Program, SensorChannel)> = vec![
        (
            "steps_condition",
            StepsApp::new().wake_condition(),
            SensorChannel::AccX,
        ),
        (
            "music_condition",
            MusicJournalApp::new().wake_condition(),
            SensorChannel::Mic,
        ),
        (
            "siren_condition",
            SirenDetectorApp::new().wake_condition(),
            SensorChannel::Mic,
        ),
    ];
    let mut group = c.benchmark_group("hub_interpreter");
    let batch = INTERPRETER_BATCH;
    group.throughput(Throughput::Elements(batch as u64));
    for (name, program, channel) in &cases {
        let samples: Vec<f64> = (0..batch).map(|i| (i as f64 * 0.37).sin()).collect();
        group.bench_function(*name, |b| {
            let mut hub = HubRuntime::load(program, &ChannelRates::default()).unwrap();
            b.iter(|| {
                hub.push_samples(*channel, black_box(&samples))
                    .unwrap()
                    .len()
            })
        });
    }
    // The same conditions through the single-precision pipeline mode.
    // Sensor ingestion stays f64 (the ADC side is unchanged), so the
    // input batch is identical; only the buffered vector stages narrow.
    // Their committed baselines are the f64 seed numbers, so the
    // reported speedup is the combined lane + f32 win.
    for (name, program, channel) in &cases {
        let samples: Vec<f64> = (0..batch).map(|i| (i as f64 * 0.37).sin()).collect();
        group.bench_function(format!("{name}_f32"), |b| {
            let mut hub = HubRuntime32::load_f32(program, &ChannelRates::default()).unwrap();
            b.iter(|| {
                hub.push_samples(*channel, black_box(&samples))
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();
}

/// Fusion ablation: two music-journal conditions with different
/// recognizer thresholds, run as separate hubs vs one fused runtime.
pub fn bench_fusion(c: &mut Criterion) {
    let program = MusicJournalApp::new().wake_condition();
    let batch = INTERPRETER_BATCH;
    let samples: Vec<f64> = (0..batch).map(|i| (i as f64 * 0.21).sin() * 0.2).collect();

    let mut group = c.benchmark_group("concurrent_conditions");
    group.throughput(Throughput::Elements(batch as u64));
    group.bench_function("two_separate_runtimes", |b| {
        let mut a = HubRuntime::load(&program, &ChannelRates::default()).unwrap();
        let mut bb = HubRuntime::load(&program, &ChannelRates::default()).unwrap();
        b.iter(|| {
            let mut wakes = 0usize;
            for &s in &samples {
                wakes += a
                    .push_sample(SensorChannel::Mic, black_box(s))
                    .unwrap()
                    .len();
                wakes += bb
                    .push_sample(SensorChannel::Mic, black_box(s))
                    .unwrap()
                    .len();
            }
            wakes
        })
    });
    group.bench_function("one_fused_runtime", |b| {
        let plan = FusedPlan::fuse(&[&program, &program]).unwrap();
        let mut fused = FusedRuntime::load(&plan, &ChannelRates::default()).unwrap();
        b.iter(|| {
            let mut wakes = 0usize;
            for &s in &samples {
                wakes += fused
                    .push_sample(SensorChannel::Mic, black_box(s))
                    .unwrap()
                    .len();
            }
            wakes
        })
    });
    // The optimizing compiler's answer to the same workload: fuse the
    // two conditions into one IR program and let CSE collapse the
    // duplicated chain, so the hub interprets one condition plus an
    // `anyOf` join instead of two. The perf gate's ratio floor pins
    // this row at >= 1.3x over `one_fused_runtime` — the fusion gap the
    // optimizer exists to close.
    group.bench_function("one_optimized_fused_runtime", |b| {
        let fused_ir = fuse_programs(&[program.clone(), program.clone()]);
        let (optimized, _) = optimize(
            &fused_ir,
            &ChannelRates::default(),
            &OptOptions::aggressive(),
        );
        let mut hub = HubRuntime::load(&optimized, &ChannelRates::default()).unwrap();
        b.iter(|| {
            let mut wakes = 0usize;
            for &s in &samples {
                wakes += hub
                    .push_sample(SensorChannel::Mic, black_box(s))
                    .unwrap()
                    .len();
            }
            wakes
        })
    });
    group.finish();
}

/// Forward real FFT at the window lengths the fixtures use.
pub fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for n in [256usize, 1024, 2048] {
        let signal = tone(1000.0, 8000.0, n);
        group.bench_with_input(BenchmarkId::new("real_fft", n), &signal, |b, s| {
            b.iter(|| fft::real_fft(black_box(s)).unwrap())
        });
    }
    group.finish();
}

/// The two filter kernels on a 1024-sample window.
pub fn bench_filters(c: &mut Criterion) {
    let signal = tone(1000.0, 8000.0, 1024);
    c.bench_function("highpass_750hz_1024", |b| {
        b.iter(|| fft_highpass(black_box(&signal), 750.0, 8000.0).unwrap())
    });
    c.bench_function("moving_average_w10_1024_samples", |b| {
        b.iter(|| {
            let mut ma = MovingAverage::new(10).unwrap();
            ma.filter(black_box(&signal))
        })
    });
}

/// Feature extractors on a 2048-sample window.
pub fn bench_features(c: &mut Criterion) {
    let signal = tone(440.0, 8000.0, 2048);
    c.bench_function("zcr_variance_8x2048", |b| {
        b.iter(|| zcr::zcr_variance(black_box(&signal), 8))
    });
    c.bench_function("summary_stats_2048", |b| {
        b.iter(|| stats::Summary::of(black_box(&signal)))
    });
    c.bench_function("hamming_window_2048", |b| {
        b.iter(|| WindowShape::Hamming.apply(black_box(&signal)))
    });
}

/// Ablation: full FFT spectrum vs probing 8 Goertzel bins for the siren
/// band.
pub fn bench_goertzel_ablation(c: &mut Criterion) {
    let signal = tone(1200.0, 8000.0, 1024);
    let probes: Vec<f64> = (0..8).map(|i| 850.0 + i as f64 * 135.0).collect();
    let mut group = c.benchmark_group("siren_band_detection");
    group.bench_function("full_fft_magnitudes", |b| {
        b.iter(|| fft::real_fft_magnitudes(black_box(&signal)))
    });
    group.bench_function("goertzel_8_probes", |b| {
        b.iter(|| goertzel::strongest_of(black_box(&signal), &probes, 8000.0))
    });
    // Interpreter-level counterpart: the narrow-band alarm condition
    // written with filters + FFT, against the same condition after the
    // optimizer's Goertzel strength reduction. Both push a 1 kHz tone
    // (the center of the 980-1020 Hz band) through a real HubRuntime;
    // the ratio floor pins the rewrite's win.
    let alarm = SirenDetectorApp::narrowband_wake_condition();
    let tone_batch = tone(1000.0, 8000.0, INTERPRETER_BATCH);
    group.bench_function("narrowband_fft_pipeline", |b| {
        let mut hub = HubRuntime::load(&alarm, &ChannelRates::default()).unwrap();
        b.iter(|| {
            hub.push_samples(SensorChannel::Mic, black_box(&tone_batch))
                .unwrap()
                .len()
        })
    });
    group.bench_function("goertzel_rewrite", |b| {
        let (optimized, report) =
            optimize(&alarm, &ChannelRates::default(), &OptOptions::aggressive());
        assert_eq!(report.goertzel_rewrites, 1, "{}", report.summary());
        let mut hub = HubRuntime::load(&optimized, &ChannelRates::default()).unwrap();
        b.iter(|| {
            hub.push_samples(SensorChannel::Mic, black_box(&tone_batch))
                .unwrap()
                .len()
        })
    });
    group.finish();
}
