//! Observability artifacts for CI: per-node energy tables and a
//! Chrome-tracing timeline.
//!
//! Runs each of the six evaluation applications under its Sidewinder
//! strategy on one representative trace, attributes the run's energy
//! across pipeline nodes / serial link / MCU idle / phone states, and
//! writes:
//!
//! * `OBS_energy.txt` — one per-node energy table per application (also
//!   printed to stdout);
//! * `OBS_timeline.json` — a `chrome://tracing` / Perfetto-compatible
//!   timeline of the steps application's hub run.
//!
//! Exits nonzero if any ledger fails to close on the run's measured
//! energy — that is a conformance failure, not a reporting glitch.

use sidewinder_apps::{accelerometer_apps, audio_apps};
use sidewinder_bench::{audio_traces, robot_traces, sidewinder_strategy};
use sidewinder_ir::Program;
use sidewinder_sensors::SensorTrace;
use sidewinder_sim::report::energy_table;
use sidewinder_sim::{
    attribute_energy, simulate_traced, PhonePowerProfile, SimConfig, TimelineSink,
};
use sidewinder_tracegen::ActivityGroup;
use std::fmt::Write as _;
use std::process::ExitCode;

fn node_names(program: &Program) -> Vec<String> {
    program
        .nodes()
        .map(|(_, id, kind)| format!("{}#{}", kind.ir_name(), id.0))
        .collect()
}

fn main() -> ExitCode {
    let config = SimConfig::default();
    let profile = PhonePowerProfile::NEXUS4;
    let robot: Vec<SensorTrace> = robot_traces(ActivityGroup::Group1);
    let audio: Vec<SensorTrace> = audio_traces();

    let mut jobs: Vec<(Box<dyn sidewinder_sim::Application>, &SensorTrace)> = Vec::new();
    for app in accelerometer_apps() {
        jobs.push((app, &robot[0]));
    }
    for (i, app) in audio_apps().into_iter().enumerate() {
        jobs.push((app, &audio[i % audio.len()]));
    }

    let mut report = String::new();
    let mut failed = false;
    for (app, trace) in &jobs {
        let strategy = sidewinder_strategy(app.as_ref());
        let run = match attribute_energy(trace, app.as_ref(), &strategy, &profile, &config) {
            Ok(run) => run,
            Err(e) => {
                eprintln!("obsreport: {} failed: {e}", app.name());
                failed = true;
                continue;
            }
        };
        let duration_s = run.result.breakdown.total().as_secs_f64();
        let measured_j = run.result.average_power_mw * duration_s / 1_000.0;
        let gap = (run.ledger.total_j() - measured_j).abs();
        if gap > 1e-9 {
            eprintln!(
                "obsreport: {} ledger does not close: off by {gap:.3e} J",
                app.name()
            );
            failed = true;
        }
        let _ = writeln!(
            report,
            "## {} — trace `{}`, {:.0} s, {:.2} mW average\n\n{}",
            app.name(),
            trace.name(),
            duration_s,
            run.result.average_power_mw,
            energy_table(&run.ledger).render()
        );
    }
    print!("{report}");
    if let Err(e) = std::fs::write("OBS_energy.txt", &report) {
        eprintln!("obsreport: cannot write OBS_energy.txt: {e}");
        failed = true;
    }

    // Timeline: the steps application's hub run, per-sample.
    let (steps, trace) = &jobs[0];
    let strategy = sidewinder_strategy(steps.as_ref());
    let mut sink = TimelineSink::new();
    match simulate_traced(
        trace,
        steps.as_ref(),
        &strategy,
        &profile,
        &config,
        &mut sink,
    ) {
        Ok(_) => {
            let names = node_names(&steps.wake_condition());
            let json = sink.chrome_json(&names);
            if let Err(e) = std::fs::write("OBS_timeline.json", &json) {
                eprintln!("obsreport: cannot write OBS_timeline.json: {e}");
                failed = true;
            } else {
                println!(
                    "obsreport: OBS_timeline.json: {} events ({} truncated)",
                    sink.events().len(),
                    sink.truncated
                );
            }
        }
        Err(e) => {
            eprintln!("obsreport: timeline run failed: {e}");
            failed = true;
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        println!(
            "obsreport: wrote OBS_energy.txt ({} applications)",
            jobs.len()
        );
        ExitCode::SUCCESS
    }
}
