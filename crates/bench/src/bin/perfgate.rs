//! CI perf/conformance gate.
//!
//! Compares the fresh `BENCH_interpreter.json` report (written by
//! `perfreport`) against the committed baseline and checks every golden
//! fixture's wake-sequence digest against `results/wake_digests.json`.
//! Exits nonzero on any violation, so CI fails the build.
//!
//! Usage:
//!
//! ```text
//! perfgate                  # check; exit 1 on violations
//! perfgate --write-digests  # regenerate results/wake_digests.json
//! perfgate --skip-perf      # digest check only (no fresh bench report)
//! ```

use sidewinder_bench::gate;
use std::path::Path;
use std::process::ExitCode;

const BASELINE: &str = "results/bench_interpreter_baseline.json";
const FRESH: &str = "BENCH_interpreter.json";
const DIGESTS: &str = "results/wake_digests.json";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let write_digests = args.iter().any(|a| a == "--write-digests");
    let skip_perf = args.iter().any(|a| a == "--skip-perf");
    if let Some(unknown) = args
        .iter()
        .find(|a| *a != "--write-digests" && *a != "--skip-perf")
    {
        eprintln!("perfgate: unknown flag {unknown}");
        eprintln!("usage: perfgate [--write-digests] [--skip-perf]");
        return ExitCode::from(2);
    }

    let fresh_digests = gate::fixture_digests();
    if write_digests {
        let text = gate::render_digests(&fresh_digests);
        if let Err(e) = std::fs::write(DIGESTS, &text) {
            eprintln!("perfgate: cannot write {DIGESTS}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "perfgate: wrote {} digests to {DIGESTS}",
            fresh_digests.len()
        );
        return ExitCode::SUCCESS;
    }

    let mut violations = Vec::new();

    // Wake conformance, bit-exact tier: every fixture's f64 digest must
    // match the golden.
    match std::fs::read_to_string(DIGESTS) {
        Ok(text) => {
            let golden = gate::parse_digests(&text);
            violations.extend(gate::check_digests(&golden, &fresh_digests));
        }
        Err(e) => {
            eprintln!("perfgate: cannot read {DIGESTS}: {e}");
            return ExitCode::from(2);
        }
    }

    // Wake conformance, tolerance tier: the f32 pipeline must reproduce
    // each fixture's f64 wake sequence within the pinned tolerance.
    violations.extend(gate::check_f32_conformance());

    // Perf: fresh interpreter numbers against the committed baseline.
    if skip_perf {
        println!("perfgate: --skip-perf, perf comparison skipped");
    } else if !Path::new(FRESH).exists() {
        eprintln!("perfgate: {FRESH} not found — run `cargo run --release -p sidewinder-bench --bin perfreport` first");
        return ExitCode::from(2);
    } else {
        let baseline = match std::fs::read_to_string(BASELINE) {
            Ok(text) => gate::parse_flat_json(&text),
            Err(e) => {
                eprintln!("perfgate: cannot read {BASELINE}: {e}");
                return ExitCode::from(2);
            }
        };
        let fresh = match std::fs::read_to_string(FRESH) {
            Ok(text) => gate::parse_bench_report(&text),
            Err(e) => {
                eprintln!("perfgate: cannot read {FRESH}: {e}");
                return ExitCode::from(2);
            }
        };
        if baseline.is_empty() || fresh.is_empty() {
            eprintln!("perfgate: empty baseline or report — refusing to pass vacuously");
            return ExitCode::from(2);
        }
        println!(
            "perfgate: {} baseline benches, tolerance {:.0}%, {} speedup floors, {} ratio floors",
            baseline.len(),
            gate::MAX_REGRESSION * 100.0,
            gate::SPEEDUP_FLOORS.len(),
            gate::RATIO_FLOORS.len()
        );
        violations.extend(gate::check_perf(
            &baseline,
            &fresh,
            gate::MAX_REGRESSION,
            &gate::SPEEDUP_FLOORS,
        ));
        // Same-run ratio floors: what the optimizing compiler buys,
        // independent of this machine's absolute speed.
        violations.extend(gate::check_ratios(&fresh, &gate::RATIO_FLOORS));
    }

    if violations.is_empty() {
        println!(
            "perfgate: OK ({} wake digests verified, f32 conformance held)",
            fresh_digests.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("perfgate: {} violation(s):", violations.len());
        for v in &violations {
            eprintln!("  FAIL {v}");
        }
        ExitCode::FAILURE
    }
}
