//! Regenerates **Fig. 3** — the wake-up-condition pipeline of each
//! application — in intermediate-language form, with the microcontroller
//! each condition is sized onto and its resource demands.

use sidewinder_apps::{accelerometer_apps, audio_apps, predefined};
use sidewinder_hub::cost::PipelineCost;
use sidewinder_hub::runtime::ChannelRates;
use sidewinder_hub::Mcu;
use sidewinder_ir::Program;
use sidewinder_sim::report::Table;

fn describe(name: &str, program: &Program) -> Vec<String> {
    let rates = ChannelRates::default();
    let cost = PipelineCost::analyze(program, &rates);
    let mcu = Mcu::cheapest_for(program, &rates)
        .map(|m| m.name.to_string())
        .unwrap_or_else(|e| format!("UNSCHEDULABLE: {e}"));
    println!("== {name} ==");
    print!("{}", sidewinder_ir::diagram::render(program));
    println!("IR:");
    print!("{program}");
    println!(
        "  -> {} nodes, {:.0} kflop/s, {} B state, runs on {}\n",
        program.nodes().count(),
        cost.total_flops_per_second() / 1e3,
        cost.total_memory_bytes(),
        mcu,
    );
    vec![
        name.to_string(),
        program.nodes().count().to_string(),
        format!("{:.0}", cost.total_flops_per_second() / 1e3),
        format!("{}", cost.total_memory_bytes()),
        mcu,
    ]
}

fn main() {
    println!("Fig. 3: wake-up condition pipelines for each application\n");
    let mut table = Table::new(["Condition", "Nodes", "kflop/s", "State (B)", "MCU"]);

    for app in accelerometer_apps().iter().chain(audio_apps().iter()) {
        table.push_row(describe(app.name(), &app.wake_condition()));
    }
    table.push_row(describe(
        "significant motion (PA)",
        &predefined::significant_motion(),
    ));
    table.push_row(describe(
        "significant sound (PA)",
        &predefined::significant_sound(),
    ));

    println!("{table}");
}
