//! Concurrent applications on one phone (paper §7 future work): all
//! three accelerometer applications — and separately all three audio
//! applications — share one hub and one main processor. Compares the
//! shared-phone power against each application running alone and
//! against the (hypothetical) sum of three separate devices.

use sidewinder_apps::{
    HeadbuttsApp, MusicJournalApp, PhraseDetectionApp, SirenDetectorApp, StepsApp, TransitionsApp,
};
use sidewinder_bench::{
    audio_traces, f1, pct, robot_traces, share_traces, sidewinder_strategy, sweep_over,
};
use sidewinder_sensors::SensorTrace;
use sidewinder_sim::batch::par_map;
use sidewinder_sim::concurrent::simulate_concurrent;
use sidewinder_sim::report::Table;
use sidewinder_sim::{Application, BatchRunner, PhonePowerProfile, SharedApp, SimConfig};
use sidewinder_tracegen::ActivityGroup;
use std::sync::Arc;

fn report(label: &str, traces: &[Arc<SensorTrace>], apps: &[SharedApp]) {
    println!("== {label} ==");
    let config = SimConfig::default();

    // Shared-phone simulation, one trace per worker; each application's
    // solo Sidewinder power runs as a batch sweep on the same pool.
    let shared_runs = par_map(BatchRunner::new().worker_count(), traces, |trace| {
        let refs: Vec<&dyn Application> = apps.iter().map(|a| a.as_ref() as _).collect();
        simulate_concurrent(trace, &refs, &PhonePowerProfile::NEXUS4, &config)
            .expect("evaluation apps simulate")
    });
    let solo_report = sweep_over(traces, apps.iter().cloned(), |app| {
        vec![sidewinder_strategy(app)]
    });

    let mut solo_sum = 0.0;
    let mut solo_max: f64 = 0.0;
    let mut table = Table::new(["App", "alone mW", "shared recall"]);
    let mut shared_avg = 0.0;
    let mut per_app_recalls = vec![Vec::new(); apps.len()];

    for shared in &shared_runs {
        shared_avg += shared.average_power_mw / traces.len() as f64;
        for (i, app_result) in shared.per_app.iter().enumerate() {
            per_app_recalls[i].push(app_result.stats.recall());
        }
    }

    for (i, app) in apps.iter().enumerate() {
        let solo = solo_report.cell(app.name(), "Sw");
        let solo_mw = sidewinder_sim::report::mean_power_mw(&solo);
        solo_sum += solo_mw;
        solo_max = solo_max.max(solo_mw);
        let recall =
            per_app_recalls[i].iter().sum::<f64>() / per_app_recalls[i].len().max(1) as f64;
        table.push_row([app.name().to_string(), f1(solo_mw), pct(recall)]);
    }
    println!("{table}");
    println!(
        "shared phone: {} mW  |  most expensive app alone: {} mW  |  three separate devices: {} mW",
        f1(shared_avg),
        f1(solo_max),
        f1(solo_sum)
    );
    println!(
        "concurrency overhead over the most demanding app: {}\n",
        pct(shared_avg / solo_max - 1.0)
    );
}

fn main() {
    println!("Concurrent applications on one phone (paper S7)\n");

    let robot = share_traces(robot_traces(ActivityGroup::Group2));
    report(
        "3 accelerometer apps, robot traces (50% idle)",
        &robot,
        &[
            Arc::new(StepsApp::new()),
            Arc::new(TransitionsApp::new()),
            Arc::new(HeadbuttsApp::new()),
        ],
    );

    let audio = share_traces(audio_traces());
    report(
        "3 audio apps, environmental traces",
        &audio,
        &[
            Arc::new(SirenDetectorApp::new()),
            Arc::new(MusicJournalApp::new()),
            Arc::new(PhraseDetectionApp::new()),
        ],
    );
}
