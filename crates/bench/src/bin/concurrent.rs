//! Concurrent applications on one phone (paper §7 future work): all
//! three accelerometer applications — and separately all three audio
//! applications — share one hub and one main processor. Compares the
//! shared-phone power against each application running alone and
//! against the (hypothetical) sum of three separate devices.

use sidewinder_apps::{
    HeadbuttsApp, MusicJournalApp, PhraseDetectionApp, SirenDetectorApp, StepsApp, TransitionsApp,
};
use sidewinder_bench::{audio_traces, f1, pct, robot_traces, run_over, sidewinder_strategy};
use sidewinder_sim::concurrent::simulate_concurrent;
use sidewinder_sim::report::Table;
use sidewinder_sim::{Application, PhonePowerProfile, SimConfig};
use sidewinder_tracegen::ActivityGroup;

fn report(label: &str, traces: &[sidewinder_sensors::SensorTrace], apps: &[&dyn Application]) {
    println!("== {label} ==");
    let config = SimConfig::default();

    // Individual Sidewinder power per application (averaged over traces).
    let mut solo_sum = 0.0;
    let mut solo_max: f64 = 0.0;
    let mut table = Table::new(["App", "alone mW", "shared recall"]);
    let mut shared_avg = 0.0;
    let mut per_app_recalls = vec![Vec::new(); apps.len()];

    for trace in traces {
        let shared = simulate_concurrent(trace, apps, &PhonePowerProfile::NEXUS4, &config)
            .expect("evaluation apps simulate");
        shared_avg += shared.average_power_mw / traces.len() as f64;
        for (i, app_result) in shared.per_app.iter().enumerate() {
            per_app_recalls[i].push(app_result.stats.recall());
        }
    }

    for (i, app) in apps.iter().enumerate() {
        let solo = run_over(traces, *app, &sidewinder_strategy(*app));
        let solo_mw = sidewinder_sim::report::mean_power_mw(&solo);
        solo_sum += solo_mw;
        solo_max = solo_max.max(solo_mw);
        let recall =
            per_app_recalls[i].iter().sum::<f64>() / per_app_recalls[i].len().max(1) as f64;
        table.push_row([app.name().to_string(), f1(solo_mw), pct(recall)]);
    }
    println!("{table}");
    println!(
        "shared phone: {} mW  |  most expensive app alone: {} mW  |  three separate devices: {} mW",
        f1(shared_avg),
        f1(solo_max),
        f1(solo_sum)
    );
    println!(
        "concurrency overhead over the most demanding app: {}\n",
        pct(shared_avg / solo_max - 1.0)
    );
}

fn main() {
    println!("Concurrent applications on one phone (paper S7)\n");

    let robot = robot_traces(ActivityGroup::Group2);
    let steps = StepsApp::new();
    let transitions = TransitionsApp::new();
    let headbutts = HeadbuttsApp::new();
    report(
        "3 accelerometer apps, robot traces (50% idle)",
        &robot,
        &[&steps, &transitions, &headbutts],
    );

    let audio = audio_traces();
    let sirens = SirenDetectorApp::new();
    let music = MusicJournalApp::new();
    let phrase = PhraseDetectionApp::new();
    report(
        "3 audio apps, environmental traces",
        &audio,
        &[&sirens, &music, &phrase],
    );
}
