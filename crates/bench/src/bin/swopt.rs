//! `swopt` — optimizing compiler front end for Sidewinder IR programs.
//!
//! Parses and validates each input, runs the `sidewinder-opt` pass
//! pipeline, and emits the optimized IR plus a cost report. Composes
//! with `swlint` the obvious way: `swopt wake.swir | swlint --deny
//! warnings` proves the optimizer traded cycles without buying
//! diagnostics.
//!
//! Usage:
//!
//! ```text
//! swopt wake.swir                   # optimize, IR to stdout, report to stderr
//! swopt --level exact wake.swir     # exact passes only (no Goertzel rewrite)
//! swopt --fuse a.swir b.swir        # merge all inputs into one program first
//! swopt --format json *.swir        # machine-readable cost table
//! swopt -o opt.swir wake.swir       # write the optimized IR to a file
//! swopt < wake.swir                 # stdin mode
//! ```
//!
//! Exit codes: `0` success, `2` usage, I/O, parse, or validation error.

use sidewinder_hub::cost::PipelineCost;
use sidewinder_hub::runtime::ChannelRates;
use sidewinder_ir::Program;
use sidewinder_opt::{fuse_programs, optimize, OptOptions, OptReport};
use std::io::Read;
use std::process::ExitCode;

const USAGE: &str =
    "usage: swopt [--level exact|aggressive] [--format ir|json] [--fuse] [-o FILE] [FILE...]";

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Ir,
    Json,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
        .replace('\t', "\\t")
}

/// One optimized input, ready to render.
struct Outcome {
    source: String,
    optimized: Program,
    report: OptReport,
    memory_before: usize,
    memory_after: usize,
}

fn render_json(outcomes: &[Outcome]) -> String {
    let mut out = String::from("[\n");
    for (i, o) in outcomes.iter().enumerate() {
        let r = &o.report;
        out.push_str(&format!(
            "  {{\n    \"source\": \"{}\",\n    \"tier\": \"{}\",\n    \
             \"nodes_before\": {},\n    \"nodes_after\": {},\n    \
             \"flops_per_s_before\": {:.1},\n    \"flops_per_s_after\": {:.1},\n    \
             \"memory_bytes_before\": {},\n    \"memory_bytes_after\": {},\n    \
             \"identities_removed\": {},\n    \"gates_fused\": {},\n    \
             \"duplicates_merged\": {},\n    \"goertzel_rewrites\": {},\n    \
             \"dead_swept\": {},\n    \"program\": \"{}\"\n  }}",
            json_escape(&o.source),
            r.tier,
            r.nodes_before,
            r.nodes_after,
            r.flops_before,
            r.flops_after,
            o.memory_before,
            o.memory_after,
            r.identities_removed,
            r.gates_fused,
            r.duplicates_merged,
            r.goertzel_rewrites,
            r.dead_swept,
            json_escape(&o.optimized.to_string()),
        ));
        out.push_str(if i + 1 < outcomes.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

fn main() -> ExitCode {
    let mut format = Format::Ir;
    let mut options = OptOptions::aggressive();
    let mut fuse = false;
    let mut output: Option<String> = None;
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--level" => match args.next().as_deref() {
                Some("exact") => options = OptOptions::exact(),
                Some("aggressive") => options = OptOptions::aggressive(),
                other => {
                    eprintln!("swopt: --level expects exact|aggressive, got {other:?}");
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("ir") => format = Format::Ir,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!("swopt: --format expects ir|json, got {other:?}");
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--fuse" => fuse = true,
            "-o" | "--output" => match args.next() {
                Some(path) => output = Some(path),
                None => {
                    eprintln!("swopt: -o expects a path");
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("swopt: unknown flag {flag}");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
            file => files.push(file.to_string()),
        }
    }

    // No files: optimize stdin, the `swopt < wake.swir` pipe mode.
    let inputs: Vec<(String, Option<String>)> = if files.is_empty() {
        let mut text = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut text) {
            eprintln!("swopt: cannot read stdin: {e}");
            return ExitCode::from(2);
        }
        vec![("<stdin>".to_string(), Some(text))]
    } else {
        files.into_iter().map(|f| (f, None)).collect()
    };

    let mut programs: Vec<(String, Program)> = Vec::new();
    for (source, text) in inputs {
        let text = match text {
            Some(t) => t,
            None => match std::fs::read_to_string(&source) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("swopt: cannot read {source}: {e}");
                    return ExitCode::from(2);
                }
            },
        };
        let program: Program = match text.parse() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {source}: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = program.validate_located() {
            eprintln!("error: {source}: {e}");
            return ExitCode::from(2);
        }
        programs.push((source, program));
    }

    if fuse {
        let fused = fuse_programs(
            &programs
                .iter()
                .map(|(_, p)| p.clone())
                .collect::<Vec<Program>>(),
        );
        if let Err(e) = fused.validate() {
            eprintln!("error: fused program is invalid: {e}");
            return ExitCode::from(2);
        }
        let names: Vec<&str> = programs.iter().map(|(s, _)| s.as_str()).collect();
        programs = vec![(format!("fused({})", names.join(", ")), fused)];
    }

    let rates = ChannelRates::default();
    let outcomes: Vec<Outcome> = programs
        .into_iter()
        .map(|(source, program)| {
            let memory_before = PipelineCost::analyze(&program, &rates).total_memory_bytes();
            let (optimized, report) = optimize(&program, &rates, &options);
            let memory_after = PipelineCost::analyze(&optimized, &rates).total_memory_bytes();
            Outcome {
                source,
                optimized,
                report,
                memory_before,
                memory_after,
            }
        })
        .collect();

    let rendered = match format {
        Format::Json => render_json(&outcomes),
        Format::Ir => {
            // Note multiple inputs render as several programs separated
            // by `#` comment headers — informative, but not one valid
            // program; use --fuse to get a single program.
            let mut out = String::new();
            for o in &outcomes {
                if outcomes.len() > 1 {
                    out.push_str(&format!("# {}\n", o.source));
                }
                out.push_str(&o.optimized.to_string());
                out.push('\n');
            }
            out
        }
    };
    match &output {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("swopt: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
        }
        None => print!("{rendered}"),
    }

    // The cost table goes to stderr so `swopt a.swir | swlint` stays a
    // clean pipe.
    for o in &outcomes {
        eprintln!(
            "swopt: {}: {}, {} -> {} bytes",
            o.source,
            o.report.summary(),
            o.memory_before,
            o.memory_after,
        );
    }
    ExitCode::SUCCESS
}
