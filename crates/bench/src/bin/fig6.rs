//! Regenerates **Fig. 6** — recall of Duty Cycling on the synthetic
//! robot traces with 90 % idle, as a function of the sleep interval.
//!
//! Paper finding: a 10 s sleep interval drops Headbutts and Transitions
//! recall below 30 % while walking-bout detection stays usable.

use sidewinder_apps::{HeadbuttsApp, StepsApp, TransitionsApp};
use sidewinder_bench::{pct, robot_traces, run_over, DC_SLEEPS_S};
use sidewinder_sensors::Micros;
use sidewinder_sim::report::{mean_recall, Table};
use sidewinder_sim::{Application, Strategy};
use sidewinder_tracegen::ActivityGroup;

fn main() {
    let traces = robot_traces(ActivityGroup::Group1);
    println!(
        "Fig. 6: Duty Cycling recall at 90% idle ({} runs of {}s)\n",
        traces.len(),
        traces[0].duration().as_secs_f64()
    );

    let steps = StepsApp::new();
    let transitions = TransitionsApp::new();
    let headbutts = HeadbuttsApp::new();
    let apps: [&dyn Application; 3] = [&headbutts, &transitions, &steps];

    let mut table = Table::new(["Sleep interval", "headbutts", "transitions", "steps"]);
    for sleep_s in DC_SLEEPS_S {
        let strategy = Strategy::DutyCycle {
            sleep: Micros::from_secs(sleep_s),
        };
        let mut row = vec![format!("{sleep_s} s")];
        for app in apps {
            let recall = mean_recall(&run_over(&traces, app, &strategy));
            row.push(pct(recall));
        }
        table.push_row(row);
    }
    println!("{table}");
    println!(
        "Paper shape: recall decays with the sleep interval; short events\n\
         (headbutts, transitions) fall below 30% by the 10 s interval."
    );
}
