//! Regenerates **Fig. 6** — recall of Duty Cycling on the synthetic
//! robot traces with 90 % idle, as a function of the sleep interval.
//!
//! Paper finding: a 10 s sleep interval drops Headbutts and Transitions
//! recall below 30 % while walking-bout detection stays usable.

use sidewinder_apps::{HeadbuttsApp, StepsApp, TransitionsApp};
use sidewinder_bench::{pct, robot_traces, share_traces, sweep_over, DC_SLEEPS_S};
use sidewinder_sensors::Micros;
use sidewinder_sim::report::{mean_recall, Table};
use sidewinder_sim::{SharedApp, Strategy};
use sidewinder_tracegen::ActivityGroup;
use std::sync::Arc;

fn main() {
    let traces = share_traces(robot_traces(ActivityGroup::Group1));
    println!(
        "Fig. 6: Duty Cycling recall at 90% idle ({} runs of {}s)\n",
        traces.len(),
        traces[0].duration().as_secs_f64()
    );

    let apps: Vec<SharedApp> = vec![
        Arc::new(HeadbuttsApp::new()),
        Arc::new(TransitionsApp::new()),
        Arc::new(StepsApp::new()),
    ];
    let report = sweep_over(&traces, apps, |_| {
        DC_SLEEPS_S
            .iter()
            .map(|&s| Strategy::DutyCycle {
                sleep: Micros::from_secs(s),
            })
            .collect()
    });

    let mut table = Table::new(["Sleep interval", "headbutts", "transitions", "steps"]);
    for sleep_s in DC_SLEEPS_S {
        let mut row = vec![format!("{sleep_s} s")];
        for app in ["headbutts", "transitions", "steps"] {
            let recall = mean_recall(&report.cell(app, &format!("DC-{sleep_s}")));
            row.push(pct(recall));
        }
        table.push_row(row);
    }
    println!("{table}");
    println!(
        "Paper shape: recall decays with the sleep interval; short events\n\
         (headbutts, transitions) fall below 30% by the 10 s interval."
    );
}
