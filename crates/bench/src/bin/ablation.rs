//! Ablation sweeps for the design choices DESIGN.md calls out:
//!
//! 1. **Wake-threshold sweep** (steps condition): the paper's §2.1.2
//!    conservatism argument — loose thresholds waste power, tight ones
//!    lose recall; there is a knee.
//! 2. **Sustained-count sweep** (music condition): the duration gate
//!    that separates continuous songs from speech's isolated
//!    steady windows.
//! 3. **ZCR-window sweep** (music condition): the window must span
//!    several speech phones or speech masquerades as music
//!    (DESIGN.md §6b).
//! 4. **Hub-chunk sweep**: how long the phone lingers awake after a hub
//!    wake-up — the accounting knob behind Predefined Activity's
//!    overhead.

use sidewinder_apps::{MusicJournalApp, StepsApp};
use sidewinder_bench::{f1, pct};
use sidewinder_ir::{AlgorithmKind, Program, Stmt};
use sidewinder_sensors::{Micros, SensorTrace};
use sidewinder_sim::report::Table;
use sidewinder_sim::{Application, BatchRunner, SimConfig, SimResult, Strategy, SweepSpec};
use sidewinder_tracegen::{audio_trace, robot_run, AudioTraceConfig, RobotRunConfig};

/// Rewrites every node of `kind_name` using `patch`.
fn rewrite(program: &Program, patch: impl Fn(&AlgorithmKind) -> AlgorithmKind) -> Program {
    let stmts: Vec<Stmt> = program
        .stmts()
        .iter()
        .map(|stmt| match stmt {
            Stmt::Node {
                sources,
                id,
                kind,
                line,
            } => Stmt::Node {
                sources: sources.clone(),
                id: *id,
                kind: patch(kind),
                line: *line,
            },
            out => out.clone(),
        })
        .collect();
    Program::from_stmts(stmts)
}

fn hub_wake(program: Program) -> Strategy {
    Strategy::HubWake {
        program,
        hub_mw: 3.6,
        label: "Sw",
    }
}

/// Runs one app on one trace under a list of strategy variants (or,
/// with one strategy, a list of configs); results come back in sweep
/// order, so `results[i]` matches variant `i`.
fn sweep_variants(
    trace: &SensorTrace,
    app: impl Application + Send + Sync + 'static,
    strategies: Vec<Strategy>,
    configs: Vec<SimConfig>,
) -> Vec<SimResult> {
    let mut spec = SweepSpec::new()
        .app(app)
        .trace(trace.clone())
        .strategies(strategies);
    for config in configs {
        spec = spec.config(config);
    }
    BatchRunner::new().run(&spec).expect_all()
}

fn main() {
    let config = SimConfig::default();

    // 1. Steps wake-band sweep on a robot trace.
    let robot = robot_run(&RobotRunConfig {
        duration: Micros::from_secs(600),
        idle_fraction: 0.5,
        rate_hz: 50.0,
        seed: 61,
    });
    let steps = StepsApp::new();
    println!("Ablation 1: steps wake-band half-width (robot trace, 50% idle)");
    let bands = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5];
    let band_strategies: Vec<Strategy> = bands
        .iter()
        .map(|&band| {
            hub_wake(rewrite(&steps.wake_condition(), |kind| match kind {
                AlgorithmKind::OutsideThreshold { .. } => AlgorithmKind::OutsideThreshold {
                    lo: -band,
                    hi: band,
                },
                other => *other,
            }))
        })
        .collect();
    let results = sweep_variants(&robot, StepsApp::new(), band_strategies, vec![config]);
    let mut t1 = Table::new(["band +-m/s^2", "power mW", "recall", "wake-ups"]);
    for (band, r) in bands.iter().zip(&results) {
        t1.push_row([
            format!("{band:.1}"),
            f1(r.average_power_mw),
            pct(r.recall()),
            r.wake_ups.to_string(),
        ]);
    }
    println!("{t1}");

    // 2. Music sustained-count sweep on an audio trace.
    let audio = audio_trace(&AudioTraceConfig {
        duration: Micros::from_secs(300),
        seed: 62,
        ..AudioTraceConfig::default()
    });
    let music = MusicJournalApp::new();
    println!("Ablation 2: music sustained-window count (office audio trace)");
    let counts = [1u32, 2, 3, 5, 8];
    let count_strategies: Vec<Strategy> = counts
        .iter()
        .map(|&count| {
            hub_wake(rewrite(&music.wake_condition(), |kind| match kind {
                AlgorithmKind::Sustained { max_gap, .. } => AlgorithmKind::Sustained {
                    count,
                    max_gap: *max_gap,
                },
                other => *other,
            }))
        })
        .collect();
    let results = sweep_variants(
        &audio,
        MusicJournalApp::new(),
        count_strategies,
        vec![config],
    );
    let mut t2 = Table::new(["consecutive windows", "power mW", "recall"]);
    for (count, r) in counts.iter().zip(&results) {
        t2.push_row([count.to_string(), f1(r.average_power_mw), pct(r.recall())]);
    }
    println!("{t2}");

    // 3. Music ZCR-window sweep: rebuild the condition with different
    // window lengths for the ZCR branch.
    println!("Ablation 3: music ZCR-variance window length");
    let windows = [256u32, 512, 1024, 2048];
    let window_strategies: Vec<Strategy> = windows
        .iter()
        .map(|&window| {
            hub_wake(rewrite(&music.wake_condition(), |kind| match kind {
                AlgorithmKind::Window { size, hop, shape } if *size == 2048 => {
                    let _ = (size, hop);
                    AlgorithmKind::Window {
                        size: window,
                        hop: window,
                        shape: *shape,
                    }
                }
                // The AND-join emits where the two branch strides align:
                // every max(window, 512) samples. The sustained gate must
                // treat that stride as consecutive.
                AlgorithmKind::Sustained { count, .. } => AlgorithmKind::Sustained {
                    count: *count,
                    max_gap: window.max(512),
                },
                other => *other,
            }))
        })
        .collect();
    let results = sweep_variants(
        &audio,
        MusicJournalApp::new(),
        window_strategies,
        vec![config],
    );
    let mut t3 = Table::new(["window (samples)", "power mW", "recall"]);
    for (window, r) in windows.iter().zip(&results) {
        t3.push_row([window.to_string(), f1(r.average_power_mw), pct(r.recall())]);
    }
    println!("{t3}");
    println!(
        "Short ZCR windows sit inside single speech phones, so speech looks\n\
         steady (music-like) and power rises; 2048 samples (256 ms) spans\n\
         several phones and rejects speech.\n"
    );

    // 4. Hub-chunk sweep: accounting sensitivity. One strategy, many
    // configs — results come back in config order.
    println!("Ablation 4: awake time charged per hub wake-up (steps app)");
    let chunks_ms = [100u64, 250, 500, 1_000, 2_000, 4_000];
    let configs: Vec<SimConfig> = chunks_ms
        .iter()
        .map(|&chunk_ms| SimConfig {
            hub_chunk: Micros::from_millis(chunk_ms),
            ..SimConfig::default()
        })
        .collect();
    let results = sweep_variants(
        &robot,
        StepsApp::new(),
        vec![hub_wake(steps.wake_condition())],
        configs,
    );
    let mut t4 = Table::new(["hub chunk (ms)", "power mW", "recall"]);
    for (chunk_ms, r) in chunks_ms.iter().zip(&results) {
        t4.push_row([
            chunk_ms.to_string(),
            f1(r.average_power_mw),
            pct(r.recall()),
        ]);
    }
    println!("{t4}");
}
