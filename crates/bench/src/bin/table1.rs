//! Regenerates **Table 1** — the Google Nexus 4 power profile — and
//! validates the power model against closed-form expectations.

use sidewinder_sensors::Micros;
use sidewinder_sim::power::{PhonePowerProfile, PowerBreakdown};
use sidewinder_sim::report::Table;

fn main() {
    let profile = PhonePowerProfile::NEXUS4;

    println!("Table 1: Google Nexus 4 power profile");
    let mut table = Table::new(["State", "Average Power (mW)", "Average Duration"]);
    table.push_row([
        "Awake, running sensor-driven application",
        &format!("{}", profile.awake_mw),
        "N/A",
    ]);
    table.push_row(["Asleep", &format!("{}", profile.asleep_mw), "N/A"]);
    table.push_row([
        "Asleep-to-Awake Transition",
        &format!("{}", profile.wake_transition_mw),
        "1 second",
    ]);
    table.push_row([
        "Awake-to-Asleep Transition",
        &format!("{}", profile.sleep_transition_mw),
        "1 second",
    ]);
    println!("{table}");

    println!("Hub microcontrollers (paper §4):");
    let mut mcus = Table::new(["MCU", "Awake power (mW)", "Clock", "FFT in real time?"]);
    for mcu in sidewinder_hub::Mcu::CATALOG {
        let fft_ok = mcu
            .supports(
                &"MIC -> window(id=1, params={1024, 1024, 0});
                   1 -> fft(id=2);
                   2 -> spectralMagnitude(id=3);
                   3 -> max(id=4);
                   4 -> minThreshold(id=5, params={25});
                   5 -> OUT;"
                    .parse()
                    .expect("well-formed probe program"),
                &Default::default(),
            )
            .is_ok();
        mcus.push_row([
            mcu.name,
            &format!("{}", mcu.awake_power_mw),
            &format!("{} MHz", mcu.clock_hz / 1e6),
            if fft_ok { "yes" } else { "no" },
        ]);
    }
    println!("{mcus}");

    // Model validation: a 50 % duty pattern must average the state
    // powers exactly.
    let half = PowerBreakdown {
        awake: Micros::from_secs(49),
        asleep: Micros::from_secs(49),
        waking: Micros::from_secs(1),
        sleeping: Micros::from_secs(1),
        hub_mw: 0.0,
    };
    let expected = (323.0 * 49.0 + 9.7 * 49.0 + 384.0 + 341.0) / 100.0;
    let got = half.average_power_mw(&profile);
    println!(
        "Model check: 49s awake + 49s asleep + transitions = {got:.2} mW (expected {expected:.2})"
    );
    assert!((got - expected).abs() < 1e-9);
}
