//! Batching's timeliness trade-off (paper §5.4): "Batching achieves
//! perfect recall, but requires long batching intervals to achieve large
//! energy savings. Therefore, this approach is not appropriate for
//! applications with timeliness constraints." This binary sweeps the
//! batching interval on the headbutt (fall-like) application — exactly
//! the kind of event where a late detection is useless — and reports
//! power against discovery delay, with Sidewinder's live detection as
//! the reference point.

use sidewinder_apps::HeadbuttsApp;
use sidewinder_bench::{f1, pct, robot_traces, run_over, sidewinder_strategy};
use sidewinder_hub::Mcu;
use sidewinder_sensors::{Micros, SensorChannel};
use sidewinder_sim::report::{mean_power_mw, mean_recall, Table};
use sidewinder_sim::Strategy;
use sidewinder_tracegen::ActivityGroup;

fn main() {
    let traces = robot_traces(ActivityGroup::Group2);
    let app = HeadbuttsApp::new();
    println!(
        "Batching interval sweep: headbutt detection on robot traces ({} runs of {}s)\n",
        traces.len(),
        traces[0].duration().as_secs_f64()
    );

    let mut table = Table::new([
        "Config",
        "power mW",
        "recall",
        "mean delay (s)",
        "max delay (s)",
        "MSP430 cache",
    ]);
    for interval_s in [2u64, 5, 10, 20, 30, 60] {
        let results = run_over(
            &traces,
            &app,
            &Strategy::Batching {
                interval: Micros::from_secs(interval_s),
                hub_mw: 3.6,
            },
        );
        let mean_delay = results
            .iter()
            .map(|r| r.mean_discovery_delay_s())
            .sum::<f64>()
            / results.len() as f64;
        let max_delay = results
            .iter()
            .map(|r| r.max_discovery_delay_s())
            .fold(0.0f64, f64::max);
        // The hub must buffer the whole batch: check it fits the MSP430.
        let cache_ok = Mcu::MSP430
            .can_cache(&SensorChannel::ACCEL, Micros::from_secs(interval_s))
            .is_ok();
        table.push_row([
            format!("Ba-{interval_s}"),
            f1(mean_power_mw(&results)),
            pct(mean_recall(&results)),
            format!("{mean_delay:.1}"),
            format!("{max_delay:.1}"),
            (if cache_ok { "fits" } else { "OVERFLOWS" }).to_string(),
        ]);
    }
    let sw = run_over(&traces, &app, &sidewinder_strategy(&app));
    table.push_row([
        "Sw".to_string(),
        f1(mean_power_mw(&sw)),
        pct(mean_recall(&sw)),
        "0.0".to_string(),
        "0.0".to_string(),
        "n/a".to_string(),
    ]);
    println!("{table}");
    println!(
        "Batching only approaches Sidewinder's power at intervals whose\n\
         discovery delay would be useless for a fall detector — the paper's\n\
         S5.4 conclusion in numbers."
    );
}
