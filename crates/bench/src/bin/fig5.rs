//! Regenerates **Fig. 5** — power usage of each sensing configuration
//! relative to Oracle on the synthetic robot traces, per application and
//! activity group — plus the §5.1 savings headroom and the §5.2/§5.4
//! derived statistics.

use sidewinder_apps::{HeadbuttsApp, StepsApp, TransitionsApp};
use sidewinder_bench::{
    f1, f2, pct, predefined_motion_strategy, robot_traces, share_traces, sidewinder_strategy,
    sweep_over, DC_SLEEPS_S,
};
use sidewinder_sensors::Micros;
use sidewinder_sim::report::{mean_power_mw, mean_recall, savings_fraction, Table};
use sidewinder_sim::{Application, SharedApp, Strategy};
use sidewinder_tracegen::ActivityGroup;
use std::sync::Arc;

/// The Fig. 5 configuration sweep, Oracle first so ratios can be derived.
fn strategies(app: &dyn Application) -> Vec<Strategy> {
    let mut out = vec![Strategy::Oracle, Strategy::AlwaysAwake];
    for s in DC_SLEEPS_S {
        out.push(Strategy::DutyCycle {
            sleep: Micros::from_secs(s),
        });
    }
    out.push(Strategy::Batching {
        interval: Micros::from_secs(10),
        hub_mw: 3.6,
    });
    out.push(predefined_motion_strategy());
    out.push(sidewinder_strategy(app));
    out
}

struct Cell {
    label: String,
    mw: f64,
    recall: f64,
}

fn main() {
    let apps: Vec<SharedApp> = vec![
        Arc::new(HeadbuttsApp::new()),
        Arc::new(TransitionsApp::new()),
        Arc::new(StepsApp::new()),
    ];

    println!("Fig. 5: power relative to Oracle on synthetic robot traces\n");

    let mut sw_savings: Vec<f64> = Vec::new();
    let mut pa_over_sw: Vec<(String, f64)> = Vec::new();
    let mut dcba_over_sw: Vec<f64> = Vec::new();
    let mut oracle_range: Vec<f64> = Vec::new();

    for group in ActivityGroup::ALL {
        let traces = share_traces(robot_traces(group));
        println!(
            "--- group: {} ({} runs of {}s) ---",
            group,
            traces.len(),
            traces[0].duration().as_secs_f64()
        );
        let report = sweep_over(&traces, apps.iter().cloned(), strategies);
        let mut table = Table::new(["App", "Config", "mW", "x Oracle", "Recall"]);
        for app in &apps {
            let app: &dyn Application = app.as_ref();
            let cells: Vec<Cell> = strategies(app)
                .iter()
                .map(|strategy| {
                    let label = strategy.label();
                    let results = report.cell(app.name(), &label);
                    Cell {
                        label,
                        mw: mean_power_mw(&results),
                        recall: mean_recall(&results),
                    }
                })
                .collect();
            let oracle_mw = cells[0].mw;
            let aa_mw = cells[1].mw;
            let sw_mw = cells.iter().find(|c| c.label == "Sw").expect("Sw ran").mw;
            let pa_mw = cells.iter().find(|c| c.label == "PA").expect("PA ran").mw;

            for cell in &cells {
                table.push_row([
                    app.name().to_string(),
                    cell.label.clone(),
                    f1(cell.mw),
                    f2(cell.mw / oracle_mw),
                    pct(cell.recall),
                ]);
                if cell.label.starts_with("DC") || cell.label.starts_with("Ba") {
                    dcba_over_sw.push(cell.mw / sw_mw);
                }
            }
            oracle_range.push(oracle_mw);
            sw_savings.push(savings_fraction(sw_mw, aa_mw, oracle_mw));
            pa_over_sw.push((format!("{:<11} @ {}", app.name(), group), pa_mw / sw_mw));
        }
        println!("{table}");
    }

    println!("--- Derived statistics ---");
    println!(
        "S5.1 headroom: Oracle spans {:.1}..{:.1} mW vs Always Awake 323 mW.",
        oracle_range.iter().cloned().fold(f64::MAX, f64::min),
        oracle_range.iter().cloned().fold(f64::MIN, f64::max),
    );
    println!(
        "S5.2: Sidewinder achieves {}..{} of the possible savings (paper: 92.7%..95.7%).",
        pct(sw_savings.iter().cloned().fold(f64::MAX, f64::min)),
        pct(sw_savings.iter().cloned().fold(f64::MIN, f64::max)),
    );
    println!(
        "S5.3: Predefined Activity power over Sidewinder (paper: ~1x steps, 4.7x headbutts, 6.1x transitions):"
    );
    for (label, ratio) in &pa_over_sw {
        println!("    {label}: {ratio:.2}x");
    }
    println!(
        "S5.4: Duty Cycling / Batching over Sidewinder: {:.1}x..{:.1}x (paper: 2.4x-7.5x).",
        dcba_over_sw.iter().cloned().fold(f64::MAX, f64::min),
        dcba_over_sw.iter().cloned().fold(f64::MIN, f64::max),
    );
}
