//! `swcert` — static resource certifier for Sidewinder IR programs.
//!
//! Compiles each input to an MCU image and derives its sound resource
//! certificate: exact per-arena occupancy, worst-case per-node cycle
//! demand, schedulability on the target MCU, and a static energy
//! ceiling — rendered for humans or as canonical JSON with the pinned
//! FNV digest.
//!
//! Usage:
//!
//! ```text
//! swcert wake.swir                       # certify one file, human summary
//! swcert --mcu msp430 wake.swir          # pin the target MCU
//! swcert --cap 1024 wake.swir            # certify against a 1k-element core
//! swcert --precision f32 wake.swir       # f32 sample arenas
//! swcert --format json wake.swir         # canonical JSON certificate
//! swcert --fuse a.swir b.swir            # also certify the fused suite
//! swcert --pins --cap 16384 *.swir       # emit the resource_certs pins doc
//! swcert --check results/resource_certs.json --cap 16384 *.swir
//! ```
//!
//! Exit codes: `0` every certificate fits its target, `1` a certified
//! bound is violated (arena overflow, pinned-MCU deadline miss, or
//! `--check` drift), `2` usage, I/O, parse, validation, or
//! certification error.

use sidewinder_cert::{
    canonical_json, certify_program, render_pins, CertTarget, PinEntry, Precision, ResourceCert,
};
use sidewinder_hub::mcu::Mcu;
use sidewinder_hub::runtime::ChannelRates;
use sidewinder_ir::Program;
use sidewinder_mcu::DEFAULT_ARENA;
use std::io::Read;
use std::process::ExitCode;

const USAGE: &str = "usage: swcert [--mcu msp430|lm4f120|auto] [--cap N] \
                     [--precision f64|f32|both] [--format human|json] \
                     [--fuse] [--pins] [--check FILE] [FILE...]";

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
}

#[derive(Clone, Copy, PartialEq)]
enum Precisions {
    F64,
    F32,
    Both,
}

impl Precisions {
    fn list(self) -> &'static [Precision] {
        match self {
            Precisions::F64 => &[Precision::F64],
            Precisions::F32 => &[Precision::F32],
            Precisions::Both => &[Precision::F64, Precision::F32],
        }
    }
}

fn stem(path: &str) -> String {
    std::path::Path::new(path)
        .file_stem()
        .map_or_else(|| path.to_string(), |s| s.to_string_lossy().into_owned())
}

fn human_summary(name: &str, cert: &ResourceCert) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{name} [{}] cap {}: required {} elements ({}), {} bytes total\n",
        cert.precision.name(),
        cert.cap,
        cert.required_capacity,
        if cert.fits_cap { "fits" } else { "OVERFLOWS" },
        cert.total_bytes,
    ));
    for arena in &cert.arenas {
        if arena.elements == 0 {
            continue;
        }
        out.push_str(&format!(
            "  {:24} {:>7} elements  {:>8} bytes",
            arena.name, arena.elements, arena.bytes
        ));
        if let Some(node) = arena.peak_node {
            let n = &cert.nodes[node as usize];
            out.push_str(&format!(
                "  (peak: {} node {} at {} elements)",
                n.kind,
                n.ir_id
                    .map_or_else(|| node.to_string(), |id| id.to_string()),
                arena.peak_elements
            ));
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "  demand: {:.1} flops/s, {:.1} cycles/s of {:.1} budget on {} -> {}\n",
        cert.total_flops_per_second,
        cert.mcu.demanded_cycles_per_s,
        cert.mcu.budget_cycles_per_s,
        cert.mcu.mcu,
        match &cert.mcu.error {
            None => "schedulable".to_string(),
            Some(e) => format!("UNSCHEDULABLE ({e})"),
        },
    ));
    out.push_str(&format!(
        "  wake rate <= {:.3} Hz, energy ceiling {:.2} uW (compute {:.2} + link {:.2})\n",
        cert.wake_rate_hz, cert.energy.total_uw, cert.energy.compute_uw, cert.energy.link_uw,
    ));
    out.push_str(&format!("  digest {:#018x}\n", cert.digest()));
    out
}

fn main() -> ExitCode {
    let mut format = Format::Human;
    let mut precisions = Precisions::F64;
    let mut mcu: Option<Mcu> = None;
    let mut cap = DEFAULT_ARENA;
    let mut fuse = false;
    let mut pins = false;
    let mut check: Option<String> = None;
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!("swcert: --format expects human|json, got {other:?}");
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--precision" => match args.next().as_deref() {
                Some("f64") => precisions = Precisions::F64,
                Some("f32") => precisions = Precisions::F32,
                Some("both") => precisions = Precisions::Both,
                other => {
                    eprintln!("swcert: --precision expects f64|f32|both, got {other:?}");
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--mcu" => match args.next().as_deref() {
                Some("msp430") => mcu = Some(Mcu::MSP430),
                Some("lm4f120") => mcu = Some(Mcu::LM4F120),
                Some("auto") => mcu = None,
                other => {
                    eprintln!("swcert: --mcu expects msp430|lm4f120|auto, got {other:?}");
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--cap" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v > 0 => cap = v,
                _ => {
                    eprintln!("swcert: --cap expects a positive element count");
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--fuse" => fuse = true,
            "--pins" => pins = true,
            "--check" => match args.next() {
                Some(path) => check = Some(path),
                None => {
                    eprintln!("swcert: --check expects a pins file path");
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("swcert: unknown flag {flag}");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
            file => files.push(file.to_string()),
        }
    }

    // No files: certify stdin, the `swcert < wake.swir` pipe mode.
    let inputs: Vec<(String, Option<String>)> = if files.is_empty() {
        let mut text = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut text) {
            eprintln!("swcert: cannot read stdin: {e}");
            return ExitCode::from(2);
        }
        vec![("<stdin>".to_string(), Some(text))]
    } else {
        files.into_iter().map(|f| (f, None)).collect()
    };

    let mut programs: Vec<(String, Program)> = Vec::new();
    for (source, text) in inputs {
        let text = match text {
            Some(t) => t,
            None => match std::fs::read_to_string(&source) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("swcert: cannot read {source}: {e}");
                    return ExitCode::from(2);
                }
            },
        };
        let program: Program = match text.parse() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {source}: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = program.validate_located() {
            eprintln!("error: {source}: {e}");
            return ExitCode::from(2);
        }
        programs.push((stem(&source), program));
    }

    if fuse || pins || check.is_some() {
        // The canonical fused suite: merge every input, then optimize
        // at the aggressive level — the same pipeline the wake-digest
        // golden pins.
        let all: Vec<Program> = programs.iter().map(|(_, p)| p.clone()).collect();
        let fused = sidewinder_opt::fuse_programs(&all);
        let (optimized, _) = sidewinder_opt::optimize(
            &fused,
            &ChannelRates::default(),
            &sidewinder_opt::OptOptions::aggressive(),
        );
        let name = if all.len() == 6 {
            "fused_all_six".to_string()
        } else {
            format!("fused_all_{}", all.len())
        };
        programs.push((name, optimized));
    }

    let rates = ChannelRates::default();
    let target = CertTarget { mcu, cap };
    let mut violated = false;

    if pins || check.is_some() {
        let mut entries = Vec::new();
        for (name, program) in &programs {
            let f64_cert = match certify_program(program, &rates, Precision::F64, &target) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: {name}: {e}");
                    return ExitCode::from(2);
                }
            };
            let f32_cert = match certify_program(program, &rates, Precision::F32, &target) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: {name}: {e}");
                    return ExitCode::from(2);
                }
            };
            entries.push(PinEntry::from_certs(name.clone(), &f64_cert, &f32_cert));
        }
        let doc = render_pins(cap, &entries);
        if let Some(path) = check {
            let committed = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("swcert: cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            if committed == doc {
                eprintln!("swcert: {path} matches ({} entries)", entries.len());
                return ExitCode::SUCCESS;
            }
            eprintln!("swcert: {path} drifted from the regenerated certificates");
            print!("{doc}");
            return ExitCode::FAILURE;
        }
        print!("{doc}");
        return ExitCode::SUCCESS;
    }

    let mut json_parts: Vec<String> = Vec::new();
    for (name, program) in &programs {
        for &precision in precisions.list() {
            let cert = match certify_program(program, &rates, precision, &target) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: {name}: {e}");
                    return ExitCode::from(2);
                }
            };
            if !cert.fits_cap || (mcu.is_some() && cert.mcu.error.is_some()) {
                violated = true;
            }
            match format {
                Format::Human => print!("{}", human_summary(name, &cert)),
                Format::Json => json_parts.push(canonical_json(&cert)),
            }
        }
    }
    if format == Format::Json {
        println!("[\n{}\n]", json_parts.join(",\n"));
    }

    if violated {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
