//! Explores the paper's §3.8 "Sizing" question: which microcontroller
//! does each wake-up condition need, and how much headroom remains for
//! concurrent conditions?

use sidewinder_apps::{accelerometer_apps, audio_apps, predefined};
use sidewinder_bench::pct;
use sidewinder_hub::cost::PipelineCost;
use sidewinder_hub::runtime::ChannelRates;
use sidewinder_hub::Mcu;
use sidewinder_ir::Program;
use sidewinder_sim::batch::par_map;
use sidewinder_sim::report::Table;
use sidewinder_sim::BatchRunner;

/// Everything the three report sections need for one condition,
/// computed once on the worker pool.
struct ConditionAnalysis {
    name: String,
    row: [String; 6],
    headroom: Option<(f64, &'static str)>,
    fits_fpga: bool,
}

fn main() {
    let rates = ChannelRates::default();
    let mut conditions: Vec<(String, Program)> = Vec::new();
    for app in accelerometer_apps().iter().chain(audio_apps().iter()) {
        conditions.push((app.name().to_string(), app.wake_condition()));
    }
    conditions.push(("sig-motion".to_string(), predefined::significant_motion()));
    conditions.push(("sig-sound".to_string(), predefined::significant_sound()));

    let fpga = Mcu::IGLOO_FPGA;
    let analyses = par_map(
        BatchRunner::new().worker_count(),
        &conditions,
        |(name, program)| {
            let cost = PipelineCost::analyze(program, &rates);
            let util = |mcu: &Mcu| {
                cost.total_flops_per_second() * mcu.cycles_per_flop / mcu.cycle_budget()
            };
            let cheapest = Mcu::cheapest_for(program, &rates);
            ConditionAnalysis {
                name: name.clone(),
                row: [
                    name.clone(),
                    format!("{:.0}", cost.total_flops_per_second() / 1e3),
                    format!("{}", cost.total_memory_bytes()),
                    pct(util(&Mcu::MSP430)),
                    pct(util(&Mcu::LM4F120)),
                    cheapest
                        .as_ref()
                        .map(|m| m.name.to_string())
                        .unwrap_or_else(|e| format!("none ({e})")),
                ],
                headroom: cheapest.ok().map(|mcu| {
                    let copies = (mcu.cycle_budget()
                        / (cost.total_flops_per_second() * mcu.cycles_per_flop))
                        .floor();
                    (copies, mcu.name)
                }),
                fits_fpga: fpga.supports(program, &rates).is_ok(),
            }
        },
    );

    println!("MCU sizing exploration (paper S3.8)\n");
    let mut table = Table::new([
        "Condition",
        "kflop/s",
        "State (B)",
        "MSP430 util",
        "LM4F120 util",
        "Cheapest MCU",
    ]);
    for analysis in &analyses {
        table.push_row(analysis.row.clone());
    }
    println!("{table}");

    // Concurrency headroom: how many copies of each condition fit on its
    // cheapest MCU (compute-wise)?
    println!("Concurrent-condition headroom (compute only):");
    for analysis in &analyses {
        if let Some((copies, mcu_name)) = analysis.headroom {
            println!(
                "    {}: ~{copies:.0} concurrent copies on the {mcu_name}",
                analysis.name
            );
        }
    }

    // What-if: the paper's §7 FPGA prototype.
    println!("\nWhat-if (paper S7 future work): an IGLOO-class FPGA hub");
    for analysis in &analyses {
        println!(
            "    {}: {} on the {} ({} mW always-on)",
            analysis.name,
            if analysis.fits_fpga {
                "fits"
            } else {
                "does NOT fit"
            },
            fpga.name,
            fpga.awake_power_mw
        );
    }
    println!(
        "Every condition — including the FFT-heavy siren detector — fits the\n\
         FPGA fabric at {} mW, a quarter of the LM4F120's {} mW: the\n\
         quantitative case for the paper's planned FPGA prototype.",
        fpga.awake_power_mw,
        Mcu::LM4F120.awake_power_mw
    );
}
