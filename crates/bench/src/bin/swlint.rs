//! `swlint` — static analyzer front end for Sidewinder IR programs.
//!
//! Parses and validates each input, runs the full lint suite from
//! `sidewinder-lint`, and renders diagnostics for humans or machines.
//!
//! Usage:
//!
//! ```text
//! swlint wake.swir                  # lint one file, human diagnostics
//! swlint a.swir b.swir              # lint several files
//! swlint < wake.swir                # lint stdin
//! swlint --format json *.swir       # one JSON array across all inputs
//! swlint --deny warnings wake.swir  # warnings fail the build (CI mode)
//! ```
//!
//! Exit codes: `0` clean (or only undenied findings), `1` denied
//! diagnostics present, `2` usage, I/O, parse, or validation error.

use sidewinder_hub::runtime::ChannelRates;
use sidewinder_ir::Program;
use sidewinder_lint::{lint_program, render_json_array, LintReport, Severity};
use std::io::Read;
use std::process::ExitCode;

const USAGE: &str = "usage: swlint [--format human|json] [--deny warnings] [FILE...]";

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
}

fn main() -> ExitCode {
    let mut format = Format::Human;
    let mut deny_warnings = false;
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!("swlint: --format expects human|json, got {other:?}");
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--deny" => match args.next().as_deref() {
                Some("warnings") => deny_warnings = true,
                other => {
                    eprintln!("swlint: --deny expects `warnings`, got {other:?}");
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("swlint: unknown flag {flag}");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
            file => files.push(file.to_string()),
        }
    }

    // No files: lint stdin, the `swlint < wake.swir` pipe mode.
    let inputs: Vec<(String, Option<String>)> = if files.is_empty() {
        let mut text = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut text) {
            eprintln!("swlint: cannot read stdin: {e}");
            return ExitCode::from(2);
        }
        vec![("<stdin>".to_string(), Some(text))]
    } else {
        files.into_iter().map(|f| (f, None)).collect()
    };

    let rates = ChannelRates::default();
    let mut reports: Vec<(String, LintReport)> = Vec::new();
    for (source, text) in inputs {
        let text = match text {
            Some(t) => t,
            None => match std::fs::read_to_string(&source) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("swlint: cannot read {source}: {e}");
                    return ExitCode::from(2);
                }
            },
        };
        let program: Program = match text.parse() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {source}: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = program.validate_located() {
            eprintln!("error: {source}: {e}");
            return ExitCode::from(2);
        }
        reports.push((source, lint_program(&program, &rates)));
    }

    match format {
        Format::Json => {
            let entries: Vec<String> = reports
                .iter()
                .flat_map(|(source, r)| r.json_entries(source))
                .collect();
            println!("{}", render_json_array(&entries));
        }
        Format::Human => {
            for (source, r) in &reports {
                print!("{}", r.render_human(source));
            }
            let (errors, warnings, notes) = reports.iter().fold((0, 0, 0), |(e, w, n), (_, r)| {
                (
                    e + r.count(Severity::Error),
                    w + r.count(Severity::Warn),
                    n + r.count(Severity::Info),
                )
            });
            eprintln!(
                "swlint: {} file(s): {errors} error(s), {warnings} warning(s), {notes} note(s)",
                reports.len()
            );
        }
    }

    if reports.iter().any(|(_, r)| r.fails(deny_warnings)) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
