//! Regenerates **Table 2** — average power for the audio applications
//! under Oracle, Predefined Activity, and Sidewinder — plus the §5.2
//! savings fractions for the audio pipeline.
//!
//! Paper values (mW): Oracle 16.8 / 27.2 / 14.7; Predefined Activity
//! 51.9 for all three; Sidewinder 63.1 (with the LM4F120) / 32.3 / 35.6.

use sidewinder_apps::{MusicJournalApp, PhraseDetectionApp, SirenDetectorApp};
use sidewinder_bench::{
    audio_traces, f1, pct, predefined_sound_strategy, share_traces, sidewinder_strategy, sweep_over,
};
use sidewinder_sim::report::{mean_power_mw, mean_recall, savings_fraction, Table};
use sidewinder_sim::{SharedApp, Strategy};
use std::sync::Arc;

fn main() {
    let traces = share_traces(audio_traces());
    println!(
        "Table 2: average power for the audio applications ({} traces of {}s)",
        traces.len(),
        traces[0].duration().as_secs_f64()
    );

    let apps: [(SharedApp, &str); 3] = [
        (Arc::new(SirenDetectorApp::new()), "Sirens"),
        (Arc::new(MusicJournalApp::new()), "Music"),
        (Arc::new(PhraseDetectionApp::new()), "Phrase"),
    ];
    let report = sweep_over(&traces, apps.iter().map(|(app, _)| app.clone()), |app| {
        vec![
            Strategy::Oracle,
            predefined_sound_strategy(),
            sidewinder_strategy(app),
            Strategy::AlwaysAwake,
        ]
    });

    let mut rows: Vec<(String, Vec<f64>)> = vec![
        ("Oracle".to_string(), Vec::new()),
        ("Predefined Activity".to_string(), Vec::new()),
        ("Sidewinder".to_string(), Vec::new()),
        ("Always Awake".to_string(), Vec::new()),
    ];
    let mut recalls = Vec::new();
    let mut savings = Vec::new();

    for (app, _) in &apps {
        let oracle = report.cell(app.name(), "Oracle");
        let pa = report.cell(app.name(), "PA");
        let sw = report.cell(app.name(), "Sw");
        let aa = report.cell(app.name(), "AA");
        rows[0].1.push(mean_power_mw(&oracle));
        rows[1].1.push(mean_power_mw(&pa));
        rows[2].1.push(mean_power_mw(&sw));
        rows[3].1.push(mean_power_mw(&aa));
        recalls.push((mean_recall(&sw), mean_recall(&pa)));
        savings.push(savings_fraction(
            mean_power_mw(&sw),
            mean_power_mw(&aa),
            mean_power_mw(&oracle),
        ));
    }

    let mut table = Table::new(["Wake-up Mechanism", "Sirens", "Music", "Phrase"]);
    for (label, values) in &rows {
        let mut cells = vec![label.clone()];
        cells.extend(values.iter().map(|v| f1(*v)));
        let mut cells: Vec<String> = cells;
        if label == "Sidewinder" {
            cells[1] = format!("{}*", cells[1]);
        }
        table.push_row(cells);
    }
    println!("{table}");
    println!("* Includes the more powerful TI LM4F120 (49.4 mW), as in the paper.\n");

    let mut detail = Table::new(["App", "Sw recall", "PA recall", "Sw savings of (AA-Oracle)"]);
    for (i, (_, name)) in apps.iter().enumerate() {
        detail.push_row([
            name.to_string(),
            pct(recalls[i].0),
            pct(recalls[i].1),
            pct(savings[i]),
        ]);
    }
    println!("{detail}");
    println!(
        "Paper comparison: Sidewinder achieves 85-98% of possible savings on audio (§5.2);\n\
         PA beats Sw only for sirens, where Sw carries the LM4F120 (§5.3)."
    );
}
