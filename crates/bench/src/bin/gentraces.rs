//! Generates the full evaluation trace set and writes it to disk as CSV
//! (samples + ground-truth labels per trace), so experiments can be
//! inspected, plotted, or replayed outside this repository.
//!
//! Usage: `cargo run --release -p sidewinder-bench --bin gentraces [DIR]`
//! (default output directory: `./traces`).

use sidewinder_bench::{audio_traces, human_traces, robot_traces};
use sidewinder_sensors::csv;
use sidewinder_tracegen::ActivityGroup;
use std::fs::File;
use std::io::BufWriter;
use std::path::{Path, PathBuf};

fn write_trace(dir: &Path, trace: &sidewinder_sensors::SensorTrace) -> std::io::Result<()> {
    let samples_path = dir.join(format!("{}.samples.csv", trace.name()));
    let labels_path = dir.join(format!("{}.labels.csv", trace.name()));
    csv::write_samples(trace, BufWriter::new(File::create(&samples_path)?))
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    csv::write_labels(
        trace.ground_truth(),
        BufWriter::new(File::create(&labels_path)?),
    )
    .map_err(|e| std::io::Error::other(e.to_string()))?;
    println!(
        "  {} ({} labels) -> {}",
        trace.name(),
        trace.ground_truth().len(),
        samples_path.display()
    );
    Ok(())
}

fn main() -> std::io::Result<()> {
    let dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "traces".to_string())
        .into();
    std::fs::create_dir_all(&dir)?;

    println!("Robot runs:");
    for group in ActivityGroup::ALL {
        for trace in robot_traces(group) {
            write_trace(&dir, &trace)?;
        }
    }
    println!("Human traces:");
    for trace in human_traces() {
        write_trace(&dir, &trace)?;
    }
    println!("Audio traces:");
    for trace in audio_traces() {
        write_trace(&dir, &trace)?;
    }
    println!("\nWrote the evaluation trace set to {}", dir.display());
    Ok(())
}
