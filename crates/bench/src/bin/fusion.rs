//! Ablation for the paper's §7 future-work idea: fusing concurrent
//! wake-up conditions that share common algorithms.

use sidewinder_apps::{accelerometer_apps, audio_apps};
use sidewinder_bench::pct;
use sidewinder_core::fusion::FusedPlan;
use sidewinder_hub::runtime::ChannelRates;
use sidewinder_ir::Program;
use sidewinder_sim::batch::par_map;
use sidewinder_sim::report::Table;
use sidewinder_sim::BatchRunner;

fn main() {
    println!("Pipeline fusion ablation (paper S7)\n");

    let accel: Vec<Program> = accelerometer_apps()
        .iter()
        .map(|a| a.wake_condition())
        .collect();
    let audio: Vec<Program> = audio_apps().iter().map(|a| a.wake_condition()).collect();
    let all: Vec<Program> = accel.iter().chain(audio.iter()).cloned().collect();
    // The best case: many instances of the same application with
    // different thresholds (e.g. several registered significant-motion
    // listeners).
    let clones: Vec<Program> = std::iter::repeat_n(audio[1].clone(), 4).collect();

    let workloads: Vec<(&str, Vec<Program>)> = vec![
        ("3 accel apps", accel),
        ("3 audio apps", audio),
        ("all 6 apps", all),
        ("4 x music journal", clones),
    ];

    let rows = par_map(
        BatchRunner::new().worker_count(),
        &workloads,
        |(label, programs)| {
            let refs: Vec<&Program> = programs.iter().collect();
            let report = FusedPlan::report(&refs, &ChannelRates::default())
                .expect("evaluation conditions are valid");
            [
                label.to_string(),
                report.unfused_nodes.to_string(),
                report.fused_nodes.to_string(),
                pct(report.node_saving()),
                pct(report.compute_saving()),
            ]
        },
    );

    let mut table = Table::new([
        "Workload",
        "Nodes unfused",
        "Nodes fused",
        "Node saving",
        "Compute saving",
    ]);
    for row in rows {
        table.push_row(row);
    }

    println!("{table}");
    println!(
        "The music and phrase conditions share their window+variance\n\
         branches, so fusing the audio applications removes duplicated\n\
         hub work; unrelated conditions fuse poorly, as expected."
    );
}
