//! Ablation for the paper's §7 future-work idea: fusing concurrent
//! wake-up conditions that share common algorithms.

use sidewinder_apps::{accelerometer_apps, audio_apps};
use sidewinder_bench::pct;
use sidewinder_core::fusion::FusedPlan;
use sidewinder_hub::runtime::ChannelRates;
use sidewinder_ir::Program;
use sidewinder_sim::report::Table;

fn report_for(label: &str, programs: &[&Program], table: &mut Table) {
    let report = FusedPlan::report(programs, &ChannelRates::default())
        .expect("evaluation conditions are valid");
    table.push_row([
        label.to_string(),
        report.unfused_nodes.to_string(),
        report.fused_nodes.to_string(),
        pct(report.node_saving()),
        pct(report.compute_saving()),
    ]);
}

fn main() {
    println!("Pipeline fusion ablation (paper S7)\n");

    let accel: Vec<Program> = accelerometer_apps()
        .iter()
        .map(|a| a.wake_condition())
        .collect();
    let audio: Vec<Program> = audio_apps().iter().map(|a| a.wake_condition()).collect();
    let all: Vec<&Program> = accel.iter().chain(audio.iter()).collect();

    let mut table = Table::new([
        "Workload",
        "Nodes unfused",
        "Nodes fused",
        "Node saving",
        "Compute saving",
    ]);
    report_for(
        "3 accel apps",
        &accel.iter().collect::<Vec<_>>(),
        &mut table,
    );
    report_for(
        "3 audio apps",
        &audio.iter().collect::<Vec<_>>(),
        &mut table,
    );
    report_for("all 6 apps", &all, &mut table);

    // The best case: many instances of the same application with
    // different thresholds (e.g. several registered significant-motion
    // listeners).
    let music = audio[1].clone();
    let clones: Vec<&Program> = std::iter::repeat_n(&music, 4).collect();
    report_for("4 x music journal", &clones, &mut table);

    println!("{table}");
    println!(
        "The music and phrase conditions share their window+variance\n\
         branches, so fusing the audio applications removes duplicated\n\
         hub work; unrelated conditions fuse poorly, as expected."
    );
}
