//! Machine-readable performance report for the hub hot path.
//!
//! Runs the interpreter and algorithm bench suites (the same definitions
//! `cargo bench` uses, via [`sidewinder_bench::suites`]) in a calibrated
//! smoke configuration — few samples, but the shim's ~5 ms-per-sample
//! calibration keeps each number stable to a few percent — then writes
//! `BENCH_interpreter.json` at the repository root:
//!
//! * `ns_per_iter` — fresh measurement, minimum over samples;
//! * `melem_per_s` — throughput for benches that declare element counts;
//! * `baseline_ns_per_iter` / `speedup` — against the committed
//!   pre-optimization numbers in `results/bench_interpreter_baseline.json`
//!   (absent for benches with no recorded baseline).
//!
//! Usage: `cargo run --release -p sidewinder-bench --bin perfreport`

use criterion::{take_records, Criterion, Throughput};
use sidewinder_bench::suites;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Samples per benchmark: enough for a stable minimum, cheap enough that
/// the whole report runs in well under a minute.
const SAMPLES: usize = 7;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Parses the flat `"id": number` baseline map without a JSON dependency:
/// one entry per line, string key, numeric value.
fn load_baseline(path: &Path) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        eprintln!("warning: no baseline at {}", path.display());
        return out;
    };
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if key == "comment" {
            continue;
        }
        if let Ok(ns) = value.trim().parse::<f64>() {
            out.insert(key.to_string(), ns);
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let root = repo_root();
    let baseline = load_baseline(&root.join("results/bench_interpreter_baseline.json"));

    println!("perfreport: running bench suites ({SAMPLES} samples each)...");
    let mut c = Criterion::default();
    c.sample_size(SAMPLES);
    suites::bench_conditions(&mut c);
    suites::bench_fusion(&mut c);
    suites::bench_fft(&mut c);
    suites::bench_filters(&mut c);
    suites::bench_features(&mut c);
    suites::bench_goertzel_ablation(&mut c);

    let records = take_records();
    assert!(
        !records.is_empty(),
        "suites produced no measurements — was perfreport run with --test?"
    );

    let mut body = String::new();
    body.push_str("{\n  \"benches\": {\n");
    for (i, r) in records.iter().enumerate() {
        let ns = r.ns_per_iter;
        let _ = writeln!(body, "    \"{}\": {{", json_escape(&r.id));
        let _ = write!(body, "      \"ns_per_iter\": {ns:.1}");
        if let Some(Throughput::Elements(n)) = r.throughput {
            let _ = write!(
                body,
                ",\n      \"melem_per_s\": {:.2}",
                n as f64 / ns * 1_000.0
            );
        }
        if let Some(&base) = baseline.get(&r.id) {
            let _ = write!(body, ",\n      \"baseline_ns_per_iter\": {base:.1}");
            let _ = write!(body, ",\n      \"speedup\": {:.2}", base / ns);
        }
        body.push_str("\n    }");
        body.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    body.push_str("  }\n}\n");

    let out_path = root.join("BENCH_interpreter.json");
    std::fs::write(&out_path, &body).expect("write BENCH_interpreter.json");

    println!("\nperfreport: wrote {}", out_path.display());
    println!("{:<45} {:>12} {:>9}", "bench", "ns/iter", "speedup");
    for r in &records {
        let speedup = baseline
            .get(&r.id)
            .map(|b| format!("{:.2}x", b / r.ns_per_iter))
            .unwrap_or_else(|| "-".to_string());
        println!("{:<45} {:>12.0} {:>9}", r.id, r.ns_per_iter, speedup);
    }

    // Every committed baseline entry must have a fresh measurement — a
    // silently renamed or dropped bench would otherwise sail through the
    // perf gate with a stale number.
    let missing: Vec<&String> = baseline
        .keys()
        .filter(|id| !records.iter().any(|r| &r.id == *id))
        .collect();
    if !missing.is_empty() {
        eprintln!(
            "perfreport: {} baseline bench(es) were not measured:",
            missing.len()
        );
        for id in missing {
            eprintln!("  {id}");
        }
        std::process::exit(1);
    }
}
