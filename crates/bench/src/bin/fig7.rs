//! Regenerates **Fig. 7** — power relative to Oracle for the step
//! detector on the human traces, per subject.
//!
//! Paper findings (§5.5): Sidewinder achieves at least 91 % of the
//! available power saving on each human trace; all approaches except
//! Duty Cycling (82 %) reach 100 % recall; the generic predefined
//! activity performs poorly because humans produce a wide range of
//! non-target motion.

use sidewinder_apps::StepsApp;
use sidewinder_bench::{
    f1, f2, human_traces, one_result, pct, predefined_motion_strategy, share_traces,
    sidewinder_strategy, sweep_over,
};
use sidewinder_sensors::Micros;
use sidewinder_sim::report::{savings_fraction, Table};
use sidewinder_sim::{SharedApp, Strategy};
use std::sync::Arc;

fn main() {
    let traces = share_traces(human_traces());
    println!(
        "Fig. 7: step detector on human traces ({} subjects, {}s each)\n",
        traces.len(),
        traces[0].duration().as_secs_f64()
    );

    let labels = ["Oracle", "AA", "DC-10", "Ba-10", "PA", "Sw"];
    let report = sweep_over(&traces, [Arc::new(StepsApp::new()) as SharedApp], |app| {
        vec![
            Strategy::Oracle,
            Strategy::AlwaysAwake,
            Strategy::DutyCycle {
                sleep: Micros::from_secs(10),
            },
            Strategy::Batching {
                interval: Micros::from_secs(10),
                hub_mw: 3.6,
            },
            predefined_motion_strategy(),
            sidewinder_strategy(app),
        ]
    });

    let mut table = Table::new(["Subject", "Config", "mW", "x Oracle", "Recall"]);
    for trace in &traces {
        let oracle_mw = one_result(&report, "steps", "Oracle", trace.name()).average_power_mw;
        let aa_mw = one_result(&report, "steps", "AA", trace.name()).average_power_mw;
        for label in labels {
            let r = one_result(&report, "steps", label, trace.name());
            table.push_row([
                trace.name().to_string(),
                label.to_string(),
                f1(r.average_power_mw),
                f2(r.average_power_mw / oracle_mw),
                pct(r.recall()),
            ]);
            if label == "Sw" {
                let saved = savings_fraction(r.average_power_mw, aa_mw, oracle_mw);
                println!(
                    "{}: Sidewinder achieves {} of the available saving (paper: >=91%)",
                    trace.name(),
                    pct(saved)
                );
            }
        }
    }
    println!("\n{table}");
}
