//! Fleet-service throughput: devices simulated per second through the
//! full shard pipeline (spec derivation, streaming trace generation,
//! fault-injected simulation, rollup folding), and the wire layer's
//! submit/ack round trip.

use criterion::{criterion_group, criterion_main, Criterion};
use sidewinder_apps::StepsApp;
use sidewinder_fleet::wire::{decode_message, encode_submit};
use sidewinder_fleet::{run_fleet, run_shard, FleetConfig};
use sidewinder_sensors::Micros;
use sidewinder_sim::Application;
use std::hint::black_box;

fn bench_shard(c: &mut Criterion) {
    let config = FleetConfig {
        shard_size: 64,
        device_duration: Micros::from_secs(20),
        ..FleetConfig::new(0xBE7C4, 64)
    };
    let program = StepsApp::new().wake_condition();
    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);
    group.bench_function("shard_64_devices_20s", |b| {
        b.iter(|| run_shard(black_box(&config), black_box(&program), 0))
    });
    let fleet = FleetConfig {
        shard_size: 64,
        device_duration: Micros::from_secs(20),
        ..FleetConfig::new(0xBE7C4, 256)
    };
    group.bench_function("fleet_256_devices_2_workers", |b| {
        b.iter(|| run_fleet(black_box(&fleet), black_box(&program), 2))
    });
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let program = StepsApp::new().wake_condition();
    c.bench_function("wire_submit_encode_decode", |b| {
        b.iter(|| {
            let stream = encode_submit(black_box(&program));
            decode_message(black_box(&stream)).unwrap()
        })
    });
}

criterion_group!(benches, bench_shard, bench_wire);
criterion_main!(benches);
