//! End-to-end simulator throughput: wall time to replay one robot trace
//! under each sensing configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use sidewinder_apps::{predefined, StepsApp};
use sidewinder_sensors::Micros;
use sidewinder_sim::{simulate, Application, PhonePowerProfile, SimConfig, Strategy};
use sidewinder_tracegen::{robot_run, RobotRunConfig};
use std::hint::black_box;

fn bench_strategies(c: &mut Criterion) {
    let trace = robot_run(&RobotRunConfig {
        duration: Micros::from_secs(120),
        idle_fraction: 0.5,
        rate_hz: 50.0,
        seed: 1,
    });
    let app = StepsApp::new();
    let strategies = vec![
        Strategy::AlwaysAwake,
        Strategy::DutyCycle {
            sleep: Micros::from_secs(10),
        },
        Strategy::Batching {
            interval: Micros::from_secs(10),
            hub_mw: 3.6,
        },
        Strategy::HubWake {
            program: app.wake_condition(),
            hub_mw: app.wake_condition_hub_mw(),
            label: "Sw",
        },
        Strategy::HubWake {
            program: predefined::significant_motion(),
            hub_mw: predefined::hub_mw(),
            label: "PA",
        },
        Strategy::Oracle,
    ];

    let mut group = c.benchmark_group("simulate_120s_robot_trace");
    group.sample_size(20);
    for strategy in strategies {
        group.bench_function(strategy.label(), |b| {
            b.iter(|| {
                simulate(
                    black_box(&trace),
                    &app,
                    &strategy,
                    &PhonePowerProfile::NEXUS4,
                    &SimConfig::default(),
                )
                .unwrap()
                .average_power_mw
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
