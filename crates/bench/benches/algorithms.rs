//! Micro-benchmarks for the hub's processing-algorithm kernels — the
//! quantities behind the MCU cost model (flops per emission) and the
//! paper's §3.8 complexity/power trade-off discussion. Includes the
//! Goertzel-vs-FFT ablation: probing a handful of bins is the kind of
//! narrow-band shortcut that could fit the smaller MCU.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sidewinder_dsp::filter::{fft_highpass, MovingAverage};
use sidewinder_dsp::window::WindowShape;
use sidewinder_dsp::{fft, goertzel, stats, zcr};
use std::hint::black_box;

fn tone(freq: f64, rate: f64, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / rate).sin())
        .collect()
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for n in [256usize, 1024, 2048] {
        let signal = tone(1000.0, 8000.0, n);
        group.bench_with_input(BenchmarkId::new("real_fft", n), &signal, |b, s| {
            b.iter(|| fft::real_fft(black_box(s)).unwrap())
        });
    }
    group.finish();
}

fn bench_filters(c: &mut Criterion) {
    let signal = tone(1000.0, 8000.0, 1024);
    c.bench_function("highpass_750hz_1024", |b| {
        b.iter(|| fft_highpass(black_box(&signal), 750.0, 8000.0).unwrap())
    });
    c.bench_function("moving_average_w10_1024_samples", |b| {
        b.iter(|| {
            let mut ma = MovingAverage::new(10).unwrap();
            ma.filter(black_box(&signal))
        })
    });
}

fn bench_features(c: &mut Criterion) {
    let signal = tone(440.0, 8000.0, 2048);
    c.bench_function("zcr_variance_8x2048", |b| {
        b.iter(|| zcr::zcr_variance(black_box(&signal), 8))
    });
    c.bench_function("summary_stats_2048", |b| {
        b.iter(|| stats::Summary::of(black_box(&signal)))
    });
    c.bench_function("hamming_window_2048", |b| {
        b.iter(|| WindowShape::Hamming.apply(black_box(&signal)))
    });
}

/// Ablation: full FFT spectrum vs probing 8 Goertzel bins for the siren
/// band.
fn bench_goertzel_ablation(c: &mut Criterion) {
    let signal = tone(1200.0, 8000.0, 1024);
    let probes: Vec<f64> = (0..8).map(|i| 850.0 + i as f64 * 135.0).collect();
    let mut group = c.benchmark_group("siren_band_detection");
    group.bench_function("full_fft_magnitudes", |b| {
        b.iter(|| fft::real_fft_magnitudes(black_box(&signal)))
    });
    group.bench_function("goertzel_8_probes", |b| {
        b.iter(|| goertzel::strongest_of(black_box(&signal), &probes, 8000.0))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fft,
    bench_filters,
    bench_features,
    bench_goertzel_ablation
);
criterion_main!(benches);
