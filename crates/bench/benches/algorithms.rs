//! Micro-benchmarks for the hub's processing-algorithm kernels — the
//! quantities behind the MCU cost model (flops per emission) and the
//! paper's §3.8 complexity/power trade-off discussion. Includes the
//! Goertzel-vs-FFT ablation: probing a handful of bins is the kind of
//! narrow-band shortcut that could fit the smaller MCU.
//!
//! The suite bodies live in [`sidewinder_bench::suites`] so the
//! `perfreport` binary can run the same definitions and capture the
//! measurements machine-readably.

use criterion::{criterion_group, criterion_main};
use sidewinder_bench::suites::{bench_features, bench_fft, bench_filters, bench_goertzel_ablation};

criterion_group!(
    benches,
    bench_fft,
    bench_filters,
    bench_features,
    bench_goertzel_ablation
);
criterion_main!(benches);
