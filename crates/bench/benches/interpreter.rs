//! Hub-interpreter throughput: how many sensor samples per second the
//! IR runtime sustains for each evaluation wake-up condition, plus the
//! fusion ablation (shared vs separate instances for concurrent
//! conditions).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sidewinder_apps::{MusicJournalApp, SirenDetectorApp, StepsApp};
use sidewinder_core::fusion::{FusedPlan, FusedRuntime};
use sidewinder_hub::runtime::{ChannelRates, HubRuntime};
use sidewinder_sensors::SensorChannel;
use sidewinder_sim::Application;
use std::hint::black_box;

fn bench_conditions(c: &mut Criterion) {
    let cases: Vec<(&str, sidewinder_ir::Program, SensorChannel)> = vec![
        (
            "steps_condition",
            StepsApp::new().wake_condition(),
            SensorChannel::AccX,
        ),
        (
            "music_condition",
            MusicJournalApp::new().wake_condition(),
            SensorChannel::Mic,
        ),
        (
            "siren_condition",
            SirenDetectorApp::new().wake_condition(),
            SensorChannel::Mic,
        ),
    ];
    let mut group = c.benchmark_group("hub_interpreter");
    let batch = 8192usize;
    group.throughput(Throughput::Elements(batch as u64));
    for (name, program, channel) in cases {
        let samples: Vec<f64> = (0..batch).map(|i| (i as f64 * 0.37).sin()).collect();
        group.bench_function(name, |b| {
            let mut hub = HubRuntime::load(&program, &ChannelRates::default()).unwrap();
            b.iter(|| {
                let mut wakes = 0usize;
                for &s in &samples {
                    wakes += hub.push_sample(channel, black_box(s)).unwrap().len();
                }
                wakes
            })
        });
    }
    group.finish();
}

/// Fusion ablation: two music-journal conditions with different
/// recognizer thresholds, run as separate hubs vs one fused runtime.
fn bench_fusion(c: &mut Criterion) {
    let program = MusicJournalApp::new().wake_condition();
    let batch = 8192usize;
    let samples: Vec<f64> = (0..batch).map(|i| (i as f64 * 0.21).sin() * 0.2).collect();

    let mut group = c.benchmark_group("concurrent_conditions");
    group.throughput(Throughput::Elements(batch as u64));
    group.bench_function("two_separate_runtimes", |b| {
        let mut a = HubRuntime::load(&program, &ChannelRates::default()).unwrap();
        let mut bb = HubRuntime::load(&program, &ChannelRates::default()).unwrap();
        b.iter(|| {
            let mut wakes = 0usize;
            for &s in &samples {
                wakes += a
                    .push_sample(SensorChannel::Mic, black_box(s))
                    .unwrap()
                    .len();
                wakes += bb
                    .push_sample(SensorChannel::Mic, black_box(s))
                    .unwrap()
                    .len();
            }
            wakes
        })
    });
    group.bench_function("one_fused_runtime", |b| {
        let plan = FusedPlan::fuse(&[&program, &program]).unwrap();
        let mut fused = FusedRuntime::load(&plan, &ChannelRates::default());
        b.iter(|| {
            let mut wakes = 0usize;
            for &s in &samples {
                wakes += fused
                    .push_sample(SensorChannel::Mic, black_box(s))
                    .unwrap()
                    .len();
            }
            wakes
        })
    });
    group.finish();
}

criterion_group!(benches, bench_conditions, bench_fusion);
criterion_main!(benches);
