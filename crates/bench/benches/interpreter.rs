//! Hub-interpreter throughput: how many sensor samples per second the
//! IR runtime sustains for each evaluation wake-up condition, plus the
//! fusion ablation (shared vs separate instances for concurrent
//! conditions).
//!
//! The suite bodies live in [`sidewinder_bench::suites`] so the
//! `perfreport` binary can run the same definitions and capture the
//! measurements machine-readably.

use criterion::{criterion_group, criterion_main};
use sidewinder_bench::suites::{bench_conditions, bench_fusion};

criterion_group!(benches, bench_conditions, bench_fusion);
criterion_main!(benches);
