//! Trace-generation throughput: how fast the synthetic substitutes for
//! the paper's data collection run.

use criterion::{criterion_group, criterion_main, Criterion};
use sidewinder_sensors::Micros;
use sidewinder_tracegen::{
    audio_trace, human_trace, robot_run, AudioTraceConfig, HumanTraceConfig, RobotRunConfig,
};
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracegen");
    group.sample_size(20);
    group.bench_function("robot_run_60s", |b| {
        b.iter(|| {
            robot_run(black_box(&RobotRunConfig {
                duration: Micros::from_secs(60),
                idle_fraction: 0.5,
                rate_hz: 50.0,
                seed: 1,
            }))
        })
    });
    group.bench_function("human_trace_60s", |b| {
        b.iter(|| {
            human_trace(black_box(&HumanTraceConfig {
                duration: Micros::from_secs(60),
                seed: 1,
                ..HumanTraceConfig::default()
            }))
        })
    });
    group.bench_function("audio_trace_10s", |b| {
        b.iter(|| {
            audio_trace(black_box(&AudioTraceConfig {
                duration: Micros::from_secs(10),
                seed: 1,
                ..AudioTraceConfig::default()
            }))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
