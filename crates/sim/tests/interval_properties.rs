//! Property tests for the awake-interval set algebra.
//!
//! [`IntervalSet::from_spans`] is the engine's accounting foundation:
//! every strategy's awake time flows through it before power is
//! integrated, so its invariants — sorted, disjoint, gap-respecting,
//! input-order-independent, idempotent — are what make the simulated
//! power numbers well-defined.

use proptest::prelude::*;
use sidewinder_sensors::Micros;
use sidewinder_sim::intervals::IntervalSet;

/// Raw span lists: up to 32 arbitrary (possibly inverted, possibly
/// zero-width) endpoint pairs below ~100 s.
fn raw_spans() -> impl Strategy<Value = Vec<(Micros, Micros)>> {
    prop::collection::vec((0u64..100_000_000, 0u64..100_000_000), 0..32).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(a, b)| (Micros::from_micros(a), Micros::from_micros(b)))
            .collect()
    })
}

/// Merge gaps from zero to 5 s.
fn merge_gaps() -> impl Strategy<Value = Micros> {
    (0u64..5_000_000).prop_map(Micros::from_micros)
}

/// A deterministic permutation: rotate by `rot`, then optionally
/// reverse — enough to exercise order sensitivity without a shuffle.
fn permute<T: Clone>(items: &[T], rot: usize, rev: bool) -> Vec<T> {
    if items.is_empty() {
        return Vec::new();
    }
    let rot = rot % items.len();
    let mut out: Vec<T> = items[rot..].iter().chain(&items[..rot]).cloned().collect();
    if rev {
        out.reverse();
    }
    out
}

proptest! {
    /// No zero-width spans, sorted, and consecutive spans separated by
    /// MORE than the merge gap (a gap of exactly `merge_gap` merges).
    #[test]
    fn spans_are_sorted_disjoint_and_gap_respecting(
        raw in raw_spans(),
        gap in merge_gaps(),
    ) {
        let set = IntervalSet::from_spans(raw, gap);
        for &(s, e) in set.spans() {
            prop_assert!(e > s, "zero or negative width span ({s}, {e})");
        }
        for pair in set.spans().windows(2) {
            let (_, prev_end) = pair[0];
            let (next_start, _) = pair[1];
            prop_assert!(
                next_start > prev_end + gap,
                "spans {pair:?} should have merged under gap {gap}"
            );
        }
    }

    /// Re-coalescing an already coalesced set changes nothing.
    #[test]
    fn coalescing_is_idempotent(raw in raw_spans(), gap in merge_gaps()) {
        let once = IntervalSet::from_spans(raw, gap);
        let twice = IntervalSet::from_spans(once.spans().to_vec(), gap);
        prop_assert_eq!(once, twice);
    }

    /// The input order of the raw spans never matters.
    #[test]
    fn coalescing_is_order_insensitive(
        raw in raw_spans(),
        gap in merge_gaps(),
        rot in 0usize..32,
        rev in proptest::bool::ANY,
    ) {
        let reference = IntervalSet::from_spans(raw.clone(), gap);
        let permuted = IntervalSet::from_spans(permute(&raw, rot, rev), gap);
        prop_assert_eq!(reference, permuted);
    }

    /// Every valid input instant stays covered, and the covered total
    /// is bounded by the spans' overall extent.
    #[test]
    fn coverage_is_preserved(raw in raw_spans(), gap in merge_gaps()) {
        let set = IntervalSet::from_spans(raw.clone(), gap);
        for &(s, e) in &raw {
            if e > s {
                prop_assert!(set.contains(s), "lost start of ({s}, {e})");
                prop_assert!(set.overlaps(s, e), "lost span ({s}, {e})");
            }
        }
        let widest: Micros = raw
            .iter()
            .filter(|(s, e)| e > s)
            .fold(Micros::ZERO, |acc, &(s, e)| acc.max(e - s));
        prop_assert!(set.total() >= widest, "coverage shrank below the widest input span");
        if let (Some(&(first, _)), Some(&(_, last))) =
            (set.spans().first(), set.spans().last())
        {
            prop_assert!(set.total() <= last - first);
        }
    }

    /// Clipping keeps spans inside `[0, end)`, never grows the total,
    /// and is idempotent.
    #[test]
    fn clip_bounds_and_is_idempotent(
        raw in raw_spans(),
        gap in merge_gaps(),
        end_us in 0u64..120_000_000,
    ) {
        let set = IntervalSet::from_spans(raw, gap);
        let end = Micros::from_micros(end_us);
        let clipped = set.clip(end);
        for &(s, e) in clipped.spans() {
            prop_assert!(e <= end && e > s);
        }
        prop_assert!(clipped.total() <= set.total());
        prop_assert_eq!(clipped.clip(end), clipped);
    }
}
