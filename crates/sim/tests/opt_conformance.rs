//! Optimizer conformance against the evaluation applications on
//! simulator traces.
//!
//! The differential suite in `sidewinder-opt` proves equivalence on
//! generated programs and synthetic sinusoids; this suite closes the
//! loop on the *deployed* surface: every evaluation application's
//! wake-up condition, optimized at the aggressive level, must replay
//! its wake stream over tracegen's robot-run and audio-bed traces
//! exactly as the unoptimized condition does — individually, and fused
//! into the one merged program a real hub would run. Optimized output
//! must also stay lint-clean, so `swopt | swlint` pipelines never trade
//! cycles for diagnostics.

use sidewinder_apps::{accelerometer_apps, audio_apps, SirenDetectorApp};
use sidewinder_hub::runtime::{ChannelRates, HubRuntime};
use sidewinder_ir::Program;
use sidewinder_lint::lint_program;
use sidewinder_opt::{fuse_programs, optimize, EquivalenceTier, OptOptions};
use sidewinder_sensors::{Micros, SensorTrace};
use sidewinder_tracegen::{audio_trace, robot_run, AudioTraceConfig, RobotRunConfig};

/// A trace carrying both the accelerometer and the microphone channels,
/// so any wake-up condition — including the fused all-apps program —
/// has data on every source it reads.
fn combined_trace(seed: u64, duration_s: u64) -> SensorTrace {
    let mut trace = robot_run(&RobotRunConfig {
        duration: Micros::from_secs(duration_s),
        idle_fraction: 0.6,
        rate_hz: 50.0,
        seed,
    });
    let audio = audio_trace(&AudioTraceConfig {
        duration: Micros::from_secs(duration_s),
        seed: seed + 1000,
        ..AudioTraceConfig::default()
    });
    for channel in audio.channels().collect::<Vec<_>>() {
        trace.insert(
            channel,
            audio.channel(channel).expect("listed channel").clone(),
        );
    }
    trace
}

/// Replays `program` over the trace, channel by channel in the
/// program's own channel order, and returns the full wake stream with
/// `f64` values reduced to bit patterns. Both sides of a differential
/// comparison use the same feeding order, so equal streams mean the
/// optimized program computed the same wakes.
fn replay(program: &Program, trace: &SensorTrace) -> Vec<(usize, u64, u64)> {
    let mut hub = HubRuntime::load(program, &ChannelRates::default())
        .expect("evaluation condition must load");
    let mut wakes = Vec::new();
    for (ci, &channel) in program.channels().iter().enumerate() {
        let series = trace
            .channel(channel)
            .unwrap_or_else(|| panic!("trace lacks {channel:?}"));
        for wake in hub
            .push_samples(channel, series.samples())
            .expect("evaluation condition must execute")
        {
            wakes.push((ci, wake.seq, wake.value.to_bits()));
        }
    }
    wakes
}

fn conditions() -> Vec<(String, Program)> {
    accelerometer_apps()
        .iter()
        .chain(audio_apps().iter())
        .map(|app| (app.name().to_string(), app.wake_condition()))
        .collect()
}

#[test]
fn evaluation_conditions_optimize_digest_exact_on_sim_traces() {
    let rates = ChannelRates::default();
    let trace = combined_trace(7, 20);
    for (name, program) in conditions() {
        let (optimized, report) = optimize(&program, &rates, &OptOptions::aggressive());
        // The stock conditions carry no narrow-band spectral gate, so
        // even the aggressive level stays in the exact tier.
        assert_eq!(
            report.tier,
            EquivalenceTier::DigestExact,
            "{name}: {}",
            report.summary()
        );
        assert_eq!(
            replay(&program, &trace),
            replay(&optimized, &trace),
            "{name}: optimized wake stream diverged"
        );
    }
}

#[test]
fn fused_evaluation_suite_replays_bit_identically() {
    let rates = ChannelRates::default();
    let programs: Vec<Program> = conditions().into_iter().map(|(_, p)| p).collect();
    let fused = fuse_programs(&programs);
    assert!(fused.validate().is_ok());
    let (optimized, report) = optimize(&fused, &rates, &OptOptions::aggressive());
    // Music and phrase share their five-node analysis front end.
    assert_eq!(report.duplicates_merged, 5, "{}", report.summary());
    assert_eq!(report.tier, EquivalenceTier::DigestExact);
    let trace = combined_trace(11, 20);
    let before = replay(&fused, &trace);
    let after = replay(&optimized, &trace);
    assert!(!before.is_empty(), "the sim trace must produce wakes");
    assert_eq!(before, after, "optimized fused suite diverged");
}

#[test]
fn optimized_conditions_stay_lint_clean() {
    let rates = ChannelRates::default();
    for (name, program) in conditions() {
        let (optimized, _) = optimize(&program, &rates, &OptOptions::aggressive());
        let report = lint_program(&optimized, &rates);
        assert!(
            !report.fails(true),
            "{name} optimized output fails --deny warnings:\n{}",
            report.render_human(&name)
        );
    }
}

#[test]
fn goertzel_rewritten_condition_holds_tolerance_on_sim_audio() {
    let rates = ChannelRates::default();
    let program = SirenDetectorApp::narrowband_wake_condition();
    let (optimized, report) = optimize(&program, &rates, &OptOptions::aggressive());
    assert_eq!(report.goertzel_rewrites, 1, "{}", report.summary());
    assert_eq!(report.tier, EquivalenceTier::TolerancePinned);

    let trace = combined_trace(23, 20);
    let mic = trace
        .channel(sidewinder_sensors::SensorChannel::Mic)
        .unwrap();
    let run = |p: &Program| {
        let mut hub = HubRuntime::load(p, &rates).unwrap();
        hub.push_samples(sidewinder_sensors::SensorChannel::Mic, mic.samples())
            .unwrap()
            .to_vec()
    };
    let before = run(&program);
    let after = run(&optimized);
    assert_eq!(before.len(), after.len(), "wake cadence diverged");
    for (a, b) in before.iter().zip(after.iter()) {
        assert_eq!(a.seq, b.seq);
        let scale = a.value.abs().max(b.value.abs()).max(1.0);
        assert!(
            (a.value - b.value).abs() <= 1e-6 * scale,
            "in-band peak diverged: {} vs {}",
            a.value,
            b.value
        );
    }
}
