//! Determinism conformance: the parallel [`BatchRunner`] must return
//! exactly what the serial [`simulate`] path returns — same values,
//! same order — at every worker count, for the full evaluation grid of
//! six applications × seven strategies.
//!
//! The batch engine promises that parallelism changes only *when* a
//! cell runs, never *what* it computes. This suite pins that promise
//! against the real applications on real synthetic traces, including
//! cells that fail.

use sidewinder_apps::predefined;
use sidewinder_apps::{
    HeadbuttsApp, MusicJournalApp, PhraseDetectionApp, SirenDetectorApp, StepsApp, TransitionsApp,
};
use sidewinder_sensors::{Micros, SensorTrace};
use sidewinder_sim::{
    simulate, Application, BatchRunner, JobError, PhonePowerProfile, SharedApp, SimConfig,
    SimError, Strategy, SweepSpec,
};
use sidewinder_tracegen::{audio_trace, robot_run, AudioTraceConfig, RobotRunConfig};
use std::sync::Arc;

/// Worker counts the conformance grid is replayed at.
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// A trace carrying both the accelerometer and the microphone channels
/// (robot run + audio bed merged), so every evaluation application has
/// the data its classifier and wake-up condition need.
fn combined_trace(seed: u64, duration_s: u64) -> SensorTrace {
    let mut trace = robot_run(&RobotRunConfig {
        duration: Micros::from_secs(duration_s),
        idle_fraction: 0.6,
        rate_hz: 50.0,
        seed,
    });
    let audio = audio_trace(&AudioTraceConfig {
        duration: Micros::from_secs(duration_s),
        seed: seed + 1000,
        ..AudioTraceConfig::default()
    });
    for channel in audio.channels().collect::<Vec<_>>() {
        trace.insert(
            channel,
            audio.channel(channel).expect("listed channel").clone(),
        );
    }
    for interval in audio.ground_truth().intervals() {
        trace.ground_truth_mut().push(*interval);
    }
    trace
}

/// All six evaluation applications.
fn all_apps() -> Vec<SharedApp> {
    vec![
        Arc::new(StepsApp::new()),
        Arc::new(TransitionsApp::new()),
        Arc::new(HeadbuttsApp::new()),
        Arc::new(SirenDetectorApp::new()),
        Arc::new(MusicJournalApp::new()),
        Arc::new(PhraseDetectionApp::new()),
    ]
}

fn is_audio_app(app: &dyn Application) -> bool {
    matches!(app.name(), "sirens" | "music" | "phrase")
}

/// The full strategy sweep for one application: every sensing
/// configuration of the paper's §4.2, with the Predefined Activity
/// condition matched to the application's modality.
fn full_strategies(app: &dyn Application) -> Vec<Strategy> {
    let predefined_program = if is_audio_app(app) {
        predefined::significant_sound()
    } else {
        predefined::significant_motion()
    };
    vec![
        Strategy::AlwaysAwake,
        Strategy::DutyCycle {
            sleep: Micros::from_secs(5),
        },
        Strategy::DutyCycle {
            sleep: Micros::from_secs(10),
        },
        Strategy::Batching {
            interval: Micros::from_secs(10),
            hub_mw: 3.6,
        },
        Strategy::HubWake {
            program: predefined_program,
            hub_mw: predefined::hub_mw(),
            label: "PA",
        },
        Strategy::HubWake {
            program: app.wake_condition(),
            hub_mw: app.wake_condition_hub_mw(),
            label: "Sw",
        },
        Strategy::Oracle,
    ]
}

fn full_grid(duration_s: u64) -> SweepSpec {
    SweepSpec::new()
        .shared_apps(all_apps())
        .traces([
            combined_trace(71, duration_s),
            combined_trace(72, duration_s),
        ])
        .strategies_per_app(full_strategies)
}

#[test]
fn parallel_grid_is_bit_identical_to_serial_at_every_worker_count() {
    let spec = full_grid(300);
    let jobs = spec.jobs();
    // 6 apps x 7 strategies x 2 traces.
    assert_eq!(jobs.len(), 84);

    // Serial reference: plain `simulate` on each cell's exact inputs,
    // in spec order.
    let serial: Vec<_> = jobs
        .iter()
        .map(|job| {
            simulate(
                &job.trace,
                &*job.app,
                &job.strategy,
                &job.profile,
                &job.config,
            )
            .unwrap_or_else(|e| {
                panic!(
                    "serial cell {} / {} failed: {e}",
                    job.app.name(),
                    job.strategy.label()
                )
            })
        })
        .collect();

    for workers in WORKER_COUNTS {
        let report = BatchRunner::new().workers(workers).run(&spec);
        assert_eq!(report.len(), serial.len(), "{workers} workers: grid size");
        for (i, (reference, outcome)) in serial.iter().zip(report.outcomes()).enumerate() {
            assert_eq!(outcome.index, i, "{workers} workers: outcome order");
            let parallel = outcome
                .result
                .as_ref()
                .unwrap_or_else(|e| panic!("{workers} workers: cell {i} failed: {e}"));
            assert_eq!(
                reference, parallel,
                "{workers} workers: cell {i} ({} / {} / {}) diverged",
                outcome.trace, outcome.app, outcome.strategy
            );
        }
    }
}

#[test]
fn outcome_labels_follow_spec_order_regardless_of_workers() {
    // Ordering is independent of simulation length; short traces keep
    // the three replays cheap.
    let spec = full_grid(60);
    let expected: Vec<(String, String, String)> = spec
        .jobs()
        .iter()
        .map(|j| {
            (
                j.app.name().to_string(),
                j.strategy.label(),
                j.trace.name().to_string(),
            )
        })
        .collect();
    for workers in WORKER_COUNTS {
        let report = BatchRunner::new().workers(workers).run(&spec);
        let got: Vec<(String, String, String)> = report
            .outcomes()
            .iter()
            .map(|o| (o.app.clone(), o.strategy.clone(), o.trace.clone()))
            .collect();
        assert_eq!(got, expected, "{workers} workers reordered the sweep");
    }
}

#[test]
fn failing_cells_match_serial_errors_at_every_worker_count() {
    // Audio applications on a microphone-less robot trace: the hub
    // wake-up condition is rejected with the same SimError the serial
    // path reports, and the valid cells still complete.
    let robot_only = robot_run(&RobotRunConfig {
        duration: Micros::from_secs(120),
        idle_fraction: 0.6,
        rate_hz: 50.0,
        seed: 7,
    });
    let app = MusicJournalApp::new();
    let strategy = Strategy::HubWake {
        program: app.wake_condition(),
        hub_mw: app.wake_condition_hub_mw(),
        label: "Sw",
    };
    let serial_err = simulate(
        &robot_only,
        &app,
        &strategy,
        &PhonePowerProfile::NEXUS4,
        &SimConfig::default(),
    )
    .expect_err("music condition needs the microphone");
    assert!(matches!(serial_err, SimError::MissingChannel(_)));

    let spec = SweepSpec::new()
        .app(MusicJournalApp::new())
        .app(StepsApp::new())
        .trace(robot_only)
        .strategies_per_app(|app| {
            vec![
                Strategy::HubWake {
                    program: app.wake_condition(),
                    hub_mw: app.wake_condition_hub_mw(),
                    label: "Sw",
                },
                Strategy::Oracle,
            ]
        });
    for workers in WORKER_COUNTS {
        let report = BatchRunner::new().workers(workers).run(&spec);
        assert_eq!(report.len(), 4);
        // Cell 0: music Sw fails exactly like the serial path.
        assert_eq!(
            report.outcomes()[0].result,
            Err(JobError::Sim(serial_err.clone())),
            "{workers} workers"
        );
        // Every other cell succeeds (Oracle needs no channels; steps has
        // its accelerometer data).
        assert_eq!(report.results().count(), 3, "{workers} workers");
    }
}
