//! Property tests over the simulation engine: invariants that must hold
//! for arbitrary traces and strategy parameters.

use proptest::prelude::*;
use sidewinder_ir::Program;
use sidewinder_sensors::{
    EventKind, GroundTruth, LabeledInterval, Micros, SensorChannel, SensorTrace, TimeSeries,
};
use sidewinder_sim::Strategy as Sensing;
use sidewinder_sim::{simulate, Application, PhonePowerProfile, SimConfig};

/// A toy application over a square-wave x-axis trace.
struct BurstApp;

impl Application for BurstApp {
    fn name(&self) -> &str {
        "burst"
    }
    fn target_kinds(&self) -> Vec<EventKind> {
        vec![EventKind::Headbutt]
    }
    fn classify(&self, trace: &SensorTrace, start: Micros, end: Micros) -> Vec<Micros> {
        let series = trace.channel(SensorChannel::AccX).unwrap();
        let rate = series.rate_hz();
        let offset = ((start.as_secs_f64() * rate - 1e-9).ceil()).max(0.0) as usize;
        let mut out = Vec::new();
        let mut inside = false;
        for (i, &v) in series.slice(start, end).iter().enumerate() {
            if v > 5.0 && !inside {
                inside = true;
                out.push(sidewinder_sensors::time::sample_time(offset + i, rate));
            } else if v <= 5.0 {
                inside = false;
            }
        }
        out
    }
    fn wake_condition(&self) -> Program {
        "ACC_X -> movingAvg(id=1, params={2});
         1 -> minThreshold(id=2, params={5});
         2 -> OUT;"
            .parse()
            .unwrap()
    }
    fn wake_condition_hub_mw(&self) -> f64 {
        3.6
    }
}

/// Builds a trace with bursts at the given second offsets.
fn burst_trace(duration_s: u64, bursts: &[u64]) -> SensorTrace {
    let rate = 50.0;
    let n = (duration_s * 50) as usize;
    let mut x = vec![0.0f64; n];
    let mut gt = GroundTruth::new();
    for &b in bursts {
        let start = (b * 50) as usize;
        let end = ((b + 2) * 50).min(n as u64) as usize;
        for v in &mut x[start..end] {
            *v = 10.0;
        }
        if end > start {
            gt.push(
                LabeledInterval::new(
                    EventKind::Headbutt,
                    Micros::from_secs(b),
                    Micros::from_secs(b + 2),
                )
                .unwrap(),
            );
        }
    }
    let mut trace = SensorTrace::new("prop");
    trace.insert(
        SensorChannel::AccX,
        TimeSeries::from_samples(rate, x).unwrap(),
    );
    *trace.ground_truth_mut() = gt;
    trace
}

fn arb_bursts() -> impl Strategy<Value = Vec<u64>> {
    // Bursts at distinct, well-separated offsets within [5, 115).
    prop::collection::btree_set(1u64..22, 0..6)
        .prop_map(|set| set.into_iter().map(|k| 5 + k * 5).collect())
}

fn strategies() -> Vec<Sensing> {
    vec![
        Sensing::AlwaysAwake,
        Sensing::Oracle,
        Sensing::DutyCycle {
            sleep: Micros::from_secs(5),
        },
        Sensing::DutyCycle {
            sleep: Micros::from_secs(20),
        },
        Sensing::Batching {
            interval: Micros::from_secs(10),
            hub_mw: 3.6,
        },
        Sensing::HubWake {
            program: BurstApp.wake_condition(),
            hub_mw: 3.6,
            label: "Sw",
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The per-state time breakdown always partitions the trace exactly.
    #[test]
    fn breakdown_partitions_time(bursts in arb_bursts()) {
        let trace = burst_trace(120, &bursts);
        for strategy in strategies() {
            let r = simulate(
                &trace,
                &BurstApp,
                &strategy,
                &PhonePowerProfile::NEXUS4,
                &SimConfig::default(),
            ).unwrap();
            prop_assert_eq!(
                r.breakdown.total(),
                Micros::from_secs(120),
                "{} does not partition time", strategy.label()
            );
        }
    }

    /// Average power always lies within the physical envelope:
    /// [asleep, max-state] plus the hub draw.
    #[test]
    fn power_is_within_physical_bounds(bursts in arb_bursts()) {
        let trace = burst_trace(120, &bursts);
        for strategy in strategies() {
            let r = simulate(
                &trace,
                &BurstApp,
                &strategy,
                &PhonePowerProfile::NEXUS4,
                &SimConfig::default(),
            ).unwrap();
            let lo = 9.7 + strategy.hub_mw();
            let hi = 384.0 + strategy.hub_mw();
            prop_assert!(
                r.average_power_mw >= lo - 1e-9 && r.average_power_mw <= hi + 1e-9,
                "{}: {} mW outside [{lo}, {hi}]",
                strategy.label(),
                r.average_power_mw
            );
        }
    }

    /// Oracle, Always Awake, Batching, and the calibrated Sidewinder
    /// condition never miss an event; Oracle never exceeds Always Awake.
    #[test]
    fn full_visibility_strategies_have_full_recall(bursts in arb_bursts()) {
        let trace = burst_trace(120, &bursts);
        let config = SimConfig::default();
        let mut aa_mw = None;
        for strategy in strategies() {
            let r = simulate(
                &trace, &BurstApp, &strategy,
                &PhonePowerProfile::NEXUS4, &config,
            ).unwrap();
            match strategy.label().as_str() {
                "AA" => {
                    aa_mw = Some(r.average_power_mw);
                    prop_assert_eq!(r.recall(), 1.0);
                }
                "Oracle" | "Ba-10" | "Sw" => {
                    prop_assert_eq!(r.recall(), 1.0, "{} missed events", strategy.label());
                }
                _ => {}
            }
        }
        // Oracle cheaper than Always Awake whenever there is idle time.
        let oracle = simulate(
            &trace, &BurstApp, &Sensing::Oracle,
            &PhonePowerProfile::NEXUS4, &config,
        ).unwrap();
        prop_assert!(oracle.average_power_mw <= aa_mw.unwrap() + 1e-9);
    }

    /// Simulations are deterministic.
    #[test]
    fn simulation_is_deterministic(bursts in arb_bursts()) {
        let trace = burst_trace(120, &bursts);
        for strategy in strategies() {
            let run = || simulate(
                &trace, &BurstApp, &strategy,
                &PhonePowerProfile::NEXUS4, &SimConfig::default(),
            ).unwrap();
            let a = run();
            let b = run();
            prop_assert_eq!(a.average_power_mw, b.average_power_mw);
            prop_assert_eq!(a.detections, b.detections);
            prop_assert_eq!(a.wake_ups, b.wake_ups);
        }
    }

    /// More events never *reduce* a hub strategy's awake time.
    #[test]
    fn awake_time_is_monotone_in_events(bursts in arb_bursts()) {
        let strategy = Sensing::HubWake {
            program: BurstApp.wake_condition(),
            hub_mw: 3.6,
            label: "Sw",
        };
        let config = SimConfig::default();
        let base = simulate(
            &burst_trace(120, &bursts), &BurstApp, &strategy,
            &PhonePowerProfile::NEXUS4, &config,
        ).unwrap();
        let mut more = bursts.clone();
        more.push(117);
        let bigger = simulate(
            &burst_trace(120, &more), &BurstApp, &strategy,
            &PhonePowerProfile::NEXUS4, &config,
        ).unwrap();
        prop_assert!(bigger.breakdown.awake >= base.breakdown.awake);
    }
}
