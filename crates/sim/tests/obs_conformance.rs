//! Observability must never change what it observes.
//!
//! Two pins across all six evaluation applications:
//!
//! * a run with the default [`NullSink`] — and a run with live
//!   [`CounterSink`] counters, which takes the per-sample traced replay
//!   path instead of the batch path — is bit-identical to the plain
//!   `simulate` result (wakes, detections, intervals, energy);
//! * the per-node energy ledger closes on the run's measured energy to
//!   within 1e-9 J.

use sidewinder_apps::{accelerometer_apps, audio_apps};
use sidewinder_sensors::{Micros, SensorTrace};
use sidewinder_sim::{
    attribute_energy, simulate, simulate_traced, Application, CounterSink, NullSink,
    PhonePowerProfile, SimConfig, Strategy,
};
use sidewinder_tracegen::{
    audio_trace, robot_group_runs, ActivityGroup, AudioEnvironment, AudioTraceConfig,
};

/// Each evaluation application with a representative trace: the three
/// accelerometer apps on one robot run, the three audio apps on one
/// audio environment each.
fn six_apps() -> Vec<(Box<dyn Application>, SensorTrace)> {
    let robot = robot_group_runs(ActivityGroup::Group1, 1, Micros::from_secs(120), 11)
        .pop()
        .unwrap();
    let mut out: Vec<(Box<dyn Application>, SensorTrace)> = Vec::new();
    for app in accelerometer_apps() {
        out.push((app, robot.clone()));
    }
    for (i, app) in audio_apps().into_iter().enumerate() {
        let trace = audio_trace(&AudioTraceConfig {
            duration: Micros::from_secs(60),
            environment: AudioEnvironment::ALL[i % AudioEnvironment::ALL.len()],
            seed: 42 + i as u64,
            ..AudioTraceConfig::default()
        });
        out.push((app, trace));
    }
    out
}

fn sidewinder(app: &dyn Application) -> Strategy {
    Strategy::HubWake {
        program: app.wake_condition(),
        hub_mw: app.wake_condition_hub_mw(),
        label: "Sw",
    }
}

#[test]
fn traced_runs_are_bit_identical_to_plain_runs_for_all_six_apps() {
    let profile = PhonePowerProfile::NEXUS4;
    let config = SimConfig::default();
    for (app, trace) in six_apps() {
        let strategy = sidewinder(app.as_ref());
        let plain = simulate(&trace, app.as_ref(), &strategy, &profile, &config).unwrap();

        let mut null = NullSink;
        let with_null = simulate_traced(
            &trace,
            app.as_ref(),
            &strategy,
            &profile,
            &config,
            &mut null,
        )
        .unwrap();
        assert_eq!(plain, with_null, "{}: NullSink run diverged", app.name());

        // Counters flip the engine onto the per-sample traced replay —
        // still bit-identical to the batch path.
        let mut counters = CounterSink::new();
        let with_counters = simulate_traced(
            &trace,
            app.as_ref(),
            &strategy,
            &profile,
            &config,
            &mut counters,
        )
        .unwrap();
        assert_eq!(
            plain,
            with_counters,
            "{}: counter-instrumented run diverged",
            app.name()
        );
        assert!(
            counters.total_executions() > 0,
            "{}: counters saw no work",
            app.name()
        );
        // Awake periods merge overlapping wakes, so the raw hub wake
        // count can only be at least the result's wake-up count.
        assert!(
            counters.wakes >= plain.wake_ups as u64,
            "{}: {} counted wakes < {} awake periods",
            app.name(),
            counters.wakes,
            plain.wake_ups
        );
    }
}

#[test]
fn energy_ledger_closes_within_a_nanojoule_for_all_six_apps() {
    let profile = PhonePowerProfile::NEXUS4;
    let config = SimConfig::default();
    for (app, trace) in six_apps() {
        let strategy = sidewinder(app.as_ref());
        let run = attribute_energy(&trace, app.as_ref(), &strategy, &profile, &config).unwrap();
        let duration_s = run.result.breakdown.total().as_secs_f64();
        let measured_j = run.result.average_power_mw * duration_s / 1_000.0;
        let gap = (run.ledger.total_j() - measured_j).abs();
        assert!(
            gap < 1e-9,
            "{}: ledger off by {gap:.3e} J (ledger {} J, measured {} J)",
            app.name(),
            run.ledger.total_j(),
            measured_j
        );
        // The hub side alone also closes on the flat hub draw.
        let hub_j = run.result.breakdown.hub_mw * duration_s / 1_000.0;
        assert!(
            (run.ledger.hub_j() - hub_j).abs() < 1e-9,
            "{}: hub sub-ledger off",
            app.name()
        );
    }
}
