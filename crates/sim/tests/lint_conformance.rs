//! Every evaluation application's wake-up condition must be lint-clean:
//! the static analyzer proves each condition can actually fire, does not
//! storm, wastes no hub cycles on no-op nodes, and fits a catalog MCU.
//! The FFT-based siren condition is expected to carry the advisory SW006
//! note — the paper's Table 2 footnote as a diagnostic.

use sidewinder_apps::{accelerometer_apps, audio_apps};
use sidewinder_hub::runtime::ChannelRates;
use sidewinder_lint::{lint_program, LintCode, Severity};

#[test]
fn all_wake_conditions_lint_clean_of_errors_and_warnings() {
    let rates = ChannelRates::default();
    for app in accelerometer_apps().iter().chain(audio_apps().iter()) {
        let program = app.wake_condition();
        program
            .validate()
            .unwrap_or_else(|e| panic!("{}: wake condition invalid: {e:?}", app.name()));
        let report = lint_program(&program, &rates);
        assert!(
            !report.fails(true),
            "{} fails --deny warnings:\n{}",
            app.name(),
            report.render_human(app.name())
        );
    }
}

#[test]
fn only_the_siren_detector_needs_the_lm4f120() {
    let rates = ChannelRates::default();
    for app in accelerometer_apps().iter().chain(audio_apps().iter()) {
        let report = lint_program(&app.wake_condition(), &rates);
        let needs_big = report.has(LintCode::NeedsBiggerMcu);
        if app.name().contains("siren") || app.name().contains("Siren") {
            assert!(
                needs_big,
                "{} should carry the SW006 Table 2 footnote",
                app.name()
            );
            assert_eq!(report.count(Severity::Info), 1);
        } else {
            assert!(
                report.is_clean(),
                "{} is not lint-clean:\n{}",
                app.name(),
                report.render_human(app.name())
            );
        }
    }
}
