//! MCU-core conformance over the evaluation grid: for every one of the
//! six real applications, replaying a real synthetic trace through the
//! host interpreter and through the `no_std` core (its wake condition
//! compiled to an [`McuImage`]) must produce bit-identical wake streams.
//!
//! `hub/tests/mcu_equivalence.rs` pins the same property on the perf
//! gate's synthetic conformance input; this suite pins it on the traces
//! the simulator actually evaluates — robot runs and audio beds with
//! bursts, silence, and ground-truth events — so the equivalence holds
//! on the data the fleet and the experiment reports are built from.

use sidewinder_apps::{
    HeadbuttsApp, MusicJournalApp, PhraseDetectionApp, SirenDetectorApp, StepsApp, TransitionsApp,
};
use sidewinder_cert::{certify_program, CertTarget, Precision};
use sidewinder_hub::runtime::{ChannelRates, HubRuntime};
use sidewinder_hub::{compile_image, McuCore};
use sidewinder_ir::Program;
use sidewinder_sensors::{Micros, SensorTrace};
use sidewinder_sim::Application;
use sidewinder_tracegen::{audio_trace, robot_run, AudioTraceConfig, RobotRunConfig};

/// The two core capacity classes the suite deploys to; which class each
/// application needs — and whether the test thread must budget stack
/// for a ~1 MiB big-class core — is derived from the wake condition's
/// resource certificate, not hardcoded.
const DEFAULT_CORE: usize = sidewinder_hub::DEFAULT_ARENA;
const BIG_CORE: usize = 16_384;

/// The certified element requirement of `program` (it must fit the
/// biggest deployed class).
fn certified_capacity(program: &Program) -> usize {
    let cert = certify_program(
        program,
        &ChannelRates::default(),
        Precision::F64,
        &CertTarget {
            mcu: None,
            cap: BIG_CORE,
        },
    )
    .expect("wake condition certifies");
    assert!(
        cert.fits_cap,
        "condition needs {} elements, past the biggest deployed core",
        cert.required_capacity
    );
    cert.required_capacity
}

/// A trace carrying both the accelerometer and the microphone channels,
/// so every application's wake condition has the data it reads.
fn combined_trace(seed: u64, duration_s: u64) -> SensorTrace {
    let mut trace = robot_run(&RobotRunConfig {
        duration: Micros::from_secs(duration_s),
        idle_fraction: 0.5,
        rate_hz: 50.0,
        seed,
    });
    let audio = audio_trace(&AudioTraceConfig {
        duration: Micros::from_secs(duration_s),
        seed: seed + 1000,
        ..AudioTraceConfig::default()
    });
    for channel in audio.channels().collect::<Vec<_>>() {
        trace.insert(
            channel,
            audio.channel(channel).expect("listed channel").clone(),
        );
    }
    trace
}

fn all_apps() -> Vec<Box<dyn Application>> {
    vec![
        Box::new(StepsApp::new()),
        Box::new(TransitionsApp::new()),
        Box::new(HeadbuttsApp::new()),
        Box::new(SirenDetectorApp::new()),
        Box::new(MusicJournalApp::new()),
        Box::new(PhraseDetectionApp::new()),
    ]
}

fn check_app<const ARENA: usize>(app: &dyn Application, trace: &SensorTrace) {
    let program = app.wake_condition();
    let rates = ChannelRates::default();
    let mut hub = HubRuntime::load(&program, &rates)
        .unwrap_or_else(|e| panic!("{}: hub load failed: {e}", app.name()));
    let image = compile_image(&program, &rates)
        .unwrap_or_else(|e| panic!("{}: image compilation failed: {e}", app.name()));
    let mut core: McuCore<f64, ARENA> = McuCore::new();
    core.load(&image)
        .unwrap_or_else(|e| panic!("{}: core load failed: {e}", app.name()));

    let mut total = 0usize;
    for channel in program.channels() {
        let samples = trace
            .channel(channel)
            .unwrap_or_else(|| panic!("trace lacks {channel:?}"))
            .samples();
        let host_wakes = hub
            .push_samples(channel, samples)
            .unwrap_or_else(|e| panic!("{}: hub exec failed: {e}", app.name()));
        let mut core_wakes = Vec::with_capacity(host_wakes.len());
        core.push_samples(channel.index() as u8, samples, &mut |w| core_wakes.push(w))
            .unwrap_or_else(|e| panic!("{}: core exec failed: {e}", app.name()));

        assert_eq!(
            host_wakes.len(),
            core_wakes.len(),
            "{}: wake count diverged on {channel:?}",
            app.name()
        );
        for (k, (h, c)) in host_wakes.iter().zip(core_wakes.iter()).enumerate() {
            assert_eq!(h.seq, c.seq, "{}: wake #{k} moved", app.name());
            assert_eq!(
                h.value.to_bits(),
                c.value.to_bits(),
                "{}: wake #{k} (seq {}) bits diverged",
                app.name(),
                h.seq
            );
        }
        total += host_wakes.len();
    }
    assert_eq!(core.wake_count(), total as u64, "{}", app.name());
}

#[test]
fn mcu_core_matches_the_hub_on_every_evaluation_app() {
    let trace = combined_trace(0x5EED_CAFE, 60);
    // Stack budget follows the certificates: only spawn the roomy
    // thread when some condition certifies past the default class
    // (a big-class f64 core is ~1 MiB of arenas on the stack).
    let needs_big = all_apps()
        .iter()
        .any(|app| certified_capacity(&app.wake_condition()) > DEFAULT_CORE);
    let body = move || {
        for app in all_apps() {
            if certified_capacity(&app.wake_condition()) <= DEFAULT_CORE {
                check_app::<DEFAULT_CORE>(app.as_ref(), &trace);
            } else {
                check_app::<BIG_CORE>(app.as_ref(), &trace);
            }
        }
    };
    if needs_big {
        std::thread::Builder::new()
            .stack_size(32 << 20)
            .spawn(body)
            .unwrap()
            .join()
            .unwrap();
    } else {
        body();
    }
}
