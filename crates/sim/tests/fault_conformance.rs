//! Fault-injection conformance: the fault-aware engine must (1) be
//! bit-identical to the fault-free path when the schedule is empty,
//! (2) be bit-identical across worker counts for a fixed seed — the
//! PR 1 determinism promise extended to fault runs — and (3) degrade
//! into genuine duty cycling while the hub is down.

use sidewinder_apps::{
    HeadbuttsApp, MusicJournalApp, PhraseDetectionApp, SirenDetectorApp, StepsApp, TransitionsApp,
};
use sidewinder_sensors::{Micros, SensorTrace};
use sidewinder_sim::{
    simulate, simulate_with_faults, Application, BatchRunner, FaultSchedule, PhonePowerProfile,
    SharedApp, SimConfig, Strategy, SweepSpec,
};
use sidewinder_tracegen::{audio_trace, robot_run, AudioTraceConfig, RobotRunConfig};
use std::sync::Arc;

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// A trace carrying both the accelerometer and the microphone channels,
/// so every evaluation application has the data its classifier and
/// wake-up condition need.
fn combined_trace(seed: u64, duration_s: u64) -> SensorTrace {
    let mut trace = robot_run(&RobotRunConfig {
        duration: Micros::from_secs(duration_s),
        idle_fraction: 0.6,
        rate_hz: 50.0,
        seed,
    });
    let audio = audio_trace(&AudioTraceConfig {
        duration: Micros::from_secs(duration_s),
        seed: seed + 1000,
        ..AudioTraceConfig::default()
    });
    for channel in audio.channels().collect::<Vec<_>>() {
        trace.insert(
            channel,
            audio.channel(channel).expect("listed channel").clone(),
        );
    }
    for interval in audio.ground_truth().intervals() {
        trace.ground_truth_mut().push(*interval);
    }
    trace
}

fn all_apps() -> Vec<SharedApp> {
    vec![
        Arc::new(StepsApp::new()),
        Arc::new(TransitionsApp::new()),
        Arc::new(HeadbuttsApp::new()),
        Arc::new(SirenDetectorApp::new()),
        Arc::new(MusicJournalApp::new()),
        Arc::new(PhraseDetectionApp::new()),
    ]
}

/// Each application's own Sidewinder wake-up condition, plain and
/// hardened.
fn sidewinder_strategies(app: &dyn Application) -> Vec<Strategy> {
    vec![
        Strategy::HubWake {
            program: app.wake_condition(),
            hub_mw: app.wake_condition_hub_mw(),
            label: "Sw",
        },
        Strategy::HubWakeDegraded {
            program: app.wake_condition(),
            hub_mw: app.wake_condition_hub_mw(),
            label: "Sw+",
            fallback_sleep: Micros::from_secs(5),
        },
    ]
}

/// A schedule that exercises every fault class at once.
fn stress_schedule() -> FaultSchedule {
    FaultSchedule::seeded(0xFA57)
        .with_frame_corruption(0.2)
        .with_frame_drops(0.1)
        .with_hub_resets_every(Micros::from_secs(40))
}

#[test]
fn empty_schedule_is_bit_identical_for_every_cell() {
    let spec = SweepSpec::new()
        .shared_apps(all_apps())
        .trace(combined_trace(71, 120))
        .strategies_per_app(sidewinder_strategies);
    let none = FaultSchedule::none();
    for job in spec.jobs() {
        let clean = simulate(
            &job.trace,
            &*job.app,
            &job.strategy,
            &job.profile,
            &job.config,
        )
        .expect("clean cell");
        let faulted = simulate_with_faults(
            &job.trace,
            &*job.app,
            &job.strategy,
            &job.profile,
            &job.config,
            &none,
        )
        .expect("empty-schedule cell");
        assert_eq!(
            clean,
            faulted,
            "{} / {}: empty schedule diverged from the fault-free path",
            job.app.name(),
            job.strategy.label()
        );
        assert!(faulted.fault.is_clean());
    }
}

#[test]
fn seeded_faults_are_bit_identical_across_worker_counts() {
    let spec = SweepSpec::new()
        .shared_apps(all_apps())
        .trace(combined_trace(72, 120))
        .strategies_per_app(sidewinder_strategies)
        .faults(stress_schedule());
    let jobs = spec.jobs();
    assert_eq!(jobs.len(), 12);

    // Serial reference: every cell through the fault-aware engine on
    // the calling thread.
    let schedule = stress_schedule();
    let serial: Vec<_> = jobs
        .iter()
        .map(|job| {
            simulate_with_faults(
                &job.trace,
                &*job.app,
                &job.strategy,
                &job.profile,
                &job.config,
                &schedule,
            )
            .expect("fault cell")
        })
        .collect();
    // The schedule genuinely fired: the rate-based resets alone strike
    // every cell on a 120 s horizon.
    assert!(serial.iter().all(|r| r.fault.hub_resets > 0));
    assert!(serial.iter().any(|r| r.fault.frames_corrupted > 0));

    for workers in WORKER_COUNTS {
        let report = BatchRunner::new().workers(workers).run(&spec);
        assert_eq!(report.len(), serial.len());
        for (i, (reference, outcome)) in serial.iter().zip(report.outcomes()).enumerate() {
            assert_eq!(outcome.index, i, "{workers} workers: outcome order");
            let parallel = outcome
                .result
                .as_ref()
                .unwrap_or_else(|e| panic!("{workers} workers: cell {i} failed: {e}"));
            assert_eq!(
                reference, parallel,
                "{workers} workers: cell {i} ({} / {}) diverged",
                outcome.app, outcome.strategy
            );
        }
    }
}

#[test]
fn degraded_fallback_matches_duty_cycling_during_full_outage() {
    // With the hub down for the entire trace, the hardened strategy is
    // duty cycling at the fallback interval: identical detections and
    // recall for every evaluation application.
    let trace = combined_trace(73, 120);
    let sleep = Micros::from_secs(5);
    let outage = FaultSchedule::seeded(1).with_hub_downtime(Micros::ZERO, trace.duration());
    for app in all_apps() {
        let degraded = simulate_with_faults(
            &trace,
            &*app,
            &Strategy::HubWakeDegraded {
                program: app.wake_condition(),
                hub_mw: app.wake_condition_hub_mw(),
                label: "Sw+",
                fallback_sleep: sleep,
            },
            &PhonePowerProfile::NEXUS4,
            &SimConfig::default(),
            &outage,
        )
        .expect("degraded cell");
        let dc = simulate(
            &trace,
            &*app,
            &Strategy::DutyCycle { sleep },
            &PhonePowerProfile::NEXUS4,
            &SimConfig::default(),
        )
        .expect("duty-cycle cell");
        assert_eq!(
            degraded.detections,
            dc.detections,
            "{}: degraded mode missed detections duty cycling fires",
            app.name()
        );
        assert_eq!(degraded.stats, dc.stats, "{}", app.name());
        assert_eq!(degraded.wake_ups, dc.wake_ups, "{}", app.name());
        assert_eq!(degraded.fault.degraded_time, trace.duration());
        assert!(degraded.fault.samples_dropped > 0);
    }
}
