//! Trace-driven simulation of continuous-sensing strategies.
//!
//! The paper's evaluation (§4) replays sensor traces through a simulator
//! that models the phone's sleep/wake behaviour and power draw under six
//! sensing configurations: Always Awake, Duty Cycling, Batching,
//! Predefined Activity, Sidewinder, and a hypothetical Oracle. This crate
//! is that simulator:
//!
//! * [`power`] — the Nexus 4 power profile (Table 1) and energy
//!   integration over the phone's state timeline;
//! * [`intervals`] — awake-interval set algebra (merging, clipping,
//!   total time);
//! * [`app`] — the [`Application`] trait the six evaluation applications
//!   implement: a main-CPU classifier plus hub wake-up condition;
//! * [`strategy`] — the sensing configurations;
//! * [`engine`] — [`engine::simulate`]: replay a trace under a strategy,
//!   producing awake intervals, detections, wake-up counts, and power;
//!   [`engine::simulate_with_faults`] layers a deterministic
//!   [`FaultSchedule`] (corrupted/dropped frames, hub resets, sensor
//!   dropouts) on top, with retry/backoff recovery and an optional
//!   degraded duty-cycling fallback;
//! * [`metrics`] — recall/precision matching of detections against
//!   ground truth, plus [`FaultCounters`] for fault-injected runs;
//! * [`concurrent`] — several applications sharing one phone and hub
//!   (the paper's §7 concurrency question);
//! * [`batch`] — the parallel sweep engine: run an application ×
//!   strategy × trace grid over scoped worker threads with
//!   deterministic, bit-identical-to-serial results;
//! * [`report`] — derived quantities (power relative to Oracle, fraction
//!   of possible savings) and fixed-width table rendering for the
//!   experiment binaries;
//! * [`energy`] — [`energy::attribute_energy`]: run with counters
//!   attached and close an exact-sum [`EnergyLedger`] splitting the
//!   run's joules across pipeline nodes, the serial link, MCU idle, and
//!   the phone's power states.

pub mod app;
pub mod batch;
pub mod concurrent;
pub mod energy;
pub mod engine;
pub mod intervals;
pub mod metrics;
pub mod power;
pub mod report;
pub mod strategy;

pub use app::Application;
pub use batch::{
    par_map, try_par_map, BatchReport, BatchRunner, JobError, JobOutcome, JobPanic, JobSpec,
    SharedApp, SweepSpec,
};
pub use energy::{attribute_energy, attribute_energy_with_faults, AttributedRun};
pub use engine::{
    simulate, simulate_f32, simulate_traced, simulate_traced_f32, simulate_with_faults,
    simulate_with_faults_traced, SimConfig, SimError, SimResult,
};
pub use metrics::{DetectionStats, FaultCounters};
pub use power::{PhonePowerProfile, PowerBreakdown};
pub use sidewinder_hub::fault::{ChannelDropout, FaultSchedule, FrameFate, RetryPolicy};
pub use sidewinder_obs::{CounterSink, EnergyLedger, EventSink, NullSink, TimelineSink};
pub use strategy::Strategy;
